//! Quickstart: run a congestion-control algorithm on an emulated path and
//! inspect what it converged to.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the "hello world" of the library: one Copa flow on an ideal
//! 48 Mbit/s, 50 ms path, followed by the delay-convergence analysis of
//! Definition 1 — the measured `[d_min, d_max]` band that the whole
//! starvation story revolves around.

use simcore::units::{Dur, Rate};
use starvation::convergence::analyze_convergence;
use starvation::runner::{run_ideal_path, RunSpec};

fn main() {
    let spec = RunSpec::new(
        Rate::from_mbps(48.0),
        Dur::from_millis(50),
        Dur::from_secs(20),
    );
    println!(
        "Running one Copa flow on an ideal path: C = {}, Rm = {}, for {}",
        spec.rate, spec.rm, spec.duration
    );

    let run = run_ideal_path(Box::new(cca::Copa::default_params()), spec);

    println!("throughput:       {}", run.throughput);
    println!("link utilization: {:.1}%", run.utilization * 100.0);

    let conv = analyze_convergence(&run.rtt, 0.5, 1e-4)
        .expect("Copa did not converge — that would falsify Definition 1");
    println!(
        "delay-convergence (Definition 1): after T = {:.2} s, RTT stayed in \
         [{:.2}, {:.2}] ms  →  delta(C) = {:.3} ms",
        conv.t_converge.as_secs_f64(),
        conv.d_min * 1e3,
        conv.d_max * 1e3,
        conv.delta() * 1e3
    );
    println!(
        "\nTheorem 1 says: jitter D > 2*delta = {:.3} ms on this path is enough \
         to construct starvation between two such flows.",
        2.0 * conv.delta() * 1e3
    );
    println!("Run `cargo run --release --example starvation_demo` to see it happen.");
}

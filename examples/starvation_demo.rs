//! Starvation, three ways — the paper's §5 scenarios at demo scale.
//!
//! ```sh
//! cargo run --release --example starvation_demo
//! ```
//!
//! 1. **Copa** (§5.1): two identical Copa flows on a 120 Mbit/s link with
//!    equal 60 ms propagation RTTs. One flow's path carries 1 ms of
//!    *persistent* non-congestive delay (its min-RTT estimate is poisoned
//!    by the occasional fast packet). It starves.
//! 2. **BBR** (§5.2): two BBR flows with Rm 40 ms / 80 ms and a little
//!    jitter. Both end up cwnd-limited; the small-RTT flow starves.
//! 3. **PCC Vivace** (§5.3): one flow's ACKs arrive only at 60 ms
//!    boundaries (link-layer aggregation). Its latency-gradient
//!    measurements turn to noise and the latency penalty crushes it.

use netsim::{AckPolicy, FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate};

fn report(name: &str, labels: [&str; 2], r: &netsim::SimResult) {
    let t0 = r.flows[0].throughput_at(r.end).mbps();
    let t1 = r.flows[1].throughput_at(r.end).mbps();
    let ratio = t0.max(t1) / t0.min(t1).max(1e-9);
    println!("{name}:");
    println!("  {:<24} {:>8.1} Mbit/s", labels[0], t0);
    println!("  {:<24} {:>8.1} Mbit/s", labels[1], t1);
    println!("  ratio {ratio:.1}:1\n");
}

fn main() {
    let secs = Dur::from_secs(30);

    // --- Copa: min-RTT poisoning (§5.1) ---
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let poisoned = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(59))
        .with_jitter(Jitter::ExtraExcept {
            extra: Dur::from_millis(1),
            period: 5_000,
            offset: 0,
        });
    let clean = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60));
    let r = Network::new(SimConfig::new(link, vec![poisoned, clean], secs)).run();
    report(
        "Copa, one flow with 1 ms persistent jitter (paper: 8.8 vs 95)",
        ["poisoned min-RTT", "clean path"],
        &r,
    );

    // --- BBR: RTT asymmetry in cwnd-limited mode (§5.2) ---
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let mk = |rm_ms: u64, seed: u64| {
        FlowConfig::bulk(Box::new(cca::Bbr::new(1500, seed)), Dur::from_millis(rm_ms))
            .with_jitter(Jitter::Random {
                max: Dur::from_millis(2),
                rng: Xoshiro256::new(seed * 7 + 1),
            })
    };
    let r = Network::new(SimConfig::new(link, vec![mk(40, 1), mk(80, 2)], secs)).run();
    report(
        "BBR, Rm 40 ms vs 80 ms (paper: 8.3 vs 107)",
        ["Rm = 40 ms", "Rm = 80 ms"],
        &r,
    );

    // --- Vivace: ACK quantization (§5.3) ---
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let quantized = FlowConfig::bulk(Box::new(cca::Vivace::new(1)), Dur::from_millis(60))
        .with_transport(netsim::Transport::Datagram)
        .with_ack_policy(AckPolicy::Quantized {
            period: Dur::from_millis(60),
        });
    let clean = FlowConfig::bulk(Box::new(cca::Vivace::new(2)), Dur::from_millis(60)).with_transport(netsim::Transport::Datagram);
    let r = Network::new(SimConfig::new(link, vec![quantized, clean], secs)).run();
    report(
        "PCC Vivace, one flow's ACKs quantized to 60 ms (paper: 9.9 vs 99.4)",
        ["quantized ACKs", "clean path"],
        &r,
    );

    println!(
        "All three pairs are the same algorithm against itself, on paths with \
         equal propagation RTTs (except BBR's deliberate asymmetry) — the \
         starvation comes from non-congestive delay alone. That is the \
         paper's point."
    );
}

//! Profile a CCA's rate–delay mapping (the Figure 2/3 machinery) for any
//! of the built-in algorithms.
//!
//! ```sh
//! cargo run --release --example rate_delay_profile -- copa
//! cargo run --release --example rate_delay_profile -- bbr
//! ```
//!
//! Sweeps the ideal-path link rate 1 → 100 Mbit/s at Rm = 100 ms and
//! prints the converged `[d_min, d_max]` band per rate — the fingerprint
//! that determines how vulnerable the CCA is to starvation (`δ(C)` small
//! ⇒ vulnerable; Theorem 1 applies whenever jitter exceeds `2·δ_max`).

use cca::{factory, CcaFactory};
use simcore::units::Dur;
use starvation::profiler::{log_sweep, profile_rate_delay};

fn factory_by_name(name: &str) -> Option<CcaFactory> {
    Some(match name {
        "vegas" => factory(|| Box::new(cca::Vegas::default_params())),
        "ledbat" => factory(|| Box::new(cca::Ledbat::default_params())),
        "fast" => factory(|| Box::new(cca::FastTcp::default_params())),
        "copa" => factory(|| Box::new(cca::Copa::default_params())),
        "bbr" => factory(|| Box::new(cca::Bbr::default_params())),
        "verus" => factory(|| Box::new(cca::Verus::default_params())),
        "vivace" => factory(|| Box::new(cca::Vivace::default_params())),
        "reno" => factory(|| Box::new(cca::NewReno::default_params())),
        "cubic" => factory(|| Box::new(cca::Cubic::default_params())),
        _ => return None,
    })
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "copa".into());
    let Some(f) = factory_by_name(&name) else {
        eprintln!("unknown CCA {name:?}; try vegas|ledbat|fast|copa|bbr|verus|vivace|reno|cubic");
        std::process::exit(1);
    };
    let rm = Dur::from_millis(100);
    let rates = log_sweep(1.0, 100.0, 7);
    println!("rate-delay profile of {name} at Rm = 100 ms (ideal paths, 25 s each)\n");
    println!(
        "{:>12}  {:>10}  {:>10}  {:>10}  {:>6}",
        "C (Mbit/s)", "d_min (ms)", "d_max (ms)", "delta (ms)", "util"
    );
    let points = profile_rate_delay(&f, &rates, rm, Dur::from_secs(25));
    let mut delta_max: f64 = 0.0;
    for p in &points {
        delta_max = delta_max.max(p.convergence.delta());
        println!(
            "{:>12.2}  {:>10.2}  {:>10.2}  {:>10.3}  {:>6.2}",
            p.rate.mbps(),
            p.convergence.d_min * 1e3,
            p.convergence.d_max * 1e3,
            p.convergence.delta() * 1e3,
            p.utilization,
        );
    }
    println!(
        "\ndelta_max = {:.3} ms -> starvation constructible for jitter D > {:.3} ms (Theorem 1)",
        delta_max * 1e3,
        2.0 * delta_max * 1e3
    );
}

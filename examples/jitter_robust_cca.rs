//! Algorithm 1 in action: a CCA that *designs for* jitter (§6.3).
//!
//! ```sh
//! cargo run --release --example jitter_robust_cca
//! ```
//!
//! Two flows share a 40 Mbit/s link; one path carries up to 10 ms of
//! random non-congestive jitter. Vegas (delay-convergent, δ ≈ 0) starves
//! under this asymmetry. Algorithm 1 — the paper's exponential rate–delay
//! mapping `µ(d) = µ₋·s^((Rmax−d)/D)` with AIMD — was configured with
//! `D = 10 ms, s = 2`, so rates a factor 2 apart always map to delays
//! more than the jitter apart: the flows stay ≈`s`-fair.

use cca::jitter_aware::JitterAwareConfig;
use cca::BoxCca;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};

fn two_flow_run(mk: impl Fn(u64) -> BoxCca, label: &str) {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let rm = Dur::from_millis(50);
    let jittered = FlowConfig::bulk(mk(1), rm).with_jitter(Jitter::Random {
        max: Dur::from_millis(10),
        rng: Xoshiro256::new(11),
    });
    let clean = FlowConfig::bulk(mk(2), rm);
    let r = Network::new(SimConfig::new(link, vec![jittered, clean], Dur::from_secs(60))).run();
    let half = Time(r.end.as_nanos() / 2);
    let a = r.flows[0].throughput_over(half, r.end).mbps();
    let b = r.flows[1].throughput_over(half, r.end).mbps();
    println!("{label}:");
    println!("  jittered path  {a:>7.1} Mbit/s");
    println!("  clean path     {b:>7.1} Mbit/s");
    println!("  ratio {:.2}:1\n", a.max(b) / a.min(b).max(1e-9));
}

fn main() {
    println!(
        "Two flows, 40 Mbit/s, Rm = 50 ms; up to 10 ms of random jitter on \
         one path only.\n"
    );
    two_flow_run(
        |_| Box::new(cca::Vegas::default_params()),
        "Vegas (delay-convergent, delta ~ 0)",
    );
    two_flow_run(
        |_| {
            let mut cfg = JitterAwareConfig::example(Dur::from_millis(50));
            cfg.a = Rate::from_mbps(0.4);
            Box::new(cca::JitterAware::new(cfg))
        },
        "Algorithm 1 (designed for D = 10 ms, s = 2)",
    );
    println!(
        "Algorithm 1 pays for its robustness with delay: its equilibrium \
         queueing delay is on the order of D rather than a few packets. \
         That trade — oscillate at least half the jitter, or starve — is \
         Theorem 1's message."
    );
}

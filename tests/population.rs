//! Integration: population-scale metrics of the `workload-1k` canonical
//! scenario. A thousand flows arrive by a Poisson process, draw
//! heavy-tailed sizes, and retire when their byte budget is delivered —
//! under the runtime invariant auditor the whole way (packet
//! conservation and exact byte accounting across every mid-run
//! departure). The run must emit the full population story: an FCT
//! distribution, a per-flow starvation-duration distribution, and a Jain
//! fairness index over all N flows.

use netsim::Network;
use simcore::units::{Dur, Rate};

/// Starvation floor for the population summary: a flow making less than
/// this in any window slice is counted as starving there.
fn floor() -> Rate {
    Rate::from_mbps(0.1)
}
const WINDOW: Dur = Dur(100_000_000); // 100 ms slices

#[test]
fn workload_1k_runs_audited_and_reports_population_metrics() {
    let cfg = starvation::canonical_scenario("workload-1k")
        .expect("workload-1k is registered")
        .with_audit(true); // auditor panics on any invariant violation
    let r = Network::new(cfg).run();

    assert_eq!(r.flows.len(), 1000, "every scheduled arrival spawned");
    // Records stay keyed in dense id order even though flows depart out
    // of arrival order.
    for (i, f) in r.flows.iter().enumerate() {
        assert_eq!(f.id.index(), i, "records keyed by FlowId");
    }

    let pop = r.population(floor(), WINDOW);
    assert_eq!(pop.n, 1000);
    assert_eq!(pop.completed, r.fcts().len());
    assert!(
        pop.completed > 900,
        "most flows finish inside the run, got {}",
        pop.completed
    );

    let fct = pop.fct_secs.expect("completed flows yield an FCT distribution");
    assert!(fct.p50 > 0.0, "median FCT must be positive");
    assert!(
        fct.p50 <= fct.p95 && fct.p95 <= fct.p99,
        "percentiles must be ordered: p50 {} p95 {} p99 {}",
        fct.p50,
        fct.p95,
        fct.p99
    );
    // Heavy-tailed sizes (Pareto alpha 1.3) must show up as a stretched
    // FCT tail, not a point mass.
    assert!(
        fct.p99 > fct.p50,
        "Pareto sizes imply a spread FCT distribution: p50 {} p99 {}",
        fct.p50,
        fct.p99
    );

    let starve = pop.starvation_secs.expect("active flows yield a starvation distribution");
    assert!(starve.p50 >= 0.0 && starve.p50 <= starve.p95 && starve.p95 <= starve.p99);
    assert!((0.0..=1.0).contains(&pop.starved_fraction));

    assert!(
        pop.jain > 0.0 && pop.jain <= 1.0 + 1e-9,
        "Jain index over N flows must land in (0, 1], got {}",
        pop.jain
    );
}

/// The same run twice must agree on every population number bit for bit —
/// the distribution summaries are pure functions of the deterministic
/// per-flow records.
#[test]
fn population_summary_is_deterministic() {
    let run = || {
        let cfg = starvation::canonical_scenario("workload-1k").expect("registered");
        Network::new(cfg).run().population(floor(), WINDOW)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.n, b.n);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.starved_fraction.to_bits(), b.starved_fraction.to_bits());
    assert_eq!(a.jain.to_bits(), b.jain.to_bits());
    let (fa, fb) = (a.fct_secs.expect("fct"), b.fct_secs.expect("fct"));
    assert_eq!(fa.p50.to_bits(), fb.p50.to_bits());
    assert_eq!(fa.p95.to_bits(), fb.p95.to_bits());
    assert_eq!(fa.p99.to_bits(), fb.p99.to_bits());
    let (sa, sb) = (a.starvation_secs.expect("starve"), b.starvation_secs.expect("starve"));
    assert_eq!(sa.p50.to_bits(), sb.p50.to_bits());
    assert_eq!(sa.p95.to_bits(), sb.p95.to_bits());
    assert_eq!(sa.p99.to_bits(), sb.p99.to_bits());
}

//! Property tests: the runtime invariant auditor holds over *random* grid
//! points of the paper's two-flow scenario space.
//!
//! Each case draws (CCA, rate, RTT, jitter, loss, seed), runs the scenario
//! under the full [`simcore::trace::Auditor`], and converts any invariant
//! violation into a property failure so the harness shrinks toward the
//! smallest violating configuration. Failures print a replayable
//! `TESTKIT_CASE_SEED`; the six audited invariants are conservation of
//! packets, bottleneck FIFO order, bounded jitter displacement, monotonic
//! sim clock, cwnd ≥ 1 MSS, and exact per-flow byte accounting.

use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate};
use testkit::prop::{check_with, u64_in, usize_in, Config};
use testkit::require;

/// The randomized CCA axis: adaptive algorithms with distinct dynamics
/// (window-based loss/delay reaction, rate-based probing, model-driven).
fn make_cca(idx: usize, seed: u64) -> cca::BoxCca {
    match idx {
        0 => Box::new(cca::NewReno::default_params()),
        1 => Box::new(cca::Copa::default_params()),
        2 => Box::new(cca::Bbr::new(1500, seed)),
        3 => Box::new(cca::Cubic::default_params()),
        _ => Box::new(cca::Vegas::default_params()),
    }
}

/// One random grid point: two flows (flow 0 jittered and lossy, flow 1
/// clean) on a finite-buffer link, audited end to end.
fn audited_point(
    &(cca_idx, rate_mbps, rtt_ms, jitter_ms, loss_pm, seed): &(usize, u64, u64, u64, u64, u64),
) -> Result<(), String> {
    let rate = Rate::from_mbps(rate_mbps as f64);
    let rm = Dur::from_millis(rtt_ms);
    let link = LinkConfig::bdp_buffer(rate, rm, 1.5);
    let mut jittered = FlowConfig::bulk(make_cca(cca_idx, seed * 2 + 1), rm);
    if jitter_ms > 0 {
        jittered = jittered.with_jitter(Jitter::Random {
            max: Dur::from_millis(jitter_ms),
            rng: Xoshiro256::new(seed * 31 + 7),
        });
    }
    if loss_pm > 0 {
        // loss_pm is per-mille: up to 3% Bernoulli loss.
        jittered = jittered.with_loss(loss_pm as f64 / 1000.0, seed + 100);
    }
    let clean = FlowConfig::bulk(make_cca(cca_idx, seed * 2 + 2), rm);
    let cfg = SimConfig::new(link, vec![jittered, clean], Dur::from_secs(2)).with_audit(true);

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Network::new(cfg).run()
    }));
    match outcome {
        Ok(r) => {
            require!(
                r.flows.iter().any(|f| f.total_delivered() > 0),
                "no flow delivered anything (rate={rate_mbps} rtt={rtt_ms})"
            );
            Ok(())
        }
        Err(e) => {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            Err(format!("audit violation: {msg}"))
        }
    }
}

#[test]
fn random_grid_points_pass_audit() {
    // 32 simulation-backed cases (~2 simulated seconds each); the strategy
    // spans the paper's experimental ranges. TESTKIT_CASES/TESTKIT_SEED
    // override for soak runs; failures print a TESTKIT_CASE_SEED replay.
    check_with(
        Config::with_cases(32),
        "audited_point",
        (
            usize_in(0, 5),   // CCA
            u64_in(6, 49),    // rate, Mbit/s
            u64_in(10, 101),  // propagation RTT, ms
            u64_in(0, 21),    // jitter bound, ms (0 = clean)
            u64_in(0, 31),    // loss, per-mille
            u64_in(0, 1 << 32),
        ),
        audited_point,
    );
}

/// Datagram transports take the SACK accounting path in the sender; audit
/// that pipeline too (Vivace is the paper's datagram CCA).
fn audited_datagram_point(
    &(rate_mbps, rtt_ms, loss_pm, seed): &(u64, u64, u64, u64),
) -> Result<(), String> {
    let rate = Rate::from_mbps(rate_mbps as f64);
    let rm = Dur::from_millis(rtt_ms);
    let link = LinkConfig::ample_buffer(rate);
    let flow = FlowConfig::bulk(Box::new(cca::Vivace::default_params()), rm)
        .with_transport(netsim::Transport::Datagram)
        .with_loss(loss_pm as f64 / 1000.0, seed + 5);
    let cfg = SimConfig::new(link, vec![flow], Dur::from_secs(2)).with_audit(true);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Network::new(cfg).run()
    }));
    match outcome {
        Ok(r) => {
            require!(r.flows[0].total_delivered() > 0, "datagram flow stalled");
            Ok(())
        }
        Err(e) => {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            Err(format!("audit violation: {msg}"))
        }
    }
}

#[test]
fn random_datagram_points_pass_audit() {
    check_with(
        Config::with_cases(16),
        "audited_datagram_point",
        (
            u64_in(6, 49),   // rate, Mbit/s
            u64_in(10, 101), // propagation RTT, ms
            u64_in(1, 51),   // loss, per-mille (always lossy: the point)
            u64_in(0, 1 << 32),
        ),
        audited_datagram_point,
    );
}

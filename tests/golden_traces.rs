//! Golden-trace regression tests: pin a per-event-class digest of each
//! canonical scenario's complete event stream.
//!
//! Every digest line is `class count fnv64` where the hash folds each
//! event's timestamp and fields **in emission order**, so the goldens pin
//! the exact packet-level timeline — scheduling order, transport behaviour
//! (retransmits, RTOs), queue occupancy, jitter schedules and CCA dynamics
//! all feed the hash. Any change to simulator semantics shows up here as a
//! mismatch on the affected class.
//!
//! # Re-recording
//!
//! When a behaviour change is *intended* (a CCA fix, a transport change),
//! re-record the goldens and commit the diff alongside the change that
//! caused it:
//!
//! ```text
//! BLESS=1 cargo test --test golden_traces
//! git diff tests/golden/   # review: only expected classes moved
//! ```
//!
//! The canonical scenarios (`starvation::canon`) are frozen; never "fix" a
//! mismatch by tweaking a scenario — that silently re-bases the contract.

use netsim::Network;
use simcore::trace::{RingSink, TraceSink};
use starvation::{canonical_scenario, CANONICAL};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Run one canonical scenario under the auditor and digest its trace.
fn digest_of(name: &str) -> String {
    let ring = RingSink::new(16);
    let probe = ring.clone();
    let cfg = canonical_scenario(name)
        .unwrap_or_else(|| panic!("unknown canonical scenario {name}"))
        .with_trace(Arc::new(move || Box::new(probe.clone()) as Box<dyn TraceSink>))
        .with_audit(true);
    Network::new(cfg).run();
    ring.digest().render()
}

#[test]
fn golden_trace_digests_match() {
    let bless = std::env::var_os("BLESS").is_some();
    let dir = golden_dir();
    let mut mismatches = Vec::new();
    for &name in CANONICAL {
        let got = digest_of(name);
        let path = dir.join(format!("{name}.digest"));
        if bless {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {}: {e}\nrecord it with: BLESS=1 cargo test --test golden_traces",
                path.display()
            )
        });
        if got != want {
            mismatches.push(format!(
                "scenario {name}: trace digest changed\n--- recorded ({})\n{want}--- current\n{got}",
                path.display()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{}\nIf this change in simulator behaviour is intended, re-record with:\n  BLESS=1 cargo test --test golden_traces\nand commit the golden diff together with the change.",
        mismatches.join("\n")
    );
}

#[test]
fn digests_are_stable_across_runs() {
    // The digest is a pure function of the scenario: two fresh networks
    // must hash to the same value (the property that makes the goldens
    // meaningful across machines and job counts).
    for &name in CANONICAL {
        assert_eq!(digest_of(name), digest_of(name), "{name}");
    }
}

#[test]
fn digests_distinguish_scenarios() {
    // Four different scenarios must produce four different digests —
    // a degenerate digest (constant output) would vacuously pass above.
    let all: Vec<String> = CANONICAL.iter().map(|n| digest_of(n)).collect();
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            assert_ne!(all[i], all[j], "{} vs {}", CANONICAL[i], CANONICAL[j]);
        }
    }
}

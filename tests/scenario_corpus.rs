//! Corpus replay: every committed `.scn` scenario file parses, compiles,
//! and reproduces the golden trace digest recorded for the canonical
//! scenario of the same name.
//!
//! `tests/golden_traces.rs` pins the digests *through the canon registry*
//! (embedded sources); this suite pins them through the files on disk and
//! the public DSL entry points, so a parser/compiler change that altered
//! the lowering — or an edit to a corpus file — shows up even if the
//! embedded copies drift.

use netsim::Network;
use simcore::trace::{RingSink, TraceSink};
use starvation::CANONICAL;
use std::path::PathBuf;
use std::sync::Arc;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn digest_of(s: &scenario::Scenario) -> String {
    let ring = RingSink::new(16);
    let probe = ring.clone();
    let cfg = scenario::compile(s)
        .with_trace(Arc::new(move || Box::new(probe.clone()) as Box<dyn TraceSink>))
        .with_audit(true);
    Network::new(cfg).run();
    ring.digest().render()
}

#[test]
fn corpus_covers_exactly_the_canonical_scenarios() {
    let corpus = scenario::load_dir(&repo_root().join("tests/scenarios")).expect("corpus parses");
    let names: Vec<&str> = corpus.iter().map(|s| s.name.as_str()).collect();
    let mut want: Vec<&str> = CANONICAL.to_vec();
    want.sort_unstable();
    assert_eq!(names, want, "tests/scenarios/ and the canon registry disagree");
    for s in &corpus {
        let path = repo_root().join(format!("tests/scenarios/{}.scn", s.name));
        assert!(path.exists(), "scenario `{}` must live in {}", s.name, path.display());
    }
}

#[test]
fn corpus_files_replay_the_golden_digests() {
    let root = repo_root();
    let corpus = scenario::load_dir(&root.join("tests/scenarios")).expect("corpus parses");
    let mut mismatches = Vec::new();
    for s in &corpus {
        let got = digest_of(s);
        let path = root.join(format!("tests/golden/{}.digest", s.name));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        if got != want {
            mismatches.push(format!(
                "scenario {}: corpus file no longer replays its golden digest\n--- recorded\n{want}--- from .scn\n{got}",
                s.name
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{}\nEither the DSL lowering changed or a corpus file was edited; corpus files are frozen \
         (re-record via BLESS=1 cargo test --test golden_traces only for intended behaviour changes).",
        mismatches.join("\n")
    );
}

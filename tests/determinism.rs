//! Integration: the simulator is a deterministic function of its
//! configuration. All randomness (jitter, Bernoulli loss, BBR/PCC probe
//! phasing) flows from explicitly-seeded [`simcore::rng::Xoshiro256`]
//! streams, so the same `SimConfig` must produce **bit-identical**
//! `SimResult`s — the property every paper figure, every `repro` run and
//! every shrunken testkit counterexample relies on to be reproducible.

use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig, SimResult};
use simcore::rng::Xoshiro256;
use simcore::series::TimeSeries;
use simcore::units::{Dur, Rate};

/// A scenario that exercises every randomness source at once: two adaptive
/// CCAs (BBR's probe phasing is itself seeded) on a shallow-buffer link,
/// each flow with random jitter and Bernoulli loss.
fn run(seed: u64) -> SimResult {
    let link = LinkConfig::bdp_buffer(Rate::from_mbps(40.0), Dur::from_millis(50), 1.0);
    let f1 = FlowConfig::bulk(Box::new(cca::Bbr::new(1500, seed)), Dur::from_millis(50))
        .with_jitter(Jitter::Random {
            max: Dur::from_millis(5),
            rng: Xoshiro256::new(seed.wrapping_mul(3).wrapping_add(1)),
        })
        .with_loss(0.01, seed.wrapping_add(100));
    let f2 = FlowConfig::bulk(
        Box::new(cca::Cubic::default_params()),
        Dur::from_millis(80),
    )
    .with_jitter(Jitter::Random {
        max: Dur::from_millis(3),
        rng: Xoshiro256::new(seed.wrapping_mul(5).wrapping_add(2)),
    })
    .with_loss(0.005, seed.wrapping_add(200));
    Network::new(SimConfig::new(link, vec![f1, f2], Dur::from_secs(8))).run()
}

/// Exact (bitwise) equality of two series, including timestamps.
fn series_bits(s: &TimeSeries) -> Vec<(u128, u64)> {
    s.points()
        .iter()
        .map(|&(t, v)| (t.as_nanos() as u128, v.to_bits()))
        .collect()
}

fn assert_bit_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.end, b.end);
    assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
    assert_eq!(a.flows.len(), b.flows.len());
    for (i, (fa, fb)) in a.flows.iter().zip(&b.flows).enumerate() {
        assert_eq!(fa.id, fb.id, "flow {i} id");
        assert_eq!(fa.drops, fb.drops, "flow {i} drops");
        assert_eq!(fa.jitter_clamps, fb.jitter_clamps, "flow {i} jitter clamps");
        assert_eq!(fa.completed, fb.completed, "flow {i} completion");
        assert_eq!(fa.start, fb.start, "flow {i} start");
        assert_eq!(fa.sent_bytes, fb.sent_bytes, "flow {i} sent");
        assert_eq!(fa.lost_bytes, fb.lost_bytes, "flow {i} lost");
        assert_eq!(
            fa.retransmitted_bytes, fb.retransmitted_bytes,
            "flow {i} retransmitted"
        );
        assert_eq!(fa.fast_retransmits, fb.fast_retransmits, "flow {i} fr");
        assert_eq!(fa.timeouts, fb.timeouts, "flow {i} timeouts");
        assert_eq!(series_bits(&fa.rtt), series_bits(&fb.rtt), "flow {i} rtt");
        assert_eq!(
            series_bits(&fa.cwnd),
            series_bits(&fb.cwnd),
            "flow {i} cwnd"
        );
        assert_eq!(
            series_bits(&fa.pacing),
            series_bits(&fb.pacing),
            "flow {i} pacing"
        );
        assert_eq!(
            series_bits(&fa.delivered),
            series_bits(&fb.delivered),
            "flow {i} delivered"
        );
    }
}

#[test]
fn same_seed_is_bit_identical() {
    let a = run(42);
    let b = run(42);
    // Sanity: the scenario actually produced traffic and loss events, so
    // the comparison below covers non-trivial traces.
    assert!(a.flows[0].total_delivered() > 0);
    assert!(a.flows.iter().any(|f| f.lost_bytes > 0));
    assert_bit_identical(&a, &b);
}

#[test]
fn same_seed_is_bit_identical_across_fresh_network_objects() {
    // Paranoia for hidden global state: interleave construction and runs.
    let a = run(7);
    let _noise = run(1234); // a different simulation in between
    let b = run(7);
    assert_bit_identical(&a, &b);
}

/// The same scenario grid, expanded once and run at `jobs = 1` (inline on
/// the calling thread) and `jobs = 4` (worker pool): every row must come
/// back in the same order with a bit-identical result. This is the property
/// that makes `repro ... --jobs N` produce byte-identical CSVs at any
/// worker count.
#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    use starvation::sweep::{CcaSpec, ScenarioSpec, Sweep};

    let spec = ScenarioSpec::new("determinism")
        .cca(CcaSpec::new("bbr", |s| Box::new(cca::Bbr::new(1500, s))))
        .cca(CcaSpec::new("cubic", |_s| {
            Box::new(cca::Cubic::default_params())
        }))
        .rates_mbps(&[24.0])
        .rtts_ms(&[40, 80])
        .jitters_ms(&[0, 5])
        .seeds(&[1, 2])
        .duration(Dur::from_secs(3));
    let jobs = spec.expand();
    assert_eq!(jobs.len(), 16);

    let serial = Sweep::new("det-serial")
        .jobs(1)
        .timing_off()
        .run(jobs.clone());
    let parallel = Sweep::new("det-parallel").jobs(4).timing_off().run(jobs);

    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.label, p.label);
        assert_bit_identical(s.result(), p.result());
    }
}

/// The audited variant: every row runs under the runtime invariant
/// auditor, at four workers, and must still match the serial rows bit for
/// bit. This doubles as the check that the timer-wheel event queue keeps
/// every auditor invariant (FIFO ties, clock monotonicity) while the
/// worker pool interleaves rows arbitrarily.
#[test]
fn audited_parallel_sweep_is_bit_identical_to_serial() {
    use starvation::sweep::{CcaSpec, ScenarioSpec, Sweep};

    let spec = ScenarioSpec::new("determinism-audited")
        .cca(CcaSpec::new("bbr", |s| Box::new(cca::Bbr::new(1500, s))))
        .rates_mbps(&[24.0])
        .rtts_ms(&[40])
        .jitters_ms(&[0, 5])
        .seeds(&[1, 2])
        .duration(Dur::from_secs(2));
    let jobs = spec.expand();
    assert_eq!(jobs.len(), 4);

    let serial = Sweep::new("det-audit-serial")
        .jobs(1)
        .audit(true)
        .timing_off()
        .run(jobs.clone());
    let parallel = Sweep::new("det-audit-parallel")
        .jobs(4)
        .audit(true)
        .timing_off()
        .run(jobs);

    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.label, p.label);
        assert_bit_identical(s.result(), p.result());
    }
}

/// The population-scale variant: the `workload-1k` canonical scenario
/// (1000 dynamically-arriving flows, heavy-tailed sizes) swept over four
/// arrival seeds, audited, at `jobs = 1` and `jobs = 4`. Dynamic spawn
/// and retirement run through the same event queue as packet delivery,
/// so worker-pool interleaving must not perturb a single lifecycle
/// timestamp — every row comes back bit-identical to serial.
#[test]
fn workload_1k_parallel_sweep_is_bit_identical_to_serial() {
    use netsim::ArrivalProcess;
    use starvation::sweep::{Sweep, SweepJob};

    let jobs: Vec<SweepJob> = [9u64, 10, 11, 12]
        .iter()
        .map(|&seed| {
            let mut cfg = starvation::canonical_scenario("workload-1k").expect("registered");
            let w = cfg.workload.as_mut().expect("workload-1k has a workload block");
            match &mut w.arrivals {
                ArrivalProcess::Poisson { seed: s, .. } => *s = seed,
                ArrivalProcess::Fixed { .. } => {
                    panic!("workload-1k uses Poisson arrivals")
                }
            }
            SweepJob::new(format!("wl-seed-{seed}"), cfg)
        })
        .collect();

    let serial = Sweep::new("wl-serial")
        .jobs(1)
        .audit(true)
        .timing_off()
        .run(jobs.clone());
    let parallel = Sweep::new("wl-parallel")
        .jobs(4)
        .audit(true)
        .timing_off()
        .run(jobs);

    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.label, p.label);
        let r = s.result();
        assert_eq!(r.flows.len(), 1000, "{}: every arrival spawned", s.label);
        assert!(
            r.fcts().len() > 900,
            "{}: most flows should complete, got {}",
            s.label,
            r.fcts().len()
        );
        assert_bit_identical(s.result(), p.result());
    }
}

#[test]
fn different_seed_changes_the_packet_trace() {
    let a = run(42);
    let b = run(43);
    // The delivered-bytes trajectories must diverge: different loss and
    // jitter streams reshape the whole packet timeline.
    let da = series_bits(&a.flows[0].delivered);
    let db = series_bits(&b.flows[0].delivered);
    assert_ne!(da, db, "seed must affect the packet trace");
    let ra = series_bits(&a.flows[0].rtt);
    let rb = series_bits(&b.flows[0].rtt);
    assert_ne!(ra, rb, "seed must affect the RTT trace");
}

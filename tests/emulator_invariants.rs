//! Property-based integration tests: invariants of the packet-level
//! emulator that every experiment in the repository silently relies on.

use netsim::{AckPolicy, FlowConfig, Jitter, LinkConfig, Network, SimConfig, SimResult};
use proptest::prelude::*;
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};

fn run_one(
    cwnd_pkts: u64,
    rate_mbps: f64,
    rm_ms: u64,
    jitter_ms: u64,
    loss_pct: f64,
    seed: u64,
    secs: u64,
) -> SimResult {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(rate_mbps));
    let mut flow = FlowConfig::bulk(
        Box::new(cca::ConstCwnd::new(cwnd_pkts * 1500)),
        Dur::from_millis(rm_ms),
    );
    if jitter_ms > 0 {
        flow = flow.with_jitter(Jitter::Random {
            max: Dur::from_millis(jitter_ms),
            rng: Xoshiro256::new(seed),
        });
    }
    if loss_pct > 0.0 {
        flow = flow.with_loss(loss_pct, seed.wrapping_add(1));
    }
    Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(secs))).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// RTT can never fall below the propagation delay plus one packet's
    /// transmission time, whatever the jitter and loss.
    #[test]
    fn rtt_never_below_floor(
        cwnd in 2u64..60,
        rate in 4.0f64..60.0,
        rm in 10u64..80,
        jit in 0u64..10,
        seed in 0u64..1000,
    ) {
        let r = run_one(cwnd, rate, rm, jit, 0.0, seed, 4);
        let floor = rm as f64 / 1e3 + 1500.0 * 8.0 / (rate * 1e6) - 1e-9;
        for &(_, rtt) in r.flows[0].rtt.points() {
            prop_assert!(rtt >= floor, "rtt={rtt} floor={floor}");
        }
    }

    /// Delivered bytes never exceed what the link can carry.
    #[test]
    fn throughput_bounded_by_capacity(
        cwnd in 2u64..200,
        rate in 4.0f64..60.0,
        rm in 10u64..80,
        seed in 0u64..1000,
    ) {
        let r = run_one(cwnd, rate, rm, 0, 0.0, seed, 4);
        let tput = r.flows[0].throughput_at(r.end).mbps();
        prop_assert!(tput <= rate * 1.001, "tput={tput} rate={rate}");
    }

    /// Byte conservation: delivered ≤ sent, and everything sent is either
    /// delivered, declared lost, dropped, or still in flight (within one
    /// window of slack).
    #[test]
    fn byte_conservation(
        cwnd in 2u64..80,
        rate in 4.0f64..60.0,
        loss in 0.0f64..0.05,
        seed in 0u64..1000,
    ) {
        let r = run_one(cwnd, rate, 40, 0, loss, seed, 4);
        let m = &r.flows[0];
        prop_assert!(m.total_delivered() <= m.sent_bytes);
        // Slack: bytes in flight, bytes SACKed at the receiver but not yet
        // cumulatively acked (these accumulate while a lost retransmission
        // stalls the cumulative point — up to an RTO's worth of sending,
        // more across timeout backoffs), and losses undetected at sim end.
        let stall_windows = 8 + 10 * m.timeouts;
        let accounted = m.total_delivered() + m.lost_bytes + stall_windows * (cwnd + 4) * 1500;
        prop_assert!(
            m.sent_bytes <= accounted + r.drops[0] * 1500,
            "sent={} accounted={}",
            m.sent_bytes,
            accounted
        );
    }

    /// Determinism: identical configurations produce identical runs.
    #[test]
    fn bit_level_determinism(
        cwnd in 2u64..60,
        jit in 0u64..10,
        loss in 0.0f64..0.03,
        seed in 0u64..1000,
    ) {
        let a = run_one(cwnd, 24.0, 40, jit, loss, seed, 3);
        let b = run_one(cwnd, 24.0, 40, jit, loss, seed, 3);
        prop_assert_eq!(a.flows[0].total_delivered(), b.flows[0].total_delivered());
        prop_assert_eq!(a.flows[0].sent_bytes, b.flows[0].sent_bytes);
        prop_assert_eq!(a.flows[0].rtt.len(), b.flows[0].rtt.len());
    }

    /// The jitter element never reorders: RTT samples of consecutively
    /// acked packets arrive in ack order (monotone time series), and the
    /// receiver never sees sequence regressions that create phantom
    /// delivery (delivered is monotone).
    #[test]
    fn delivery_is_monotone(
        cwnd in 2u64..60,
        jit in 1u64..15,
        seed in 0u64..1000,
    ) {
        let r = run_one(cwnd, 24.0, 40, jit, 0.0, seed, 3);
        let pts = r.flows[0].delivered.points();
        for w in pts.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
    }
}

#[test]
fn quantized_acks_only_on_boundaries() {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
    let flow = FlowConfig::bulk(Box::new(cca::ConstCwnd::new(20 * 1500)), Dur::from_millis(40))
        .with_ack_policy(AckPolicy::Quantized {
            period: Dur::from_millis(60),
        });
    let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(3))).run();
    for &(t, _) in r.flows[0].rtt.points() {
        assert_eq!(t.as_nanos() % Dur::from_millis(60).as_nanos(), 0, "t={t}");
    }
}

#[test]
fn two_flow_fifo_shares_capacity_exactly() {
    // Two identical saturating flows: the sum of throughputs equals the
    // link rate (no creation or loss of capacity in the FIFO).
    let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
    let mk = || FlowConfig::bulk(Box::new(cca::ConstCwnd::new(120 * 1500)), Dur::from_millis(40));
    let r = Network::new(SimConfig::new(link, vec![mk(), mk()], Dur::from_secs(6))).run();
    let sum: f64 = (0..2).map(|i| r.flows[i].throughput_at(r.end).mbps()).sum();
    assert!((sum - 24.0).abs() < 1.5, "sum={sum}");
}

#[test]
fn warm_start_prefill_creates_initial_delay() {
    // Phantom prefill of Q bytes must make early packets see ≈ Q/C extra
    // queueing delay.
    let rate = Rate::from_mbps(24.0);
    let link = LinkConfig::ample_buffer(rate);
    let flow = FlowConfig::bulk(Box::new(cca::ConstCwnd::new(2 * 1500)), Dur::from_millis(40));
    let mut net = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(2)));
    let q_bytes = (rate.bytes_per_sec() * 0.030) as u64; // 30 ms of backlog
    net.prefill_queue(q_bytes, 1500);
    let r = net.run();
    let (first_t, first_rtt) = r.flows[0].rtt.first().unwrap();
    assert!(first_t < Time::from_millis(200));
    // 40 ms Rm + ~30 ms queue (±ms of packetization).
    assert!(
        (first_rtt - 0.070).abs() < 0.005,
        "first rtt={first_rtt}"
    );
    // And the queue drains: late RTTs return to Rm + tx.
    let late = r.flows[0]
        .mean_rtt_in(Time::from_millis(1500), r.end)
        .unwrap();
    assert!(late < 0.045, "late={late}");
}

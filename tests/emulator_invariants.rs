//! Property-based integration tests: invariants of the packet-level
//! emulator that every experiment in the repository silently relies on.
//!
//! Each property is a plain function over a tuple of inputs (so testkit's
//! failure output is a paste-ready regression test calling it), exercised
//! by `testkit::prop::check_with`. Simulation-backed cases are expensive,
//! so the case count is fixed at 12 per property, as it was under proptest.

use netsim::{AckPolicy, FlowConfig, LinkConfig, Network, SimConfig};
use simcore::units::{Dur, Rate, Time};
use testkit::harness::run_one;
use testkit::prop::{check_with, f64_in, u64_in, Config};
use testkit::require;

fn cases() -> Config {
    Config::with_cases(12)
}

/// RTT can never fall below the propagation delay plus one packet's
/// transmission time, whatever the jitter and loss.
fn rtt_never_below_floor(
    &(cwnd, rate, rm, jit, seed): &(u64, f64, u64, u64, u64),
) -> Result<(), String> {
    let r = run_one(cwnd, rate, rm, jit, 0.0, seed, 4);
    let floor = rm as f64 / 1e3 + 1500.0 * 8.0 / (rate * 1e6) - 1e-9;
    for &(_, rtt) in r.flows[0].rtt.points() {
        require!(rtt >= floor, "rtt={rtt} floor={floor}");
    }
    Ok(())
}

#[test]
fn prop_rtt_never_below_floor() {
    check_with(
        cases(),
        "rtt_never_below_floor",
        (
            u64_in(2, 60),
            f64_in(4.0, 60.0),
            u64_in(10, 80),
            u64_in(0, 10),
            u64_in(0, 1000),
        ),
        rtt_never_below_floor,
    );
}

/// Delivered bytes never exceed what the link can carry.
fn throughput_bounded_by_capacity(
    &(cwnd, rate, rm, seed): &(u64, f64, u64, u64),
) -> Result<(), String> {
    let r = run_one(cwnd, rate, rm, 0, 0.0, seed, 4);
    let tput = r.flows[0].throughput_at(r.end).mbps();
    require!(tput <= rate * 1.001, "tput={tput} rate={rate}");
    Ok(())
}

#[test]
fn prop_throughput_bounded_by_capacity() {
    check_with(
        cases(),
        "throughput_bounded_by_capacity",
        (
            u64_in(2, 200),
            f64_in(4.0, 60.0),
            u64_in(10, 80),
            u64_in(0, 1000),
        ),
        throughput_bounded_by_capacity,
    );
}

/// Byte conservation: delivered ≤ sent, and everything sent is either
/// delivered, declared lost, dropped, or still in flight (within one
/// window of slack).
fn byte_conservation(&(cwnd, rate, loss, seed): &(u64, f64, f64, u64)) -> Result<(), String> {
    let r = run_one(cwnd, rate, 40, 0, loss, seed, 4);
    let m = &r.flows[0];
    require!(m.total_delivered() <= m.sent_bytes);
    // Slack: bytes in flight, bytes SACKed at the receiver but not yet
    // cumulatively acked (these accumulate while a lost retransmission
    // stalls the cumulative point — up to an RTO's worth of sending,
    // more across timeout backoffs), and losses undetected at sim end.
    let stall_windows = 8 + 10 * m.timeouts;
    let accounted = m.total_delivered() + m.lost_bytes + stall_windows * (cwnd + 4) * 1500;
    require!(
        m.sent_bytes <= accounted + r.flows[0].drops * 1500,
        "sent={} accounted={}",
        m.sent_bytes,
        accounted
    );
    Ok(())
}

#[test]
fn prop_byte_conservation() {
    check_with(
        cases(),
        "byte_conservation",
        (
            u64_in(2, 80),
            f64_in(4.0, 60.0),
            f64_in(0.0, 0.05),
            u64_in(0, 1000),
        ),
        byte_conservation,
    );
}

/// Regression (ported from tests/emulator_invariants.proptest-regressions,
/// seed dca141c8…): at this cwnd/loss combination the SACKed-but-not-acked
/// backlog during a retransmission stall exceeded the old one-window slack
/// in the byte-conservation accounting.
#[test]
fn regression_byte_conservation_sack_stall_backlog() {
    byte_conservation(&(28, 4.0, 0.04389004328692524, 563)).unwrap();
}

/// Regression (ported from tests/emulator_invariants.proptest-regressions,
/// seed 212a4746…): repeated timeouts with backoff let unaccounted bytes
/// grow past a fixed number of stall windows; the slack must scale with
/// the observed timeout count.
#[test]
fn regression_byte_conservation_timeout_backoff_slack() {
    byte_conservation(&(15, 57.69840206502283, 0.036773298322155944, 893)).unwrap();
}

/// Determinism: identical configurations produce identical runs.
fn bit_level_determinism(&(cwnd, jit, loss, seed): &(u64, u64, f64, u64)) -> Result<(), String> {
    let a = run_one(cwnd, 24.0, 40, jit, loss, seed, 3);
    let b = run_one(cwnd, 24.0, 40, jit, loss, seed, 3);
    testkit::require_eq!(a.flows[0].total_delivered(), b.flows[0].total_delivered());
    testkit::require_eq!(a.flows[0].sent_bytes, b.flows[0].sent_bytes);
    testkit::require_eq!(a.flows[0].rtt.len(), b.flows[0].rtt.len());
    Ok(())
}

#[test]
fn prop_bit_level_determinism() {
    check_with(
        cases(),
        "bit_level_determinism",
        (
            u64_in(2, 60),
            u64_in(0, 10),
            f64_in(0.0, 0.03),
            u64_in(0, 1000),
        ),
        bit_level_determinism,
    );
}

/// The jitter element never reorders: RTT samples of consecutively
/// acked packets arrive in ack order (monotone time series), and the
/// receiver never sees sequence regressions that create phantom
/// delivery (delivered is monotone).
fn delivery_is_monotone(&(cwnd, jit, seed): &(u64, u64, u64)) -> Result<(), String> {
    let r = run_one(cwnd, 24.0, 40, jit, 0.0, seed, 3);
    let pts = r.flows[0].delivered.points();
    for w in pts.windows(2) {
        require!(w[1].1 >= w[0].1, "regression at t={}", w[1].0);
    }
    Ok(())
}

#[test]
fn prop_delivery_is_monotone() {
    check_with(
        cases(),
        "delivery_is_monotone",
        (u64_in(2, 60), u64_in(1, 15), u64_in(0, 1000)),
        delivery_is_monotone,
    );
}

#[test]
fn quantized_acks_only_on_boundaries() {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
    let flow = FlowConfig::bulk(Box::new(cca::ConstCwnd::new(20 * 1500)), Dur::from_millis(40))
        .with_ack_policy(AckPolicy::Quantized {
            period: Dur::from_millis(60),
        });
    let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(3))).run();
    for &(t, _) in r.flows[0].rtt.points() {
        assert_eq!(t.as_nanos() % Dur::from_millis(60).as_nanos(), 0, "t={t}");
    }
}

#[test]
fn two_flow_fifo_shares_capacity_exactly() {
    // Two identical saturating flows: the sum of throughputs equals the
    // link rate (no creation or loss of capacity in the FIFO).
    let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
    let mk = || FlowConfig::bulk(Box::new(cca::ConstCwnd::new(120 * 1500)), Dur::from_millis(40));
    let r = Network::new(SimConfig::new(link, vec![mk(), mk()], Dur::from_secs(6))).run();
    let sum: f64 = (0..2).map(|i| r.flows[i].throughput_at(r.end).mbps()).sum();
    assert!((sum - 24.0).abs() < 1.5, "sum={sum}");
}

#[test]
fn warm_start_prefill_creates_initial_delay() {
    // Phantom prefill of Q bytes must make early packets see ≈ Q/C extra
    // queueing delay.
    let rate = Rate::from_mbps(24.0);
    let link = LinkConfig::ample_buffer(rate);
    let flow = FlowConfig::bulk(Box::new(cca::ConstCwnd::new(2 * 1500)), Dur::from_millis(40));
    let mut net = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(2)));
    let q_bytes = (rate.bytes_per_sec() * 0.030) as u64; // 30 ms of backlog
    net.prefill_queue(q_bytes, 1500);
    let r = net.run();
    let (first_t, first_rtt) = r.flows[0].rtt.first().unwrap();
    assert!(first_t < Time::from_millis(200));
    // 40 ms Rm + ~30 ms queue (±ms of packetization).
    assert!(
        (first_rtt - 0.070).abs() < 0.005,
        "first rtt={first_rtt}"
    );
    // And the queue drains: late RTTs return to Rm + tx.
    let late = r.flows[0]
        .mean_rtt_in(Time::from_millis(1500), r.end)
        .expect("the flow keeps sampling RTTs after the prefilled queue drains");
    assert!(late < 0.045, "late={late}");
}

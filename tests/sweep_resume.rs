//! Fault injection: a sweep killed at **every** checkpoint boundary
//! resumes and converges to the exact store an uninterrupted run
//! produces.
//!
//! The kill is injected via [`StoreOptions::kill_after`], the test-only
//! hook that stops the run after N rows have been persisted *without*
//! writing a final manifest — precisely what a `kill -9` between a row's
//! atomic rename and the next checkpoint leaves on disk. For every
//! possible boundary N of an 8-row grid this suite asserts, against a
//! fresh uninterrupted serial baseline:
//!
//! * nothing is lost — the resumed run finds all N persisted rows cached;
//! * nothing is re-executed — the resume runs exactly `8 - N` jobs;
//! * nothing is duplicated — the final store holds exactly 8 entries;
//! * the bytes converge — every store file (entries *and* the sweep
//!   manifest) is byte-identical to the baseline's.

use starvation::sweep::{CcaSpec, ScenarioSpec, StoreOptions, Sweep};
use simcore::units::Dur;
use std::path::{Path, PathBuf};

/// The grid under test: 8 fast points (2 rates × 2 jitters × 2 seeds).
fn grid() -> ScenarioSpec {
    ScenarioSpec::new("resume-suite")
        .cca(CcaSpec::new("const", |_s| {
            Box::new(cca::ConstCwnd::new(20 * 1500))
        }))
        .rates_mbps(&[12.0, 24.0])
        .rtts_ms(&[40])
        .jitters_ms(&[0, 5])
        .seeds(&[1, 2])
        .duration(Dur::from_secs(2))
}

const GRID_ROWS: usize = 8;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep_resume_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every file under the store, as sorted (relative path, contents) pairs —
/// the byte-level identity two stores are compared by.
fn store_files(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in std::fs::read_dir(dir).expect("store dir readable") {
            let path = entry.expect("store dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("entry under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("store file readable")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

#[test]
fn kill_at_every_checkpoint_boundary_converges_to_baseline_bytes() {
    // Uninterrupted serial baseline.
    let base_dir = tmp("baseline");
    let base = Sweep::new("resume-suite")
        .jobs(1)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&base_dir).checkpoint_rows(1));
    assert!(!base.aborted);
    assert_eq!(base.executed, GRID_ROWS);
    let base_files = store_files(&base_dir);
    assert_eq!(
        base_files.len(),
        GRID_ROWS + 1,
        "8 entries + 1 manifest, got {:?}",
        base_files.iter().map(|(p, _)| p).collect::<Vec<_>>()
    );
    let base_rows: Vec<Vec<u8>> = base
        .rows
        .iter()
        .map(|r| r.outcome.as_ref().expect("baseline row runs").to_store_bytes())
        .collect();

    // Kill after every possible number of persisted rows, then resume.
    for kill_n in 1..GRID_ROWS {
        let dir = tmp(&format!("kill{kill_n}"));
        let killed = Sweep::new("resume-suite").jobs(1).timing_off().run_incremental(
            grid().expand(),
            &StoreOptions::new(&dir).checkpoint_rows(1).kill_after(Some(kill_n)),
        );
        assert!(killed.aborted, "kill_n={kill_n}");
        assert_eq!(killed.executed, kill_n, "kill hook stops after exactly N rows");

        let resumed = Sweep::new("resume-suite")
            .jobs(1)
            .timing_off()
            .run_incremental(grid().expand(), &StoreOptions::new(&dir).checkpoint_rows(1));
        assert!(!resumed.aborted);
        assert_eq!(resumed.cached, kill_n, "kill_n={kill_n}: no persisted row is lost");
        assert_eq!(
            resumed.executed,
            GRID_ROWS - kill_n,
            "kill_n={kill_n}: no completed row is re-executed"
        );
        assert!(resumed.recomputed.is_empty(), "kill leaves no invalid entries");

        let files = store_files(&dir);
        assert_eq!(files.len(), GRID_ROWS + 1, "kill_n={kill_n}: no duplicated entries");
        assert_eq!(
            files, base_files,
            "kill_n={kill_n}: resumed store is byte-identical to the uninterrupted baseline"
        );

        let rows: Vec<Vec<u8>> = resumed
            .rows
            .iter()
            .map(|r| r.outcome.as_ref().expect("resumed row present").to_store_bytes())
            .collect();
        assert_eq!(rows, base_rows, "kill_n={kill_n}: report rows are byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn parallel_killed_sweep_converges_too() {
    // At jobs=4 the abort flag lets in-flight workers finish, so the
    // number persisted before death varies between N and N+3 — the
    // convergence contract (resume completes the rest, bytes match the
    // serial baseline) must hold regardless.
    let base_dir = tmp("par_baseline");
    let _ = Sweep::new("resume-suite")
        .jobs(1)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&base_dir).checkpoint_rows(1));
    let base_files = store_files(&base_dir);

    let dir = tmp("par_kill");
    let killed = Sweep::new("resume-suite").jobs(4).timing_off().run_incremental(
        grid().expand(),
        &StoreOptions::new(&dir).checkpoint_rows(1).kill_after(Some(3)),
    );
    assert!(killed.aborted);
    assert!(killed.executed >= 3, "at least the trigger count persisted");
    assert!(killed.executed < GRID_ROWS, "the kill fired before completion");

    let resumed = Sweep::new("resume-suite")
        .jobs(4)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&dir).checkpoint_rows(1));
    assert!(!resumed.aborted);
    assert_eq!(resumed.cached, killed.executed, "every persisted row survives");
    assert_eq!(resumed.executed, GRID_ROWS - killed.executed);
    assert_eq!(
        store_files(&dir),
        base_files,
        "parallel killed+resumed store is byte-identical to the serial baseline"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn double_kill_still_converges() {
    // Two consecutive crashes before completion: each resume picks up
    // where the last death left off.
    let base_dir = tmp("dbl_baseline");
    let _ = Sweep::new("resume-suite")
        .jobs(1)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&base_dir).checkpoint_rows(1));
    let base_files = store_files(&base_dir);

    let dir = tmp("dbl_kill");
    let first = Sweep::new("resume-suite").jobs(1).timing_off().run_incremental(
        grid().expand(),
        &StoreOptions::new(&dir).checkpoint_rows(1).kill_after(Some(2)),
    );
    assert!(first.aborted);
    let second = Sweep::new("resume-suite").jobs(1).timing_off().run_incremental(
        grid().expand(),
        &StoreOptions::new(&dir).checkpoint_rows(1).kill_after(Some(3)),
    );
    assert!(second.aborted);
    assert_eq!(second.cached, 2, "second attempt resumes past the first crash");

    let final_run = Sweep::new("resume-suite")
        .jobs(1)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&dir).checkpoint_rows(1));
    assert!(!final_run.aborted);
    assert_eq!(final_run.cached, 5, "2 + 3 rows survived the two crashes");
    assert_eq!(final_run.executed, 3);
    assert_eq!(store_files(&dir), base_files);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn completed_grid_reruns_zero_jobs_any_worker_count() {
    let dir = tmp("zero_rerun");
    let first = Sweep::new("resume-suite")
        .jobs(2)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&dir));
    assert_eq!(first.executed, GRID_ROWS);
    let snapshot = store_files(&dir);
    for jobs in [1, 4] {
        let rerun = Sweep::new("resume-suite")
            .jobs(jobs)
            .timing_off()
            .run_incremental(grid().expand(), &StoreOptions::new(&dir));
        assert_eq!(rerun.executed, 0, "jobs={jobs}: complete grid is a full cache hit");
        assert_eq!(rerun.cached, GRID_ROWS);
        assert_eq!(store_files(&dir), snapshot, "jobs={jobs}: cache hits never write");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Metamorphic equivalence suite for the arena packet store.
//!
//! The sender's per-sequence bookkeeping moved from four B-tree
//! containers to the flat slot arena ([`netsim::PktStore`]). The original
//! containers survive verbatim as [`netsim::RefStore`] behind the same
//! [`netsim::SeqStore`] trait, which makes the old implementation an
//! executable specification: `Network::<RefStore>` must be observably
//! indistinguishable from the default arena-backed `Network`.
//!
//! Three relations (same shape as the wheel-vs-BinaryHeap suite that
//! guarded the timer-wheel swap):
//!
//! * the reference store reproduces the committed golden trace digests —
//!   so the arena, which is separately pinned to those digests by
//!   `tests/golden_traces.rs`, agrees with the reference on the full
//!   packet-level timeline of every canonical scenario;
//! * bit-identical `SimResult`s between arena and reference across a
//!   seeded loss/SACK-heavy grid chosen to hammer exactly the paths the
//!   arena rewrote (SACK merges, hole detection, RTO drains, datagram
//!   go-front scans);
//! * the batched wheel pop dispatches in exactly the order a single-pop
//!   loop produces, including same-time events scheduled mid-batch.
//!
//! Plus the byte-accounting regression for partial final segments: a
//! Pareto-sized workload (sizes almost never a multiple of the MSS) runs
//! under the trace auditor, whose per-ACK identity
//! `sent + spurious_rtx = delivered + in_flight + lost + unresolved`
//! is the oracle that per-packet byte accounting stays exact.

use netsim::{
    ArrivalProcess, FlowConfig, Jitter, LinkConfig, Network, RefStore, SimConfig, SimResult,
    SizeDist, Workload,
};
use simcore::engine::EventQueue;
use simcore::rng::Xoshiro256;
use simcore::series::TimeSeries;
use simcore::trace::{RingSink, TraceSink};
use simcore::units::{Dur, Rate, Time};
use starvation::{canonical_scenario, CANONICAL};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn series_bits(s: &TimeSeries) -> Vec<(u128, u64)> {
    s.points()
        .iter()
        .map(|&(t, v)| (t.as_nanos() as u128, v.to_bits()))
        .collect()
}

fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.end, b.end, "{what}: end");
    assert_eq!(a.events, b.events, "{what}: event count");
    assert_eq!(a.utilization.to_bits(), b.utilization.to_bits(), "{what}: utilization");
    assert_eq!(a.flows.len(), b.flows.len(), "{what}: flow count");
    for (i, (fa, fb)) in a.flows.iter().zip(&b.flows).enumerate() {
        assert_eq!(fa.drops, fb.drops, "{what}: flow {i} drops");
        assert_eq!(fa.sent_bytes, fb.sent_bytes, "{what}: flow {i} sent");
        assert_eq!(fa.lost_bytes, fb.lost_bytes, "{what}: flow {i} lost");
        assert_eq!(
            fa.retransmitted_bytes, fb.retransmitted_bytes,
            "{what}: flow {i} retransmitted"
        );
        assert_eq!(fa.fast_retransmits, fb.fast_retransmits, "{what}: flow {i} fr");
        assert_eq!(fa.timeouts, fb.timeouts, "{what}: flow {i} timeouts");
        assert_eq!(fa.completed, fb.completed, "{what}: flow {i} completion");
        assert_eq!(series_bits(&fa.rtt), series_bits(&fb.rtt), "{what}: flow {i} rtt");
        assert_eq!(series_bits(&fa.cwnd), series_bits(&fb.cwnd), "{what}: flow {i} cwnd");
        assert_eq!(
            series_bits(&fa.delivered),
            series_bits(&fb.delivered),
            "{what}: flow {i} delivered"
        );
    }
}

/// The reference (B-tree) store must reproduce the *committed* golden
/// digests. `tests/golden_traces.rs` pins the arena to the same files, so
/// together the two tests prove arena and reference agree event-for-event
/// on every canonical scenario.
#[test]
fn reference_store_reproduces_golden_digests() {
    for &name in CANONICAL {
        let ring = RingSink::new(16);
        let probe = ring.clone();
        let cfg = canonical_scenario(name)
            .unwrap_or_else(|| panic!("unknown canonical scenario {name}"))
            .with_trace(Arc::new(move || Box::new(probe.clone()) as Box<dyn TraceSink>))
            .with_audit(true);
        Network::<RefStore>::with_store(cfg).run();
        let got = ring.digest().render();
        let path = golden_dir().join(format!("{name}.digest"));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        assert_eq!(got, want, "reference store diverged from golden on {name}");
    }
}

/// One cell of the loss/SACK-heavy grid: two adaptive reliable flows with
/// Bernoulli loss and jitter (SACK merges, hole detection, fast
/// retransmit, RTO) plus a lossy datagram flow (the go-front scan path).
fn grid_config(seed: u64, loss: f64) -> SimConfig {
    let link = LinkConfig::bdp_buffer(Rate::from_mbps(30.0), Dur::from_millis(40), 0.8);
    let f1 = FlowConfig::bulk(Box::new(cca::Bbr::new(1500, seed)), Dur::from_millis(40))
        .with_jitter(Jitter::Random {
            max: Dur::from_millis(4),
            rng: Xoshiro256::new(seed.wrapping_mul(3).wrapping_add(1)),
        })
        .with_loss(loss, seed.wrapping_add(100));
    let f2 = FlowConfig::bulk(Box::new(cca::Cubic::default_params()), Dur::from_millis(60))
        .with_loss(2.0 * loss, seed.wrapping_add(200));
    let f3 = FlowConfig::bulk(
        Box::new(cca::Vivace::new(seed.wrapping_add(7))),
        Dur::from_millis(50),
    )
    .with_transport(netsim::Transport::Datagram)
    .with_loss(loss, seed.wrapping_add(300));
    SimConfig::new(link, vec![f1, f2, f3], Dur::from_secs(5))
}

#[test]
fn arena_matches_reference_on_loss_sack_grid() {
    for seed in [1u64, 7, 42] {
        for loss in [0.005, 0.03] {
            let arena = Network::new(grid_config(seed, loss)).run();
            let reference = Network::<RefStore>::with_store(grid_config(seed, loss)).run();
            // Sanity: the grid actually exercises the rewritten paths.
            assert!(
                arena.flows.iter().any(|f| f.lost_bytes > 0),
                "grid cell seed={seed} loss={loss} saw no loss"
            );
            assert_bit_identical(&arena, &reference, &format!("seed={seed} loss={loss}"));
        }
    }
}

/// Satellite regression: byte accounting must stay exact for finite
/// transfers whose size is not a multiple of the MSS. The Pareto size
/// distribution makes ragged sizes the common case; the auditor checks
/// `sent + spurious_rtx = delivered + in_flight + lost + unresolved`
/// per-packet on every ACK and panics the run on the first violation.
#[test]
fn pareto_sized_flows_keep_exact_byte_accounting_under_audit() {
    let link = LinkConfig::bdp_buffer(Rate::from_mbps(20.0), Dur::from_millis(30), 1.0);
    let wl = Workload::new(
        40,
        ArrivalProcess::Poisson {
            mean: Dur::from_millis(40),
            seed: 11,
        },
        SizeDist::Pareto {
            min_bytes: 2001, // never a multiple of the 1500-byte MSS
            alpha: 1.3,
            cap_bytes: 400_000,
            seed: 13,
        },
        Box::new(cca::NewReno::default_params()),
        Dur::from_millis(30),
    )
    .with_start(Time::from_millis(50))
    .with_jitter(Dur::from_millis(2), 17)
    .with_loss(0.02, 19);
    let cfg = SimConfig::new(link, Vec::new(), Dur::from_secs(12))
        .with_workload(wl)
        .with_audit(true);
    let res = Network::new(cfg).run();
    let done = res.flows.iter().filter(|f| f.completed.is_some()).count();
    assert!(done > 10, "too few finite flows completed: {done}");
    assert!(
        res.flows.iter().any(|f| f.lost_bytes > 0),
        "loss never fired; the audit exercised nothing"
    );
    // And the arena agrees with the reference store on the whole run.
    let cfg2 = |audit| {
        let wl = Workload::new(
            40,
            ArrivalProcess::Poisson {
                mean: Dur::from_millis(40),
                seed: 11,
            },
            SizeDist::Pareto {
                min_bytes: 2001,
                alpha: 1.3,
                cap_bytes: 400_000,
                seed: 13,
            },
            Box::new(cca::NewReno::default_params()),
            Dur::from_millis(30),
        )
        .with_start(Time::from_millis(50))
        .with_jitter(Dur::from_millis(2), 17)
        .with_loss(0.02, 19);
        SimConfig::new(
            LinkConfig::bdp_buffer(Rate::from_mbps(20.0), Dur::from_millis(30), 1.0),
            Vec::new(),
            Dur::from_secs(12),
        )
        .with_workload(wl)
        .with_audit(audit)
    };
    let reference = Network::<RefStore>::with_store(cfg2(true)).run();
    assert_bit_identical(&res, &reference, "pareto workload");
}

/// Property test: draining the queue with `pop_batch_at_or_before` yields
/// exactly the `(time, payload)` sequence of a single-pop loop, under a
/// seeded schedule dense with ties and with same-time events scheduled
/// *during* dispatch (the follow-up pattern simulation handlers use).
#[test]
fn batched_pop_matches_single_pop_order() {
    fn run_single(seed: u64) -> Vec<(Time, u64)> {
        let (mut q, mut rng) = seeded_queue(seed);
        let mut out = Vec::new();
        let mut budget = 200u32; // follow-up events scheduled mid-dispatch
        while let Some((t, v)) = q.pop_at_or_before(Time::from_millis(u64::MAX / 2_000_000)) {
            out.push((t, v));
            maybe_follow_up(&mut q, &mut rng, t, v, &mut budget);
        }
        out
    }

    fn run_batched(seed: u64) -> Vec<(Time, u64)> {
        let (mut q, mut rng) = seeded_queue(seed);
        let mut out = Vec::new();
        let mut batch = Vec::new();
        let mut budget = 200u32;
        while let Some(t) = q.pop_batch_at_or_before(Time::from_millis(u64::MAX / 2_000_000), &mut batch)
        {
            for v in batch.drain(..) {
                out.push((t, v));
                maybe_follow_up(&mut q, &mut rng, t, v, &mut budget);
            }
        }
        out
    }

    fn seeded_queue(seed: u64) -> (EventQueue<u64>, Xoshiro256) {
        let mut rng = Xoshiro256::new(seed);
        let mut q = EventQueue::new();
        // A handful of tick-sharing time values so batches are non-trivial.
        let times: Vec<Time> = (0..40)
            .map(|_| Time(rng.next_u64() % 5_000_000))
            .collect();
        for i in 0..2000u64 {
            let t = times[(rng.next_u64() % times.len() as u64) as usize];
            q.schedule_at(t, i);
        }
        (q, rng)
    }

    /// Deterministically (from the shared PRNG stream) schedule follow-up
    /// events at the current instant or slightly later — the pattern that
    /// distinguishes batch semantics from a frozen snapshot of the queue.
    fn maybe_follow_up(q: &mut EventQueue<u64>, rng: &mut Xoshiro256, t: Time, v: u64, budget: &mut u32) {
        if *budget == 0 {
            return;
        }
        match rng.next_u64() % 8 {
            0 => {
                *budget -= 1;
                q.schedule_at(t, 1_000_000 + v); // same-instant follow-up
            }
            1 => {
                *budget -= 1;
                q.schedule_at(t + Dur(1 + rng.next_u64() % 10_000), 2_000_000 + v);
            }
            _ => {}
        }
    }

    for seed in [3u64, 17, 99, 2024] {
        assert_eq!(run_single(seed), run_batched(seed), "seed {seed}");
    }
}

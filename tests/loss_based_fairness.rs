//! Integration: §5.4's loss-based side — Reno/Cubic suffer *bounded*
//! unfairness under ACK-burst jitter but do not starve, and the `ccmc`
//! model checker bounds AIMD's unfairness over the discrete trace grid.

use ccmc::{search_max_ratio, ModelConfig, ModelState, SearchConfig};
use netsim::{FlowConfig, LinkConfig, Network, SimConfig};
use simcore::units::{Dur, Rate};
use testkit::harness::fig7_scenario;

#[test]
fn reno_delayed_ack_unfairness_is_bounded() {
    let (clean, delayed) = fig7_scenario(|| Box::new(cca::NewReno::default_params()), 60);
    let ratio = clean / delayed;
    // Unfair (the bursty flow loses more) but bounded — the paper's 2.7×,
    // nothing like the delay-CCA 10× starvation.
    assert!(ratio > 1.2, "clean={clean} delayed={delayed}");
    assert!(ratio < 8.0, "ratio={ratio}");
    // And the link stays utilized.
    assert!(clean + delayed > 4.0);
}

#[test]
fn cubic_delayed_ack_unfairness_is_bounded() {
    let (clean, delayed) = fig7_scenario(|| Box::new(cca::Cubic::default_params()), 60);
    let ratio = clean / delayed;
    assert!(ratio > 1.0, "clean={clean} delayed={delayed}");
    assert!(ratio < 8.0, "ratio={ratio}");
    assert!(clean + delayed > 4.0);
}

#[test]
fn reno_and_cubic_survive_random_loss() {
    // Loss-based CCAs slow down under random loss but keep the pipe busy.
    for mk in [
        (|| Box::new(cca::NewReno::default_params()) as cca::BoxCca) as fn() -> cca::BoxCca,
        || Box::new(cca::Cubic::default_params()),
    ] {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let flow = FlowConfig::bulk(mk(), Dur::from_millis(40)).with_loss(0.005, 3);
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(20))).run();
        let tput = r.flows[0].throughput_at(r.end).mbps();
        assert!(tput > 2.0, "tput={tput}");
    }
}

#[test]
fn ccmc_aimd_ratio_bounded_over_exhaustive_grid() {
    // The paper's CCAC result (§5.4): no trace of bounded length lets two
    // AIMD flows starve with a 1-BDP buffer. Exhaustive over the discrete
    // grid at a short horizon.
    let m = ModelState::new(
        ModelConfig {
            rate: Rate::from_mbps(12.0),
            tau: Dur::from_millis(20),
            d_steps: 2,
            buffer: 40 * 1500,
            rm: Dur::from_millis(40),
            horizon: 6,
        },
        vec![
            Box::new(cca::NewReno::default_params()),
            Box::new(cca::NewReno::default_params()),
        ],
    );
    let out = search_max_ratio(&m, 6, SearchConfig::default());
    assert!(out.exhaustive, "must cover the whole grid");
    assert!(
        out.best_value.is_finite() && out.best_value < 1e6,
        "ratio={}",
        out.best_value
    );
}

#[test]
fn ccmc_underutilization_agrees_with_theorem2_direction() {
    // Cross-validation between the two adversaries: the model checker's
    // service-deferral adversary and Theorem 2's delay-emulation adversary
    // should both be able to hold a delay-convergent CCA's utilization
    // well below what a full-service trace achieves.
    use ccmc::search_min_utilization;
    let mk = || {
        ModelState::new(
            ModelConfig {
                rate: Rate::from_mbps(12.0),
                tau: Dur::from_millis(20),
                d_steps: 2,
                buffer: 400 * 1500,
                rm: Dur::from_millis(40),
                horizon: 6,
            },
            vec![Box::new(cca::Vegas::default_params()) as cca::BoxCca],
        )
    };
    let worst = search_min_utilization(&mk(), 6, SearchConfig::default());
    assert!(worst.exhaustive);
    // A full-service trace for comparison.
    let mut full = mk();
    while !full.done() {
        full.advance(ccmc::StepChoice {
            service_level: 2,
            split: 0,
        });
    }
    assert!(
        worst.best_value < full.utilization(),
        "adversary {:.3} vs full-service {:.3}",
        worst.best_value,
        full.utilization()
    );
}

#[test]
fn ccmc_beam_finds_unfairness_traces_for_both_families() {
    // Over short horizons the adversary biases delivery against one flow
    // for any CCA; the *unbounded vs bounded over time* distinction is
    // Theorem 1's, not a bounded-horizon property. Here we check the
    // search machinery produces meaningful witnesses for both families.
    let mk_model = |ccas: Vec<cca::BoxCca>| {
        ModelState::new(
            ModelConfig {
                rate: Rate::from_mbps(12.0),
                tau: Dur::from_millis(20),
                d_steps: 2,
                buffer: 40 * 1500,
                rm: Dur::from_millis(40),
                horizon: 14,
            },
            ccas,
        )
    };
    let cfg = SearchConfig::default();
    let reno = search_max_ratio(
        &mk_model(vec![
            Box::new(cca::NewReno::default_params()),
            Box::new(cca::NewReno::default_params()),
        ]),
        14,
        cfg,
    );
    let vegas = search_max_ratio(
        &mk_model(vec![
            Box::new(cca::Vegas::default_params()),
            Box::new(cca::Vegas::default_params()),
        ]),
        14,
        cfg,
    );
    // Both searches find a genuinely unfair trace, and neither diverges.
    assert!(
        vegas.best_value > 1.2 && vegas.best_value.is_finite(),
        "vegas={}",
        vegas.best_value
    );
    assert!(
        reno.best_value > 1.2 && reno.best_value.is_finite(),
        "reno={}",
        reno.best_value
    );
}

//! Integration: the full Theorem 1/2/3 machinery, end to end, across
//! `simcore` → `cca` → `netsim` → `starvation`.

use cca::factory;
use simcore::units::{Dur, Rate, Time};
use starvation::pigeonhole::{pigeonhole_search, PigeonholeConfig};
use starvation::theorem1::{run_theorem1, Theorem1Config};
use starvation::theorem2::{run_theorem2, Theorem2Config};
use starvation::theorem3::{run_theorem3, Theorem3Config};

fn vegas() -> cca::CcaFactory {
    factory(|| Box::new(cca::Vegas::default_params()))
}

#[test]
fn pigeonhole_pair_is_far_in_rate_close_in_delay() {
    let cfg = PigeonholeConfig {
        f: 0.5,
        s: 2.0,
        lambda: Rate::from_mbps(8.0),
        rm: Dur::from_millis(40),
        steps: 3,
        duration: Dur::from_secs(20),
    };
    let r = pigeonhole_search(&vegas(), cfg).expect("no pair found");
    // Step 1 of the proof: C2 >= (s/f)·C1 = 4·C1.
    assert!(r.c2.bytes_per_sec() / r.c1.bytes_per_sec() >= 3.9);
    // ...while the delay bands nearly coincide (within a few packet times).
    assert!(r.epsilon < 0.005, "eps={}", r.epsilon);
    // Both converged above Rm (the transmission-delay floor).
    assert!(r.rep1.d_min >= 0.040);
    assert!(r.rep2.d_min >= 0.040);
}

#[test]
fn theorem1_starves_vegas() {
    let report = run_theorem1(&vegas(), Theorem1Config::quick()).expect("construction failed");
    // The solo runs establish the rate gap...
    assert!(report.solo2_mbps / report.solo1_mbps >= 3.0);
    // ...and the emulated 2-flow run realizes a ratio >= s = 2 between two
    // identical CCAs on equal-Rm paths.
    assert!(report.starved(2.0), "ratio={}", report.ratio());
    // The η schedule respected its bounds on the planning grid.
    assert_eq!(report.plan.violations, 0);
    // Throughputs must roughly conserve the link (no phantom bandwidth).
    let cap = (report.pigeonhole.c1 + report.pigeonhole.c2).mbps();
    assert!(report.x1_mbps + report.x2_mbps <= 1.05 * cap.max(8.0 * cap));
}

#[test]
fn theorem1_starves_fast_tcp() {
    // FAST has the same equilibrium as Vegas; the construction must carry
    // over unchanged (§5.1: "Vegas and FAST can also be compromised in
    // similar ways").
    let f = factory(|| Box::new(cca::FastTcp::default_params()));
    let report = run_theorem1(&f, Theorem1Config::quick()).expect("construction failed");
    assert!(report.starved(2.0), "ratio={}", report.ratio());
}

#[test]
fn theorem1_starves_ledbat() {
    // LEDBAT's equilibrium is Rm + TARGET for every C — maximally
    // delay-convergent, so the construction applies directly.
    let f = factory(|| Box::new(cca::Ledbat::default_params()));
    let report = run_theorem1(&f, Theorem1Config::quick()).expect("construction failed");
    assert!(report.starved(2.0), "ratio={}", report.ratio());
}

#[test]
fn theorem2_underutilization() {
    let r = run_theorem2(&vegas(), Theorem2Config::quick());
    assert!(r.base_mbps > 10.0);
    // 20× link, same absolute rate → utilization near 1/20.
    assert!(r.utilization < 0.15, "util={}", r.utilization);
}

#[test]
fn theorem3_strong_model_iteration_terminates_with_pair() {
    let r = run_theorem3(&vegas(), Theorem3Config::quick());
    assert!(r.starving_pair.is_some(), "steps={:?}", r.steps.len());
    assert!(r.achieved_ratio >= 2.0);
    // The iteration's max delay is non-increasing (d_{k+1} = max(Rm, d_k − D)).
    for w in r.steps.windows(2) {
        assert!(w[1].max_delay <= w[0].max_delay + 1e-9);
    }
}

#[test]
fn definition4_separates_real_ccas_from_silly_ones() {
    // Definition 4 exists to exclude "cwnd = 10 always": it is trivially
    // starvation-free but not f-efficient for any fixed f as C grows,
    // while Vegas stays efficient.
    use netsim::{FlowConfig, LinkConfig, Network, SimConfig};
    use starvation::fairness::check_f_efficiency;

    let run = |cca: cca::BoxCca, mbps: f64| {
        let rate = Rate::from_mbps(mbps);
        let link = LinkConfig::ample_buffer(rate);
        let flow = FlowConfig::bulk(cca, Dur::from_millis(40));
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(15))).run();
        check_f_efficiency(&r.flows[0], rate, r.end, 10).best_tail_efficiency
    };

    let silly = run(Box::new(cca::ConstCwnd::ten_packets()), 48.0);
    let vegas = run(Box::new(cca::Vegas::default_params()), 48.0);
    // cwnd=10 at 48 Mbit/s, 40 ms: 10·1500·8/0.04 = 3 Mbit/s → ~6%.
    assert!(silly < 0.10, "silly efficiency={silly}");
    assert!(vegas > 0.80, "vegas efficiency={vegas}");

    // And the silly CCA's inefficiency worsens with C (f-efficiency fails
    // for every fixed f): doubling C halves its utilization.
    let silly_fast = run(Box::new(cca::ConstCwnd::ten_packets()), 96.0);
    assert!(silly_fast < 0.6 * silly, "silly={silly} silly_fast={silly_fast}");
}

#[test]
fn theorem1_emulation_d_star_below_trajectories() {
    // Property from the proof: d*(t) ≤ min(d̄1(t), d̄2(t)) on the plan grid.
    let report = run_theorem1(&vegas(), Theorem1Config::quick()).expect("construction failed");
    let plan = &report.plan;
    let end = plan.d_star.end_time();
    let mut t = Time::ZERO;
    let mut checked = 0;
    while t <= end {
        let ds = plan.d_star.value_at(t).unwrap();
        let e1 = plan.eta1.value_at(t).unwrap();
        let e2 = plan.eta2.value_at(t).unwrap();
        // η = d̄ − d* must be non-negative and within D.
        assert!(e1 >= -1e-9 && e2 >= -1e-9, "negative eta at {t:?}");
        assert!(e1 <= plan.d_bound + 1e-9 && e2 <= plan.d_bound + 1e-9);
        assert!(ds > 0.0);
        checked += 1;
        t += Dur::from_millis(250);
    }
    assert!(checked > 10);
}

//! Integration: the paper's §5 empirical starvation scenarios, built from
//! the public `netsim` + `cca` APIs (reduced durations; the full-length
//! versions live in the `repro` harness).

use netsim::{AckPolicy, FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};
use testkit::harness::{allegro_flow, allegro_link, copa_poisoned_flow, mbps};

// ---------- §5.1 Copa ----------

#[test]
fn copa_single_flow_self_starves_on_poisoned_path() {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let r = Network::new(SimConfig::new(
        link,
        vec![copa_poisoned_flow()],
        Dur::from_secs(20),
    ))
    .run();
    let tput = mbps(&r, 0);
    // Copa's own math caps it near 1/(δ·1 ms) = 24 Mbit/s on a 120 Mbit/s
    // link — an 80% capacity loss from a 1 ms measurement error.
    assert!(tput < 40.0, "tput={tput}");
    assert!(tput > 1.0);
}

#[test]
fn copa_two_flows_poisoned_one_starves() {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let clean = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60));
    let r = Network::new(SimConfig::new(
        link,
        vec![copa_poisoned_flow(), clean],
        Dur::from_secs(20),
    ))
    .run();
    let (poisoned, clean) = (mbps(&r, 0), mbps(&r, 1));
    assert!(
        clean / poisoned > 3.0,
        "poisoned={poisoned} clean={clean}"
    );
    assert!(clean > 60.0);
}

// ---------- §5.2 BBR ----------

#[test]
fn bbr_smaller_rtt_flow_starves_in_cwnd_limited_mode() {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let mk = |rm_ms: u64, seed: u64| {
        FlowConfig::bulk(Box::new(cca::Bbr::new(1500, seed)), Dur::from_millis(rm_ms))
            .with_jitter(Jitter::Random {
                max: Dur::from_millis(2),
                rng: Xoshiro256::new(seed * 7 + 1),
            })
    };
    let r = Network::new(SimConfig::new(
        link,
        vec![mk(40, 1), mk(80, 2)],
        Dur::from_secs(40),
    ))
    .run();
    let (small, large) = (mbps(&r, 0), mbps(&r, 1));
    assert!(large / small > 2.5, "small={small} large={large}");
    // cwnd-limited mode: the small-RTT flow's observed RTT far exceeds its
    // 40 ms propagation delay (≈ 2·Rm of the large flow's equilibrium).
    let a = Time(r.end.as_nanos() / 2);
    let mean = r.flows[0]
        .mean_rtt_in(a, r.end)
        .expect("the cwnd-limited flow keeps acking (slowly) through the window");
    assert!(mean > 0.080, "mean rtt={mean}");
}

// ---------- §5.3 PCC Vivace ----------

#[test]
fn vivace_quantized_acks_starve_that_flow() {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let rm = Dur::from_millis(60);
    let quantized = FlowConfig::bulk(Box::new(cca::Vivace::new(1)), rm)
        .with_transport(netsim::Transport::Datagram)
        .with_ack_policy(AckPolicy::Quantized {
            period: Dur::from_millis(60),
        });
    let clean = FlowConfig::bulk(Box::new(cca::Vivace::new(2)), rm).with_transport(netsim::Transport::Datagram);
    let r = Network::new(SimConfig::new(
        link,
        vec![quantized, clean],
        Dur::from_secs(20),
    ))
    .run();
    let (q, c) = (mbps(&r, 0), mbps(&r, 1));
    assert!(c / q > 2.5, "quantized={q} clean={c}");
    assert!(c > 40.0);
}

#[test]
fn vivace_fills_clean_link_alone() {
    // Control: the same CCA with clean ACKs is f-efficient on this path.
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let flow = FlowConfig::bulk(Box::new(cca::Vivace::new(2)), Dur::from_millis(60)).with_transport(netsim::Transport::Datagram);
    let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(20))).run();
    let half = Time(r.end.as_nanos() / 2);
    let tail = r.flows[0].throughput_over(half, r.end).mbps();
    assert!(tail > 80.0, "tail={tail}");
}

// ---------- §5.4 PCC Allegro ----------

#[test]
fn allegro_asymmetric_random_loss_starves_the_lossy_flow() {
    let r = Network::new(SimConfig::new(
        allegro_link(),
        vec![allegro_flow(0.02, 1), allegro_flow(0.0, 2)],
        Dur::from_secs(45),
    ))
    .run();
    let (lossy, clean) = (mbps(&r, 0), mbps(&r, 1));
    assert!(clean / lossy > 2.5, "lossy={lossy} clean={clean}");
}

#[test]
fn allegro_single_flow_tolerates_two_percent_loss() {
    // PCC's design goal: full utilization below the 5% threshold.
    let r = Network::new(SimConfig::new(
        allegro_link(),
        vec![allegro_flow(0.02, 5)],
        Dur::from_secs(30),
    ))
    .run();
    assert!(mbps(&r, 0) > 60.0, "tput={}", mbps(&r, 0));
}

#[test]
fn copa_competitive_mode_survives_reno() {
    // Extension of §5.1's context: real Copa has a TCP-competitive mode.
    // Against NewReno on a 1-BDP buffer, default-mode Copa collapses;
    // competitive mode wins back a meaningful share.
    let link = || LinkConfig::bdp_buffer(Rate::from_mbps(12.0), Dur::from_millis(40), 1.0);
    let run = |competitive: bool| {
        let copa = if competitive {
            cca::Copa::default_params().with_competitive_mode()
        } else {
            cca::Copa::default_params()
        };
        let f1 = FlowConfig::bulk(Box::new(copa), Dur::from_millis(40));
        let f2 = FlowConfig::bulk(
            Box::new(cca::NewReno::default_params()),
            Dur::from_millis(40),
        );
        let r = Network::new(SimConfig::new(link(), vec![f1, f2], Dur::from_secs(40))).run();
        mbps(&r, 0)
    };
    let default_share = run(false);
    let competitive_share = run(true);
    assert!(
        competitive_share > 2.0 * default_share,
        "default={default_share} competitive={competitive_share}"
    );
    assert!(competitive_share > 2.0, "competitive={competitive_share}");
}

// ---------- cross-cutting ----------

#[test]
fn starvation_needs_the_jitter_not_the_topology() {
    // Control for §5.1: remove the 1 ms poison and the same two Copa flows
    // share fairly.
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let mk = || FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60));
    let r = Network::new(SimConfig::new(link, vec![mk(), mk()], Dur::from_secs(20))).run();
    let (a, b) = (mbps(&r, 0), mbps(&r, 1));
    let ratio = a.max(b) / a.min(b).max(1e-9);
    assert!(ratio < 2.0, "a={a} b={b}");
    assert!(a + b > 90.0, "under-utilized: {}", a + b);
}

//! Metamorphic tests for the trace/audit subsystem: observing a simulation
//! must never change it.
//!
//! Three relations, each a full-result bitwise comparison:
//!
//! * tracing into any sink (Null or Ring) vs. not tracing;
//! * auditing vs. not auditing;
//! * an **audited** parallel sweep (`jobs = 4`) vs. the serial audited and
//!   serial unaudited sweeps of the same job list.
//!
//! Plus the mutation test for the auditor itself: a deliberately seeded
//! jitter-bound violation (via `SimConfig::with_audit_jitter_bound`) must
//! fail the audit *through the full simulation pipeline*, with the
//! offending event and its recent-event context in the panic message.

use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig, SimResult};
use simcore::rng::Xoshiro256;
use simcore::series::TimeSeries;
use simcore::trace::{NullSink, RingSink, TraceSink};
use simcore::units::{Dur, Rate};
use std::sync::Arc;

/// The determinism suite's stress scenario: two adaptive CCAs, shallow
/// buffer, per-flow jitter and Bernoulli loss — every event class fires.
fn stress_config(seed: u64) -> SimConfig {
    let link = LinkConfig::bdp_buffer(Rate::from_mbps(40.0), Dur::from_millis(50), 1.0);
    let f1 = FlowConfig::bulk(Box::new(cca::Bbr::new(1500, seed)), Dur::from_millis(50))
        .with_jitter(Jitter::Random {
            max: Dur::from_millis(5),
            rng: Xoshiro256::new(seed.wrapping_mul(3).wrapping_add(1)),
        })
        .with_loss(0.01, seed.wrapping_add(100));
    let f2 = FlowConfig::bulk(Box::new(cca::Cubic::default_params()), Dur::from_millis(80))
        .with_jitter(Jitter::Random {
            max: Dur::from_millis(3),
            rng: Xoshiro256::new(seed.wrapping_mul(5).wrapping_add(2)),
        })
        .with_loss(0.005, seed.wrapping_add(200));
    SimConfig::new(link, vec![f1, f2], Dur::from_secs(6))
}

fn series_bits(s: &TimeSeries) -> Vec<(u128, u64)> {
    s.points()
        .iter()
        .map(|&(t, v)| (t.as_nanos() as u128, v.to_bits()))
        .collect()
}

fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.end, b.end, "{what}: end");
    assert_eq!(a.utilization.to_bits(), b.utilization.to_bits(), "{what}: utilization");
    assert_eq!(a.flows.len(), b.flows.len(), "{what}: flow count");
    for (i, (fa, fb)) in a.flows.iter().zip(&b.flows).enumerate() {
        assert_eq!(fa.drops, fb.drops, "{what}: flow {i} drops");
        assert_eq!(fa.jitter_clamps, fb.jitter_clamps, "{what}: flow {i} jitter clamps");
        assert_eq!(fa.sent_bytes, fb.sent_bytes, "{what}: flow {i} sent");
        assert_eq!(fa.lost_bytes, fb.lost_bytes, "{what}: flow {i} lost");
        assert_eq!(
            fa.retransmitted_bytes, fb.retransmitted_bytes,
            "{what}: flow {i} retransmitted"
        );
        assert_eq!(fa.fast_retransmits, fb.fast_retransmits, "{what}: flow {i} fr");
        assert_eq!(fa.timeouts, fb.timeouts, "{what}: flow {i} timeouts");
        assert_eq!(series_bits(&fa.rtt), series_bits(&fb.rtt), "{what}: flow {i} rtt");
        assert_eq!(series_bits(&fa.cwnd), series_bits(&fb.cwnd), "{what}: flow {i} cwnd");
        assert_eq!(
            series_bits(&fa.delivered),
            series_bits(&fb.delivered),
            "{what}: flow {i} delivered"
        );
    }
}

#[test]
fn tracing_is_observationally_inert() {
    let plain = Network::new(stress_config(42)).run();
    // Sanity: the scenario exercises loss and retransmission paths.
    assert!(plain.flows.iter().any(|f| f.lost_bytes > 0));

    let null = Network::new(stress_config(42).with_trace(Arc::new(|| {
        Box::new(NullSink) as Box<dyn TraceSink>
    })))
    .run();
    assert_bit_identical(&plain, &null, "null-sink tracing");

    let ring = RingSink::new(1024);
    let probe = ring.clone();
    let ringed = Network::new(stress_config(42).with_trace(Arc::new(move || {
        Box::new(probe.clone()) as Box<dyn TraceSink>
    })))
    .run();
    assert_bit_identical(&plain, &ringed, "ring-sink tracing");
    assert!(ring.digest().total() > 0, "ring sink saw no events");
}

#[test]
fn auditing_is_observationally_inert() {
    let plain = Network::new(stress_config(7)).run();
    let audited = Network::new(stress_config(7).with_audit(true)).run();
    assert_bit_identical(&plain, &audited, "audit");
}

#[test]
fn audited_parallel_sweep_is_bit_identical_to_serial() {
    use starvation::sweep::{CcaSpec, ScenarioSpec, Sweep};

    let spec = ScenarioSpec::new("trace-metamorphic")
        .cca(CcaSpec::new("bbr", |s| Box::new(cca::Bbr::new(1500, s))))
        .cca(CcaSpec::new("copa", |_s| Box::new(cca::Copa::default_params())))
        .rates_mbps(&[24.0])
        .rtts_ms(&[40])
        .jitters_ms(&[0, 5])
        .seeds(&[1, 2])
        .duration(Dur::from_secs(3));
    let jobs = spec.expand();
    assert_eq!(jobs.len(), 8);

    let serial_plain = Sweep::new("tm-serial-plain").jobs(1).timing_off().run(jobs.clone());
    let serial_audit = Sweep::new("tm-serial-audit")
        .jobs(1)
        .timing_off()
        .audit(true)
        .run(jobs.clone());
    let parallel_audit = Sweep::new("tm-par-audit")
        .jobs(4)
        .timing_off()
        .audit(true)
        .run(jobs);

    assert_eq!(serial_audit.panics(), 0);
    assert_eq!(parallel_audit.panics(), 0);
    for ((p, s), par) in serial_plain
        .rows
        .iter()
        .zip(&serial_audit.rows)
        .zip(&parallel_audit.rows)
    {
        assert_eq!(p.label, s.label);
        assert_eq!(p.label, par.label);
        assert_bit_identical(p.result(), s.result(), &p.label);
        assert_bit_identical(p.result(), par.result(), &p.label);
    }
}

#[test]
fn auditor_catches_seeded_jitter_violation_with_context() {
    // Mutation test: declare a 1 ms jitter bound on a path whose real
    // jitter element delays up to 20 ms. The audit must fail on a
    // jitter-hold event and report the offending event plus its context.
    let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
    let flow = FlowConfig::bulk(Box::new(cca::ConstCwnd::new(10 * 1500)), Dur::from_millis(40))
        .with_jitter(Jitter::Random {
            max: Dur::from_millis(20),
            rng: Xoshiro256::new(5),
        })
        .with_audit_jitter_bound(Dur::from_millis(1));
    let cfg = SimConfig::new(link, vec![flow], Dur::from_secs(2)).with_audit(true);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Network::new(cfg).run()
    }));
    let err = match outcome {
        Ok(_) => panic!("under-declared jitter bound must fail the audit"),
        Err(e) => e,
    };
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("audit panic carries a message");
    assert!(msg.contains("jitter-bound"), "wrong invariant: {msg}");
    assert!(msg.contains("recent events"), "no event context: {msg}");
    assert!(msg.contains("jitter-hold"), "no offending event: {msg}");
}

#[test]
fn seeded_violation_surfaces_as_failed_sweep_row() {
    // The same seeded violation inside a sweep must fail only its row.
    use starvation::sweep::{Sweep, SweepJob};
    let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
    let rm = Dur::from_millis(40);
    let clean = SweepJob::new(
        "clean",
        SimConfig::new(
            link,
            vec![FlowConfig::bulk(Box::new(cca::ConstCwnd::new(10 * 1500)), rm)],
            Dur::from_secs(1),
        ),
    );
    let violating = SweepJob::new(
        "violating",
        SimConfig::new(
            link,
            vec![FlowConfig::bulk(Box::new(cca::ConstCwnd::new(10 * 1500)), rm)
                .with_jitter(Jitter::Random {
                    max: Dur::from_millis(20),
                    rng: Xoshiro256::new(5),
                })
                .with_audit_jitter_bound(Dur::from_millis(1))],
            Dur::from_secs(1),
        ),
    );
    let report = Sweep::new("audit-isolation")
        .jobs(2)
        .timing_off()
        .audit(true)
        .run(vec![clean.clone(), violating, clean]);
    assert_eq!(report.panics(), 1);
    assert!(report.rows[0].outcome.is_ok());
    match &report.rows[1].outcome {
        Err(msg) => assert!(msg.contains("jitter-bound"), "{msg}"),
        Ok(_) => panic!("violating row should have failed"),
    }
    assert!(report.rows[2].outcome.is_ok(), "violation must not poison later rows");
}

//! Digest stability: a job's store digest is a pure function of
//! (canonical bytes, seed, code tag) — nothing else.
//!
//! Same job ⇒ same digest across `Clone`, worker counts (jobs=1 vs
//! jobs=4 produce byte-identical stores), construction order, and process
//! restarts (a known-answer constant pins the function itself). Any
//! change to the canonical config, the seed, or the code tag ⇒ a
//! different digest — checked exhaustively on the demo grid and
//! probabilistically with the testkit property harness (shrinking
//! enabled).

use simcore::store::{Digest, CODE_TAG};
use starvation::sweep::{CcaSpec, GridPoint, ScenarioSpec, StoreOptions, Sweep, SweepJob};
use simcore::units::{Dur, Rate};
use std::path::Path;
use testkit::prop::{check, u64_in, vec_of};

fn grid() -> ScenarioSpec {
    ScenarioSpec::new("digest-suite")
        .cca(CcaSpec::new("const", |_s| {
            Box::new(cca::ConstCwnd::new(20 * 1500))
        }))
        .rates_mbps(&[12.0, 24.0])
        .rtts_ms(&[40])
        .jitters_ms(&[0, 5])
        .seeds(&[1, 2])
        .duration(Dur::from_secs(2))
}

#[test]
fn clone_preserves_the_digest() {
    for job in grid().expand() {
        let d = job.digest().expect("grid jobs are keyed");
        assert_eq!(job.clone().digest(), Some(d), "{}", job.label);
        // And expanding the same spec again reproduces it.
    }
    let a: Vec<_> = grid().expand().iter().map(|j| j.digest()).collect();
    let b: Vec<_> = grid().expand().iter().map(|j| j.digest()).collect();
    assert_eq!(a, b, "re-expansion is digest-stable");
}

fn store_files(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in std::fs::read_dir(dir).expect("dir readable") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).expect("under root").to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&path).expect("file readable")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

#[test]
fn serial_and_parallel_sweeps_write_identical_stores() {
    let dir1 = std::env::temp_dir().join("digest_stability_j1");
    let dir4 = std::env::temp_dir().join("digest_stability_j4");
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
    let _ = Sweep::new("digest-suite")
        .jobs(1)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&dir1));
    let _ = Sweep::new("digest-suite")
        .jobs(4)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&dir4));
    assert_eq!(
        store_files(&dir1),
        store_files(&dir4),
        "jobs=1 and jobs=4 stores are byte-identical: same digests, same rows"
    );
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn construction_order_does_not_reach_the_digest() {
    // Two grid points with the same coordinates, built through different
    // code paths, canonicalize (and therefore digest) identically.
    let direct = GridPoint {
        cca: "probe".into(),
        rate: Rate::from_mbps(40.0),
        rm: Dur::from_millis(40),
        jitter: Dur::from_millis(10),
        seed: 7,
    };
    let mut staged = GridPoint {
        seed: 7,
        jitter: Dur::from_millis(10),
        rm: Dur::from_millis(40),
        rate: Rate::from_mbps(10.0),
        cca: String::new(),
    };
    staged.rate = Rate::from_mbps(40.0);
    staged.cca.push_str("probe");
    let (dur, every) = (Dur::from_secs(2), Dur::from_millis(20));
    assert_eq!(direct.canonical(dur, every), staged.canonical(dur, every));

    // And the same canonical bytes through SweepJob::keyed in either
    // argument-construction order.
    let cfg = scenario_config();
    let j1 = SweepJob::keyed("a", direct.canonical(dur, every), 7, cfg.clone());
    let j2 = SweepJob::keyed("b", staged.canonical(dur, every), 7, cfg);
    assert_eq!(j1.digest(), j2.digest(), "labels and construction path are not digest inputs");
}

fn scenario_config() -> netsim::SimConfig {
    netsim::SimConfig::new(
        netsim::LinkConfig::ample_buffer(Rate::from_mbps(12.0)),
        vec![netsim::FlowConfig::bulk(
            Box::new(cca::ConstCwnd::new(20 * 1500)),
            Dur::from_millis(40),
        )],
        Dur::from_secs(1),
    )
}

/// Pins the digest function across process restarts (and accidental
/// algorithm changes): this constant was computed once and must never
/// drift. If a deliberate digest-function change lands, bump [`CODE_TAG`]
/// and recompute.
#[test]
fn known_answer_digest_is_stable_across_processes() {
    let canonical = "two-flow-jitter cca=probe rate_mbps=40 rtt_ns=40000000 \
                     jitter_ns=10000000 seed=7 duration_ns=2000000000 \
                     sample_ns=20000000 buffer=ample";
    let d = Digest::job(canonical.as_bytes(), 7, CODE_TAG);
    assert_eq!(d.hex(), "9e9a3340df5819b181f10de6ff6cf18c");
}

#[test]
fn any_input_change_changes_the_digest() {
    // Exhaustive on the demo grid: all 8 points have distinct digests,
    // and every single-axis perturbation moves the digest.
    let jobs = grid().expand();
    let mut digests: Vec<Digest> = jobs.iter().map(|j| j.digest().unwrap()).collect();
    digests.sort();
    digests.dedup();
    assert_eq!(digests.len(), jobs.len(), "no two grid points share a digest");

    for job in &jobs {
        let key = job.key.as_ref().unwrap();
        let base = job.digest().unwrap();
        // Seed change.
        assert_ne!(Digest::job(key.canonical.as_bytes(), key.seed + 1, CODE_TAG), base);
        // Code-tag change (what a simulator-version bump does).
        assert_ne!(Digest::job(key.canonical.as_bytes(), key.seed, "starvation-sim/2"), base);
        // Canonical-byte change.
        let mut altered = key.canonical.clone();
        altered.push('x');
        assert_ne!(Digest::job(altered.as_bytes(), key.seed, CODE_TAG), base);
    }
}

// ---------- testkit property harness (with shrinking) ----------

/// Same inputs ⇒ same digest; recomputed from scratch, not compared via
/// `Clone`.
fn prop_digest_is_deterministic(input: &(Vec<u64>, u64)) -> Result<(), String> {
    let (bytes, seed) = input;
    let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
    let a = Digest::job(&raw, *seed, CODE_TAG);
    let b = Digest::job(&raw.clone(), *seed, CODE_TAG);
    testkit::require_eq!(a, b);
    testkit::require_eq!(a.hex(), b.hex());
    Ok(())
}

/// Flipping any single canonical byte changes the digest.
fn prop_byte_change_changes_digest(input: &(Vec<u64>, u64, u64)) -> Result<(), String> {
    let (bytes, seed, flip_pos) = input;
    let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
    let base = Digest::job(&raw, *seed, CODE_TAG);
    let mut mutated = raw.clone();
    if mutated.is_empty() {
        return Ok(());
    }
    let pos = (*flip_pos as usize) % mutated.len();
    mutated[pos] ^= 0x01;
    let changed = Digest::job(&mutated, *seed, CODE_TAG);
    testkit::require!(
        changed != base,
        "flipping byte {pos} of {} canonical bytes left the digest at {}",
        raw.len(),
        base.hex()
    );
    Ok(())
}

/// Changing the seed alone changes the digest.
fn prop_seed_change_changes_digest(input: &(Vec<u64>, u64, u64)) -> Result<(), String> {
    let (bytes, seed, delta) = input;
    let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
    let other = seed.wrapping_add((*delta).max(1));
    let a = Digest::job(&raw, *seed, CODE_TAG);
    let b = Digest::job(&raw, other, CODE_TAG);
    testkit::require!(a != b, "seeds {seed} and {other} collide on {}", a.hex());
    Ok(())
}

/// Changing the code tag alone changes the digest.
fn prop_tag_change_changes_digest(input: &(Vec<u64>, u64)) -> Result<(), String> {
    let (bytes, seed) = input;
    let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
    let a = Digest::job(&raw, *seed, CODE_TAG);
    let b = Digest::job(&raw, *seed, "starvation-sim/next");
    testkit::require!(a != b, "tag change not reflected in {}", a.hex());
    Ok(())
}

/// Digest hex round-trips through parsing.
fn prop_hex_roundtrips(input: &(Vec<u64>, u64)) -> Result<(), String> {
    let (bytes, seed) = input;
    let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
    let d = Digest::job(&raw, *seed, CODE_TAG);
    testkit::require_eq!(Digest::from_hex(&d.hex()), Some(d));
    testkit::require_eq!(d.hex().len(), 32);
    Ok(())
}

#[test]
fn digest_properties_hold() {
    let bytes = || vec_of(u64_in(0, 256), 0, 64);
    check("prop_digest_is_deterministic", (bytes(), u64_in(0, u64::MAX)), prop_digest_is_deterministic);
    check(
        "prop_byte_change_changes_digest",
        (bytes(), u64_in(0, u64::MAX), u64_in(0, u64::MAX)),
        prop_byte_change_changes_digest,
    );
    check(
        "prop_seed_change_changes_digest",
        (bytes(), u64_in(0, u64::MAX), u64_in(0, 1 << 32)),
        prop_seed_change_changes_digest,
    );
    check("prop_tag_change_changes_digest", (bytes(), u64_in(0, u64::MAX)), prop_tag_change_changes_digest);
    check("prop_hex_roundtrips", (bytes(), u64_in(0, u64::MAX)), prop_hex_roundtrips);
}

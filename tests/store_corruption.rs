//! Store corruption: damaged entries are **detected, reported, and
//! transparently recomputed** — never silently served.
//!
//! Four damage modes, each applied to one entry of a completed 8-row
//! grid:
//!
//! * truncation — the payload is shorter than the header declares;
//! * bad header — the entry does not start with the `cas1` magic;
//! * stale code-version tag — the entry was written by a different
//!   simulator version (forged here via `Store::open_tagged`);
//! * checksum mismatch — a payload byte flipped at rest.
//!
//! For each, the next incremental run must report exactly one recomputed
//! row (with a reason naming the damage), execute exactly one simulation,
//! and leave the store byte-identical to its pre-corruption state.

use simcore::store::Store;
use starvation::sweep::{CcaSpec, ScenarioSpec, StoreOptions, Sweep};
use simcore::units::Dur;
use std::path::{Path, PathBuf};

fn grid() -> ScenarioSpec {
    ScenarioSpec::new("corruption-suite")
        .cca(CcaSpec::new("const", |_s| {
            Box::new(cca::ConstCwnd::new(20 * 1500))
        }))
        .rates_mbps(&[12.0, 24.0])
        .rtts_ms(&[40])
        .jitters_ms(&[0, 5])
        .seeds(&[1, 2])
        .duration(Dur::from_secs(2))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store_corruption_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Populate a store with the full grid; return the path of one entry and
/// its pristine bytes.
fn populated(dir: &Path) -> (PathBuf, Vec<u8>) {
    let report = Sweep::new("corruption-suite")
        .jobs(2)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(dir));
    assert_eq!(report.executed, 8);
    let store = Store::open(dir).expect("store opens");
    let digest = store.digests().expect("store scans")[0];
    let path = store.path_of(&digest);
    let bytes = std::fs::read(&path).expect("entry readable");
    (path, bytes)
}

/// Corrupt one entry via `damage`, then assert the recovery contract:
/// detected + reported (reason contains `expect_reason`), exactly one row
/// recomputed, store restored byte-identical, and the following run a
/// full cache hit.
fn assert_recovers(name: &str, expect_reason: &str, damage: impl Fn(&Path, &[u8])) {
    let dir = tmp(name);
    let (entry_path, pristine) = populated(&dir);
    damage(&entry_path, &pristine);
    assert_ne!(
        std::fs::read(&entry_path).expect("damaged entry readable"),
        pristine,
        "{name}: the damage must actually change the entry"
    );

    let recovery = Sweep::new("corruption-suite")
        .jobs(2)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&dir));
    assert!(!recovery.aborted);
    assert_eq!(recovery.executed, 1, "{name}: exactly the damaged row re-runs");
    assert_eq!(recovery.cached, 7, "{name}: intact rows stay cached");
    assert_eq!(recovery.recomputed.len(), 1, "{name}: the damage is reported");
    let (label, reason) = &recovery.recomputed[0];
    assert!(
        reason.contains(expect_reason),
        "{name}: reason for {label} should mention {expect_reason:?}, got {reason:?}"
    );

    assert_eq!(
        std::fs::read(&entry_path).expect("recomputed entry readable"),
        pristine,
        "{name}: recomputation restores the exact original bytes"
    );
    let again = Sweep::new("corruption-suite")
        .jobs(2)
        .timing_off()
        .run_incremental(grid().expand(), &StoreOptions::new(&dir));
    assert_eq!(again.executed, 0, "{name}: the store is whole again");
    assert!(again.recomputed.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_detected_and_recomputed() {
    assert_recovers("truncated", "truncated", |path, pristine| {
        // Keep the header line, cut the payload short.
        let header_end = pristine.iter().position(|&b| b == b'\n').expect("header line") + 1;
        let cut = header_end + (pristine.len() - header_end) / 2;
        std::fs::write(path, &pristine[..cut]).expect("truncate entry");
    });
}

#[test]
fn bad_header_is_detected_and_recomputed() {
    assert_recovers("bad_header", "bad header", |path, pristine| {
        let mut bytes = pristine.to_vec();
        bytes[..4].copy_from_slice(b"XXXX");
        std::fs::write(path, &bytes).expect("clobber header");
    });
}

#[test]
fn stale_code_tag_is_detected_and_recomputed() {
    assert_recovers("stale_tag", "stale code tag", |path, pristine| {
        // Re-write the same payload as an older simulator version would
        // have: same digest location, same length, old tag in the header.
        let dir = path
            .parent()
            .and_then(Path::parent)
            .expect("entry lives at <store>/<shard>/<digest>");
        let stale = Store::open_tagged(dir, "starvation-sim/0").expect("stale-tagged store");
        let payload_start = pristine.iter().position(|&b| b == b'\n').expect("header") + 1;
        let digest = simcore::store::Digest::from_hex(
            path.file_name().expect("digest file name").to_str().expect("utf-8 name"),
        )
        .expect("entry name is a digest");
        stale.write(&digest, &pristine[payload_start..]).expect("stale write");
    });
}

#[test]
fn flipped_payload_byte_is_detected_and_recomputed() {
    assert_recovers("bit_flip", "checksum mismatch", |path, pristine| {
        let mut bytes = pristine.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20; // same length, different content
        std::fs::write(path, &bytes).expect("flip byte");
    });
}

#[test]
fn undecodable_row_payload_is_detected_and_recomputed() {
    // A store-valid entry (good header, tag, checksum) whose payload is
    // not a RowSummary: the sweep layer's own validation catches it.
    assert_recovers("undecodable", "undecodable entry", |path, _pristine| {
        let dir = path
            .parent()
            .and_then(Path::parent)
            .expect("entry lives at <store>/<shard>/<digest>");
        let store = Store::open(dir).expect("store opens");
        let digest = simcore::store::Digest::from_hex(
            path.file_name().expect("digest file name").to_str().expect("utf-8 name"),
        )
        .expect("entry name is a digest");
        store.write(&digest, b"not a row summary\n").expect("rewrite entry");
    });
}

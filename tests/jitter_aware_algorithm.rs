//! Integration: §6.3's Algorithm 1 (the jitter-aware CCA) and §6.2's
//! AIMD-on-delay conjecture, exercised on the packet-level emulator.

use cca::delay_aimd::DelayAimdConfig;
use cca::jitter_aware::JitterAwareConfig;
use cca::BoxCca;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};
use starvation::fairness::check_s_fairness;
use starvation::merit::{exponential_merit, vegas_family_merit};
use testkit::harness::asymmetric_jitter_run;

fn jitter_aware(a_mbps: f64) -> BoxCca {
    let mut cfg = JitterAwareConfig::example(Dur::from_millis(50));
    cfg.a = Rate::from_mbps(a_mbps);
    Box::new(cca::JitterAware::new(cfg))
}

#[test]
fn algorithm1_is_s_fair_under_designed_jitter() {
    let r = asymmetric_jitter_run(|| jitter_aware(0.4), 60);
    // Definition 2, checked empirically: a time exists after which the
    // ratio stays below s (with AIMD-sawtooth slack).
    let report = check_s_fairness(&r.flows[0], &r.flows[1], r.end, 2.0 * 1.8, 30);
    assert!(
        report.fair_after.is_some(),
        "final ratio {:.2}",
        report.final_ratio
    );
}

#[test]
fn vegas_is_not_s_fair_under_the_same_jitter() {
    let r = asymmetric_jitter_run(|| Box::new(cca::Vegas::default_params()), 60);
    let report = check_s_fairness(&r.flows[0], &r.flows[1], r.end, 3.0, 30);
    // Vegas's ratio keeps exceeding 3 in the tail of the run.
    assert!(
        report.fair_after.is_none() || report.final_ratio > 3.0,
        "vegas unexpectedly fair: final={:.2}",
        report.final_ratio
    );
}

#[test]
fn algorithm1_efficient_despite_jitter() {
    // Theorem 2's flip side: because Algorithm 1 maintains ≥ D of delay,
    // jitter ≤ D cannot trick it into under-utilization.
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let flow = FlowConfig::bulk(jitter_aware(0.4), Dur::from_millis(50)).with_jitter(
        Jitter::Random {
            max: Dur::from_millis(10),
            rng: Xoshiro256::new(13),
        },
    );
    let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(60))).run();
    let half = Time(r.end.as_nanos() / 2);
    let tail = r.flows[0].throughput_over(half, r.end).mbps();
    assert!(tail > 20.0, "tail={tail}");
}

#[test]
fn merit_math_matches_paper_examples() {
    let rmax = Dur::from_millis(100);
    let rm = Dur::from_millis(0);
    let d = Dur::from_millis(10);
    // Eq. 2 at s = 2: 2^((100−10)/10) = 512 ≈ the paper's "2^10 ≈ 10^3".
    assert!((exponential_merit(rmax, rm, d, 2.0) - 512.0).abs() < 1e-6);
    // Eq. 1 is linear: (100/10)·(1 − 1/2) = 5.
    assert!((vegas_family_merit(rmax, rm, d, 2.0) - 5.0).abs() < 1e-9);
    // s = 4 → ≈ 2.6e5 (paper: "≈ 10^6" with their rounding).
    assert!(exponential_merit(rmax, rm, d, 4.0) > 1e5);
}

#[test]
fn algorithm1_supported_rate_range_is_exponential() {
    let cfg = JitterAwareConfig::example(Dur::from_millis(50));
    // merit = µ+/µ− = s^((Rmax−Rm−D)/D) = 2^9.
    assert!((cfg.merit() - 512.0).abs() / 512.0 < 1e-9);
    // µ+ covers the 40 Mbit/s links the tests run on.
    assert!(cfg.mu_plus().mbps() > 40.0);
}

#[test]
fn delay_aimd_survives_designed_jitter_and_shares() {
    // §6.2's conjectured design: oscillations larger than the jitter.
    let mk = || -> BoxCca {
        Box::new(cca::DelayAimd::new(DelayAimdConfig::for_jitter(
            Dur::from_millis(50),
            Dur::from_millis(10),
        )))
    };
    let r = asymmetric_jitter_run(mk, 60);
    let a = r.flows[0].throughput_at(r.end).mbps();
    let b = r.flows[1].throughput_at(r.end).mbps();
    let ratio = a.max(b) / a.min(b).max(1e-9);
    assert!(ratio < 4.0, "a={a} b={b}");
    // Efficient: the pair uses most of the link.
    assert!(a + b > 25.0, "sum={}", a + b);
}

#[test]
fn delay_aimd_oscillates_instead_of_converging() {
    // The design works *because* it is not delay-convergent to a tight
    // band: its RTT sweeps more than the jitter bound D = 10 ms.
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let flow = FlowConfig::bulk(
        Box::new(cca::DelayAimd::new(DelayAimdConfig::for_jitter(
            Dur::from_millis(50),
            Dur::from_millis(10),
        ))),
        Dur::from_millis(50),
    );
    let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(40))).run();
    let half = Time(r.end.as_nanos() / 2);
    let (lo, hi) = r.flows[0]
        .rtt_range_in(half, r.end)
        .expect("a saturating Vegas flow samples RTTs throughout the second half");
    assert!(
        hi - lo > 0.010,
        "oscillation {:.1} ms not > jitter 10 ms",
        (hi - lo) * 1e3
    );
}

//! The theorem's boundary as a phase diagram.
//!
//! Theorem 1 says starvation is constructible whenever the non-congestive
//! delay bound exceeds twice the CCA's equilibrium oscillation
//! (`D > 2·δ_max`), and §6.2 argues the converse design direction:
//! oscillate *more* than the jitter and the ambiguity can be out-signaled.
//!
//! [`cca::DelayAimd`] makes the oscillation a dial: its RTT sawtooth sweeps
//! `[q_lo, q_hi]`, so `δ ≈ q_hi − q_lo`. We sweep the oscillation width
//! `Δ` against the actual jitter bound `D` (random jitter on one of two
//! flows' paths) and record the throughput ratio in each cell. The
//! expected shape: fair (ratio ≈ 1) below the diagonal where `Δ ≫ D`,
//! increasingly unfair above it — the paper's inequality, visible as a
//! phase boundary.
//!
//! (Random jitter is a *weaker* adversary than the theorem's
//! non-deterministic one, so the transition is gradual rather than sharp —
//! the theorem guarantees a worst case, and §5 shows even benign-looking
//! paths realize it.)

use crate::table::{fnum, TextTable};
use cca::delay_aimd::DelayAimdConfig;
use cca::BoxCca;
#[cfg(test)]
use netsim::Network;
use netsim::{FlowConfig, Jitter, LinkConfig, SimConfig, SimResult};
use simcore::par;
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};
use starvation::sweep::{Sweep, SweepJob};
use std::fmt;

/// One cell of the phase diagram.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryCell {
    /// The CCA's designed oscillation width `Δ = q_hi − q_lo`, ms.
    pub osc_ms: u64,
    /// The path's jitter bound `D`, ms.
    pub jitter_ms: u64,
    /// Measured throughput ratio between the two flows.
    pub ratio: f64,
}

/// The full sweep.
pub struct BoundaryReport {
    /// Row-major cells (oscillation outer, jitter inner).
    pub cells: Vec<BoundaryCell>,
    /// The oscillation values swept, ms.
    pub osc_values: Vec<u64>,
    /// The jitter values swept, ms.
    pub jitter_values: Vec<u64>,
}

/// The scenario behind one cell: two delay-AIMD flows with oscillation
/// width `Δ = osc_ms`, random jitter `D = jitter_ms` on the first path.
fn cell_config(osc_ms: u64, jitter_ms: u64, secs: u64) -> SimConfig {
    let rm = Dur::from_millis(50);
    let mk = || -> BoxCca {
        // Sawtooth sweeps [Δ/5, Δ/5 + Δ] of queueing delay: width Δ.
        Box::new(cca::DelayAimd::new(DelayAimdConfig {
            rm,
            q_hi: Dur::from_millis(osc_ms / 5 + osc_ms),
            q_lo: Dur::from_millis(osc_ms / 5),
            a: Rate::from_mbps(0.5),
            b: 0.7,
        }))
    };
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let jittered = FlowConfig::bulk(mk(), rm).with_jitter(Jitter::Random {
        max: Dur::from_millis(jitter_ms),
        rng: Xoshiro256::new(7 + osc_ms * 31 + jitter_ms),
    });
    let clean = FlowConfig::bulk(mk(), rm);
    SimConfig::new(link, vec![jittered, clean], Dur::from_secs(secs))
}

/// Second-half throughput ratio of a finished cell run.
fn cell_from(osc_ms: u64, jitter_ms: u64, r: &SimResult) -> BoundaryCell {
    let half = Time(r.end.as_nanos() / 2);
    let a = r.flows[0].throughput_over(half, r.end).mbps();
    let b = r.flows[1].throughput_over(half, r.end).mbps();
    BoundaryCell {
        osc_ms,
        jitter_ms,
        ratio: a.max(b) / a.min(b).max(1e-9),
    }
}

/// One cell, built and run serially (unit tests probe single cells).
#[cfg(test)]
fn cell(osc_ms: u64, jitter_ms: u64, secs: u64) -> BoundaryCell {
    let r = Network::new(cell_config(osc_ms, jitter_ms, secs)).run();
    cell_from(osc_ms, jitter_ms, &r)
}

/// Sweep the `Δ × D` grid using every available core.
pub fn run(quick: bool) -> BoundaryReport {
    run_with(quick, par::available_jobs())
}

/// Sweep the `Δ × D` grid across `jobs` workers on the shared engine.
/// Cell order (oscillation outer, jitter inner) is preserved at any worker
/// count.
pub fn run_with(quick: bool, jobs: usize) -> BoundaryReport {
    let secs = if quick { 30 } else { 60 };
    let osc_values = vec![2u64, 5, 10, 20, 40];
    let jitter_values = vec![2u64, 5, 10, 20, 40];
    let grid: Vec<(u64, u64)> = osc_values
        .iter()
        .flat_map(|&o| jitter_values.iter().map(move |&j| (o, j)))
        .collect();
    let job_list: Vec<SweepJob> = grid
        .iter()
        .map(|&(o, j)| SweepJob::new(format!("osc{o}/jit{j}"), cell_config(o, j, secs)))
        .collect();
    let report = Sweep::new("boundary").jobs(jobs).run(job_list);
    let cells: Vec<BoundaryCell> = grid
        .iter()
        .zip(&report.rows)
        .map(|(&(o, j), row)| cell_from(o, j, row.result()))
        .collect();
    BoundaryReport {
        cells,
        osc_values,
        jitter_values,
    }
}

impl BoundaryReport {
    /// Ratio at a given cell.
    pub fn ratio_at(&self, osc_ms: u64, jitter_ms: u64) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.osc_ms == osc_ms && c.jitter_ms == jitter_ms)
            .map(|c| c.ratio)
    }

    /// Matrix rendering: rows = oscillation, columns = jitter.
    pub fn table(&self) -> TextTable {
        let mut header: Vec<String> = vec!["osc Δ \\ jitter D".into()];
        header.extend(self.jitter_values.iter().map(|j| format!("{j} ms")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&header_refs);
        for &o in &self.osc_values {
            let mut row = vec![format!("{o} ms")];
            for &j in &self.jitter_values {
                row.push(fnum(self.ratio_at(o, j).unwrap_or(f64::NAN)));
            }
            t.row(&row);
        }
        t
    }
}

impl fmt::Display for BoundaryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Theorem 1's boundary as a phase diagram — throughput ratio of two\n\
             delay-AIMD flows (oscillation Δ) with jitter D on one path:"
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "fair below the diagonal (Δ ≳ D), unfair above it (D ≫ Δ) — the\n\
             paper's `starve unless δ > D/2` inequality, measured."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillation_dominating_jitter_is_fair() {
        let c = cell(40, 2, 30);
        assert!(c.ratio < 2.0, "Δ=40,D=2: ratio={}", c.ratio);
    }

    #[test]
    fn jitter_dominating_oscillation_is_unfair() {
        let c = cell(2, 40, 30);
        assert!(c.ratio > 3.0, "Δ=2,D=40: ratio={}", c.ratio);
    }

    #[test]
    fn boundary_is_monotone_along_the_extremes() {
        // Fixing a small oscillation, growing jitter makes things worse.
        let lo = cell(5, 2, 30);
        let hi = cell(5, 40, 30);
        assert!(hi.ratio > lo.ratio, "lo={} hi={}", lo.ratio, hi.ratio);
    }
}

//! `repro report` — the query layer over the content-addressed result
//! store.
//!
//! A sweep persists one [`RowSummary`] per completed grid point (see
//! `simcore::store` and `starvation::sweep`). This module scans a store,
//! decodes every row it holds, filters by grid coordinates
//! (CCA / jitter / rate / seed), and renders the selection as a text
//! table, CSV, or JSON-lines — in the spirit of s2n-quic-sim's
//! filter/query reporting. Output order is canonical (sorted by grid
//! coordinates, then label), so a report over a given store is
//! byte-identical no matter how the store was produced: fresh serial run,
//! parallel run, or a killed-and-resumed sweep. The CI smoke job relies
//! on exactly that property.
//!
//! Undecodable entries are *reported* (counted, listed on stderr by the
//! CLI), never silently included or trusted.
//!
//! [`RowSummary`]: starvation::sweep::RowSummary

use crate::table::{fnum, TextTable};
use simcore::store::Store;
use starvation::sweep::{RowSummary, SweepAggregate};
use std::path::Path;

/// Grid-coordinate filters; `None` selects everything on that axis.
#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Keep rows whose CCA slug matches exactly.
    pub cca: Option<String>,
    /// Keep rows with this jitter bound (ms).
    pub jitter_ms: Option<f64>,
    /// Keep rows with this bottleneck rate (Mbit/s).
    pub rate_mbps: Option<f64>,
    /// Keep rows with this seed.
    pub seed: Option<u64>,
}

impl Query {
    /// Does `row` pass every set filter? Rows without grid coordinates
    /// (scenario-file sweeps) pass only an unfiltered query — they have
    /// no axes to match on.
    pub fn matches(&self, row: &RowSummary) -> bool {
        let Some(g) = &row.grid else {
            return self.cca.is_none()
                && self.jitter_ms.is_none()
                && self.rate_mbps.is_none()
                && self.seed.is_none();
        };
        self.cca.as_deref().is_none_or(|c| c == g.cca)
            && self.jitter_ms.is_none_or(|j| j == g.jitter_ms)
            && self.rate_mbps.is_none_or(|r| r == g.rate_mbps)
            && self.seed.is_none_or(|s| s == g.seed)
    }
}

/// A scanned store: the decodable rows (canonically ordered) plus the
/// entries that failed to decode.
pub struct Scan {
    /// Every valid row in the store, sorted by grid coordinates then
    /// label.
    pub rows: Vec<RowSummary>,
    /// Entries that exist but did not validate or parse: (digest hex,
    /// reason). Surfaced, never served.
    pub invalid: Vec<(String, String)>,
}

/// Read every row out of the store at `dir`. Fails only when the store
/// directory itself is unreadable; per-entry problems land in
/// [`Scan::invalid`].
pub fn scan(dir: &Path) -> Result<Scan, String> {
    let store = Store::open(dir).map_err(|e| format!("cannot open store {}: {e}", dir.display()))?;
    let digests = store
        .digests()
        .map_err(|e| format!("cannot scan store {}: {e}", dir.display()))?;
    let mut rows = Vec::new();
    let mut invalid = Vec::new();
    for d in digests {
        match store.read(&d) {
            Ok(bytes) => match RowSummary::from_store_bytes(&bytes) {
                Ok(row) => rows.push(row),
                Err(e) => invalid.push((d.hex(), e)),
            },
            Err(e) => invalid.push((d.hex(), e.to_string())),
        }
    }
    sort_rows(&mut rows);
    Ok(Scan { rows, invalid })
}

/// Canonical report order: grid coordinates (cca, rate, rtt, jitter,
/// seed), then label — total and deterministic, so report bytes depend
/// only on store *contents*.
fn sort_rows(rows: &mut [RowSummary]) {
    rows.sort_by(|a, b| {
        let key = |r: &RowSummary| {
            r.grid.as_ref().map(|g| {
                (
                    g.cca.clone(),
                    g.rate_mbps.to_bits(),
                    g.rtt_ms.to_bits(),
                    g.jitter_ms.to_bits(),
                    g.seed,
                )
            })
        };
        key(a).cmp(&key(b)).then_with(|| a.label.cmp(&b.label))
    });
}

/// Apply `q`, preserving canonical order.
pub fn filter(rows: Vec<RowSummary>, q: &Query) -> Vec<RowSummary> {
    rows.into_iter().filter(|r| q.matches(r)).collect()
}

/// CSV header used by [`to_csv`].
pub const CSV_HEADER: &str = "label,cca,rate_mbps,rtt_ms,jitter_ms,seed,utilization,jain,\
flow,throughput_mbps,second_half_mbps,delivered,sent,lost,drops,jitter_clamps,fct_s,starved_s";

/// One CSV line per flow, row-level columns repeated — the layout R /
/// pandas pivot naturally. Floats render shortest-round-trip, so the
/// bytes are a pure function of the rows.
pub fn to_csv(rows: &[RowSummary]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in rows {
        let (cca, rate, rtt, jitter, seed) = match &r.grid {
            Some(g) => (
                g.cca.clone(),
                format!("{}", g.rate_mbps),
                format!("{}", g.rtt_ms),
                format!("{}", g.jitter_ms),
                format!("{}", g.seed),
            ),
            None => (String::new(), String::new(), String::new(), String::new(), String::new()),
        };
        for f in &r.flows {
            let fct = f.fct_secs.map(|v| format!("{v}")).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{fct},{}\n",
                r.label,
                cca,
                rate,
                rtt,
                jitter,
                seed,
                r.utilization,
                r.jain,
                f.id,
                f.throughput_mbps,
                f.second_half_mbps,
                f.delivered,
                f.sent,
                f.lost,
                f.drops,
                f.jitter_clamps,
                f.starved_secs,
            ));
        }
    }
    out
}

/// JSON-lines: one object per row, flows nested. Field order is fixed,
/// floats shortest-round-trip — byte-stable for a given store content.
pub fn to_json(rows: &[RowSummary]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!("{{\"label\":\"{}\"", esc(&r.label)));
        if let Some(g) = &r.grid {
            out.push_str(&format!(
                ",\"cca\":\"{}\",\"rate_mbps\":{},\"rtt_ms\":{},\"jitter_ms\":{},\"seed\":{}",
                esc(&g.cca),
                g.rate_mbps,
                g.rtt_ms,
                g.jitter_ms,
                g.seed
            ));
        }
        out.push_str(&format!(",\"utilization\":{},\"jain\":{},\"flows\":[", r.utilization, r.jain));
        for (i, f) in r.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let fct = f.fct_secs.map(|v| format!("{v}")).unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "{{\"id\":{},\"throughput_mbps\":{},\"second_half_mbps\":{},\"delivered\":{},\
                 \"sent\":{},\"lost\":{},\"drops\":{},\"jitter_clamps\":{},\"fct_s\":{fct},\
                 \"starved_s\":{}}}",
                f.id,
                f.throughput_mbps,
                f.second_half_mbps,
                f.delivered,
                f.sent,
                f.lost,
                f.drops,
                f.jitter_clamps,
                f.starved_secs,
            ));
        }
        out.push_str("]}\n");
    }
    out
}

/// Human-readable table over the selection.
pub fn to_table(rows: &[RowSummary]) -> TextTable {
    let mut t = TextTable::new(&[
        "label",
        "cca",
        "rate (Mbit/s)",
        "jitter (ms)",
        "seed",
        "util",
        "jain",
        "flow tput (Mbit/s)",
    ]);
    for r in rows {
        let (cca, rate, jitter, seed) = match &r.grid {
            Some(g) => (
                g.cca.clone(),
                fnum(g.rate_mbps),
                fnum(g.jitter_ms),
                g.seed.to_string(),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        let tputs: Vec<String> = r.flows.iter().map(|f| fnum(f.throughput_mbps)).collect();
        t.row(&[
            r.label.clone(),
            cca,
            rate,
            jitter,
            seed,
            fnum(r.utilization),
            fnum(r.jain),
            tputs.join(" / "),
        ]);
    }
    t
}

/// Fold the selection into the streaming population aggregate
/// (throughput / starvation / Jain histograms).
pub fn aggregate(rows: &[RowSummary]) -> SweepAggregate {
    let mut agg = SweepAggregate::default();
    for r in rows {
        agg.fold(r);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use starvation::sweep::{StoreOptions, Sweep};
    use std::path::PathBuf;

    fn tmp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("repro_report_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populated_store(name: &str) -> PathBuf {
        let dir = tmp_store(name);
        let s = crate::exp_sweep::spec(true);
        let inc = Sweep::new(&s.name)
            .jobs(2)
            .timing_off()
            .run_incremental(s.expand(), &StoreOptions::new(&dir));
        assert!(!inc.aborted);
        dir
    }

    #[test]
    fn scan_filters_and_renders_deterministically() {
        let dir = populated_store("filters");
        let scan = scan(&dir).expect("store scans");
        assert_eq!(scan.rows.len(), 8);
        assert!(scan.invalid.is_empty());

        let copa = filter(scan.rows.clone(), &Query { cca: Some("copa".into()), ..Query::default() });
        assert_eq!(copa.len(), 4);
        assert!(copa.iter().all(|r| r.grid.as_ref().unwrap().cca == "copa"));

        let jittered = filter(scan.rows.clone(), &Query { jitter_ms: Some(10.0), ..Query::default() });
        assert_eq!(jittered.len(), 4);

        let both = filter(
            scan.rows.clone(),
            &Query { cca: Some("bbr".into()), rate_mbps: Some(40.0), ..Query::default() },
        );
        assert_eq!(both.len(), 2);

        // Scanning again yields byte-identical CSV and JSON.
        let rescan = super::scan(&dir).expect("rescan");
        assert_eq!(to_csv(&scan.rows), to_csv(&rescan.rows));
        assert_eq!(to_json(&scan.rows), to_json(&rescan.rows));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_has_one_line_per_flow_plus_header() {
        let dir = populated_store("csv");
        let scan = scan(&dir).expect("store scans");
        let csv = to_csv(&scan.rows);
        // 8 rows × 2 flows + header.
        assert_eq!(csv.lines().count(), 17, "{csv}");
        assert!(csv.starts_with(CSV_HEADER));
        let json = to_json(&scan.rows);
        assert_eq!(json.lines().count(), 8);
        assert!(json.lines().all(|l| l.starts_with("{\"label\":\"") && l.ends_with("]}")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aggregate_over_selection_counts_flows() {
        let dir = populated_store("agg");
        let scan = scan(&dir).expect("store scans");
        let agg = aggregate(&scan.rows);
        assert_eq!(agg.rows, 8);
        assert_eq!(agg.flows, 16);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

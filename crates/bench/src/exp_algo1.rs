//! §6.3 — Algorithm 1 (the jitter-aware CCA) avoids starvation where the
//! Vegas family starves.
//!
//! Scenario: a 40 Mbit/s, 50 ms link shared by two flows; flow 1's path has
//! up to 10 ms of random non-congestive jitter, flow 2's path is clean —
//! exactly the asymmetric-ambiguity situation that starves delay-convergent
//! CCAs. Algorithm 1 is configured with `D` = 10 ms, `s` = 2, so its delay
//! oscillations are designed to dominate the jitter; the theory predicts it
//! stays `s`-fair. Vegas under the same jitter starves. A single-flow run
//! checks Algorithm 1's efficiency.

use crate::table::{fnum, TextTable};
use cca::jitter_aware::JitterAwareConfig;
use cca::BoxCca;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate};
use std::fmt;

/// Outcome of the Algorithm 1 evaluation.
pub struct Algo1Report {
    /// Two jitter-aware flows: (jittered path, clean path) Mbit/s.
    pub algo1: (f64, f64),
    /// Two Vegas flows in the same scenario.
    pub vegas: (f64, f64),
    /// Single jitter-aware flow under jitter: achieved Mbit/s (efficiency).
    pub single_mbps: f64,
    /// The link rate.
    pub link_mbps: f64,
    /// The `s` Algorithm 1 was configured for.
    pub s: f64,
}

fn scenario(mk: impl Fn(u64) -> BoxCca, secs: u64) -> (f64, f64) {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let rm = Dur::from_millis(50);
    let jittered = FlowConfig::bulk(mk(1), rm).with_jitter(Jitter::Random {
        max: Dur::from_millis(10),
        rng: Xoshiro256::new(11),
    });
    let clean = FlowConfig::bulk(mk(2), rm);
    let r = Network::new(SimConfig::new(
        link,
        vec![jittered, clean],
        Dur::from_secs(secs),
    ))
    .run();
    let half = simcore::units::Time(r.end.as_nanos() / 2);
    (
        r.flows[0].throughput_over(half, r.end).mbps(),
        r.flows[1].throughput_over(half, r.end).mbps(),
    )
}

fn jitter_aware(_seed: u64) -> BoxCca {
    let mut cfg = JitterAwareConfig::example(Dur::from_millis(50));
    cfg.mu_minus = Rate::from_mbps(0.1);
    cfg.a = Rate::from_mbps(0.4);
    Box::new(cca::JitterAware::new(cfg))
}

/// Run all three scenarios.
pub fn run(quick: bool) -> Algo1Report {
    let secs = if quick { 40 } else { 120 };
    let algo1 = scenario(jitter_aware, secs);
    let vegas = scenario(|_| Box::new(cca::Vegas::default_params()), secs);

    // Single-flow efficiency under jitter.
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let flow = FlowConfig::bulk(jitter_aware(1), Dur::from_millis(50)).with_jitter(
        Jitter::Random {
            max: Dur::from_millis(10),
            rng: Xoshiro256::new(13),
        },
    );
    let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(secs))).run();
    let half = simcore::units::Time(r.end.as_nanos() / 2);
    let single_mbps = r.flows[0].throughput_over(half, r.end).mbps();

    Algo1Report {
        algo1,
        vegas,
        single_mbps,
        link_mbps: 40.0,
        s: 2.0,
    }
}

impl Algo1Report {
    fn ratio(pair: (f64, f64)) -> f64 {
        let (a, b) = pair;
        a.max(b) / a.min(b).max(1e-9)
    }

    /// Algorithm 1's two-flow ratio.
    pub fn algo1_ratio(&self) -> f64 {
        Self::ratio(self.algo1)
    }

    /// Vegas's two-flow ratio in the same scenario.
    pub fn vegas_ratio(&self) -> f64 {
        Self::ratio(self.vegas)
    }

    /// Summary table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "CCA",
            "jittered flow (Mbit/s)",
            "clean flow (Mbit/s)",
            "ratio",
        ]);
        t.row(&[
            "Algorithm 1".into(),
            fnum(self.algo1.0),
            fnum(self.algo1.1),
            fnum(self.algo1_ratio()),
        ]);
        t.row(&[
            "Vegas".into(),
            fnum(self.vegas.0),
            fnum(self.vegas.1),
            fnum(self.vegas_ratio()),
        ]);
        t
    }
}

impl fmt::Display for Algo1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§6.3 — Algorithm 1 vs Vegas, {} Mbit/s, Rm = 50 ms, 10 ms jitter on one path (designed s = {})",
            self.link_mbps, self.s
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "single jitter-aware flow under jitter: {:.1} Mbit/s of {}",
            self.single_mbps, self.link_mbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm1_is_fairer_than_vegas_under_jitter() {
        let r = run(true);
        assert!(
            r.algo1_ratio() < r.vegas_ratio(),
            "algo1={:?} (ratio {:.2})  vegas={:?} (ratio {:.2})",
            r.algo1,
            r.algo1_ratio(),
            r.vegas,
            r.vegas_ratio()
        );
    }

    #[test]
    fn algorithm1_roughly_s_fair() {
        let r = run(true);
        // Designed for s = 2; allow AIMD sawtooth slack in the measurement.
        assert!(r.algo1_ratio() < 2.0 * 1.8, "ratio={}", r.algo1_ratio());
    }

    #[test]
    fn algorithm1_single_flow_efficient() {
        let r = run(true);
        // µ+ = 51 Mbit/s covers the 40 Mbit/s link; expect good utilization.
        assert!(r.single_mbps > 0.5 * r.link_mbps, "single={}", r.single_mbps);
    }
}

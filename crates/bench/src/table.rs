//! Minimal text-table and CSV helpers (hand-rolled; no serde dependency).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column names.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header's arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(rule.min(120)));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = ncols;
        out
    }

    /// Write the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", escaped.join(","))?;
        }
        Ok(())
    }
}

/// Format a float compactly.
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(&["xx".into(), "1".into()]);
        t.row(&["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xx"));
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let dir = std::env::temp_dir().join("repro_table_test.csv");
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["x,y".into(), "plain".into()]);
        t.write_csv(&dir).unwrap();
        let s = std::fs::read_to_string(&dir).unwrap();
        assert!(s.contains("\"x,y\",plain"));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1.2345), "1.234");
        assert_eq!(fnum(0.0001), "1.00e-4");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}

//! §5.2 — BBR starvation in cwnd-limited mode.
//!
//! Two BBR flows with `Rm` = 40 ms and 80 ms share a 120 Mbit/s link for
//! 60 s. Jitter (the paper used Mahimahi's natural OS noise; we add a
//! small bounded random element) makes the max-filter over-estimate the
//! bandwidth, pushing both flows into the cwnd-limited mode where
//! `cwnd = 2·BtlBw·RTprop + α`. The §5.2 fixed-point analysis then gives
//! `cwnd_i ≈ 2·C·Rm_i/n + α`: the small-`Rm` flow gets a proportionally
//! small window and starves. Paper numbers: 8.3 vs 107 Mbit/s.

use crate::table::{fnum, TextTable};
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate};
use std::fmt;

/// Outcome of the BBR experiment.
pub struct BbrReport {
    /// The 40 ms-RTT flow's throughput (paper: 8.3 Mbit/s).
    pub small_rtt_mbps: f64,
    /// The 80 ms-RTT flow's throughput (paper: 107 Mbit/s).
    pub large_rtt_mbps: f64,
    /// Mean RTT observed by the small-RTT flow at the end (diagnostic:
    /// > 2·Rm confirms cwnd-limited mode).
    pub small_rtt_mean_ms: f64,
}

/// Run the experiment.
pub fn run(quick: bool) -> BbrReport {
    let secs = if quick { 40 } else { 60 };
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let mk = |rm_ms: u64, seed: u64| {
        FlowConfig::bulk(Box::new(cca::Bbr::new(1500, seed)), Dur::from_millis(rm_ms))
            .with_jitter(Jitter::Random {
                max: Dur::from_millis(2),
                rng: Xoshiro256::new(seed * 7 + 1),
            })
    };
    let r = Network::new(SimConfig::new(
        link,
        vec![mk(40, 1), mk(80, 2)],
        Dur::from_secs(secs),
    ))
    .run();
    let end = r.end;
    let a = simcore::units::Time(end.as_nanos() / 2);
    BbrReport {
        small_rtt_mbps: r.flows[0].throughput_at(end).mbps(),
        large_rtt_mbps: r.flows[1].throughput_at(end).mbps(),
        small_rtt_mean_ms: r.flows[0].mean_rtt_in(a, end).unwrap_or(0.0) * 1e3,
    }
}

impl BbrReport {
    /// large/small throughput ratio.
    pub fn ratio(&self) -> f64 {
        self.large_rtt_mbps / self.small_rtt_mbps
    }

    /// Summary table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&["flow", "measured (Mbit/s)", "paper (Mbit/s)"]);
        t.row(&[
            "Rm = 40 ms".into(),
            fnum(self.small_rtt_mbps),
            "8.3".into(),
        ]);
        t.row(&[
            "Rm = 80 ms".into(),
            fnum(self.large_rtt_mbps),
            "107".into(),
        ]);
        t
    }
}

impl fmt::Display for BbrReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§5.2 — two BBR flows, Rm 40/80 ms, 120 Mbit/s, 60 s (2 ms jitter both paths)"
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "ratio {:.1}:1; small-RTT flow mean RTT {:.1} ms",
            self.ratio(),
            self.small_rtt_mean_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_rtt_flow_starves() {
        let r = run(true);
        assert!(
            r.ratio() > 2.5,
            "small={} large={}",
            r.small_rtt_mbps,
            r.large_rtt_mbps
        );
        // Link stays efficiently used.
        assert!(r.small_rtt_mbps + r.large_rtt_mbps > 80.0);
    }
}

//! Figure 1: ideal-path RTT evolution of a delay-convergent CCA, with the
//! converged region `[d_min, d_max]` after time `T` (Definition 1).
//!
//! The paper's figure is schematic; we regenerate it with a real CCA
//! (Copa) on an ideal path and annotate the measured band.

use simcore::units::{Dur, Rate, Time};
use starvation::convergence::{analyze_convergence, ConvergenceReport};
use starvation::runner::{run_ideal_path, RunSpec};
use std::fmt;

/// The regenerated figure.
pub struct Fig1Report {
    /// `(time s, RTT ms)` samples of the trajectory.
    pub series: Vec<(f64, f64)>,
    /// The measured converged region.
    pub conv: ConvergenceReport,
}

/// Run Copa on a 48 Mbit/s, 50 ms ideal path and extract the trajectory.
pub fn run(quick: bool) -> Fig1Report {
    let dur = if quick { 10 } else { 30 };
    let spec = RunSpec::new(
        Rate::from_mbps(48.0),
        Dur::from_millis(50),
        Dur::from_secs(dur),
    );
    let run = run_ideal_path(Box::new(cca::Copa::default_params()), spec);
    let conv = analyze_convergence(&run.rtt, 0.5, 1e-4).expect("no convergence");
    // Decimate to ~500 points for the CSV.
    let n = 500usize;
    let tick = Dur(spec.duration.as_nanos() / n as u64);
    let series = (1..=n)
        .filter_map(|i| {
            let t = Time(tick.as_nanos() * i as u64);
            run.rtt.value_at(t).map(|v| (t.as_secs_f64(), v * 1e3))
        })
        .collect();
    Fig1Report { series, conv }
}

impl fmt::Display for Fig1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1 — Copa on an ideal 48 Mbit/s, Rm = 50 ms path"
        )?;
        writeln!(
            f,
            "  converged after T = {:.2} s to [d_min, d_max] = [{:.2}, {:.2}] ms  (delta = {:.3} ms)",
            self.conv.t_converge.as_secs_f64(),
            self.conv.d_min * 1e3,
            self.conv.d_max * 1e3,
            self.conv.delta() * 1e3
        )?;
        writeln!(f, "  {} trajectory points (see results/fig1.csv)", self.series.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copa_converges_to_tight_band() {
        let r = run(true);
        // Copa at 48 Mbit/s: queueing ≈ 2/δ = 4 pkts → ~1 ms; band small.
        assert!(r.conv.d_min >= 0.050);
        assert!(r.conv.d_max < 0.058, "d_max={}", r.conv.d_max);
        assert!(!r.series.is_empty());
    }
}

//! Figure 2: the rate–delay graph of a delay-convergent CCA — equilibrium
//! RTT band as a function of the ideal path's link rate `C` at fixed `Rm`.
//!
//! The paper's figure is schematic (a decreasing band of width `δ(C)`
//! with the transmission-delay blow-up as `C → 0`); we regenerate it by
//! profiling Vegas, the canonical `α/C` CCA.

use crate::table::{fnum, TextTable};
use cca::factory;
use simcore::units::Dur;
use starvation::profiler::{log_sweep, profile_rate_delay, ProfilePoint};
use std::fmt;

/// The regenerated figure.
pub struct Fig2Report {
    /// The profiled curve.
    pub points: Vec<ProfilePoint>,
    /// Propagation RTT used.
    pub rm_ms: f64,
}

/// Profile Vegas across a log-spaced rate sweep at `Rm` = 50 ms.
pub fn run(quick: bool) -> Fig2Report {
    let (n, dur) = if quick { (5, 12) } else { (10, 30) };
    let rates = log_sweep(0.5, 100.0, n);
    let f = factory(|| Box::new(cca::Vegas::default_params()));
    let points = profile_rate_delay(&f, &rates, Dur::from_millis(50), Dur::from_secs(dur));
    Fig2Report {
        points,
        rm_ms: 50.0,
    }
}

impl Fig2Report {
    /// Render the sweep as a table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "C (Mbit/s)",
            "d_min (ms)",
            "d_max (ms)",
            "delta (ms)",
            "throughput (Mbit/s)",
        ]);
        for p in &self.points {
            t.row(&[
                fnum(p.rate.mbps()),
                fnum(p.convergence.d_min * 1e3),
                fnum(p.convergence.d_max * 1e3),
                fnum(p.convergence.delta() * 1e3),
                fnum(p.throughput.mbps()),
            ]);
        }
        t
    }
}

impl fmt::Display for Fig2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — rate–delay graph of a delay-convergent CCA (Vegas), Rm = {} ms",
            self.rm_ms
        )?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_decreases_with_rate() {
        let r = run(true);
        assert!(r.points.len() >= 4);
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        // d_max decreasing in C (the figure's defining shape).
        assert!(first.convergence.d_max > last.convergence.d_max);
        // At high C the delay approaches Rm.
        assert!(last.convergence.d_max < 0.055);
    }
}

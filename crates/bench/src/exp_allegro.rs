//! §5.4 — PCC Allegro starvation under *unequal* random loss.
//!
//! A 120 Mbit/s, 40 ms link with a 1-BDP buffer. Allegro tolerates up to
//! 5 % loss; a single flow with 2 % random loss fills the link, and two
//! flows that *both* see 2 % share fairly. But when only one flow sees the
//! extra 2 %, that flow reaches the 5 % collapse threshold at a much lower
//! level of congestion loss than its competitor, and starves (paper:
//! 10.3 vs 99.1 Mbit/s).

use crate::table::{fnum, TextTable};
use netsim::{FlowConfig, LinkConfig, Network, SimConfig};
use simcore::units::{Dur, Rate};
use std::fmt;

/// Outcome of the three §5.4 scenarios.
pub struct AllegroReport {
    /// Asymmetric case: the 2 %-loss flow (paper: 10.3 Mbit/s).
    pub lossy_mbps: f64,
    /// Asymmetric case: the clean flow (paper: 99.1 Mbit/s).
    pub clean_mbps: f64,
    /// Symmetric control: both flows at 2 % — their throughputs.
    pub sym: (f64, f64),
    /// Single-flow control: one flow with 2 % loss (paper: full link).
    pub single_mbps: f64,
}

fn link() -> LinkConfig {
    LinkConfig::bdp_buffer(Rate::from_mbps(120.0), Dur::from_millis(40), 1.0)
}

fn flow(loss: f64, seed: u64) -> FlowConfig {
    let f = FlowConfig::bulk(Box::new(cca::Allegro::new(seed)), Dur::from_millis(40)).with_transport(netsim::Transport::Datagram);
    if loss > 0.0 {
        // Loss stream 7 is the representative stream reported in
        // EXPERIMENTS.md; `repro seeds` publishes the distribution across
        // streams (Allegro's RCT noise makes the outcome stochastic).
        f.with_loss(loss, 7)
    } else {
        f
    }
}

/// Run all three scenarios.
pub fn run(quick: bool) -> AllegroReport {
    let secs = if quick { 45 } else { 60 };
    let dur = Dur::from_secs(secs);

    let asym = Network::new(SimConfig::new(
        link(),
        vec![flow(0.02, 1), flow(0.0, 2)],
        dur,
    ))
    .run();
    let sym = Network::new(SimConfig::new(
        link(),
        vec![flow(0.02, 3), flow(0.02, 4)],
        dur,
    ))
    .run();
    let single = Network::new(SimConfig::new(link(), vec![flow(0.02, 5)], dur)).run();

    AllegroReport {
        lossy_mbps: asym.flows[0].throughput_at(asym.end).mbps(),
        clean_mbps: asym.flows[1].throughput_at(asym.end).mbps(),
        sym: (
            sym.flows[0].throughput_at(sym.end).mbps(),
            sym.flows[1].throughput_at(sym.end).mbps(),
        ),
        single_mbps: single.flows[0].throughput_at(single.end).mbps(),
    }
}

impl AllegroReport {
    /// Asymmetric-case ratio.
    pub fn ratio(&self) -> f64 {
        self.clean_mbps / self.lossy_mbps
    }

    /// Summary table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&["scenario", "flow", "measured (Mbit/s)", "paper"]);
        t.row(&[
            "one flow 2% loss".into(),
            "lossy".into(),
            fnum(self.lossy_mbps),
            "10.3".into(),
        ]);
        t.row(&[
            "one flow 2% loss".into(),
            "clean".into(),
            fnum(self.clean_mbps),
            "99.1".into(),
        ]);
        t.row(&[
            "both flows 2% loss".into(),
            "flow 1".into(),
            fnum(self.sym.0),
            "fair share".into(),
        ]);
        t.row(&[
            "both flows 2% loss".into(),
            "flow 2".into(),
            fnum(self.sym.1),
            "fair share".into(),
        ]);
        t.row(&[
            "single flow 2% loss".into(),
            "solo".into(),
            fnum(self.single_mbps),
            "full link".into(),
        ]);
        t
    }
}

impl fmt::Display for AllegroReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§5.4 — PCC Allegro, 120 Mbit/s, 40 ms, 1 BDP buffer, 2% random loss"
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(f, "asymmetric ratio {:.1}:1", self.ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetric_loss_starves_the_lossy_flow() {
        let r = run(true);
        assert!(
            r.ratio() > 2.5,
            "lossy={} clean={}",
            r.lossy_mbps,
            r.clean_mbps
        );
    }

    #[test]
    fn symmetric_loss_shares_fairly() {
        let r = run(true);
        let (a, b) = r.sym;
        let ratio = a.max(b) / a.min(b).max(0.001);
        assert!(ratio < 3.0, "sym={a} vs {b}");
    }

    #[test]
    fn single_lossy_flow_fills_link() {
        let r = run(true);
        assert!(r.single_mbps > 60.0, "single={}", r.single_mbps);
    }
}

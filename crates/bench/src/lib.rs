//! # repro — the experiment harness
//!
//! One module per table/figure/experiment of the paper, each exposing a
//! `run(quick)` function that regenerates the artifact and returns a
//! printable report. The `repro` binary dispatches to them; the Criterion
//! benches in `benches/` wrap the same functions.
//!
//! `quick = true` shrinks durations so CI and benches finish fast; the
//! full settings match the paper's (60-second runs etc.). Absolute numbers
//! are not expected to match the paper's testbed — the *shape* (who
//! starves, by roughly what factor) is the reproduction target; see
//! EXPERIMENTS.md for side-by-side numbers.

pub mod exp_ablations;
pub mod exp_allegro;
pub mod exp_algo1;
pub mod exp_bbr;
pub mod exp_boundary;
pub mod exp_ccmc;
pub mod exp_copa;
pub mod exp_ecn;
pub mod exp_merit;
pub mod exp_seeds;
pub mod exp_sweep;
pub mod exp_theorems;
pub mod exp_vivace;
pub mod fig1;
pub mod perfbench;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod report;
pub mod table;

/// Where CSV outputs land (created on demand).
pub const RESULTS_DIR: &str = "results";

/// Ensure the results directory exists and return the path for `name`.
pub fn result_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(RESULTS_DIR);
    let _ = std::fs::create_dir_all(dir);
    dir.join(name)
}

//! §5.3 — PCC Vivace starvation under ACK quantization.
//!
//! Two Vivace flows share a 120 Mbit/s, 60 ms link; one flow's ACKs are
//! released only at integer multiples of 60 ms (link-layer aggregation).
//! That flow cannot measure RTT gradients within a monitor interval (all
//! its samples arrive in one burst), and its measured per-MI throughput is
//! quantized, so its gradient experiments return noise while the clean
//! flow's experiments return signal — the clean flow takes the link.
//! Paper numbers: 9.9 vs 99.4 Mbit/s.

use crate::table::{fnum, TextTable};
use netsim::{AckPolicy, FlowConfig, LinkConfig, Network, SimConfig};
use simcore::units::{Dur, Rate};
use std::fmt;

/// Outcome of the Vivace experiment.
pub struct VivaceReport {
    /// Quantized-ACK flow's throughput (paper: 9.9 Mbit/s).
    pub quantized_mbps: f64,
    /// Clean flow's throughput (paper: 99.4 Mbit/s).
    pub clean_mbps: f64,
}

/// Run the experiment.
pub fn run(quick: bool) -> VivaceReport {
    let secs = if quick { 20 } else { 60 };
    let rm = Dur::from_millis(60);
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let quantized = FlowConfig::bulk(Box::new(cca::Vivace::new(1)), rm)
        .with_transport(netsim::Transport::Datagram)
        .with_ack_policy(AckPolicy::Quantized {
            period: Dur::from_millis(60),
        });
    let clean = FlowConfig::bulk(Box::new(cca::Vivace::new(2)), rm).with_transport(netsim::Transport::Datagram);
    let r = Network::new(SimConfig::new(
        link,
        vec![quantized, clean],
        Dur::from_secs(secs),
    ))
    .run();
    VivaceReport {
        quantized_mbps: r.flows[0].throughput_at(r.end).mbps(),
        clean_mbps: r.flows[1].throughput_at(r.end).mbps(),
    }
}

impl VivaceReport {
    /// clean/quantized throughput ratio.
    pub fn ratio(&self) -> f64 {
        self.clean_mbps / self.quantized_mbps
    }

    /// Summary table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&["flow", "measured (Mbit/s)", "paper (Mbit/s)"]);
        t.row(&[
            "ACKs quantized to 60 ms".into(),
            fnum(self.quantized_mbps),
            "9.9".into(),
        ]);
        t.row(&["clean".into(), fnum(self.clean_mbps), "99.4".into()]);
        t
    }
}

impl fmt::Display for VivaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§5.3 — two PCC Vivace flows, 120 Mbit/s, Rm = 60 ms; one flow's ACKs at 60 ms boundaries"
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(f, "ratio {:.1}:1", self.ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_flow_starves() {
        let r = run(true);
        assert!(
            r.ratio() > 2.5,
            "quantized={} clean={}",
            r.quantized_mbps,
            r.clean_mbps
        );
        assert!(r.clean_mbps > 40.0, "clean={}", r.clean_mbps);
    }
}

//! `repro perfbench` — the committed hot-path performance trajectory.
//!
//! Unlike the `cargo bench` targets (whose JSON lands in `results/bench/`
//! and is overwritten per run), perfbench **appends** to `BENCH_netsim.json`
//! at the repo root: one JSON line per benchmark per invocation, tagged
//! with a `label` naming the code state being measured. Successive PRs
//! extend the file, so the history of "what did an event cost before and
//! after change X" is part of the repository, not a CI artifact that
//! expires. The ISSUE-5 acceptance gate — the timer-wheel event queue must
//! cut canonical two-flow wall-clock by ≥ 20% — is checked directly against
//! this file by [`check`].
//!
//! **Quick runs never touch the canonical trajectory.** `--quick` uses
//! too few iterations to be comparable across labels; mixing quick and
//! full records under one file silently poisons every cross-label
//! comparison (it happened: the original `workload-api` records were
//! appended in quick mode and `run/workload-1k` had no valid baseline).
//! Quick records are routed to a scratch file under `target/` instead
//! ([`output_path`]), and [`check_full_mode`] — run by `--check` and CI —
//! rejects any `"quick":true` record that reaches the canonical file.
//!
//! The suite:
//!
//! * **micro** — `EventQueue` schedule/pop patterns: uniform pseudorandom
//!   horizons, same-instant ties (FIFO ordering), and a near/far mix that
//!   exercises the far-future overflow path of the timer wheel.
//! * **macro** — whole simulations: a one-flow saturating ConstCwnd run,
//!   the four `starvation::canon` scenarios (the same frozen configs the
//!   golden-trace suite pins), and a small serial `starvation::sweep` grid.
//!
//! Timing uses [`testkit::bench::measure`] (warmup + individually timed
//! iterations, mean/p50/p99) — the same primitive the bench targets trust.
//!
//! Schema (`netsim-perfbench-v1`), one object per line, fields always in
//! this order:
//!
//! ```json
//! {"schema":"netsim-perfbench-v1","label":"baseline-binaryheap",
//!  "group":"macro","bench":"run/bbr-two-flow","quick":false,
//!  "warmup_iters":2,"iters":10,"mean_ns":1,"p50_ns":1,"p99_ns":1,
//!  "min_ns":1,"max_ns":1}
//! ```
//!
//! Macro benches that run a single simulation additionally append two
//! derived fields after the required ones: `"events"` (the deterministic
//! event count of one run, from [`netsim::SimResult::events`]) and
//! `"ns_per_event"` (`mean_ns / events`) — the normalized cost metric the
//! arena/batching work tracks. Old records without the fields stay valid;
//! [`validate`] only checks the required prefix order plus, when present,
//! that the extras parse.
//!
//! No wall-clock timestamps are recorded: two runs of the same label on the
//! same machine differ only in the measured numbers.

use cca::ConstCwnd;
use netsim::{FlowConfig, LinkConfig, Network, SimConfig};
use simcore::engine::EventQueue;
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};
use starvation::sweep::{CcaSpec, ScenarioSpec, Sweep};
use std::hint::black_box;
use std::io::Write;
use std::path::PathBuf;
use testkit::bench::{measure, Measurement};

/// File name of the committed trajectory, at the workspace root.
pub const TRAJECTORY_FILE: &str = "BENCH_netsim.json";

/// Schema tag written into (and required of) every record.
pub const SCHEMA: &str = "netsim-perfbench-v1";

/// The required record fields, in the exact order they must appear.
/// Optional derived fields (`events`, `ns_per_event`) follow `max_ns`.
pub const FIELDS: &[&str] = &[
    "schema", "label", "group", "bench", "quick", "warmup_iters", "iters",
    "mean_ns", "p50_ns", "p99_ns", "min_ns", "max_ns",
];

/// One perfbench record: a measurement tagged with the code-state label.
pub struct Record {
    /// Code-state label (`--label`, default `"dev"`).
    pub label: String,
    /// `"micro"` or `"macro"`.
    pub group: &'static str,
    /// Whether the run used quick iteration counts.
    pub quick: bool,
    /// The measurement itself (name + timing summary).
    pub m: Measurement,
    /// Deterministic event count of one benchmark iteration, for macro
    /// benches that run exactly one simulation (`None` elsewhere). Emits
    /// the derived `events`/`ns_per_event` record fields.
    pub events: Option<u64>,
}

impl Record {
    /// The JSON line: the [`FIELDS`] prefix in exact order, then the
    /// derived `events`/`ns_per_event` pair when the bench carries an
    /// event count.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{{\"schema\":\"{SCHEMA}\",\"label\":\"{}\",\"group\":\"{}\",\
             \"bench\":\"{}\",\"quick\":{},\"warmup_iters\":{},\"iters\":{},\
             \"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"max_ns\":{}",
            json_escape(&self.label),
            self.group,
            json_escape(&self.m.name),
            self.quick,
            self.m.warmup_iters,
            self.m.iters,
            self.m.mean_ns,
            self.m.p50_ns,
            self.m.p99_ns,
            self.m.min_ns,
            self.m.max_ns,
        );
        if let Some(events) = self.events {
            let per_event = if events > 0 { self.m.mean_ns / events } else { 0 };
            line.push_str(&format!(",\"events\":{events},\"ns_per_event\":{per_event}"));
        }
        line.push('}');
        line
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// File name of the quick-mode scratch trajectory, under `target/`
/// (gitignored): quick records land here so they can never poison the
/// committed cross-label history.
pub const SCRATCH_FILE: &str = "target/perfbench-quick.json";

/// Resolve the workspace root (where `BENCH_netsim.json` lives): the
/// manifest dir's grandparent under `cargo run`, else walk up from cwd.
pub fn trajectory_path() -> PathBuf {
    let start = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => PathBuf::from(m),
        Err(_) => std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
    };
    match simlint::find_workspace_root(&start) {
        Some(root) => root.join(TRAJECTORY_FILE),
        None => PathBuf::from(TRAJECTORY_FILE),
    }
}

/// Where a run's records go: full runs append to the committed canonical
/// trajectory, quick runs to the `target/` scratch file. This split is the
/// quick-vs-full policy; [`check_full_mode`] enforces it on the committed
/// side.
pub fn output_path(quick: bool) -> PathBuf {
    let canonical = trajectory_path();
    if quick {
        match canonical.parent() {
            Some(root) => root.join(SCRATCH_FILE),
            None => PathBuf::from(SCRATCH_FILE),
        }
    } else {
        canonical
    }
}

// ---------------------------------------------------------------- micro --

/// 10k schedule + 10k pops at pseudorandom times over a 50 ms horizon.
fn queue_uniform_10k() -> u64 {
    let mut rng = Xoshiro256::new(0xBEEF);
    let mut q = EventQueue::new();
    for i in 0..10_000u64 {
        q.schedule_at(Time(rng.next_u64() % 50_000_000), i);
    }
    let mut acc = 0u64;
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

/// Interleaved schedule/pop in 100-event bursts — the simulator's actual
/// access pattern (the queue stays small; time advances continuously).
fn queue_interleaved_10k() -> u64 {
    let mut rng = Xoshiro256::new(0xFACE);
    let mut q = EventQueue::new();
    let mut acc = 0u64;
    let mut horizon = 0u64;
    for burst in 0..100u64 {
        for i in 0..100u64 {
            // Spread each burst over ~2 ms past the current clock.
            let at = q.now().as_nanos() + rng.next_u64() % 2_000_000;
            horizon = horizon.max(at);
            q.schedule_at(Time(at), burst * 100 + i);
        }
        for _ in 0..100 {
            if let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
        }
    }
    acc
}

/// 10k same-instant events: pure FIFO-tie ordering cost.
fn queue_ties_10k() -> u64 {
    let mut q = EventQueue::new();
    let t = Time::from_millis(1);
    for i in 0..10_000u64 {
        q.schedule_at(t, i);
    }
    let mut acc = 0u64;
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

/// Near-horizon traffic with 1-in-16 far-future outliers (RTO-style
/// timers seconds out) — exercises the overflow path of the wheel.
fn queue_far_future_10k() -> u64 {
    let mut rng = Xoshiro256::new(0xD00D);
    let mut q = EventQueue::new();
    for i in 0..10_000u64 {
        let at = if i % 16 == 0 {
            Time(1_000_000_000 + rng.next_u64() % 600_000_000_000)
        } else {
            Time(rng.next_u64() % 50_000_000)
        };
        q.schedule_at(at, i);
    }
    let mut acc = 0u64;
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

// ---------------------------------------------------------------- macro --

/// A one-flow link-saturating run: cwnd 100 pkts ≫ BDP on a 12 Mbit/s,
/// 40 ms path — the densest event stream per simulated second.
fn one_flow_saturating(secs: u64) -> netsim::SimResult {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
    let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(100 * 1500)), Dur::from_millis(40));
    Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(secs))).run()
}

/// The million-event population bench: 10× the `workload-1k` canonical
/// scenario — same 48 Mbit/s ample link, Poisson(8 ms) arrivals,
/// bounded-Pareto sizes, NewReno on a jittered 20 ms path — but 10 000
/// flows over 90 s of simulated time (~1M dispatched events). This is the
/// regression canary for population-scale sweeps (ROADMAP item 1): the
/// arena/batching work is judged on its `ns_per_event` here as much as on
/// the two-flow scenarios.
fn workload_10k() -> netsim::SimResult {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(48.0));
    let wl = netsim::Workload::new(
        10_000,
        netsim::ArrivalProcess::Poisson { mean: Dur::from_millis(8), seed: 9 },
        netsim::SizeDist::Pareto { min_bytes: 12_000, alpha: 1.3, cap_bytes: 300_000, seed: 5 },
        Box::new(cca::NewReno::default_params()),
        Dur::from_millis(20),
    )
    .with_start(Time::from_millis(100))
    .with_jitter(Dur::from_millis(2), 3);
    Network::new(SimConfig::new(link, vec![], Dur::from_secs(90)).with_workload(wl)).run()
}

/// A small serial sweep over the two-flow asymmetric-jitter topology.
fn quick_sweep_grid(secs: u64) -> usize {
    let spec = ScenarioSpec::new("perfbench-grid")
        .cca(CcaSpec::new("vegas", |_| Box::new(cca::Vegas::default_params())))
        .rates_mbps(&[24.0])
        .rtts_ms(&[40])
        .jitters_ms(&[0, 10])
        .seeds(&[1, 2])
        .duration(Dur::from_secs(secs))
        .sample_every(Dur::from_millis(10));
    let report = Sweep::new("perfbench-grid")
        .jobs(1)
        .timing_off()
        .run(spec.expand());
    assert_eq!(report.panics(), 0, "perfbench sweep row panicked");
    report.rows.len()
}

/// Run the full suite, append records to the mode's output file (the
/// committed `BENCH_netsim.json` in full mode, the `target/` scratch file
/// under `--quick`), and print a label-over-label comparison. Returns the
/// records written.
pub fn run(quick: bool, label: &str) -> Vec<Record> {
    let (warmup, iters) = if quick { (1, 3) } else { (2, 10) };
    let mut records: Vec<Record> = Vec::new();
    let mut add = |group: &'static str, m: Measurement, events: Option<u64>| {
        let per_event = match events {
            Some(n) if n > 0 => format!("  {:>6} ns/event", m.mean_ns / n),
            _ => String::new(),
        };
        println!(
            "perfbench {:<34} mean {:>12} ns  p50 {:>12} ns  ({} iters){per_event}",
            m.name, m.mean_ns, m.p50_ns, m.iters
        );
        records.push(Record {
            label: label.to_string(),
            group,
            quick,
            m,
            events,
        });
    };

    add("micro", measure("queue/uniform_10k", warmup, iters, || {
        black_box(queue_uniform_10k())
    }), None);
    add("micro", measure("queue/interleaved_10k", warmup, iters, || {
        black_box(queue_interleaved_10k())
    }), None);
    add("micro", measure("queue/ties_10k", warmup, iters, || {
        black_box(queue_ties_10k())
    }), None);
    add("micro", measure("queue/far_future_10k", warmup, iters, || {
        black_box(queue_far_future_10k())
    }), None);

    // Macro benches that run exactly one simulation carry their event
    // count (deterministic per scenario, counted by an untimed pre-run)
    // so the trajectory records the derived `ns_per_event` metric.
    let run_secs = if quick { 2 } else { 5 };
    let events = one_flow_saturating(run_secs).events;
    add("macro", measure("run/one-flow-saturating", warmup, iters, || {
        black_box(one_flow_saturating(run_secs).flows[0].total_delivered())
    }), Some(events));
    for name in starvation::CANONICAL {
        let cfg = starvation::canonical_scenario(name).expect("canonical name");
        let events = Network::new(cfg).run().events;
        add("macro", measure(&format!("run/{name}"), warmup, iters, || {
            let cfg = starvation::canonical_scenario(name).expect("canonical name");
            let r = Network::new(cfg).run();
            black_box(r.flows[0].total_delivered())
        }), Some(events));
    }
    let events = workload_10k().events;
    add("macro", measure("run/workload-10k", warmup, iters, || {
        black_box(workload_10k().flows.len())
    }), Some(events));
    let sweep_secs = if quick { 1 } else { 3 };
    add("macro", measure("sweep/vegas-2x2-grid", warmup, iters, || {
        black_box(quick_sweep_grid(sweep_secs))
    }), None);

    let path = output_path(quick);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
    for r in &records {
        writeln!(f, "{}", r.render()).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }
    let kind = if quick { "scratch (quick)" } else { "canonical" };
    println!("perfbench: {} records appended -> {} [{kind}]", records.len(), path.display());
    drop(f);

    match compare(&std::fs::read_to_string(&path).unwrap_or_default()) {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(e) => eprintln!("perfbench: trajectory comparison unavailable: {e}"),
    }
    records
}

// ----------------------------------------------------- schema validation --

/// Minimal field extraction from one flat JSON object line (the schema has
/// no nesting, so top-level `"key":value` scanning is exact).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = if let Some(stripped) = rest.strip_prefix('"') {
        return stripped.split('"').next();
    } else {
        rest.find([',', '}'])?
    };
    Some(&rest[..end])
}

/// Validate every line of trajectory `text` against the v1 schema: fields
/// present, in order, numerics parse, schema tag matches. Returns the
/// number of valid records.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut pos = 0;
        for key in FIELDS {
            let pat = format!("\"{key}\":");
            match line[pos..].find(&pat) {
                Some(off) => pos += off + pat.len(),
                None => return Err(format!("line {lineno}: missing or out-of-order field \"{key}\"")),
            }
        }
        if field(line, "schema") != Some(SCHEMA) {
            return Err(format!("line {lineno}: schema tag is not {SCHEMA:?}"));
        }
        for key in ["warmup_iters", "iters", "mean_ns", "p50_ns", "p99_ns", "min_ns", "max_ns"] {
            let raw = field(line, key)
                .ok_or_else(|| format!("line {lineno}: missing numeric field \"{key}\""))?;
            raw.parse::<u64>()
                .map_err(|_| format!("line {lineno}: field \"{key}\" is not a u64 (got {raw:?})"))?;
        }
        match field(line, "quick") {
            Some("true") | Some("false") => {}
            other => return Err(format!("line {lineno}: field \"quick\" is not a bool (got {other:?})")),
        }
        for key in ["events", "ns_per_event"] {
            if let Some(raw) = field(line, key) {
                raw.parse::<u64>()
                    .map_err(|_| format!("line {lineno}: field \"{key}\" is not a u64 (got {raw:?})"))?;
            }
        }
        n += 1;
    }
    Ok(n)
}

/// Enforce the quick-vs-full policy on the committed trajectory: every
/// record must be a full-mode run (`"quick":false`). Quick iteration
/// counts are not comparable across labels; quick records belong in the
/// [`SCRATCH_FILE`] under `target/`. Returns the record count on success.
pub fn check_full_mode(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if field(line, "quick") == Some("true") {
            return Err(format!(
                "line {}: quick-mode record in the canonical trajectory (quick runs go to {SCRATCH_FILE})",
                i + 1
            ));
        }
        n += 1;
    }
    Ok(n)
}

/// Per-bench comparison of the newest label against the oldest: the
/// trajectory view, newest-vs-baseline speedup per benchmark. The gate
/// the ISSUE tracks is `run/bbr-two-flow` (canonical two-flow scenario).
pub fn compare(text: &str) -> Result<Vec<String>, String> {
    validate(text)?;
    // (bench, label) -> mean_ns, keeping first-seen label order.
    let mut labels: Vec<String> = Vec::new();
    let mut rows: Vec<(String, String, u64)> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let label = field(line, "label").unwrap_or("?").to_string();
        let bench = field(line, "bench").unwrap_or("?").to_string();
        let mean: u64 = field(line, "mean_ns").and_then(|v| v.parse().ok()).unwrap_or(0);
        if !labels.contains(&label) {
            labels.push(label.clone());
        }
        rows.push((bench, label, mean));
    }
    let mut out = Vec::new();
    if labels.len() < 2 {
        out.push(format!("perfbench trajectory: single label {:?}, nothing to compare", labels.first().map(String::as_str).unwrap_or("none")));
        return Ok(out);
    }
    let (first, last) = (labels[0].clone(), labels[labels.len() - 1].clone());
    out.push(format!("perfbench trajectory: {first:?} -> {last:?}"));
    let benches: Vec<String> = {
        let mut seen = Vec::new();
        for (b, _, _) in &rows {
            if !seen.contains(b) {
                seen.push(b.clone());
            }
        }
        seen
    };
    for bench in benches {
        let mean_of = |label: &str| -> Option<u64> {
            // Latest record wins when a (bench, label) pair repeats.
            rows.iter().rev().find(|(b, l, _)| *b == bench && l == label).map(|&(_, _, m)| m)
        };
        if let (Some(a), Some(b)) = (mean_of(&first), mean_of(&last)) {
            if a > 0 {
                let delta = 100.0 * (1.0 - (b as f64) / (a as f64));
                out.push(format!(
                    "  {bench:<28} {a:>14} ns -> {b:>14} ns  ({delta:+.1}% wall-clock reduction)",
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, bench: &str, mean: u64, quick: bool, events: Option<u64>) -> Record {
        Record {
            label: label.into(),
            group: "macro",
            quick,
            m: Measurement {
                name: bench.into(),
                warmup_iters: 1,
                iters: 3,
                mean_ns: mean,
                p50_ns: mean,
                p99_ns: mean,
                min_ns: mean,
                max_ns: mean,
            },
            events,
        }
    }

    fn record_line(label: &str, bench: &str, mean: u64) -> String {
        record(label, bench, mean, true, None).render()
    }

    #[test]
    fn rendered_records_validate() {
        let text = format!(
            "{}\n{}\n",
            record_line("base", "run/bbr-two-flow", 100),
            record_line("wheel", "run/bbr-two-flow", 70)
        );
        assert_eq!(validate(&text), Ok(2));
    }

    #[test]
    fn validate_rejects_missing_field() {
        let bad = record_line("base", "x", 1).replace("\"iters\":3,", "");
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn validate_rejects_out_of_order_fields() {
        // Same fields, label and schema swapped.
        let line = record_line("base", "x", 1);
        let swapped = line
            .replace("{\"schema\":\"netsim-perfbench-v1\",\"label\":\"base\"", "{\"label\":\"base\",\"schema\":\"netsim-perfbench-v1\"");
        assert!(validate(&swapped).is_err());
    }

    #[test]
    fn validate_rejects_wrong_schema_tag() {
        let bad = record_line("base", "x", 1).replace("perfbench-v1", "perfbench-v0");
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn compare_reports_speedup() {
        let text = format!(
            "{}\n{}\n",
            record_line("base", "run/bbr-two-flow", 100),
            record_line("wheel", "run/bbr-two-flow", 70)
        );
        let lines = compare(&text).unwrap();
        assert!(lines[0].contains("\"base\" -> \"wheel\""), "{lines:?}");
        assert!(lines[1].contains("+30.0%"), "{lines:?}");
    }

    #[test]
    fn events_render_derived_fields_and_validate() {
        let line = record("base", "run/workload-10k", 1_000_000, false, Some(4_000)).render();
        assert!(line.ends_with(",\"events\":4000,\"ns_per_event\":250}"), "{line}");
        assert_eq!(validate(&line), Ok(1));
        // Zero events must not divide by zero.
        let z = record("base", "x", 10, false, Some(0)).render();
        assert!(z.contains("\"ns_per_event\":0"), "{z}");
        assert_eq!(validate(&z), Ok(1));
    }

    #[test]
    fn quick_runs_route_to_scratch_not_canonical() {
        let full = output_path(false);
        let quick = output_path(true);
        assert!(full.ends_with(TRAJECTORY_FILE), "{}", full.display());
        assert!(quick.ends_with(SCRATCH_FILE), "{}", quick.display());
        assert_ne!(full, quick);
        // Same root: the scratch file sits under the workspace's target/.
        assert_eq!(full.parent(), quick.parent().and_then(|p| p.parent()));
    }

    #[test]
    fn check_full_mode_rejects_quick_records() {
        let full_line = record("wheel", "run/bbr-two-flow", 70, false, None).render();
        assert_eq!(check_full_mode(&full_line), Ok(1));
        let mixed = format!("{}\n{}\n", full_line, record_line("api", "run/workload-1k", 9));
        let err = check_full_mode(&mixed).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("quick"), "{err}");
    }

    #[test]
    fn field_extraction_handles_strings_and_numbers() {
        let line = record_line("a\\b", "run/x", 42);
        assert_eq!(field(&line, "mean_ns"), Some("42"));
        assert_eq!(field(&line, "group"), Some("macro"));
        assert_eq!(field(&line, "quick"), Some("true"));
    }
}

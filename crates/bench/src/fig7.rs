//! Figure 7: two loss-based flows (Reno, then Cubic) on a 6 Mbit/s,
//! 120 ms link with a 60-packet buffer; one receiver delays ACKs by up to
//! 4 packets, making that flow's packets arrive in bursts that lose more
//! often when the queue is nearly full.
//!
//! Paper result: bounded unfairness — throughput ratios of 2.7× (Reno) and
//! 3.2× (Cubic) — but **no starvation**, because AIMD's oscillations span
//! the whole buffer (§5.4, §6.2).

use crate::table::{fnum, TextTable};
use cca::BoxCca;
use netsim::{AckPolicy, FlowConfig, LinkConfig, Network, SimConfig};
use simcore::units::{Dur, Rate, Time};
use std::fmt;

/// One CCA's two-flow outcome.
pub struct Fig7Row {
    /// "reno" or "cubic".
    pub cca: &'static str,
    /// Throughput of the per-packet-ACK flow, Mbit/s.
    pub clean_mbps: f64,
    /// Throughput of the delayed-ACK flow, Mbit/s.
    pub delayed_mbps: f64,
    /// cwnd time series of both flows `(t s, cwnd pkts)` for the figure.
    pub cwnd_clean: Vec<(f64, f64)>,
    /// Delayed-ACK flow's cwnd series.
    pub cwnd_delayed: Vec<(f64, f64)>,
}

impl Fig7Row {
    /// clean/delayed throughput ratio.
    pub fn ratio(&self) -> f64 {
        self.clean_mbps / self.delayed_mbps
    }
}

/// The regenerated figure.
pub struct Fig7Report {
    /// Reno row then Cubic row.
    pub rows: Vec<Fig7Row>,
}

fn one(cca: &'static str, mk: fn() -> BoxCca, quick: bool) -> Fig7Row {
    let secs = if quick { 60 } else { 200 };
    let rm = Dur::from_millis(120);
    let link = LinkConfig::new(Rate::from_mbps(6.0), 60 * 1500);
    let clean = FlowConfig::bulk(mk(), rm);
    let delayed = FlowConfig::bulk(mk(), rm).with_ack_policy(AckPolicy::Delayed {
        max_pkts: 4,
        timeout: Dur::from_millis(100),
    });
    let r = Network::new(SimConfig::new(
        link,
        vec![clean, delayed],
        Dur::from_secs(secs),
    ))
    .run();
    let series = |i: usize| -> Vec<(f64, f64)> {
        r.flows[i]
            .cwnd
            .points()
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v / 1500.0))
            .collect()
    };
    // Skip slow-start: measure from 10% in.
    let a = Time(r.end.as_nanos() / 10);
    Fig7Row {
        cca,
        clean_mbps: r.flows[0].throughput_over(a, r.end).mbps(),
        delayed_mbps: r.flows[1].throughput_over(a, r.end).mbps(),
        cwnd_clean: series(0),
        cwnd_delayed: series(1),
    }
}

/// Run both CCAs.
pub fn run(quick: bool) -> Fig7Report {
    Fig7Report {
        rows: vec![
            one("reno", || Box::new(cca::NewReno::default_params()), quick),
            one("cubic", || Box::new(cca::Cubic::default_params()), quick),
        ],
    }
}

impl Fig7Report {
    /// Summary table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "CCA",
            "clean flow (Mbit/s)",
            "delayed-ACK flow (Mbit/s)",
            "ratio",
            "paper ratio",
        ]);
        for r in &self.rows {
            let paper = if r.cca == "reno" { "2.7" } else { "3.2" };
            t.row(&[
                r.cca.to_string(),
                fnum(r.clean_mbps),
                fnum(r.delayed_mbps),
                fnum(r.ratio()),
                paper.to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for Fig7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 — Reno/Cubic, 6 Mbit/s, 120 ms, 60-pkt buffer, one flow with 4-pkt delayed ACKs"
        )?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delayed_ack_flow_loses_but_is_not_starved() {
        let r = run(true);
        for row in &r.rows {
            // Unfairness present (clean flow wins)...
            assert!(
                row.ratio() > 1.2,
                "{}: clean={} delayed={}",
                row.cca,
                row.clean_mbps,
                row.delayed_mbps
            );
            // ...but bounded — nothing like the 10:1 starvation of the
            // delay-convergent CCAs.
            assert!(row.ratio() < 8.0, "{}: ratio={}", row.cca, row.ratio());
            // Link roughly utilized.
            assert!(row.clean_mbps + row.delayed_mbps > 4.0);
        }
    }
}

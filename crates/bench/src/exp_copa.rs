//! §5.1 — Copa starvation via min-RTT poisoning.
//!
//! The paper's scenario: a 120 Mbit/s link with `Rm` = 60 ms, where a
//! single packet experienced a 59 ms RTT. Copa's `dq = standing RTT −
//! min RTT` is then over-estimated by 1 ms forever, capping its target
//! rate near `1/(δ·1 ms)` = 2000 pkt/s regardless of the link rate.
//!
//! We realize it exactly as the paper describes the root cause —
//! *persistent non-congestive delay*: the path's propagation RTT is 59 ms
//! and every packet gets +1 ms of jitter except one packet every few
//! seconds (refreshing the poisoned 59 ms minimum within Copa's 10 s
//! min-RTT window). Paper numbers: single flow 8 Mbit/s of 120; two flows
//! 8.8 vs 95 Mbit/s.

use crate::table::{fnum, TextTable};
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::units::{Dur, Rate};
use std::fmt;

/// Results of both §5.1 experiments.
pub struct CopaReport {
    /// Single poisoned flow's throughput, Mbit/s (paper: 8).
    pub single_mbps: f64,
    /// Two-flow scenario: the poisoned flow (paper: 8.8).
    pub two_poisoned_mbps: f64,
    /// Two-flow scenario: the clean flow (paper: 95).
    pub two_clean_mbps: f64,
    /// Link rate for context.
    pub link_mbps: f64,
}

fn poisoned_flow() -> FlowConfig {
    // Rm = 59 ms; +1 ms on every packet except one every 30000 packets
    // (≈ every 3–5 s at the rates Copa reaches here, always within the
    // 10 s min-RTT window at the poisoned flow's poisoned-rate packet
    // clock).
    FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(59)).with_jitter(
        Jitter::ExtraExcept {
            extra: Dur::from_millis(1),
            period: 5_000,
            offset: 0,
        },
    )
}

fn clean_flow() -> FlowConfig {
    FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60))
}

/// Run both experiments.
pub fn run(quick: bool) -> CopaReport {
    let secs = if quick { 20 } else { 60 };
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));

    let r1 = Network::new(SimConfig::new(
        link,
        vec![poisoned_flow()],
        Dur::from_secs(secs),
    ))
    .run();
    let r2 = Network::new(SimConfig::new(
        link,
        vec![poisoned_flow(), clean_flow()],
        Dur::from_secs(secs),
    ))
    .run();

    CopaReport {
        single_mbps: r1.flows[0].throughput_at(r1.end).mbps(),
        two_poisoned_mbps: r2.flows[0].throughput_at(r2.end).mbps(),
        two_clean_mbps: r2.flows[1].throughput_at(r2.end).mbps(),
        link_mbps: 120.0,
    }
}

impl CopaReport {
    /// Summary table with paper numbers.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&["scenario", "flow", "measured (Mbit/s)", "paper (Mbit/s)"]);
        t.row(&[
            "single".into(),
            "poisoned".into(),
            fnum(self.single_mbps),
            "8".into(),
        ]);
        t.row(&[
            "two-flow".into(),
            "poisoned".into(),
            fnum(self.two_poisoned_mbps),
            "8.8".into(),
        ]);
        t.row(&[
            "two-flow".into(),
            "clean".into(),
            fnum(self.two_clean_mbps),
            "95".into(),
        ]);
        t
    }

    /// Two-flow starvation ratio.
    pub fn ratio(&self) -> f64 {
        self.two_clean_mbps / self.two_poisoned_mbps
    }
}

impl fmt::Display for CopaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§5.1 — Copa min-RTT poisoning, {} Mbit/s link, Rm = 60 ms (1 ms persistent jitter)",
            self.link_mbps
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(f, "two-flow ratio: {:.1}:1", self.ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copa_single_flow_starves_itself() {
        let r = run(true);
        // The poisoned flow is pinned an order of magnitude below the link
        // rate (paper: 8 of 120; our target-rate math says ≈ 2000 pkt/s =
        // 24 Mbit/s ceiling, and dynamics keep it below that).
        assert!(r.single_mbps < 40.0, "single={}", r.single_mbps);
        assert!(r.single_mbps > 1.0, "flow should not be dead");
    }

    #[test]
    fn copa_two_flow_starvation() {
        let r = run(true);
        assert!(
            r.ratio() > 3.0,
            "poisoned={} clean={}",
            r.two_poisoned_mbps,
            r.two_clean_mbps
        );
        // Clean flow takes most of the link.
        assert!(r.two_clean_mbps > 60.0, "clean={}", r.two_clean_mbps);
    }
}

//! `repro sweep` — the incremental grid demo of the sweep service.
//!
//! [`starvation::sweep::ScenarioSpec`] expands a cartesian grid
//! (CCA × rate × RTT × jitter × seed) into the paper's canonical two-flow
//! asymmetric-jitter topology. Since the checkpointed store landed, the
//! grid runs *incrementally* ([`starvation::sweep::Sweep::run_incremental`]):
//! every completed row is persisted content-addressed under
//! `results/store/`, re-runs execute only missing rows (a completed grid
//! re-runs zero simulations), and a killed sweep resumes from its last
//! atomic checkpoint. `repro sweep --fresh` forces full recomputation;
//! `repro report` queries the store afterwards.

use crate::table::{fnum, TextTable};
use simcore::par;
use starvation::sweep::{
    CcaSpec, GridMeta, IncrementalReport, ScenarioSpec, StoreOptions, Sweep,
};
use simcore::units::Dur;
use std::fmt;

/// One grid point's measurement, extracted from its persisted row summary.
#[derive(Clone, Debug)]
pub struct SweepPointRow {
    /// The grid coordinates.
    pub meta: GridMeta,
    /// RTT axis, ms (kept alongside [`GridMeta`] for the table).
    pub rtt_ms: f64,
    /// Second-half throughput of the jittered flow (flow 0), Mbit/s.
    pub jittered_mbps: f64,
    /// Second-half throughput of the clean flow (flow 1), Mbit/s.
    pub clean_mbps: f64,
}

impl SweepPointRow {
    /// Clean-over-jittered ratio: > 1 means the impaired flow loses.
    pub fn ratio(&self) -> f64 {
        self.clean_mbps / self.jittered_mbps.max(1e-9)
    }
}

/// The executed grid plus the incremental-run accounting.
pub struct SweepReport {
    /// One row per grid point, in row-major grid order.
    pub rows: Vec<SweepPointRow>,
    /// Simulations executed this run (0 on a full cache hit).
    pub executed: usize,
    /// Rows served from the store.
    pub cached: usize,
    /// Invalid store entries that were detected and recomputed.
    pub recomputed: usize,
    /// True when the fault-injection kill hook stopped the run early.
    pub aborted: bool,
}

/// The demo grid: the paper's probing CCAs over rate × jitter × seed.
pub fn spec(quick: bool) -> ScenarioSpec {
    let (seeds, secs): (&[u64], u64) = if quick { (&[1], 12) } else { (&[1, 2, 3], 30) };
    ScenarioSpec::new("grid-demo")
        .cca(CcaSpec::new("copa", |_s| {
            Box::new(cca::Copa::default_params())
        }))
        .cca(CcaSpec::new("bbr", |s| Box::new(cca::Bbr::new(1500, s))))
        .rates_mbps(&[40.0, 120.0])
        .rtts_ms(&[40])
        .jitters_ms(&[0, 10])
        .seeds(seeds)
        .duration(Dur::from_secs(secs))
        .sample_every(Dur::from_millis(20))
}

/// Run the demo grid using every available core and the default store.
pub fn run(quick: bool) -> SweepReport {
    run_with(quick, par::available_jobs())
}

/// Run the demo grid across `jobs` workers against the default store.
pub fn run_with(quick: bool, jobs: usize) -> SweepReport {
    run_stored(
        quick,
        jobs,
        &StoreOptions::new(starvation::sweep::default_store_dir()),
    )
}

/// Run the demo grid incrementally against a specific store. Returns both
/// the rendered grid report and the raw [`IncrementalReport`] accounting.
pub fn run_incremental(quick: bool, jobs: usize, opts: &StoreOptions) -> IncrementalReport {
    let s = spec(quick);
    Sweep::new(&s.name).jobs(jobs).timing_off().run_incremental(s.expand(), opts)
}

/// Run the demo grid against `opts` and fold the per-row summaries into
/// the grid table. Rows are extracted from the persisted [`RowSummary`]s
/// (the `SimResult`s died in their workers), so the table is byte-stable
/// between a fresh run and a fully-cached re-run.
///
/// [`RowSummary`]: starvation::sweep::RowSummary
pub fn run_stored(quick: bool, jobs: usize, opts: &StoreOptions) -> SweepReport {
    let s = spec(quick);
    let rtts: Vec<f64> = s
        .points()
        .into_iter()
        .map(|(_, p)| p.rm.as_millis_f64())
        .collect();
    let inc = Sweep::new(&s.name).jobs(jobs).timing_off().run_incremental(s.expand(), opts);
    if inc.aborted {
        return SweepReport {
            rows: Vec::new(),
            executed: inc.executed,
            cached: inc.cached,
            recomputed: inc.recomputed.len(),
            aborted: true,
        };
    }
    let rows = inc
        .rows
        .iter()
        .zip(rtts)
        .map(|(row, rtt_ms)| {
            let summary = row
                .outcome
                .as_ref()
                .unwrap_or_else(|msg| panic!("{} diverged: {msg}", row.label));
            let meta = summary.grid.clone().expect("grid rows carry coordinates");
            SweepPointRow {
                meta,
                rtt_ms,
                jittered_mbps: summary.flows[0].second_half_mbps,
                clean_mbps: summary.flows[1].second_half_mbps,
            }
        })
        .collect();
    SweepReport {
        rows,
        executed: inc.executed,
        cached: inc.cached,
        recomputed: inc.recomputed.len(),
        aborted: false,
    }
}

impl SweepReport {
    /// Render the grid.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "cca",
            "rate (Mbit/s)",
            "rtt (ms)",
            "jitter (ms)",
            "seed",
            "flow 0 (Mbit/s)",
            "flow 1 (Mbit/s)",
            "ratio",
        ]);
        for r in &self.rows {
            t.row(&[
                r.meta.cca.clone(),
                fnum(r.meta.rate_mbps),
                fnum(r.rtt_ms),
                fnum(r.meta.jitter_ms),
                r.meta.seed.to_string(),
                fnum(r.jittered_mbps),
                fnum(r.clean_mbps),
                fnum(r.ratio()),
            ]);
        }
        t
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Scenario grid (CCA × rate × jitter × seed) on the sweep engine —\n\
             flow 0 sees the jitter, flow 1 is clean\n\
             [{} executed, {} cached, {} recomputed]:",
            self.executed, self.cached, self.recomputed
        )?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("repro_sweep_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn grid_runs_and_keeps_row_major_order() {
        let dir = tmp_store("order");
        let r = run_stored(true, 4, &StoreOptions::new(&dir));
        // 2 ccas × 2 rates × 1 rtt × 2 jitters × 1 seed.
        assert_eq!(r.rows.len(), 8);
        assert_eq!(r.executed, 8);
        let labels: Vec<String> = r
            .rows
            .iter()
            .map(|row| {
                format!(
                    "{}/r{}/j{}/s{}",
                    row.meta.cca, row.meta.rate_mbps, row.meta.jitter_ms, row.meta.seed
                )
            })
            .collect();
        let expected: Vec<String> = spec(true)
            .points()
            .into_iter()
            .map(|(_, p)| {
                format!(
                    "{}/r{}/j{}/s{}",
                    p.cca,
                    p.rate.mbps(),
                    p.jitter.as_millis_f64(),
                    p.seed
                )
            })
            .collect();
        assert_eq!(labels, expected);
        for row in &r.rows {
            assert!(row.jittered_mbps > 0.0, "{}", row.meta.cca);
            assert!(row.clean_mbps > 0.0, "{}", row.meta.cca);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rerun_is_a_full_cache_hit_with_identical_table() {
        let dir = tmp_store("cachehit");
        let first = run_stored(true, 4, &StoreOptions::new(&dir));
        let second = run_stored(true, 1, &StoreOptions::new(&dir));
        assert_eq!(second.executed, 0, "completed grid re-runs nothing");
        assert_eq!(second.cached, 8);
        assert_eq!(
            first.table().render(),
            second.table().render(),
            "cached table is byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_cells_are_fairer_than_jittered_ones() {
        let dir = tmp_store("fairness");
        let r = run_stored(true, 4, &StoreOptions::new(&dir));
        let mean = |jit: f64| {
            let v: Vec<f64> = r
                .rows
                .iter()
                .filter(|row| row.meta.jitter_ms == jit)
                .map(|row| row.ratio().max(1.0 / row.ratio()))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(10.0) > mean(0.0),
            "jittered cells should be less fair: clean={} jittered={}",
            mean(0.0),
            mean(10.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! `repro sweep` — the declarative grid demo of the sweep engine.
//!
//! [`starvation::sweep::ScenarioSpec`] expands a cartesian grid
//! (CCA × rate × RTT × jitter × seed) into the paper's canonical two-flow
//! asymmetric-jitter topology and runs it across the worker pool. This
//! experiment sweeps the §5 CCAs over rate and jitter to show the pattern
//! every reproduction in this harness reduces to: clean cells are fair,
//! jittered cells starve flow 0, and the grid makes the contrast a table.

use crate::table::{fnum, TextTable};
use simcore::par;
use simcore::units::{Dur, Time};
use starvation::sweep::{CcaSpec, GridPoint, ScenarioSpec};
use std::fmt;

/// One grid point's measurement.
#[derive(Clone, Debug)]
pub struct SweepPointRow {
    /// The grid coordinates.
    pub point: GridPoint,
    /// Second-half throughput of the jittered flow (flow 0), Mbit/s.
    pub jittered_mbps: f64,
    /// Second-half throughput of the clean flow (flow 1), Mbit/s.
    pub clean_mbps: f64,
}

impl SweepPointRow {
    /// Clean-over-jittered ratio: > 1 means the impaired flow loses.
    pub fn ratio(&self) -> f64 {
        self.clean_mbps / self.jittered_mbps.max(1e-9)
    }
}

/// The executed grid.
pub struct SweepReport {
    /// One row per grid point, in row-major grid order.
    pub rows: Vec<SweepPointRow>,
}

/// The demo grid: the paper's probing CCAs over rate × jitter × seed.
fn spec(quick: bool) -> ScenarioSpec {
    let (seeds, secs): (&[u64], u64) = if quick { (&[1], 12) } else { (&[1, 2, 3], 30) };
    ScenarioSpec::new("grid-demo")
        .cca(CcaSpec::new("copa", |_s| {
            Box::new(cca::Copa::default_params())
        }))
        .cca(CcaSpec::new("bbr", |s| Box::new(cca::Bbr::new(1500, s))))
        .rates_mbps(&[40.0, 120.0])
        .rtts_ms(&[40])
        .jitters_ms(&[0, 10])
        .seeds(seeds)
        .duration(Dur::from_secs(secs))
        .sample_every(Dur::from_millis(20))
}

/// Run the demo grid using every available core.
pub fn run(quick: bool) -> SweepReport {
    run_with(quick, par::available_jobs())
}

/// Run the demo grid across `jobs` workers.
pub fn run_with(quick: bool, jobs: usize) -> SweepReport {
    let s = spec(quick);
    let points: Vec<GridPoint> = s.points().into_iter().map(|(_, p)| p).collect();
    let report = s.run(jobs);
    let rows = points
        .into_iter()
        .zip(&report.rows)
        .map(|(point, row)| {
            let r = row.result();
            let half = Time(r.end.as_nanos() / 2);
            SweepPointRow {
                point,
                jittered_mbps: r.flows[0].throughput_over(half, r.end).mbps(),
                clean_mbps: r.flows[1].throughput_over(half, r.end).mbps(),
            }
        })
        .collect();
    SweepReport { rows }
}

impl SweepReport {
    /// Render the grid.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "cca",
            "rate (Mbit/s)",
            "rtt (ms)",
            "jitter (ms)",
            "seed",
            "flow 0 (Mbit/s)",
            "flow 1 (Mbit/s)",
            "ratio",
        ]);
        for r in &self.rows {
            t.row(&[
                r.point.cca.clone(),
                fnum(r.point.rate.mbps()),
                fnum(r.point.rm.as_millis_f64()),
                fnum(r.point.jitter.as_millis_f64()),
                r.point.seed.to_string(),
                fnum(r.jittered_mbps),
                fnum(r.clean_mbps),
                fnum(r.ratio()),
            ]);
        }
        t
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Scenario grid (CCA × rate × jitter × seed) on the sweep engine —\n\
             flow 0 sees the jitter, flow 1 is clean:"
        )?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_and_keeps_row_major_order() {
        let r = run_with(true, 4);
        // 2 ccas × 2 rates × 1 rtt × 2 jitters × 1 seed.
        assert_eq!(r.rows.len(), 8);
        let labels: Vec<String> = r.rows.iter().map(|row| row.point.label()).collect();
        let expected: Vec<String> = spec(true)
            .points()
            .into_iter()
            .map(|(_, p)| p.label())
            .collect();
        assert_eq!(labels, expected);
        for row in &r.rows {
            assert!(row.jittered_mbps > 0.0, "{}", row.point.label());
            assert!(row.clean_mbps > 0.0, "{}", row.point.label());
        }
    }

    #[test]
    fn clean_cells_are_fairer_than_jittered_ones() {
        let r = run_with(true, 4);
        let mean = |jit: f64| {
            let v: Vec<f64> = r
                .rows
                .iter()
                .filter(|row| row.point.jitter.as_millis_f64() == jit)
                .map(|row| row.ratio().max(1.0 / row.ratio()))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(10.0) > mean(0.0),
            "jittered cells should be less fair: clean={} jittered={}",
            mean(0.0),
            mean(10.0)
        );
    }
}

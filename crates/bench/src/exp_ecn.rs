//! §6.4 — explicit congestion signaling as a way out of starvation.
//!
//! The paper's conjecture: "if the router set ECN bits when the queue
//! exceeds a threshold, and a CCA reacted to that and not to small amounts
//! of loss, then it may avoid starvation". The §5.4 counterpart showed that
//! AIMD *does* starve when only one flow experiences non-congestive
//! (random) loss.
//!
//! Scenario: a 12 Mbit/s, 40 ms link with a 1-BDP buffer; flow 1 sees 1 %
//! random (non-congestive) loss, flow 2 none.
//!
//! * **loss-reactive AIMD** (plain NewReno): the lossy flow halves on
//!   phantom congestion and collapses — heavy unfairness.
//! * **ECN-reactive, loss-tolerant AIMD** (`NewReno::with_ecn()
//!   .loss_tolerant()` with threshold marking at ¼ BDP): both flows see
//!   the *same unambiguous* congestion signal; the random loss no longer
//!   drives the window, and the flows share fairly at high utilization.

use crate::table::{fnum, TextTable};
use cca::BoxCca;
use netsim::{FlowConfig, LinkConfig, Network, SimConfig};
use simcore::units::{Dur, Rate, Time};
use std::fmt;

/// Outcome of the two §6.4 scenarios.
pub struct EcnReport {
    /// Loss-reactive AIMD under asymmetric 1 % loss: (lossy, clean) Mbit/s.
    pub loss_reactive: (f64, f64),
    /// ECN-reactive, loss-tolerant AIMD in the same scenario.
    pub ecn_reactive: (f64, f64),
    /// Link utilization of the ECN run.
    pub ecn_utilization: f64,
}

fn scenario(mk: impl Fn() -> BoxCca, ecn: bool, secs: u64) -> (f64, f64, f64) {
    let rate = Rate::from_mbps(12.0);
    let rtt = Dur::from_millis(40);
    let bdp = rate.bdp_bytes(rtt);
    let mut link = LinkConfig::bdp_buffer(rate, rtt, 1.0);
    if ecn {
        link = link.with_ecn(bdp / 4);
    }
    let lossy = FlowConfig::bulk(mk(), rtt).with_loss(0.01, 5);
    let clean = FlowConfig::bulk(mk(), rtt);
    let r = Network::new(SimConfig::new(link, vec![lossy, clean], Dur::from_secs(secs))).run();
    let half = Time(r.end.as_nanos() / 2);
    (
        r.flows[0].throughput_over(half, r.end).mbps(),
        r.flows[1].throughput_over(half, r.end).mbps(),
        r.utilization,
    )
}

/// Run both variants.
pub fn run(quick: bool) -> EcnReport {
    let secs = if quick { 40 } else { 90 };
    let (l1, c1, _) = scenario(|| Box::new(cca::NewReno::default_params()), false, secs);
    let (l2, c2, util) = scenario(
        || Box::new(cca::NewReno::default_params().with_ecn().loss_tolerant()),
        true,
        secs,
    );
    EcnReport {
        loss_reactive: (l1, c1),
        ecn_reactive: (l2, c2),
        ecn_utilization: util,
    }
}

impl EcnReport {
    fn ratio(pair: (f64, f64)) -> f64 {
        let (a, b) = pair;
        a.max(b) / a.min(b).max(1e-9)
    }

    /// Loss-reactive unfairness.
    pub fn loss_ratio(&self) -> f64 {
        Self::ratio(self.loss_reactive)
    }

    /// ECN-reactive unfairness.
    pub fn ecn_ratio(&self) -> f64 {
        Self::ratio(self.ecn_reactive)
    }

    /// Render.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "CCA variant",
            "1%-loss flow (Mbit/s)",
            "clean flow (Mbit/s)",
            "ratio",
        ]);
        t.row(&[
            "loss-reactive AIMD".into(),
            fnum(self.loss_reactive.0),
            fnum(self.loss_reactive.1),
            fnum(self.loss_ratio()),
        ]);
        t.row(&[
            "ECN-reactive, loss-tolerant".into(),
            fnum(self.ecn_reactive.0),
            fnum(self.ecn_reactive.1),
            fnum(self.ecn_ratio()),
        ]);
        t
    }
}

impl fmt::Display for EcnReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§6.4 — ECN vs loss as the congestion signal (12 Mbit/s, 40 ms, 1 BDP, one flow with 1% random loss)"
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "ECN run utilization: {:.2} (the conjecture needs fairness *and* efficiency)",
            self.ecn_utilization
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecn_restores_fairness_under_asymmetric_loss() {
        let r = run(true);
        assert!(
            r.ecn_ratio() < r.loss_ratio(),
            "ecn={:.2} loss={:.2}",
            r.ecn_ratio(),
            r.loss_ratio()
        );
        // The ECN pair shares within a factor ~2 and stays efficient.
        assert!(r.ecn_ratio() < 2.5, "ecn ratio={:.2}", r.ecn_ratio());
        assert!(r.ecn_utilization > 0.8, "util={:.2}", r.ecn_utilization);
        // The loss-reactive pair is meaningfully unfair.
        assert!(r.loss_ratio() > 1.5, "loss ratio={:.2}", r.loss_ratio());
    }
}

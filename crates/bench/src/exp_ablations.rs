//! Ablations of the design choices the paper's analysis singles out
//! (DESIGN.md's ablation index):
//!
//! 1. **BBR's `+quanta` term** (§5.2): the paper argues the additive `α`
//!    in `cwnd = 2·BtlBw·RTprop + α` is what gives the cwnd-limited mode a
//!    unique fair fixed point — "if we remove the +α term … any value of
//!    cwnd₁ and cwnd₂ can be a fixed point". Two same-`Rm` BBR flows, the
//!    second starting late: with quanta the latecomer claws back a share;
//!    without it the initial split freezes.
//! 2. **Copa poison magnitude** (§4.1's arithmetic): the starved flow's
//!    ceiling is `1/(δ·q̂)`, so doubling the phantom queueing delay `q̂`
//!    should roughly double the starvation ratio.
//! 3. **Algorithm 1's design margin** (§6.3 / Theorem 1's boundary): a CCA
//!    designed for jitter `D` stays `s`-fair while the actual jitter is
//!    ≤ `D` and degrades once the actual jitter exceeds the design point —
//!    the impossibility result reasserting itself.
//! 4. **AIMD-on-delay threshold** (§6.2): with the MD threshold *below*
//!    the jitter bound the oscillation no longer dominates the ambiguity
//!    and fairness degrades; at `2·D` it holds.

use crate::table::{fnum, TextTable};
use cca::delay_aimd::DelayAimdConfig;
use cca::jitter_aware::JitterAwareConfig;
use cca::BoxCca;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};
use std::fmt;

/// One ablation row: configuration label and the two flows' throughputs.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which ablation this row belongs to.
    pub group: &'static str,
    /// The varied parameter, rendered.
    pub setting: String,
    /// Flow throughputs in Mbit/s.
    pub flows: (f64, f64),
}

impl AblationRow {
    /// max/min ratio.
    pub fn ratio(&self) -> f64 {
        let (a, b) = self.flows;
        a.max(b) / a.min(b).max(1e-9)
    }
}

/// All ablation results.
pub struct AblationsReport {
    /// Every row, grouped by `group`.
    pub rows: Vec<AblationRow>,
}

// ---- 1. BBR quanta ----

/// The §5.2 cwnd-limited fixed-point iteration, verbatim: each flow's ACK
/// rate is `C·cwnd_i/Σcwnd` (FIFO sharing), its bandwidth estimate tracks
/// that rate, and `cwnd_i ← 2·Rm·bw_i + α`. Starting from a 90/10 split,
/// the `+α` term pulls the windows together; with `α = 0` *every* split
/// with `Σcwnd = 2·Rm·C` is a fixed point and the split freezes — the
/// paper's "even cwnd₁ = 0 and cwnd₂ = 2RmC" observation.
pub fn bbr_quanta_fixed_point(with_quanta: bool) -> AblationRow {
    let c = Rate::from_mbps(96.0).bytes_per_sec();
    let rm = 0.050f64;
    let alpha = if with_quanta { 3.0 * 1500.0 } else { 0.0 };
    // Start from a 90/10 split of the pipe's 2·Rm·C bytes.
    let total = 2.0 * rm * c;
    let mut w = [0.9 * total, 0.1 * total];
    for _ in 0..2000 {
        let sum = w[0] + w[1];
        for wi in &mut w {
            let bw = c * (*wi / sum);
            *wi = 2.0 * rm * bw + alpha;
        }
    }
    // Report the implied steady sending rates (share of C), in Mbit/s.
    let sum = w[0] + w[1];
    let to_mbps = |wi: f64| c * (wi / sum) * 8.0 / 1e6;
    AblationRow {
        group: "bbr-quanta",
        setting: if with_quanta {
            "with +quanta (fixed-point iteration)"
        } else {
            "without +quanta (fixed-point iteration)"
        }
        .into(),
        flows: (to_mbps(w[0]), to_mbps(w[1])),
    }
}

// ---- 2. Copa poison magnitude ----

fn copa_poison_case(poison_ms: f64, secs: u64) -> AblationRow {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let rm_poisoned = Dur::from_millis(60) - Dur::from_millis_f64(poison_ms);
    let poisoned = FlowConfig::bulk(Box::new(cca::Copa::default_params()), rm_poisoned)
        .with_jitter(Jitter::ExtraExcept {
            extra: Dur::from_millis_f64(poison_ms),
            period: 5_000,
            offset: 0,
        });
    let clean = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60));
    let r = Network::new(SimConfig::new(
        link,
        vec![poisoned, clean],
        Dur::from_secs(secs),
    ))
    .run();
    AblationRow {
        group: "copa-poison",
        setting: format!("{poison_ms} ms"),
        flows: (
            r.flows[0].throughput_at(r.end).mbps(),
            r.flows[1].throughput_at(r.end).mbps(),
        ),
    }
}

// ---- 3. Algorithm 1 design margin ----

fn algo1_margin_case(actual_jitter_ms: u64, secs: u64) -> AblationRow {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let rm = Dur::from_millis(50);
    let mk = || -> BoxCca {
        let mut cfg = JitterAwareConfig::example(rm); // designed for D = 10 ms
        cfg.a = Rate::from_mbps(0.4);
        Box::new(cca::JitterAware::new(cfg))
    };
    let jittered = FlowConfig::bulk(mk(), rm).with_jitter(Jitter::Random {
        max: Dur::from_millis(actual_jitter_ms),
        rng: Xoshiro256::new(11),
    });
    let clean = FlowConfig::bulk(mk(), rm);
    let r = Network::new(SimConfig::new(link, vec![jittered, clean], Dur::from_secs(secs))).run();
    let half = Time(r.end.as_nanos() / 2);
    AblationRow {
        group: "algo1-margin",
        setting: format!("actual jitter {actual_jitter_ms} ms (designed 10 ms)"),
        flows: (
            r.flows[0].throughput_over(half, r.end).mbps(),
            r.flows[1].throughput_over(half, r.end).mbps(),
        ),
    }
}

// ---- 4. AIMD-on-delay threshold ----

fn delay_aimd_case(q_hi_ms: u64, secs: u64) -> AblationRow {
    let rm = Dur::from_millis(50);
    let mk = || -> BoxCca {
        Box::new(cca::DelayAimd::new(DelayAimdConfig {
            rm,
            q_hi: Dur::from_millis(q_hi_ms),
            q_lo: Dur::from_millis(q_hi_ms / 4),
            a: Rate::from_mbps(0.5),
            b: 0.7,
        }))
    };
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let jittered = FlowConfig::bulk(mk(), rm).with_jitter(Jitter::Random {
        max: Dur::from_millis(10),
        rng: Xoshiro256::new(11),
    });
    let clean = FlowConfig::bulk(mk(), rm);
    let r = Network::new(SimConfig::new(link, vec![jittered, clean], Dur::from_secs(secs))).run();
    let half = Time(r.end.as_nanos() / 2);
    AblationRow {
        group: "delay-aimd-threshold",
        setting: format!("q_hi = {q_hi_ms} ms (jitter 10 ms)"),
        flows: (
            r.flows[0].throughput_over(half, r.end).mbps(),
            r.flows[1].throughput_over(half, r.end).mbps(),
        ),
    }
}

/// Run all four ablations.
pub fn run(quick: bool) -> AblationsReport {
    let secs = if quick { 40 } else { 90 };
    let mut rows = Vec::new();
    rows.push(bbr_quanta_fixed_point(true));
    rows.push(bbr_quanta_fixed_point(false));
    for poison in [0.5, 1.0, 2.0, 4.0] {
        rows.push(copa_poison_case(poison, secs.min(60)));
    }
    for jit in [5, 10, 20, 40] {
        rows.push(algo1_margin_case(jit, secs.min(60)));
    }
    for q_hi in [5, 20] {
        rows.push(delay_aimd_case(q_hi, secs.min(60)));
    }
    AblationsReport { rows }
}

impl AblationsReport {
    /// Rows of one group.
    pub fn group(&self, name: &str) -> Vec<&AblationRow> {
        self.rows.iter().filter(|r| r.group == name).collect()
    }

    /// Render everything.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "ablation",
            "setting",
            "flow A (Mbit/s)",
            "flow B (Mbit/s)",
            "ratio",
        ]);
        for r in &self.rows {
            t.row(&[
                r.group.into(),
                r.setting.clone(),
                fnum(r.flows.0),
                fnum(r.flows.1),
                fnum(r.ratio()),
            ]);
        }
        t
    }
}

impl fmt::Display for AblationsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations of the paper's design claims")?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copa_poison_ratio_grows_with_magnitude() {
        let small = copa_poison_case(0.5, 25);
        let large = copa_poison_case(4.0, 25);
        assert!(
            large.ratio() > small.ratio(),
            "0.5ms → {:.1}, 4ms → {:.1}",
            small.ratio(),
            large.ratio()
        );
        // 4 ms of phantom queue caps the victim near 1/(0.5·4 ms) = 6 Mbit/s.
        assert!(large.flows.0 < 15.0, "victim={}", large.flows.0);
    }

    #[test]
    fn algo1_fair_at_design_point_degrades_beyond() {
        let at_design = algo1_margin_case(10, 40);
        let beyond = algo1_margin_case(40, 40);
        assert!(at_design.ratio() < 3.0, "at design: {:.2}", at_design.ratio());
        assert!(
            beyond.ratio() > at_design.ratio(),
            "design {:.2} vs beyond {:.2}",
            at_design.ratio(),
            beyond.ratio()
        );
    }

    #[test]
    fn bbr_quanta_restores_convergence() {
        // §5.2's unique-fixed-point argument, verbatim: with +α the 90/10
        // split converges to fair; without it the split never moves.
        let with = bbr_quanta_fixed_point(true);
        let without = bbr_quanta_fixed_point(false);
        assert!(with.ratio() < 1.05, "with quanta: ratio={:.3}", with.ratio());
        assert!(
            without.ratio() > 8.5,
            "without quanta: ratio={:.3} (should stay ≈ 9)",
            without.ratio()
        );
    }
}

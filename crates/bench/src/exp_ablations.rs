//! Ablations of the design choices the paper's analysis singles out
//! (DESIGN.md's ablation index):
//!
//! 1. **BBR's `+quanta` term** (§5.2): the paper argues the additive `α`
//!    in `cwnd = 2·BtlBw·RTprop + α` is what gives the cwnd-limited mode a
//!    unique fair fixed point — "if we remove the +α term … any value of
//!    cwnd₁ and cwnd₂ can be a fixed point". Two same-`Rm` BBR flows, the
//!    second starting late: with quanta the latecomer claws back a share;
//!    without it the initial split freezes.
//! 2. **Copa poison magnitude** (§4.1's arithmetic): the starved flow's
//!    ceiling is `1/(δ·q̂)`, so doubling the phantom queueing delay `q̂`
//!    should roughly double the starvation ratio.
//! 3. **Algorithm 1's design margin** (§6.3 / Theorem 1's boundary): a CCA
//!    designed for jitter `D` stays `s`-fair while the actual jitter is
//!    ≤ `D` and degrades once the actual jitter exceeds the design point —
//!    the impossibility result reasserting itself.
//! 4. **AIMD-on-delay threshold** (§6.2): with the MD threshold *below*
//!    the jitter bound the oscillation no longer dominates the ambiguity
//!    and fairness degrades; at `2·D` it holds.

use crate::table::{fnum, TextTable};
use cca::delay_aimd::DelayAimdConfig;
use cca::jitter_aware::JitterAwareConfig;
use cca::BoxCca;
#[cfg(test)]
use netsim::Network;
use netsim::{FlowConfig, Jitter, LinkConfig, SimConfig, SimResult};
use simcore::par;
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};
use starvation::sweep::{Sweep, SweepJob};
use std::fmt;

/// One ablation row: configuration label and the two flows' throughputs.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which ablation this row belongs to.
    pub group: &'static str,
    /// The varied parameter, rendered.
    pub setting: String,
    /// Flow throughputs in Mbit/s.
    pub flows: (f64, f64),
}

impl AblationRow {
    /// max/min ratio.
    pub fn ratio(&self) -> f64 {
        let (a, b) = self.flows;
        a.max(b) / a.min(b).max(1e-9)
    }
}

/// All ablation results.
pub struct AblationsReport {
    /// Every row, grouped by `group`.
    pub rows: Vec<AblationRow>,
}

// ---- 1. BBR quanta ----

/// The §5.2 cwnd-limited fixed-point iteration, verbatim: each flow's ACK
/// rate is `C·cwnd_i/Σcwnd` (FIFO sharing), its bandwidth estimate tracks
/// that rate, and `cwnd_i ← 2·Rm·bw_i + α`. Starting from a 90/10 split,
/// the `+α` term pulls the windows together; with `α = 0` *every* split
/// with `Σcwnd = 2·Rm·C` is a fixed point and the split freezes — the
/// paper's "even cwnd₁ = 0 and cwnd₂ = 2RmC" observation.
pub fn bbr_quanta_fixed_point(with_quanta: bool) -> AblationRow {
    let c = Rate::from_mbps(96.0).bytes_per_sec();
    let rm = 0.050f64;
    let alpha = if with_quanta { 3.0 * 1500.0 } else { 0.0 };
    // Start from a 90/10 split of the pipe's 2·Rm·C bytes.
    let total = 2.0 * rm * c;
    let mut w = [0.9 * total, 0.1 * total];
    for _ in 0..2000 {
        let sum = w[0] + w[1];
        for wi in &mut w {
            let bw = c * (*wi / sum);
            *wi = 2.0 * rm * bw + alpha;
        }
    }
    // Report the implied steady sending rates (share of C), in Mbit/s.
    let sum = w[0] + w[1];
    let to_mbps = |wi: f64| c * (wi / sum) * 8.0 / 1e6;
    AblationRow {
        group: "bbr-quanta",
        setting: if with_quanta {
            "with +quanta (fixed-point iteration)"
        } else {
            "without +quanta (fixed-point iteration)"
        }
        .into(),
        flows: (to_mbps(w[0]), to_mbps(w[1])),
    }
}

// ---- 2–4: the simulated ablations, as sweep cases ----

/// How a case reads its throughputs off the finished run.
#[derive(Clone, Copy)]
enum Window {
    /// Whole-run throughput (Copa's poison accumulates from the start).
    Full,
    /// Second-half throughput (skip convergence transients).
    SecondHalf,
}

/// One simulated ablation case: report metadata plus the scenario.
struct Case {
    group: &'static str,
    setting: String,
    window: Window,
    config: SimConfig,
}

impl Case {
    fn row(&self, r: &SimResult) -> AblationRow {
        let tput = |i: usize| match self.window {
            Window::Full => r.flows[i].throughput_at(r.end).mbps(),
            Window::SecondHalf => {
                let half = Time(r.end.as_nanos() / 2);
                r.flows[i].throughput_over(half, r.end).mbps()
            }
        };
        AblationRow {
            group: self.group,
            setting: self.setting.clone(),
            flows: (tput(0), tput(1)),
        }
    }

    /// Build and run serially (unit tests probe single cases).
    #[cfg(test)]
    fn run_serial(&self) -> AblationRow {
        let r = Network::new(self.config.clone()).run();
        self.row(&r)
    }
}

fn copa_poison_spec(poison_ms: f64, secs: u64) -> Case {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let rm_poisoned = Dur::from_millis(60) - Dur::from_millis_f64(poison_ms);
    let poisoned = FlowConfig::bulk(Box::new(cca::Copa::default_params()), rm_poisoned)
        .with_jitter(Jitter::ExtraExcept {
            extra: Dur::from_millis_f64(poison_ms),
            period: 5_000,
            offset: 0,
        });
    let clean = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60));
    Case {
        group: "copa-poison",
        setting: format!("{poison_ms} ms"),
        window: Window::Full,
        config: SimConfig::new(link, vec![poisoned, clean], Dur::from_secs(secs)),
    }
}

#[cfg(test)]
fn copa_poison_case(poison_ms: f64, secs: u64) -> AblationRow {
    copa_poison_spec(poison_ms, secs).run_serial()
}

fn algo1_margin_spec(actual_jitter_ms: u64, secs: u64) -> Case {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let rm = Dur::from_millis(50);
    let mk = || -> BoxCca {
        let mut cfg = JitterAwareConfig::example(rm); // designed for D = 10 ms
        cfg.a = Rate::from_mbps(0.4);
        Box::new(cca::JitterAware::new(cfg))
    };
    let jittered = FlowConfig::bulk(mk(), rm).with_jitter(Jitter::Random {
        max: Dur::from_millis(actual_jitter_ms),
        rng: Xoshiro256::new(11),
    });
    let clean = FlowConfig::bulk(mk(), rm);
    Case {
        group: "algo1-margin",
        setting: format!("actual jitter {actual_jitter_ms} ms (designed 10 ms)"),
        window: Window::SecondHalf,
        config: SimConfig::new(link, vec![jittered, clean], Dur::from_secs(secs)),
    }
}

#[cfg(test)]
fn algo1_margin_case(actual_jitter_ms: u64, secs: u64) -> AblationRow {
    algo1_margin_spec(actual_jitter_ms, secs).run_serial()
}

fn delay_aimd_spec(q_hi_ms: u64, secs: u64) -> Case {
    let rm = Dur::from_millis(50);
    let mk = || -> BoxCca {
        Box::new(cca::DelayAimd::new(DelayAimdConfig {
            rm,
            q_hi: Dur::from_millis(q_hi_ms),
            q_lo: Dur::from_millis(q_hi_ms / 4),
            a: Rate::from_mbps(0.5),
            b: 0.7,
        }))
    };
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let jittered = FlowConfig::bulk(mk(), rm).with_jitter(Jitter::Random {
        max: Dur::from_millis(10),
        rng: Xoshiro256::new(11),
    });
    let clean = FlowConfig::bulk(mk(), rm);
    Case {
        group: "delay-aimd-threshold",
        setting: format!("q_hi = {q_hi_ms} ms (jitter 10 ms)"),
        window: Window::SecondHalf,
        config: SimConfig::new(link, vec![jittered, clean], Dur::from_secs(secs)),
    }
}

/// Run all four ablations using every available core.
pub fn run(quick: bool) -> AblationsReport {
    run_with(quick, par::available_jobs())
}

/// Run all four ablations, the simulated cases across `jobs` workers on the
/// shared sweep engine. The fixed-point iteration (group 1) is pure
/// arithmetic and stays serial; row order matches the serial harness.
pub fn run_with(quick: bool, jobs: usize) -> AblationsReport {
    let secs = if quick { 40u64 } else { 90 };
    let mut cases: Vec<Case> = Vec::new();
    for poison in [0.5, 1.0, 2.0, 4.0] {
        cases.push(copa_poison_spec(poison, secs.min(60)));
    }
    for jit in [5, 10, 20, 40] {
        cases.push(algo1_margin_spec(jit, secs.min(60)));
    }
    for q_hi in [5, 20] {
        cases.push(delay_aimd_spec(q_hi, secs.min(60)));
    }
    let job_list: Vec<SweepJob> = cases
        .iter()
        .map(|c| SweepJob::new(format!("{}/{}", c.group, c.setting), c.config.clone()))
        .collect();
    let report = Sweep::new("ablations").jobs(jobs).run(job_list);

    let mut rows = vec![bbr_quanta_fixed_point(true), bbr_quanta_fixed_point(false)];
    rows.extend(
        cases
            .iter()
            .zip(&report.rows)
            .map(|(case, row)| case.row(row.result())),
    );
    AblationsReport { rows }
}

impl AblationsReport {
    /// Rows of one group.
    pub fn group(&self, name: &str) -> Vec<&AblationRow> {
        self.rows.iter().filter(|r| r.group == name).collect()
    }

    /// Render everything.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "ablation",
            "setting",
            "flow A (Mbit/s)",
            "flow B (Mbit/s)",
            "ratio",
        ]);
        for r in &self.rows {
            t.row(&[
                r.group.into(),
                r.setting.clone(),
                fnum(r.flows.0),
                fnum(r.flows.1),
                fnum(r.ratio()),
            ]);
        }
        t
    }
}

impl fmt::Display for AblationsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations of the paper's design claims")?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copa_poison_ratio_grows_with_magnitude() {
        let small = copa_poison_case(0.5, 25);
        let large = copa_poison_case(4.0, 25);
        assert!(
            large.ratio() > small.ratio(),
            "0.5ms → {:.1}, 4ms → {:.1}",
            small.ratio(),
            large.ratio()
        );
        // 4 ms of phantom queue caps the victim near 1/(0.5·4 ms) = 6 Mbit/s.
        assert!(large.flows.0 < 15.0, "victim={}", large.flows.0);
    }

    #[test]
    fn algo1_fair_at_design_point_degrades_beyond() {
        let at_design = algo1_margin_case(10, 40);
        let beyond = algo1_margin_case(40, 40);
        assert!(at_design.ratio() < 3.0, "at design: {:.2}", at_design.ratio());
        assert!(
            beyond.ratio() > at_design.ratio(),
            "design {:.2} vs beyond {:.2}",
            at_design.ratio(),
            beyond.ratio()
        );
    }

    #[test]
    fn bbr_quanta_restores_convergence() {
        // §5.2's unique-fixed-point argument, verbatim: with +α the 90/10
        // split converges to fair; without it the split never moves.
        let with = bbr_quanta_fixed_point(true);
        let without = bbr_quanta_fixed_point(false);
        assert!(with.ratio() < 1.05, "with quanta: ratio={:.3}", with.ratio());
        assert!(
            without.ratio() > 8.5,
            "without quanta: ratio={:.3} (should stay ≈ 9)",
            without.ratio()
        );
    }
}

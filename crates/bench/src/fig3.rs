//! Figure 3: rate–delay graphs for the real delay-bounding CCAs —
//! Vegas/FAST, Copa, BBR, PCC Vivace — at `Rm` = 100 ms over link rates
//! 0.1 → 100 Mbit/s.
//!
//! The paper's analytic curves this reproduces:
//!
//! * Vegas and FAST: `d = Rm + α/C` (a line, `δ(C) = 0`);
//! * Copa: a band of width `4α/C` around `Rm + 2α/(δ_copa·C)`;
//! * BBR: pacing-limited band `[Rm, 1.25·Rm]`; cwnd-limited line
//!   `2·Rm + α/C`;
//! * PCC Vivace: band `[Rm, 1.05·Rm]`.
//!
//! Delay rises as `C → 0` for every CCA (the unavoidable `1/C`
//! transmission delay).

use crate::table::{fnum, TextTable};
use cca::{factory, CcaFactory};
use simcore::units::Dur;
use starvation::profiler::{log_sweep, profile_rate_delay, ProfilePoint};
use std::fmt;

/// One CCA's profiled panel.
pub struct Panel {
    /// Panel name as in the figure.
    pub name: &'static str,
    /// Measured sweep.
    pub points: Vec<ProfilePoint>,
}

/// The regenerated figure.
pub struct Fig3Report {
    /// One panel per CCA.
    pub panels: Vec<Panel>,
    /// Propagation RTT (the figure uses 100 ms).
    pub rm_ms: f64,
}

fn panel(name: &'static str, f: CcaFactory, quick: bool) -> Panel {
    let (n, dur, lo) = if quick { (4, 22, 1.0) } else { (8, 40, 0.1) };
    let rates = log_sweep(lo, 100.0, n);
    let points = profile_rate_delay(&f, &rates, Dur::from_millis(100), Dur::from_secs(dur));
    Panel { name, points }
}

/// Profile all four panels.
pub fn run(quick: bool) -> Fig3Report {
    let panels = vec![
        panel(
            "Vegas/FAST",
            factory(|| Box::new(cca::Vegas::new(1500, 4.0, 4.0))),
            quick,
        ),
        panel("Copa", factory(|| Box::new(cca::Copa::default_params())), quick),
        panel("BBR", factory(|| Box::new(cca::Bbr::default_params())), quick),
        panel(
            "PCC Vivace",
            factory(|| Box::new(cca::Vivace::default_params())),
            quick,
        ),
    ];
    Fig3Report {
        panels,
        rm_ms: 100.0,
    }
}

impl Fig3Report {
    /// Render one combined table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "CCA",
            "C (Mbit/s)",
            "d_min (ms)",
            "d_max (ms)",
            "delta (ms)",
            "util",
        ]);
        for p in &self.panels {
            for pt in &p.points {
                t.row(&[
                    p.name.to_string(),
                    fnum(pt.rate.mbps()),
                    fnum(pt.convergence.d_min * 1e3),
                    fnum(pt.convergence.d_max * 1e3),
                    fnum(pt.convergence.delta() * 1e3),
                    fnum(pt.utilization),
                ]);
            }
        }
        t
    }
}

impl fmt::Display for Fig3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3 — rate–delay graphs of real delay-bounding CCAs, Rm = {} ms",
            self.rm_ms
        )?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vegas_panel_sits_on_alpha_over_c_line() {
        let p = panel(
            "Vegas/FAST",
            factory(|| Box::new(cca::Vegas::new(1500, 4.0, 4.0))),
            true,
        );
        for pt in &p.points {
            // d_max ≈ Rm + (≈α pkts + 1 tx)·pkt/C, α = 4.
            let pkt = 1500.0 * 8.0 / pt.rate.bps();
            let predict = 0.100 + 4.0 * pkt;
            assert!(
                (pt.convergence.d_max - predict).abs() < 3.0 * pkt + 0.002,
                "C={} d_max={} predict={}",
                pt.rate,
                pt.convergence.d_max,
                predict
            );
        }
    }

    #[test]
    fn delta_small_for_delay_convergent_ccas() {
        let r = run(true);
        for panel in &r.panels {
            // At the highest rate each CCA's band is narrow relative to Rm.
            let last = panel.points.last().expect(panel.name);
            assert!(
                last.convergence.delta() < 0.5 * 0.100,
                "{}: delta={}",
                panel.name,
                last.convergence.delta()
            );
        }
    }
}

//! Seed-robustness sweep: the §5 starvation results should not hinge on
//! one lucky random stream. Each scenario runs across several seeds for
//! every randomized component (CCA probe phasing, jitter, loss); we report
//! the min / median / max starvation ratio.
//!
//! (The §5.1 Copa scenario has no randomness at all — it is bit-identical
//! across runs — so it needs no sweep.)
//!
//! The scenario × seed grid runs on the shared sweep engine
//! ([`starvation::sweep`]): one job per (scenario, seed), executed across
//! `--jobs` workers with result order preserved, so the published table is
//! byte-identical at any worker count.

use crate::table::{fnum, TextTable};
use netsim::{AckPolicy, FlowConfig, Jitter, LinkConfig, SimConfig, SimResult};
use simcore::par;
use simcore::rng::Xoshiro256;
use simcore::stats::Summary;
use simcore::units::{Dur, Rate};
use starvation::sweep::{Sweep, SweepJob};
use std::fmt;

/// One scenario's ratio distribution over seeds.
#[derive(Clone, Debug)]
pub struct SeedRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Starved-over-other ratio per seed.
    pub ratios: Vec<f64>,
}

impl SeedRow {
    /// Distribution summary.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.ratios).expect("non-empty")
    }
}

/// The sweep's results.
pub struct SeedsReport {
    /// One row per scenario.
    pub rows: Vec<SeedRow>,
}

fn bbr_config(seed: u64, secs: u64) -> SimConfig {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let mk = |rm_ms: u64, s: u64| {
        FlowConfig::bulk(Box::new(cca::Bbr::new(1500, s)), Dur::from_millis(rm_ms)).with_jitter(
            Jitter::Random {
                max: Dur::from_millis(2),
                rng: Xoshiro256::new(s * 7 + 1),
            },
        )
    };
    SimConfig::new(
        link,
        vec![mk(40, seed * 2 + 1), mk(80, seed * 2 + 2)],
        Dur::from_secs(secs),
    )
}

fn vivace_config(seed: u64, secs: u64) -> SimConfig {
    let rm = Dur::from_millis(60);
    let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
    let quantized = FlowConfig::bulk(Box::new(cca::Vivace::new(seed * 2 + 1)), rm)
        .with_transport(netsim::Transport::Datagram)
        .with_ack_policy(AckPolicy::Quantized {
            period: Dur::from_millis(60),
        });
    let clean = FlowConfig::bulk(Box::new(cca::Vivace::new(seed * 2 + 2)), rm).with_transport(netsim::Transport::Datagram);
    SimConfig::new(link, vec![quantized, clean], Dur::from_secs(secs))
}

fn allegro_config(seed: u64, secs: u64) -> SimConfig {
    let link = LinkConfig::bdp_buffer(Rate::from_mbps(120.0), Dur::from_millis(40), 1.0);
    let lossy = FlowConfig::bulk(
        Box::new(cca::Allegro::new(seed * 2 + 1)),
        Dur::from_millis(40),
    )
    .with_transport(netsim::Transport::Datagram)
    .with_loss(0.02, seed * 13 + 7);
    let clean = FlowConfig::bulk(
        Box::new(cca::Allegro::new(seed * 2 + 2)),
        Dur::from_millis(40),
    )
    .with_transport(netsim::Transport::Datagram);
    SimConfig::new(link, vec![lossy, clean], Dur::from_secs(secs))
}

/// Starved-over-other throughput ratio at the end of the run.
fn end_ratio(r: &SimResult) -> f64 {
    r.flows[1].throughput_at(r.end).mbps() / r.flows[0].throughput_at(r.end).mbps()
}

/// A scenario constructor: `(seed, secs) → SimConfig`.
type MkScenario = fn(u64, u64) -> SimConfig;

/// The sweep's scenarios, in publication order.
const SCENARIOS: [(&str, MkScenario); 3] = [
    ("BBR Rm 40/80 ms (§5.2)", bbr_config),
    ("Vivace ACK quantization (§5.3)", vivace_config),
    ("Allegro asymmetric loss (§5.4)", allegro_config),
];

/// Run each randomized scenario over `n` seeds, using every available core.
pub fn run(quick: bool) -> SeedsReport {
    run_with(quick, par::available_jobs())
}

/// Run the sweep across `jobs` workers.
pub fn run_with(quick: bool, jobs: usize) -> SeedsReport {
    let (n, secs) = if quick { (3u64, 40) } else { (5u64, 60) };
    let job_list: Vec<SweepJob> = SCENARIOS
        .iter()
        .flat_map(|(name, mk)| {
            (0..n).map(move |s| SweepJob::new(format!("{name}/seed{s}"), mk(s, secs)))
        })
        .collect();
    let report = Sweep::new("seeds").jobs(jobs).run(job_list);
    let rows = SCENARIOS
        .iter()
        .enumerate()
        .map(|(i, (name, _))| SeedRow {
            scenario: name,
            ratios: report.rows[i * n as usize..(i + 1) * n as usize]
                .iter()
                .map(|row| end_ratio(row.result()))
                .collect(),
        })
        .collect();
    SeedsReport { rows }
}

impl SeedsReport {
    /// Render the distribution table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&["scenario", "seeds", "min", "median", "max"]);
        for r in &self.rows {
            let s = r.summary();
            t.row(&[
                r.scenario.into(),
                s.n.to_string(),
                fnum(s.min),
                fnum(s.p50),
                fnum(s.max),
            ]);
        }
        t
    }
}

impl fmt::Display for SeedsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Seed-robustness: starvation ratio distributions across random streams"
        )?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starvation_holds_across_seeds() {
        let r = run(true);
        for row in &r.rows {
            let s = row.summary();
            if row.scenario.contains("Allegro") {
                // Allegro's RCT noise makes its outcome stochastic: the
                // lossy flow starves in most streams, but the noise-blinded
                // variant occasionally bullies instead (see EXPERIMENTS.md).
                // Require the majority direction.
                assert!(s.p50 > 1.2, "{}: median ratio={}", row.scenario, s.p50);
            } else {
                // BBR and Vivace starve in *every* stream.
                assert!(s.min > 2.0, "{}: min ratio={}", row.scenario, s.min);
            }
        }
    }
}

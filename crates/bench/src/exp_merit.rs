//! §6.3 — the figure-of-merit comparison: how large a rate range (`µ₊/µ₋`)
//! each rate–delay mapping supports while staying `s`-fair under jitter
//! `D`, with maximum tolerable delay `Rmax`.
//!
//! Paper's examples: with `D` = 10 ms, `Rmax` = 100 ms — `s` = 2 gives
//! ≈ 2¹⁰ ≈ 10³ for the exponential mapping and only `O(Rmax/D)` = O(10)
//! for the Vegas family; `s` = 4 gives ≈ 10⁶.

use crate::table::{fnum, TextTable};
use simcore::par;
use simcore::units::Dur;
use starvation::merit::{merit_table, MeritRow};
use std::fmt;

/// The comparison table.
pub struct MeritReport {
    /// One row per `(D, s)` case.
    pub rows: Vec<MeritRow>,
}

/// Build the table for the paper's parameter choices.
pub fn run(quick: bool) -> MeritReport {
    run_with(quick, par::available_jobs())
}

/// Build the table, one `(D, s)` case per job across `jobs` workers. The
/// evaluation is closed-form arithmetic, so this is a demonstration of the
/// pool on non-simulation work more than an optimization; row order matches
/// the serial table either way.
pub fn run_with(_quick: bool, jobs: usize) -> MeritReport {
    let rmax = Dur::from_millis(100);
    let rm = Dur::from_millis(0); // the paper's example measures Rmax from Rm
    let cases = vec![
        (Dur::from_millis(10), 2.0),
        (Dur::from_millis(10), 4.0),
        (Dur::from_millis(5), 2.0),
        (Dur::from_millis(20), 2.0),
        (Dur::from_millis(10), 1.5),
    ];
    let rows = par::map(
        cases,
        jobs,
        |_i, case| {
            merit_table(rmax, rm, &[case])
                .pop()
                .expect("one case in, one row out")
        },
        None,
    )
    .into_iter()
    .map(|report| report.outcome.expect("merit row"))
    .collect();
    MeritReport { rows }
}

impl MeritReport {
    /// Render.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "D (ms)",
            "s",
            "Vegas family (Eq. 1)",
            "exponential (Eq. 2)",
            "advantage",
        ]);
        for r in &self.rows {
            t.row(&[
                fnum(r.d.as_millis_f64()),
                fnum(r.s),
                fnum(r.vegas),
                fnum(r.exponential),
                fnum(r.exponential / r.vegas),
            ]);
        }
        t
    }
}

impl fmt::Display for MeritReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§6.3 — figure of merit µ+/µ− (Rmax = 100 ms above Rm)"
        )?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cases_present_and_ordered() {
        let r = run(true);
        // D = 10 ms, s = 2 → 2⁹ = 512 (paper quotes "2¹⁰ ≈ 10³").
        let row = &r.rows[0];
        assert!((row.exponential - 512.0).abs() < 1e-6);
        // s = 4 case is ≈ 4⁹ ≈ 2.6e5 (paper: "≈ 10⁶" with their rounding).
        assert!(r.rows[1].exponential > 1e5);
        // Exponential always beats the Vegas family by a wide margin.
        for row in &r.rows {
            assert!(row.exponential > 5.0 * row.vegas);
        }
    }
}

//! `repro` — regenerate every table and figure of *Starvation in
//! End-to-End Congestion Control* (SIGCOMM 2022).
//!
//! ```text
//! repro <subcommand> [--quick] [--jobs N] [--progress]
//!
//!   glossary   Table 1
//!   fig1       ideal-path RTT trajectory (Copa)
//!   fig2       rate–delay graph of a delay-convergent CCA (Vegas)
//!   fig3       rate–delay graphs: Vegas/FAST, Copa, BBR, PCC Vivace
//!   thm        Theorems 1–3 constructions + Figures 4, 5, 6
//!   fig7       Reno/Cubic with delayed ACKs
//!   copa       §5.1 Copa min-RTT poisoning
//!   bbr        §5.2 BBR cwnd-limited starvation
//!   vivace     §5.3 Vivace ACK quantization
//!   allegro    §5.4 Allegro asymmetric loss
//!   merit      §6.3 figure-of-merit table
//!   algo1      §6.3 Algorithm 1 vs Vegas under jitter
//!   ccmc       Appendix C model-checker queries
//!   ablations  design-choice ablations (BBR quanta, Copa poison sweep,
//!              Algorithm 1 design margin, AIMD-on-delay threshold)
//!   ecn        §6.4: ECN-reactive vs loss-reactive AIMD under asymmetric loss
//!   boundary   the D vs 2δ phase diagram (oscillation × jitter sweep)
//!   seeds      seed-robustness sweep of the randomized §5 scenarios
//!   sweep      incremental scenario-grid demo (CCA × rate × jitter ×
//!              seed); rows persist content-addressed in results/store,
//!              re-runs execute only missing rows, killed sweeps resume
//!              ([--fresh] [--store DIR])
//!   report     query the result store: filter by grid coordinates,
//!              render table/CSV/JSON ([--store DIR] [--cca NAME]
//!              [--jitter-ms X] [--rate-mbps X] [--seed N]
//!              [--format table|csv|json] [--out FILE])
//!   trace      stream a canonical scenario's audited event trace as
//!              JSON-lines into results/trace/<scenario>.jsonl
//!              (scenarios: reno-ideal, copa-jitter, bbr-two-flow,
//!              vivace-lossy, workload-1k)
//!   lint       run the simlint workspace invariant checks
//!              ([--json] [--deny-warnings]; exits 1 on findings)
//!   fuzz       coverage-guided scenario fuzzing with the runtime
//!              invariant auditor as the bug oracle ([--seed N]
//!              [--count N] [--out DIR] [--replay FILE]; seeds from
//!              tests/scenarios/, writes coverage.txt, findings.jsonl
//!              and minimal finding-NNN.scn reproducers into the out
//!              dir; exits 1 on findings; --quick caps the run for CI)
//!   perfbench  hot-path performance suite (EventQueue micro-benches,
//!              canonical-scenario, workload-10k and sweep macro-benches);
//!              appends labelled records to BENCH_netsim.json at the repo
//!              root, or to target/perfbench-quick.json under --quick
//!              ([--label NAME], default "dev"; --check validates the
//!              committed file's schema, rejects quick-mode records, and
//!              exits without benchmarking)
//!   all        everything above (CSV into results/; excludes lint and
//!              perfbench)
//!
//! --jobs N     worker threads for the sweep-engine experiments
//!              (default: available parallelism; CSV output is
//!              byte-identical at any N)
//! --progress   log each sweep job's completion to stderr
//! --audit      run every sweep-engine scenario under the runtime
//!              invariant auditor (an invariant violation fails the row)
//! ```

use repro::table::TextTable;
use repro::*;
use simcore::par;

fn save(t: &TextTable, name: &str) {
    let path = result_path(name);
    if let Err(e) = t.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  → {}", path.display());
    }
}

fn run_glossary() {
    println!("Table 1 — glossary of symbols");
    let mut t = TextTable::new(&["symbol", "meaning"]);
    for s in starvation::glossary::TABLE1 {
        t.row(&[s.symbol.to_string(), s.meaning.to_string()]);
    }
    println!("{}", t.render());
}

fn run_fig1(quick: bool) {
    let r = fig1::run(quick);
    println!("{r}");
    let mut t = TextTable::new(&["t (s)", "rtt (ms)"]);
    for (ts, rtt) in &r.series {
        t.row(&[format!("{ts:.3}"), format!("{rtt:.4}")]);
    }
    save(&t, "fig1.csv");
}

fn run_fig2(quick: bool) {
    let r = fig2::run(quick);
    println!("{r}");
    save(&r.table(), "fig2.csv");
}

fn run_fig3(quick: bool) {
    let r = fig3::run(quick);
    println!("{r}");
    save(&r.table(), "fig3.csv");
}

fn run_thm(quick: bool) {
    let r = exp_theorems::run(quick);
    println!("{r}");
    save(&r.fig4_table(), "fig4.csv");
    let mut t = TextTable::new(&[
        "t (s)",
        "d1 (ms)",
        "d2 (ms)",
        "d_star (ms)",
        "eta1 (ms)",
        "eta2 (ms)",
    ]);
    for (ts, d1, d2, ds, e1, e2) in r.fig56_series(400) {
        t.row(&[
            format!("{ts:.3}"),
            format!("{d1:.4}"),
            format!("{d2:.4}"),
            format!("{ds:.4}"),
            format!("{e1:.4}"),
            format!("{e2:.4}"),
        ]);
    }
    save(&t, "fig5_fig6.csv");
    save(&r.thm3_table(), "thm3.csv");
}

fn run_fig7(quick: bool) {
    let r = fig7::run(quick);
    println!("{r}");
    save(&r.table(), "fig7.csv");
    let mut t = TextTable::new(&["cca", "flow", "t (s)", "cwnd (pkts)"]);
    for row in &r.rows {
        for (ts, w) in &row.cwnd_clean {
            t.row(&[row.cca.into(), "clean".into(), format!("{ts:.2}"), format!("{w:.1}")]);
        }
        for (ts, w) in &row.cwnd_delayed {
            t.row(&[row.cca.into(), "delayed".into(), format!("{ts:.2}"), format!("{w:.1}")]);
        }
    }
    save(&t, "fig7_cwnd.csv");
}

fn run_copa(quick: bool) {
    let r = exp_copa::run(quick);
    println!("{r}");
    save(&r.table(), "copa.csv");
}

fn run_bbr(quick: bool) {
    let r = exp_bbr::run(quick);
    println!("{r}");
    save(&r.table(), "bbr.csv");
}

fn run_vivace(quick: bool) {
    let r = exp_vivace::run(quick);
    println!("{r}");
    save(&r.table(), "vivace.csv");
}

fn run_allegro(quick: bool) {
    let r = exp_allegro::run(quick);
    println!("{r}");
    save(&r.table(), "allegro.csv");
}

fn run_merit(quick: bool, jobs: usize) {
    let r = exp_merit::run_with(quick, jobs);
    println!("{r}");
    save(&r.table(), "merit.csv");
}

fn run_algo1(quick: bool) {
    let r = exp_algo1::run(quick);
    println!("{r}");
    save(&r.table(), "algo1.csv");
}

fn run_seeds(quick: bool, jobs: usize) {
    let r = exp_seeds::run_with(quick, jobs);
    println!("{r}");
    save(&r.table(), "seeds.csv");
}

fn run_boundary(quick: bool, jobs: usize) {
    let r = exp_boundary::run_with(quick, jobs);
    println!("{r}");
    save(&r.table(), "boundary.csv");
}

fn run_ecn(quick: bool) {
    let r = exp_ecn::run(quick);
    println!("{r}");
    save(&r.table(), "ecn.csv");
}

fn run_ablations(quick: bool, jobs: usize) {
    let r = exp_ablations::run_with(quick, jobs);
    println!("{r}");
    save(&r.table(), "ablations.csv");
}

fn run_ccmc(quick: bool) {
    let r = exp_ccmc::run(quick);
    println!("{r}");
    save(&r.table(), "ccmc.csv");
}

/// `repro sweep [--fresh] [--store DIR]`: run the demo grid incrementally
/// against the content-addressed result store. Re-runs execute only
/// missing rows (a completed grid executes zero simulations); a killed
/// sweep resumes from its last atomic checkpoint on the next invocation.
/// `--fresh` recomputes every row; `--store DIR` overrides the store
/// location (default `results/store`, or `SWEEP_STORE_DIR`).
///
/// Fault-injection hook (tests and the CI resume smoke only): the
/// `SWEEP_KILL_AFTER` environment variable aborts the run after N rows
/// have been persisted, without writing a final checkpoint — exactly what
/// a `kill -9` between a row commit and the next checkpoint leaves
/// behind. An aborted run exits 3.
fn run_sweep(args: &[String], quick: bool, jobs: usize) {
    let fresh = args.iter().any(|a| a == "--fresh");
    let store_dir = parse_opt(args, "--store")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(starvation::sweep::default_store_dir);
    let kill_after = std::env::var("SWEEP_KILL_AFTER")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let opts = starvation::sweep::StoreOptions::new(&store_dir)
        .fresh(fresh)
        .kill_after(kill_after);
    let r = exp_sweep::run_stored(quick, jobs, &opts);
    if r.aborted {
        eprintln!(
            "sweep: aborted by SWEEP_KILL_AFTER after {} row(s); run again to resume",
            r.executed
        );
        std::process::exit(3);
    }
    println!("{r}");
    println!("  store: {}", store_dir.display());
    save(&r.table(), "sweep.csv");
}

/// `repro report [--store DIR] [--cca NAME] [--jitter-ms X]
/// [--rate-mbps X] [--seed N] [--format table|csv|json] [--out FILE]`:
/// query the result store. Scans every persisted row, applies the grid
/// filters, and renders the selection. Output order and bytes depend only
/// on store contents — a fresh serial sweep and a killed-and-resumed
/// parallel sweep report identically. Invalid store entries are listed on
/// stderr and excluded (exit 0 still; they recompute on the next sweep).
fn run_report(args: &[String]) {
    let store_dir = parse_opt(args, "--store")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(starvation::sweep::default_store_dir);
    let parse_f64 = |flag: &str| -> Option<f64> {
        parse_opt(args, flag).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} expects a number (got {v:?})");
                std::process::exit(2);
            })
        })
    };
    let query = report::Query {
        cca: parse_opt(args, "--cca"),
        jitter_ms: parse_f64("--jitter-ms"),
        rate_mbps: parse_f64("--rate-mbps"),
        seed: parse_opt(args, "--seed").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: --seed expects an integer (got {v:?})");
                std::process::exit(2);
            })
        }),
    };
    let format = parse_opt(args, "--format").unwrap_or_else(|| "table".to_string());
    let scan = report::scan(&store_dir).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    for (digest, reason) in &scan.invalid {
        eprintln!("report: invalid store entry {digest}: {reason}");
    }
    let rows = report::filter(scan.rows, &query);
    let rendered = match format.as_str() {
        "csv" => report::to_csv(&rows),
        "json" => report::to_json(&rows),
        "table" => {
            let agg = report::aggregate(&rows);
            format!(
                "store: {} ({} row(s) selected, {} invalid entr(ies))\n{}\n{}\n",
                store_dir.display(),
                rows.len(),
                scan.invalid.len(),
                report::to_table(&rows).render(),
                agg.render()
            )
        }
        other => {
            eprintln!("error: --format expects table, csv or json (got {other:?})");
            std::process::exit(2);
        }
    };
    match parse_opt(args, "--out") {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            std::fs::write(&path, &rendered).unwrap_or_else(|e| {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(2);
            });
            println!("  → {}", path.display());
        }
        None => print!("{rendered}"),
    }
}

/// Run a canonical scenario under the auditor, streaming its full event
/// trace as JSON-lines into `results/trace/<scenario>.jsonl`.
fn run_trace(scenario: Option<&str>) {
    let names = starvation::CANONICAL.join("|");
    let Some(name) = scenario else {
        eprintln!("usage: repro trace <{names}>");
        std::process::exit(2);
    };
    let Some(cfg) = starvation::canonical_scenario(name) else {
        eprintln!("error: unknown scenario '{name}' (expected one of: {names})");
        std::process::exit(2);
    };
    let path = result_path(&format!("trace/{name}.jsonl"));
    let sink_path = path.clone();
    let cfg = cfg
        .with_trace(std::sync::Arc::new(move || {
            let sink = simcore::trace::JsonlSink::create(&sink_path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", sink_path.display()));
            Box::new(sink) as Box<dyn simcore::trace::TraceSink>
        }))
        .with_audit(true);
    let r = netsim::Network::new(cfg).run();
    println!("trace {name}: audit clean");
    for (i, f) in r.flows.iter().enumerate() {
        println!(
            "  flow {i}: {:.2} Mbit/s, {} bytes delivered",
            f.throughput_at(r.end).mbps(),
            f.total_delivered()
        );
    }
    println!("  → {}", path.display());
}

/// `repro lint [--json] [--deny-warnings] [--no-cache]`: run the `simlint`
/// workspace invariant checks (see `crates/simlint`). Per-file analysis is
/// reused from `target/simlint.cache` when file contents are unchanged;
/// `--no-cache` re-analyzes everything. Exits 0 when clean, 1 when
/// findings fail the run, 2 when the workspace root cannot be located.
fn run_lint(args: &[String]) -> ! {
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    // Resolve the workspace root the same way from `cargo run` (manifest
    // dir is crates/bench) and from an installed binary (walk up from cwd).
    let start = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::PathBuf::from(m),
        Err(_) => std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from(".")),
    };
    let Some(root) = simlint::find_workspace_root(&start) else {
        eprintln!("error: no [workspace] manifest found above {}", start.display());
        std::process::exit(2);
    };
    let mut cfg = simlint::Config::for_workspace(&root);
    if !no_cache {
        cfg.cache_path = Some(root.join("target/simlint.cache"));
    }
    let report = simlint::lint_workspace(&cfg);
    for d in &report.diags {
        if json {
            println!("{}", d.render_json());
        } else {
            println!("{}", d.render_human());
        }
    }
    // Stats always go to stderr so `--json` stdout stays machine-clean
    // while CI can still assert the warm run analyzed nothing.
    eprintln!(
        "lint: {} file(s) checked ({} from cache, {} analyzed), {} error(s), {} warning(s)",
        report.files_checked,
        report.files_reused,
        report.files_checked - report.files_reused,
        report.errors(),
        report.warnings()
    );
    std::process::exit(if report.failed(deny_warnings) { 1 } else { 0 });
}

/// `repro perfbench [--quick] [--label NAME] [--check]`: run the hot-path
/// performance suite. Full runs append labelled records to
/// `BENCH_netsim.json` at the repo root; `--quick` runs append to the
/// `target/perfbench-quick.json` scratch file instead (quick iteration
/// counts are not comparable across labels and must never poison the
/// committed trajectory). `--check` validates the committed trajectory's
/// schema and rejects any quick-mode record in it (CI runs it after the
/// quick smoke).
fn run_perfbench(args: &[String]) {
    let check_only = args.iter().any(|a| a == "--check");
    if check_only {
        let path = perfbench::trajectory_path();
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        match perfbench::validate(&text) {
            Ok(n) => println!("perfbench: {} valid {} record(s) in {}", n, perfbench::SCHEMA, path.display()),
            Err(e) => {
                eprintln!("error: {} failed schema validation: {e}", path.display());
                std::process::exit(1);
            }
        }
        match perfbench::check_full_mode(&text) {
            Ok(n) => println!("perfbench: all {n} record(s) are full-mode (no \"quick\":true)"),
            Err(e) => {
                eprintln!("error: {} violates the quick-vs-full policy: {e}", path.display());
                std::process::exit(1);
            }
        }
        match perfbench::compare(&text) {
            Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let mut label = String::from("dev");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--label" {
            match it.next() {
                Some(v) => label = v.clone(),
                None => {
                    eprintln!("error: --label expects a name");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = a.strip_prefix("--label=") {
            label = v.to_string();
        }
    }
    perfbench::run(quick, &label);
}

/// Parse a `--flag VALUE` / `--flag=VALUE` string option.
fn parse_opt(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            match it.next() {
                Some(v) => return Some(v.clone()),
                None => {
                    eprintln!("error: {flag} expects a value");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// `repro fuzz [--quick] [--seed N] [--count N] [--jobs N] [--out DIR]
/// [--replay FILE]`: run the coverage-guided scenario fuzzer
/// (`crates/scenario`) with the runtime invariant auditor as the bug
/// oracle. Deterministic per seed at any job count. Exits 1 when the run
/// produced findings, 2 on bad usage, 0 when clean.
///
/// `--replay FILE` instead re-runs one `.scn` file (e.g. a shrunk
/// `finding-NNN.scn` reproducer) under the auditor and reports whether it
/// still fails.
fn run_fuzz(args: &[String], quick: bool, jobs: usize) -> ! {
    // Locate the seed corpus relative to the workspace root, the same way
    // `repro lint` resolves its scan root.
    let start = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::PathBuf::from(m),
        Err(_) => std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from(".")),
    };
    let Some(root) = simlint::find_workspace_root(&start) else {
        eprintln!("error: no [workspace] manifest found above {}", start.display());
        std::process::exit(2);
    };

    if let Some(file) = parse_opt(args, "--replay") {
        let path = std::path::PathBuf::from(file);
        let s = scenario::load_file(&path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        let cfg = scenario::compile(&s).with_audit(true);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            netsim::Network::new(cfg).run()
        }));
        match outcome {
            Ok(r) => {
                println!("replay {}: audit clean", path.display());
                for (i, f) in r.flows.iter().enumerate() {
                    println!(
                        "  flow {i}: {:.2} Mbit/s, {} bytes delivered",
                        f.throughput_at(r.end).mbps(),
                        f.total_delivered()
                    );
                }
                std::process::exit(0);
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                println!("replay {}: FAILS under the auditor", path.display());
                println!("  {}", msg.lines().next().unwrap_or(msg));
                std::process::exit(1);
            }
        }
    }

    let parse_num = |flag: &str, default: u64| -> u64 {
        match parse_opt(args, flag) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} expects a number (got {v:?})");
                std::process::exit(2);
            }),
            None => default,
        }
    };
    let seed = parse_num("--seed", 1);
    // CI's smoke floor is 200 generated scenarios; --quick stays just
    // above it, a full run explores much further.
    let count = parse_num("--count", if quick { 240 } else { 2000 }) as usize;
    let out_dir = parse_opt(args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| result_path("fuzz"));
    let corpus_dir = root.join("tests/scenarios");
    let corpus = scenario::load_dir(&corpus_dir).unwrap_or_else(|e| {
        eprintln!("error: bad corpus file: {e}");
        std::process::exit(2);
    });

    let mut opts = scenario::FuzzOptions::new(seed, out_dir.clone());
    opts.count = count;
    opts.jobs = jobs;
    opts.corpus = corpus;
    opts.verbose = true;
    println!(
        "fuzz: seed {seed}, {count} scenarios, corpus {} file(s) from {}",
        opts.corpus.len(),
        corpus_dir.display()
    );
    let report = scenario::fuzz(&opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!(
        "fuzz: {} scenario(s) executed, {} coverage feature(s) ({} new), {} violation(s)",
        report.executed, report.features, report.new_features, report.violations
    );
    for f in &report.findings {
        println!(
            "  finding: {} (from {}, {} shrink evals)\n    {}",
            f.path.display(),
            f.origin,
            f.shrink_evals,
            f.message.lines().next().unwrap_or("")
        );
    }
    println!("  → {}", out_dir.join("coverage.txt").display());
    println!("  → {}", out_dir.join("findings.jsonl").display());
    std::process::exit(if report.violations > 0 { 1 } else { 0 });
}

/// Parse `--jobs N` / `--jobs=N`. Returns available parallelism when the
/// flag is absent; exits with a usage message when it is malformed.
fn parse_jobs(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if a == "--jobs" {
            it.next().map(String::as_str)
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v)
        } else {
            continue;
        };
        return match value.and_then(|v| v.parse::<usize>().ok()) {
            Some(0) => par::available_jobs(),
            Some(n) => n,
            None => {
                eprintln!("error: --jobs expects a number (got {value:?})");
                std::process::exit(2);
            }
        };
    }
    par::available_jobs()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = parse_jobs(&args);
    if args.iter().any(|a| a == "--progress") {
        // The sweep engine reads this when constructing each runner.
        std::env::set_var("SWEEP_PROGRESS", "1");
    }
    if args.iter().any(|a| a == "--audit") {
        // The sweep engine reads this when constructing each runner.
        std::env::set_var("SWEEP_AUDIT", "1");
    }
    let positional: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and the values of value-taking flags.
            const VALUE_FLAGS: &[&str] = &[
                "--jobs", "--label", "--seed", "--count", "--out", "--replay", "--store",
                "--format", "--cca", "--jitter-ms", "--rate-mbps",
            ];
            !a.starts_with("--")
                && (*i == 0 || !VALUE_FLAGS.contains(&args[*i - 1].as_str()))
        })
        .map(|(_, a)| a.as_str())
        .collect();
    let cmd = positional.first().copied().unwrap_or("help");

    // simlint: allow(determinism): CLI reports elapsed wall time to the terminal only
    let t0 = std::time::Instant::now();
    match cmd {
        "glossary" => run_glossary(),
        "fig1" => run_fig1(quick),
        "fig2" => run_fig2(quick),
        "fig3" => run_fig3(quick),
        "thm" | "fig4" | "fig5" | "fig6" => run_thm(quick),
        "fig7" => run_fig7(quick),
        "copa" => run_copa(quick),
        "bbr" => run_bbr(quick),
        "vivace" => run_vivace(quick),
        "allegro" => run_allegro(quick),
        "merit" => run_merit(quick, jobs),
        "algo1" => run_algo1(quick),
        "ccmc" => run_ccmc(quick),
        "ablations" => run_ablations(quick, jobs),
        "ecn" => run_ecn(quick),
        "boundary" => run_boundary(quick, jobs),
        "seeds" => run_seeds(quick, jobs),
        "sweep" => run_sweep(&args, quick, jobs),
        "report" => run_report(&args),
        "trace" => run_trace(positional.get(1).copied()),
        "lint" => run_lint(&args),
        "fuzz" => run_fuzz(&args, quick, jobs),
        "perfbench" => run_perfbench(&args),
        "all" => {
            run_glossary();
            run_fig1(quick);
            run_fig2(quick);
            run_fig3(quick);
            run_thm(quick);
            run_fig7(quick);
            run_copa(quick);
            run_bbr(quick);
            run_vivace(quick);
            run_allegro(quick);
            run_merit(quick, jobs);
            run_algo1(quick);
            run_ccmc(quick);
            run_ablations(quick, jobs);
            run_ecn(quick);
            run_boundary(quick, jobs);
            run_seeds(quick, jobs);
            run_sweep(&args, quick, jobs);
        }
        _ => {
            println!(
                "usage: repro <glossary|fig1|fig2|fig3|thm|fig7|copa|bbr|vivace|allegro|merit|algo1|ccmc|ablations|ecn|boundary|seeds|sweep|report|trace|lint|fuzz|perfbench|all> [--quick] [--jobs N] [--progress] [--audit] [--label NAME] [--check] [--seed N] [--count N] [--out DIR] [--replay FILE] [--store DIR] [--fresh] [--format table|csv|json] [--cca NAME] [--jitter-ms X] [--rate-mbps X]"
            );
            return;
        }
    }
    eprintln!("[{} completed in {:.1}s]", cmd, t0.elapsed().as_secs_f64());
}

//! §5.4 + Appendix C — the model-checker queries.
//!
//! 1. **AIMD bounded unfairness**: over every adversary trace in the
//!    discretized grid (exhaustive, short horizon) and the best trace beam
//!    search finds over a 10-RTT horizon, two NewReno flows with a 1-BDP
//!    buffer never reach unbounded starvation (the paper used CCAC to show
//!    the same for traces of 10 RTTs).
//! 2. **Delay-convergent CCAs break**: the same adversary budget finds
//!    heavy unfairness traces against Vegas.

use crate::table::{fnum, TextTable};
use ccmc::{search_max_ratio, ModelConfig, ModelState, SearchConfig};
use simcore::units::{Dur, Rate};
use std::fmt;

/// The queries' outcomes.
pub struct CcmcReport {
    /// Exhaustive AIMD check: (horizon steps, max ratio over all traces,
    /// states explored).
    pub aimd_exhaustive: (u32, f64, u64),
    /// Beam AIMD check over ~10 RTTs: best ratio a 64-wide beam found.
    pub aimd_beam: (u32, f64),
    /// Beam Vegas attack: best ratio found.
    pub vegas_beam: (u32, f64),
}

fn model(ccas: Vec<cca::BoxCca>, horizon: u32) -> ModelState {
    ModelState::new(
        ModelConfig {
            rate: Rate::from_mbps(12.0),
            tau: Dur::from_millis(20), // Rm/2
            d_steps: 2,
            buffer: 40 * 1500, // 1 BDP at 12 Mbit/s × 40 ms
            rm: Dur::from_millis(40),
            horizon,
        },
        ccas,
    )
}

fn two<F: Fn() -> cca::BoxCca>(mk: F) -> Vec<cca::BoxCca> {
    vec![mk(), mk()]
}

/// Run the queries.
pub fn run(quick: bool) -> CcmcReport {
    let exh_h = if quick { 5 } else { 6 };
    let beam_h = if quick { 12 } else { 20 }; // 20 steps × 20 ms = 10 RTTs
    let cfg = SearchConfig::default();

    let m = model(two(|| Box::new(cca::NewReno::default_params())), exh_h);
    let exh = search_max_ratio(&m, exh_h, cfg);
    assert!(exh.exhaustive);

    let m = model(two(|| Box::new(cca::NewReno::default_params())), beam_h);
    let aimd_beam = search_max_ratio(&m, beam_h, cfg);

    let m = model(two(|| Box::new(cca::Vegas::default_params())), beam_h);
    let vegas_beam = search_max_ratio(&m, beam_h, cfg);

    CcmcReport {
        aimd_exhaustive: (exh_h, exh.best_value, exh.states_explored),
        aimd_beam: (beam_h, aimd_beam.best_value),
        vegas_beam: (beam_h, vegas_beam.best_value),
    }
}

impl CcmcReport {
    /// Summary table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&["query", "horizon (steps)", "max delivered ratio", "kind"]);
        t.row(&[
            "NewReno × 2, 1 BDP".into(),
            self.aimd_exhaustive.0.to_string(),
            fnum(self.aimd_exhaustive.1),
            format!("exhaustive ({} states)", self.aimd_exhaustive.2),
        ]);
        t.row(&[
            "NewReno × 2, 1 BDP".into(),
            self.aimd_beam.0.to_string(),
            fnum(self.aimd_beam.1),
            "beam".into(),
        ]);
        t.row(&[
            "Vegas × 2".into(),
            self.vegas_beam.0.to_string(),
            fnum(self.vegas_beam.1),
            "beam".into(),
        ]);
        t
    }
}

impl fmt::Display for CcmcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Appendix C — multi-flow model-checker queries (12 Mbit/s, Rm = 40 ms, D = 2 steps)"
        )?;
        write!(f, "{}", self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aimd_ratio_bounded_on_grid() {
        let r = run(true);
        assert!(
            r.aimd_exhaustive.1.is_finite(),
            "AIMD starved on the exhaustive grid"
        );
        assert!(r.aimd_beam.1.is_finite());
    }
}

//! Theorems 1–3 end to end, plus the proof-illustration figures (4, 5, 6)
//! which are direct by-products of Theorem 1's pipeline:
//!
//! * Figure 4 — the pigeonhole sweep (rate → delay range, with the chosen
//!   `C₁, C₂` pair);
//! * Figure 5 — the recorded single-flow trajectories `d̄₁, d̄₂`;
//! * Figure 6 — `d*(t)` against `d̄₁(t), d̄₂(t)` with the η feasibility
//!   band.

use crate::table::{fnum, TextTable};
use cca::factory;
use simcore::units::{Dur, Time};
use starvation::theorem1::{run_theorem1, Theorem1Config, Theorem1Report};
use starvation::theorem2::{run_theorem2, Theorem2Config, Theorem2Report};
use starvation::theorem3::{run_theorem3, Theorem3Config, Theorem3Report};
use std::fmt;

/// All three constructions' outcomes.
pub struct TheoremsReport {
    /// Theorem 1 on Vegas.
    pub thm1: Theorem1Report,
    /// Theorem 2 on Vegas.
    pub thm2: Theorem2Report,
    /// Theorem 3 on Vegas.
    pub thm3: Theorem3Report,
}

/// Run all three constructions (on Vegas, the sharpest delay-convergent
/// CCA).
pub fn run(quick: bool) -> TheoremsReport {
    let f = factory(|| Box::new(cca::Vegas::default_params()));
    let mut cfg1 = Theorem1Config::quick();
    let mut cfg2 = Theorem2Config::quick();
    let mut cfg3 = Theorem3Config::quick();
    if !quick {
        cfg1.record_duration = Dur::from_secs(40);
        cfg1.emulate_duration = Dur::from_secs(40);
        cfg1.sweep_steps = 4;
        cfg2.duration = Dur::from_secs(40);
        cfg2.c_prime_factor = 50.0;
        cfg3.duration = Dur::from_secs(25);
    }
    TheoremsReport {
        thm1: run_theorem1(&f, cfg1).expect("theorem 1 construction failed"),
        thm2: run_theorem2(&f, cfg2),
        thm3: run_theorem3(&f, cfg3),
    }
}

impl TheoremsReport {
    /// Figure 4's data: the pigeonhole sweep.
    pub fn fig4_table(&self) -> TextTable {
        let mut t = TextTable::new(&["lambda_i (Mbit/s)", "d_min (ms)", "d_max (ms)", "chosen"]);
        for (rate, rep) in &self.thm1.pigeonhole.sweep {
            let chosen = if (rate.mbps() - self.thm1.pigeonhole.c1.mbps()).abs() < 1e-9 {
                "C1"
            } else if (rate.mbps() - self.thm1.pigeonhole.c2.mbps()).abs() < 1e-9 {
                "C2"
            } else {
                ""
            };
            t.row(&[
                fnum(rate.mbps()),
                fnum(rep.d_min * 1e3),
                fnum(rep.d_max * 1e3),
                chosen.into(),
            ]);
        }
        t
    }

    /// Figure 5/6's data: `(t s, d̄₁ ms, d̄₂ ms, d* ms, η₁ ms, η₂ ms)` on the
    /// emulation grid.
    pub fn fig56_series(&self, n: usize) -> Vec<(f64, f64, f64, f64, f64, f64)> {
        let plan = &self.thm1.plan;
        let end = plan.d_star.end_time();
        let tick = Dur((end.as_nanos() / n.max(1) as u64).max(1));
        let mut out = Vec::new();
        let mut t = Time::ZERO;
        while t <= end {
            let g = |s: &simcore::series::TimeSeries| s.value_at(t).unwrap_or(0.0) * 1e3;
            out.push((
                t.as_secs_f64(),
                g(&self.thm1.d1),
                g(&self.thm1.d2),
                g(&plan.d_star),
                g(&plan.eta1),
                g(&plan.eta2),
            ));
            t += tick;
        }
        out
    }

    /// Theorem 3's iteration table.
    pub fn thm3_table(&self) -> TextTable {
        let mut t = TextTable::new(&["k", "max delay (ms)", "throughput (Mbit/s)"]);
        for s in &self.thm3.steps {
            t.row(&[
                s.k.to_string(),
                fnum(s.max_delay * 1e3),
                fnum(s.throughput_mbps),
            ]);
        }
        t
    }
}

impl fmt::Display for TheoremsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t1 = &self.thm1;
        writeln!(f, "Theorem 1 (Vegas) — the starvation construction")?;
        writeln!(
            f,
            "  pigeonhole: C1 = {:.2} Mbit/s, C2 = {:.2} Mbit/s, eps = {:.3} ms, delta_max = {:.3} ms",
            t1.pigeonhole.c1.mbps(),
            t1.pigeonhole.c2.mbps(),
            t1.pigeonhole.epsilon * 1e3,
            t1.pigeonhole.delta_max * 1e3
        )?;
        writeln!(
            f,
            "  jitter bound D = {:.3} ms; eta-grid violations: {}; proof case: {}",
            t1.plan.d_bound * 1e3,
            t1.plan.violations,
            if t1.used_case2 { "2 (big-link emulation)" } else { "1 (shared-queue d*)" }
        )?;
        writeln!(
            f,
            "  2-flow run: x1 = {:.2} Mbit/s, x2 = {:.2} Mbit/s  →  ratio {:.1}:1 ({} clamped pkts)",
            t1.x1_mbps,
            t1.x2_mbps,
            t1.ratio(),
            t1.clamped_packets
        )?;
        writeln!(f, "\nFigure 4 — pigeonhole sweep")?;
        write!(f, "{}", self.fig4_table().render())?;
        let t2 = &self.thm2;
        writeln!(
            f,
            "\nTheorem 2 (Vegas) — emulated delay on a {} Mbit/s link: {:.2} Mbit/s achieved (utilization {:.3}, D = {})",
            t2.c_prime_mbps, t2.emulated_mbps, t2.utilization, t2.d_bound
        )?;
        writeln!(f, "\nTheorem 3 (Vegas) — strong-model iteration")?;
        write!(f, "{}", self.thm3_table().render())?;
        match self.thm3.starving_pair {
            Some((a, b)) => writeln!(
                f,
                "starving pair: traces {a} and {b} (ratio {:.2} ≥ s)",
                self.thm3.achieved_ratio
            ),
            None => writeln!(f, "no starving pair found within the iteration budget"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_pipeline_produces_all_figures() {
        let r = run(true);
        assert!(r.thm1.ratio() >= 2.0, "thm1 ratio={}", r.thm1.ratio());
        assert!(r.thm2.utilization < 0.2, "thm2 util={}", r.thm2.utilization);
        assert!(r.thm3.starving_pair.is_some());
        assert!(r.fig4_table().render().contains("C1"));
        let series = r.fig56_series(50);
        assert!(series.len() >= 40);
        // d* must sit below both trajectories at (almost) every grid point.
        let below = series
            .iter()
            .filter(|(_, d1, d2, ds, _, _)| *ds <= d1 + 1e-6 && *ds <= d2 + 1e-6)
            .count();
        assert!(below as f64 >= 0.9 * series.len() as f64);
    }
}

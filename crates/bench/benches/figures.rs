//! Benches that regenerate the paper's *figures* (shortened parameters —
//! the full regeneration is `repro <fig> [--quick]`). Each figure gets a
//! tracked wall-time in `results/bench/figures.json` so regressions in the
//! pipeline show up.

use std::hint::black_box;
use testkit::bench::Runner;

fn bench_fig1(r: &mut Runner) {
    r.bench("figures/fig1_copa_trajectory", || {
        black_box(repro::fig1::run(true).conv.delta())
    });
}

fn bench_fig2(r: &mut Runner) {
    r.bench("figures/fig2_vegas_rate_delay", || {
        black_box(repro::fig2::run(true).points.len())
    });
}

fn bench_fig3(r: &mut Runner) {
    // The full 4-panel sweep is heavy; bench a single representative panel
    // via the public profiler on two rates.
    use cca::factory;
    use simcore::units::Dur;
    use starvation::profiler::profile_rate_delay;
    r.bench("figures/fig3_single_panel_2pts", || {
        let f = factory(|| Box::new(cca::Copa::default_params()));
        let rates = [
            simcore::units::Rate::from_mbps(12.0),
            simcore::units::Rate::from_mbps(48.0),
        ];
        let pts = profile_rate_delay(&f, &rates, Dur::from_millis(100), Dur::from_secs(10));
        black_box(pts.len())
    });
}

fn bench_fig7(r: &mut Runner) {
    use netsim::{AckPolicy, FlowConfig, LinkConfig, Network, SimConfig};
    use simcore::units::{Dur, Rate};
    r.bench("figures/fig7_reno_delayed_acks_20s", || {
        let rm = Dur::from_millis(120);
        let link = LinkConfig::new(Rate::from_mbps(6.0), 60 * 1500);
        let clean = FlowConfig::bulk(Box::new(cca::NewReno::default_params()), rm);
        let delayed = FlowConfig::bulk(Box::new(cca::NewReno::default_params()), rm)
            .with_ack_policy(AckPolicy::Delayed {
                max_pkts: 4,
                timeout: Dur::from_millis(100),
            });
        let r = Network::new(SimConfig::new(
            link,
            vec![clean, delayed],
            Dur::from_secs(20),
        ))
        .run();
        black_box(r.throughput_ratio())
    });
}

fn bench_merit(r: &mut Runner) {
    use simcore::units::Dur;
    use starvation::merit::{exponential_merit, vegas_family_merit};
    r.bench("figures/merit_table_eval", || {
        let mut acc = 0.0;
        for d_ms in 1..50u64 {
            let d = Dur::from_millis(d_ms);
            acc += exponential_merit(Dur::from_millis(100), Dur::from_millis(0), d, 2.0);
            acc += vegas_family_merit(Dur::from_millis(100), Dur::from_millis(0), d, 2.0);
        }
        black_box(acc)
    });
}

fn main() {
    let mut r = Runner::from_args("figures");
    bench_fig1(&mut r);
    bench_fig2(&mut r);
    bench_fig3(&mut r);
    bench_fig7(&mut r);
    bench_merit(&mut r);
    r.finish();
}

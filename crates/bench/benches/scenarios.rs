//! Benches that regenerate the paper's *experiments* at reduced duration —
//! §5's starvation scenarios, the Theorem 1 construction, Algorithm 1's
//! ablation, and a ccmc model-checker query. Each iteration runs the whole
//! scenario, so the reported time is the cost of reproducing that result.
//! Results land in `results/bench/scenarios.json`.

use netsim::{AckPolicy, FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate};
use std::hint::black_box;
use testkit::bench::Runner;
use testkit::harness::{allegro_flow, allegro_link, asymmetric_jitter_run, copa_poisoned_flow};

fn bench_copa_starvation(r: &mut Runner) {
    r.bench("scenarios/copa_minrtt_poison_10s", || {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
        let clean = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60));
        let r = Network::new(SimConfig::new(
            link,
            vec![copa_poisoned_flow(), clean],
            Dur::from_secs(10),
        ))
        .run();
        black_box(r.throughput_ratio())
    });
}

fn bench_bbr_starvation(r: &mut Runner) {
    r.bench("scenarios/bbr_rtt_asymmetry_10s", || {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
        let mk = |rm_ms: u64, seed: u64| {
            FlowConfig::bulk(Box::new(cca::Bbr::new(1500, seed)), Dur::from_millis(rm_ms))
                .with_jitter(Jitter::Random {
                    max: Dur::from_millis(2),
                    rng: Xoshiro256::new(seed * 7 + 1),
                })
        };
        let r = Network::new(SimConfig::new(
            link,
            vec![mk(40, 1), mk(80, 2)],
            Dur::from_secs(10),
        ))
        .run();
        black_box(r.throughput_ratio())
    });
}

fn bench_vivace_starvation(r: &mut Runner) {
    r.bench("scenarios/vivace_ack_quantization_10s", || {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
        let rm = Dur::from_millis(60);
        let quantized = FlowConfig::bulk(Box::new(cca::Vivace::new(1)), rm)
            .with_transport(netsim::Transport::Datagram)
            .with_ack_policy(AckPolicy::Quantized {
                period: Dur::from_millis(60),
            });
        let clean = FlowConfig::bulk(Box::new(cca::Vivace::new(2)), rm).with_transport(netsim::Transport::Datagram);
        let r = Network::new(SimConfig::new(
            link,
            vec![quantized, clean],
            Dur::from_secs(10),
        ))
        .run();
        black_box(r.throughput_ratio())
    });
}

fn bench_allegro_starvation(r: &mut Runner) {
    r.bench("scenarios/allegro_asymmetric_loss_15s", || {
        let r = Network::new(SimConfig::new(
            allegro_link(),
            vec![allegro_flow(0.02, 1), allegro_flow(0.0, 2)],
            Dur::from_secs(15),
        ))
        .run();
        black_box(r.throughput_ratio())
    });
}

fn bench_theorem1(r: &mut Runner) {
    use cca::factory;
    use starvation::theorem1::{run_theorem1, Theorem1Config};
    r.bench("scenarios/theorem1_vegas_quick", || {
        let f = factory(|| Box::new(cca::Vegas::default_params()));
        let mut cfg = Theorem1Config::quick();
        cfg.record_duration = Dur::from_secs(15);
        cfg.emulate_duration = Dur::from_secs(10);
        black_box(run_theorem1(&f, cfg).map(|r| r.ratio()))
    });
}

fn bench_algo1_ablation(r: &mut Runner) {
    // Ablation from DESIGN.md: Algorithm 1 vs Vegas under the same
    // asymmetric jitter (the jitter-aware mapping on/off). The scenario is
    // `testkit::harness::asymmetric_jitter_run` — the exact configuration
    // the integration tests assert fairness on.
    use cca::jitter_aware::JitterAwareConfig;
    type MkCca = Box<dyn Fn() -> cca::BoxCca>;
    let cases: Vec<(&str, MkCca)> = vec![
        (
            "jitter_aware",
            Box::new(|| {
                let mut cfg = JitterAwareConfig::example(Dur::from_millis(50));
                cfg.a = Rate::from_mbps(0.4);
                Box::new(cca::JitterAware::new(cfg)) as cca::BoxCca
            }),
        ),
        (
            "vegas_control",
            Box::new(|| Box::new(cca::Vegas::default_params()) as cca::BoxCca),
        ),
    ];
    for (name, mk) in cases {
        r.bench(&format!("scenarios/algo1_ablation_15s/{name}"), || {
            let r = asymmetric_jitter_run(&mk, 15);
            black_box(r.throughput_ratio())
        });
    }
}

fn bench_ccmc(r: &mut Runner) {
    use ccmc::{search_max_ratio, ModelConfig, ModelState, SearchConfig};
    r.bench("scenarios/ccmc_exhaustive_h5", || {
        let m = ModelState::new(
            ModelConfig {
                rate: Rate::from_mbps(12.0),
                tau: Dur::from_millis(20),
                d_steps: 2,
                buffer: 40 * 1500,
                rm: Dur::from_millis(40),
                horizon: 5,
            },
            vec![
                Box::new(cca::NewReno::default_params()),
                Box::new(cca::NewReno::default_params()),
            ],
        );
        black_box(search_max_ratio(&m, 5, SearchConfig::default()).best_value)
    });
}

fn main() {
    let mut r = Runner::from_args("scenarios");
    bench_copa_starvation(&mut r);
    bench_bbr_starvation(&mut r);
    bench_vivace_starvation(&mut r);
    bench_allegro_starvation(&mut r);
    bench_theorem1(&mut r);
    bench_algo1_ablation(&mut r);
    bench_ccmc(&mut r);
    r.finish();
}

//! Benches that regenerate the paper's *experiments* at reduced duration —
//! §5's starvation scenarios, the Theorem 1 construction, Algorithm 1's
//! ablation, and a ccmc model-checker query. Each iteration runs the whole
//! scenario, so the reported time is the cost of reproducing that result.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{AckPolicy, FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate};
use std::hint::black_box;

fn bench_copa_starvation(c: &mut Criterion) {
    c.bench_function("scenarios/copa_minrtt_poison_10s", |b| {
        b.iter(|| {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
            let poisoned =
                FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(59))
                    .with_jitter(Jitter::ExtraExcept {
                        extra: Dur::from_millis(1),
                        period: 5_000,
                        offset: 0,
                    });
            let clean =
                FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60));
            let r = Network::new(SimConfig::new(
                link,
                vec![poisoned, clean],
                Dur::from_secs(10),
            ))
            .run();
            black_box(r.throughput_ratio())
        })
    });
}

fn bench_bbr_starvation(c: &mut Criterion) {
    c.bench_function("scenarios/bbr_rtt_asymmetry_10s", |b| {
        b.iter(|| {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
            let mk = |rm_ms: u64, seed: u64| {
                FlowConfig::bulk(Box::new(cca::Bbr::new(1500, seed)), Dur::from_millis(rm_ms))
                    .with_jitter(Jitter::Random {
                        max: Dur::from_millis(2),
                        rng: Xoshiro256::new(seed * 7 + 1),
                    })
            };
            let r = Network::new(SimConfig::new(
                link,
                vec![mk(40, 1), mk(80, 2)],
                Dur::from_secs(10),
            ))
            .run();
            black_box(r.throughput_ratio())
        })
    });
}

fn bench_vivace_starvation(c: &mut Criterion) {
    c.bench_function("scenarios/vivace_ack_quantization_10s", |b| {
        b.iter(|| {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
            let rm = Dur::from_millis(60);
            let quantized = FlowConfig::bulk(Box::new(cca::Vivace::new(1)), rm)
                .datagram()
                .with_ack_policy(AckPolicy::Quantized {
                    period: Dur::from_millis(60),
                });
            let clean = FlowConfig::bulk(Box::new(cca::Vivace::new(2)), rm).datagram();
            let r = Network::new(SimConfig::new(
                link,
                vec![quantized, clean],
                Dur::from_secs(10),
            ))
            .run();
            black_box(r.throughput_ratio())
        })
    });
}

fn bench_allegro_starvation(c: &mut Criterion) {
    c.bench_function("scenarios/allegro_asymmetric_loss_15s", |b| {
        b.iter(|| {
            let link = LinkConfig::bdp_buffer(Rate::from_mbps(120.0), Dur::from_millis(40), 1.0);
            let lossy = FlowConfig::bulk(Box::new(cca::Allegro::new(1)), Dur::from_millis(40))
                .datagram()
                .with_loss(0.02, 20);
            let clean =
                FlowConfig::bulk(Box::new(cca::Allegro::new(2)), Dur::from_millis(40)).datagram();
            let r = Network::new(SimConfig::new(
                link,
                vec![lossy, clean],
                Dur::from_secs(15),
            ))
            .run();
            black_box(r.throughput_ratio())
        })
    });
}

fn bench_theorem1(c: &mut Criterion) {
    use cca::factory;
    use starvation::theorem1::{run_theorem1, Theorem1Config};
    c.bench_function("scenarios/theorem1_vegas_quick", |b| {
        b.iter(|| {
            let f = factory(|| Box::new(cca::Vegas::default_params()));
            let mut cfg = Theorem1Config::quick();
            cfg.record_duration = Dur::from_secs(15);
            cfg.emulate_duration = Dur::from_secs(10);
            black_box(run_theorem1(&f, cfg).map(|r| r.ratio()))
        })
    });
}

fn bench_algo1_ablation(c: &mut Criterion) {
    // Ablation from DESIGN.md: Algorithm 1 vs Vegas under the same
    // asymmetric jitter (the jitter-aware mapping on/off).
    use cca::jitter_aware::JitterAwareConfig;
    let mut group = c.benchmark_group("scenarios/algo1_ablation_15s");
    type MkCca = Box<dyn Fn() -> cca::BoxCca>;
    let cases: Vec<(&str, MkCca)> = vec![
        (
            "jitter_aware",
            Box::new(|| {
                let mut cfg = JitterAwareConfig::example(Dur::from_millis(50));
                cfg.a = Rate::from_mbps(0.4);
                Box::new(cca::JitterAware::new(cfg)) as cca::BoxCca
            }),
        ),
        (
            "vegas_control",
            Box::new(|| Box::new(cca::Vegas::default_params()) as cca::BoxCca),
        ),
    ];
    for (name, mk) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
                let rm = Dur::from_millis(50);
                let jittered = FlowConfig::bulk(mk(), rm).with_jitter(Jitter::Random {
                    max: Dur::from_millis(10),
                    rng: Xoshiro256::new(11),
                });
                let clean = FlowConfig::bulk(mk(), rm);
                let r = Network::new(SimConfig::new(
                    link,
                    vec![jittered, clean],
                    Dur::from_secs(15),
                ))
                .run();
                black_box(r.throughput_ratio())
            })
        });
    }
    group.finish();
}

fn bench_ccmc(c: &mut Criterion) {
    use ccmc::{search_max_ratio, ModelConfig, ModelState, SearchConfig};
    c.bench_function("scenarios/ccmc_exhaustive_h5", |b| {
        b.iter(|| {
            let m = ModelState::new(
                ModelConfig {
                    rate: Rate::from_mbps(12.0),
                    tau: Dur::from_millis(20),
                    d_steps: 2,
                    buffer: 40 * 1500,
                    rm: Dur::from_millis(40),
                    horizon: 5,
                },
                vec![
                    Box::new(cca::NewReno::default_params()),
                    Box::new(cca::NewReno::default_params()),
                ],
            );
            black_box(search_max_ratio(&m, 5, SearchConfig::default()).best_value)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_copa_starvation, bench_bbr_starvation, bench_vivace_starvation,
              bench_allegro_starvation, bench_theorem1, bench_algo1_ablation, bench_ccmc
}
criterion_main!(benches);

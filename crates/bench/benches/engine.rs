//! Microbenchmarks of the simulation substrate: event queue, filters,
//! PRNG, CCA ack-processing cost, and end-to-end simulator throughput
//! (simulated packets per wall-second).
//!
//! Run with `cargo bench` (full) or `cargo bench -- --quick` (smoke mode);
//! results land in `results/bench/engine.json`.

use cca::AckEvent;
use netsim::{FlowConfig, LinkConfig, Network, SimConfig};
use simcore::engine::EventQueue;
use simcore::filter::{WindowedMax, WindowedMin};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};
use std::hint::black_box;
use testkit::bench::Runner;

fn bench_event_queue(r: &mut Runner) {
    r.bench("engine/event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule_at(Time(i * 977 % 50_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });
}

fn bench_filters(r: &mut Runner) {
    let mut rng = Xoshiro256::new(5);
    r.bench("engine/windowed_max_insert_1k", || {
        let mut f = WindowedMax::new(100);
        for i in 0..1000u64 {
            f.insert(i, rng.next_f64());
        }
        black_box(f.get())
    });
    let mut rng = Xoshiro256::new(6);
    r.bench("engine/windowed_min_insert_1k", || {
        let mut f = WindowedMin::new(100);
        for i in 0..1000u64 {
            f.insert(i, rng.next_f64());
        }
        black_box(f.get())
    });
}

fn bench_rng(r: &mut Runner) {
    let mut rng = Xoshiro256::new(7);
    r.bench("engine/xoshiro_next_1k", || {
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        black_box(acc)
    });
}

fn bench_cca_on_ack(r: &mut Runner) {
    type MkCca = Box<dyn Fn() -> cca::BoxCca>;
    let algos: Vec<(&str, MkCca)> = vec![
        ("vegas", Box::new(|| Box::new(cca::Vegas::default_params()))),
        ("copa", Box::new(|| Box::new(cca::Copa::default_params()))),
        ("bbr", Box::new(|| Box::new(cca::Bbr::default_params()))),
        ("vivace", Box::new(|| Box::new(cca::Vivace::default_params()))),
        ("cubic", Box::new(|| Box::new(cca::Cubic::default_params()))),
    ];
    for (name, mk) in algos {
        r.bench(&format!("engine/cca_on_ack_1k/{name}"), || {
            let mut cca = mk();
            let mut now = Time::ZERO;
            let mut delivered = 0u64;
            for _ in 0..1000 {
                now += Dur::from_micros(500);
                delivered += 1500;
                cca.on_ack(&AckEvent {
                    now,
                    rtt: Dur::from_millis(50),
                    newly_acked: 1500,
                    in_flight: 30 * 1500,
                    delivered,
                    delivered_at_send: delivered.saturating_sub(30 * 1500),
                    delivery_rate: Some(Rate::from_mbps(24.0)),
                    app_limited: false,
                    ecn: false,
                });
            }
            black_box(cca.cwnd())
        });
    }
}

fn bench_simulator_throughput(r: &mut Runner) {
    // One saturating flow, 5 simulated seconds at 24 Mbit/s ≈ 10k packets.
    r.bench("engine/sim_5s_24mbps_single_flow", || {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
        let flow = FlowConfig::bulk(
            Box::new(cca::ConstCwnd::new(120 * 1500)),
            Dur::from_millis(40),
        );
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(5))).run();
        black_box(r.flows[0].total_delivered())
    });
}

fn main() {
    let mut r = Runner::from_args("engine");
    bench_event_queue(&mut r);
    bench_filters(&mut r);
    bench_rng(&mut r);
    bench_cca_on_ack(&mut r);
    bench_simulator_throughput(&mut r);
    r.finish();
}

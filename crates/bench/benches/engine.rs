//! Microbenchmarks of the simulation substrate: event queue, filters,
//! PRNG, CCA ack-processing cost, and end-to-end simulator throughput
//! (simulated packets per wall-second).

use cca::AckEvent;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::{FlowConfig, LinkConfig, Network, SimConfig};
use simcore::engine::EventQueue;
use simcore::filter::{WindowedMax, WindowedMin};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_at(Time(i * 977 % 50_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_filters(c: &mut Criterion) {
    c.bench_function("engine/windowed_max_insert_1k", |b| {
        let mut rng = Xoshiro256::new(5);
        b.iter(|| {
            let mut f = WindowedMax::new(100);
            for i in 0..1000u64 {
                f.insert(i, rng.next_f64());
            }
            black_box(f.get())
        })
    });
    c.bench_function("engine/windowed_min_insert_1k", |b| {
        let mut rng = Xoshiro256::new(6);
        b.iter(|| {
            let mut f = WindowedMin::new(100);
            for i in 0..1000u64 {
                f.insert(i, rng.next_f64());
            }
            black_box(f.get())
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("engine/xoshiro_next_1k", |b| {
        let mut rng = Xoshiro256::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
}

fn bench_cca_on_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/cca_on_ack_1k");
    type MkCca = Box<dyn Fn() -> cca::BoxCca>;
    let algos: Vec<(&str, MkCca)> = vec![
        ("vegas", Box::new(|| Box::new(cca::Vegas::default_params()))),
        ("copa", Box::new(|| Box::new(cca::Copa::default_params()))),
        ("bbr", Box::new(|| Box::new(cca::Bbr::default_params()))),
        ("vivace", Box::new(|| Box::new(cca::Vivace::default_params()))),
        ("cubic", Box::new(|| Box::new(cca::Cubic::default_params()))),
    ];
    for (name, mk) in algos {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut cca = mk();
                let mut now = Time::ZERO;
                let mut delivered = 0u64;
                for _ in 0..1000 {
                    now += Dur::from_micros(500);
                    delivered += 1500;
                    cca.on_ack(&AckEvent {
                        now,
                        rtt: Dur::from_millis(50),
                        newly_acked: 1500,
                        in_flight: 30 * 1500,
                        delivered,
                        delivered_at_send: delivered.saturating_sub(30 * 1500),
                        delivery_rate: Some(Rate::from_mbps(24.0)),
                        app_limited: false,
                        ecn: false,
                    });
                }
                black_box(cca.cwnd())
            })
        });
    }
    group.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    // One saturating flow, 5 simulated seconds at 24 Mbit/s ≈ 10k packets.
    c.bench_function("engine/sim_5s_24mbps_single_flow", |b| {
        b.iter(|| {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
            let flow = FlowConfig::bulk(
                Box::new(cca::ConstCwnd::new(120 * 1500)),
                Dur::from_millis(40),
            );
            let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(5))).run();
            black_box(r.flows[0].total_delivered())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_filters, bench_rng, bench_cca_on_ack,
              bench_simulator_throughput
}
criterion_main!(benches);

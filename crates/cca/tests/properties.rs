//! Property tests of the congestion-control algorithms' core math.

use cca::allegro::AllegroUtility;
use cca::jitter_aware::JitterAwareConfig;
use cca::mi::MiTracker;
use cca::vivace::VivaceUtility;
use cca::AckEvent;
use proptest::prelude::*;
use simcore::units::{Dur, Rate, Time};

proptest! {
    // ---------- Algorithm 1's rate–delay mapping ----------

    #[test]
    fn jitter_aware_target_monotone_decreasing(
        rm_ms in 1u64..200,
        rmax_extra_ms in 10u64..500,
        d_ms in 1u64..50,
        s in 1.1f64..8.0,
        d1_ms in 0u64..1000,
        gap_ms in 1u64..500,
    ) {
        let cfg = JitterAwareConfig {
            rm: Dur::from_millis(rm_ms),
            rmax: Dur::from_millis(rm_ms + rmax_extra_ms),
            d: Dur::from_millis(d_ms),
            s,
            mu_minus: Rate::from_mbps(0.1),
            a: Rate::from_mbps(0.2),
            b: 0.9,
        };
        let lo = Dur::from_millis(d1_ms);
        let hi = Dur::from_millis(d1_ms + gap_ms);
        prop_assert!(cfg.target_rate(lo) >= cfg.target_rate(hi));
    }

    #[test]
    fn jitter_aware_s_separation(
        rm_ms in 1u64..100,
        d_ms in 1u64..50,
        s in 1.1f64..8.0,
        expo_max in 5u64..50,
        base_frac in 0.0f64..0.9,
    ) {
        // The design invariant: delays exactly D apart map to rates exactly
        // a factor s apart. Parameters are constrained so both exponents
        // stay inside the implementation's ±60 clamp.
        let cfg = JitterAwareConfig {
            rm: Dur::from_millis(rm_ms),
            rmax: Dur::from_millis(rm_ms + d_ms * expo_max),
            d: Dur::from_millis(d_ms),
            s,
            mu_minus: Rate::from_mbps(0.1),
            a: Rate::from_mbps(0.2),
            b: 0.9,
        };
        let base_ms = ((d_ms * expo_max) as f64 * base_frac) as u64;
        let d_lo = Dur::from_millis(rm_ms + base_ms);
        let d_hi = d_lo + cfg.d;
        let r_lo = cfg.target_rate(d_lo).bytes_per_sec();
        let r_hi = cfg.target_rate(d_hi).bytes_per_sec();
        prop_assert!((r_lo / r_hi - s).abs() < s * 1e-6,
            "ratio={} s={s}", r_lo / r_hi);
    }

    // ---------- PCC utilities ----------

    #[test]
    fn vivace_utility_monotone_in_rate_when_clean(
        x1 in 0.1f64..500.0,
        dx in 0.1f64..500.0,
    ) {
        let u = VivaceUtility::default();
        prop_assert!(u.eval(x1 + dx, 0.0, 0.0) > u.eval(x1, 0.0, 0.0));
    }

    #[test]
    fn vivace_latency_penalty_always_hurts(
        x in 0.1f64..500.0,
        grad in 1e-6f64..10.0,
        loss in 0.0f64..1.0,
    ) {
        let u = VivaceUtility::default();
        prop_assert!(u.eval(x, grad, loss) < u.eval(x, 0.0, loss));
    }

    #[test]
    fn allegro_utility_sign_flips_at_threshold(x in 1.0f64..500.0) {
        let u = AllegroUtility::default();
        prop_assert!(u.eval(x, 0.01) > 0.0);
        prop_assert!(u.eval(x, 0.10) < 0.0);
    }

    #[test]
    fn allegro_utility_scale_invariant_ordering(
        x1 in 1.0f64..500.0,
        k in 1.1f64..4.0,
        loss in 0.0f64..0.04,
    ) {
        // Below the threshold, more rate at the same loss is always better.
        let u = AllegroUtility::default();
        prop_assert!(u.eval(x1 * k, loss) > u.eval(x1, loss));
    }

    // ---------- monitor intervals ----------

    #[test]
    fn mi_attribution_conserves_bytes(
        events in prop::collection::vec((1u64..50, 1u64..3_000), 5..100),
        mi_ms in 10u64..100,
    ) {
        // Feed sends at increasing times, ack each exactly one RTT later;
        // the sum of per-MI acked bytes equals the total acked.
        let rtt = Dur::from_millis(60);
        let mut tr = MiTracker::new();
        let mut now = Time::ZERO;
        let mut next_mi = Time::ZERO;
        let mut total = 0u64;
        let mut sends: Vec<(Time, u64)> = Vec::new();
        for &(dt_ms, bytes) in &events {
            now += Dur::from_millis(dt_ms);
            if now >= next_mi {
                tr.begin(now, Rate::from_mbps(1.0), 0);
                next_mi = now + Dur::from_millis(mi_ms);
            }
            tr.on_send(now, bytes);
            sends.push((now, bytes));
        }
        for (t, bytes) in sends {
            tr.on_ack(t + rtt, rtt, bytes);
            total += bytes;
        }
        // Drain all MIs and sum.
        let mut acked = 0u64;
        let far = now + Dur::from_secs(10);
        tr.begin(far, Rate::from_mbps(1.0), 0);
        while let Some(mi) = tr.pop_complete(far + Dur::from_secs(10), Dur::ZERO) {
            acked += mi.acked;
        }
        prop_assert_eq!(acked, total);
    }

    // ---------- cwnd floors ----------

    #[test]
    fn all_ccas_keep_positive_cwnd_under_ack_storms(
        seed in 0u64..1000,
        rtt_ms in 1.0f64..500.0,
        n in 1usize..400,
    ) {
        let mut algos: Vec<cca::BoxCca> = vec![
            Box::new(cca::Vegas::default_params()),
            Box::new(cca::FastTcp::default_params()),
            Box::new(cca::Copa::default_params()),
            Box::new(cca::Bbr::new(1500, seed)),
            Box::new(cca::Vivace::new(seed)),
            Box::new(cca::Allegro::new(seed)),
            Box::new(cca::NewReno::default_params()),
            Box::new(cca::Cubic::default_params()),
        ];
        let mut now = Time::ZERO;
        for i in 0..n {
            now += Dur::from_millis(3);
            let ev = AckEvent {
                now,
                rtt: Dur::from_millis_f64(rtt_ms),
                newly_acked: 1500,
                in_flight: (i as u64 % 40) * 1500,
                delivered: (i as u64 + 1) * 1500,
                delivered_at_send: (i as u64).saturating_sub(30) * 1500,
                delivery_rate: Some(Rate::from_mbps(10.0)),
                app_limited: false,
                ecn: false,
            };
            for a in &mut algos {
                a.on_ack(&ev);
                prop_assert!(a.cwnd() >= 1500, "{} cwnd=0", a.name());
                if let Some(r) = a.pacing_rate() {
                    prop_assert!(r.bytes_per_sec().is_finite());
                }
            }
        }
    }
}

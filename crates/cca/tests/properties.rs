//! Property tests of the congestion-control algorithms' core math.
//!
//! Each property is a plain function over a tuple of inputs, so testkit's
//! failure output is a paste-ready regression test calling it.

use cca::allegro::AllegroUtility;
use cca::jitter_aware::JitterAwareConfig;
use cca::mi::MiTracker;
use cca::vivace::VivaceUtility;
use cca::AckEvent;
use simcore::units::{Dur, Rate, Time};
use testkit::prop::{check, f64_in, u64_in, usize_in, vec_of};
use testkit::{require, require_eq};

// ---------- Algorithm 1's rate–delay mapping ----------

fn jitter_aware_target_monotone_decreasing(
    &(rm_ms, rmax_extra_ms, d_ms, s, d1_ms, gap_ms): &(u64, u64, u64, f64, u64, u64),
) -> Result<(), String> {
    let cfg = JitterAwareConfig {
        rm: Dur::from_millis(rm_ms),
        rmax: Dur::from_millis(rm_ms + rmax_extra_ms),
        d: Dur::from_millis(d_ms),
        s,
        mu_minus: Rate::from_mbps(0.1),
        a: Rate::from_mbps(0.2),
        b: 0.9,
    };
    let lo = Dur::from_millis(d1_ms);
    let hi = Dur::from_millis(d1_ms + gap_ms);
    require!(
        cfg.target_rate(lo) >= cfg.target_rate(hi),
        "target_rate not monotone: lo={lo:?} hi={hi:?}"
    );
    Ok(())
}

#[test]
fn prop_jitter_aware_target_monotone_decreasing() {
    check(
        "jitter_aware_target_monotone_decreasing",
        (
            u64_in(1, 200),
            u64_in(10, 500),
            u64_in(1, 50),
            f64_in(1.1, 8.0),
            u64_in(0, 1000),
            u64_in(1, 500),
        ),
        jitter_aware_target_monotone_decreasing,
    );
}

/// The design invariant: delays exactly D apart map to rates exactly a
/// factor s apart. Parameters are constrained so both exponents stay
/// inside the implementation's ±60 clamp.
fn jitter_aware_s_separation(
    &(rm_ms, d_ms, s, expo_max, base_frac): &(u64, u64, f64, u64, f64),
) -> Result<(), String> {
    let cfg = JitterAwareConfig {
        rm: Dur::from_millis(rm_ms),
        rmax: Dur::from_millis(rm_ms + d_ms * expo_max),
        d: Dur::from_millis(d_ms),
        s,
        mu_minus: Rate::from_mbps(0.1),
        a: Rate::from_mbps(0.2),
        b: 0.9,
    };
    let base_ms = ((d_ms * expo_max) as f64 * base_frac) as u64;
    let d_lo = Dur::from_millis(rm_ms + base_ms);
    let d_hi = d_lo + cfg.d;
    let r_lo = cfg.target_rate(d_lo).bytes_per_sec();
    let r_hi = cfg.target_rate(d_hi).bytes_per_sec();
    require!(
        (r_lo / r_hi - s).abs() < s * 1e-6,
        "ratio={} s={s}",
        r_lo / r_hi
    );
    Ok(())
}

#[test]
fn prop_jitter_aware_s_separation() {
    check(
        "jitter_aware_s_separation",
        (
            u64_in(1, 100),
            u64_in(1, 50),
            f64_in(1.1, 8.0),
            u64_in(5, 50),
            f64_in(0.0, 0.9),
        ),
        jitter_aware_s_separation,
    );
}

/// Regression (ported from crates/cca/tests/properties.proptest-regressions,
/// seed 30a9c6bd…, original shrink: rm_ms = 1, d_ms = 1, s = 1.1,
/// base_ms = 0): with Rm = D = 1 ms and a target delay right at Rm, the
/// s-separation ratio drifted past tolerance because the exponent clamp
/// engaged at the lower edge of the mapping.
#[test]
fn regression_jitter_aware_s_separation_at_lower_edge() {
    jitter_aware_s_separation(&(1, 1, 1.1, 5, 0.0)).unwrap();
}

// ---------- PCC utilities ----------

fn vivace_utility_monotone_in_rate_when_clean(&(x1, dx): &(f64, f64)) -> Result<(), String> {
    let u = VivaceUtility::default();
    require!(
        u.eval(x1 + dx, 0.0, 0.0) > u.eval(x1, 0.0, 0.0),
        "x1={x1} dx={dx}"
    );
    Ok(())
}

#[test]
fn prop_vivace_utility_monotone_in_rate_when_clean() {
    check(
        "vivace_utility_monotone_in_rate_when_clean",
        (f64_in(0.1, 500.0), f64_in(0.1, 500.0)),
        vivace_utility_monotone_in_rate_when_clean,
    );
}

fn vivace_latency_penalty_always_hurts(
    &(x, grad, loss): &(f64, f64, f64),
) -> Result<(), String> {
    let u = VivaceUtility::default();
    require!(
        u.eval(x, grad, loss) < u.eval(x, 0.0, loss),
        "x={x} grad={grad} loss={loss}"
    );
    Ok(())
}

#[test]
fn prop_vivace_latency_penalty_always_hurts() {
    check(
        "vivace_latency_penalty_always_hurts",
        (f64_in(0.1, 500.0), f64_in(1e-6, 10.0), f64_in(0.0, 1.0)),
        vivace_latency_penalty_always_hurts,
    );
}

fn allegro_utility_sign_flips_at_threshold(&x: &f64) -> Result<(), String> {
    let u = AllegroUtility::default();
    require!(u.eval(x, 0.01) > 0.0, "x={x}");
    require!(u.eval(x, 0.10) < 0.0, "x={x}");
    Ok(())
}

#[test]
fn prop_allegro_utility_sign_flips_at_threshold() {
    check(
        "allegro_utility_sign_flips_at_threshold",
        (f64_in(1.0, 500.0),),
        |&(x,): &(f64,)| allegro_utility_sign_flips_at_threshold(&x),
    );
}

/// Below the threshold, more rate at the same loss is always better.
fn allegro_utility_scale_invariant_ordering(
    &(x1, k, loss): &(f64, f64, f64),
) -> Result<(), String> {
    let u = AllegroUtility::default();
    require!(
        u.eval(x1 * k, loss) > u.eval(x1, loss),
        "x1={x1} k={k} loss={loss}"
    );
    Ok(())
}

#[test]
fn prop_allegro_utility_scale_invariant_ordering() {
    check(
        "allegro_utility_scale_invariant_ordering",
        (f64_in(1.0, 500.0), f64_in(1.1, 4.0), f64_in(0.0, 0.04)),
        allegro_utility_scale_invariant_ordering,
    );
}

// ---------- monitor intervals ----------

/// Feed sends at increasing times, ack each exactly one RTT later; the sum
/// of per-MI acked bytes equals the total acked.
fn mi_attribution_conserves_bytes(
    (events, mi_ms): &(Vec<(u64, u64)>, u64),
) -> Result<(), String> {
    let rtt = Dur::from_millis(60);
    let mut tr = MiTracker::new();
    let mut now = Time::ZERO;
    let mut next_mi = Time::ZERO;
    let mut total = 0u64;
    let mut sends: Vec<(Time, u64)> = Vec::new();
    for &(dt_ms, bytes) in events {
        now += Dur::from_millis(dt_ms);
        if now >= next_mi {
            tr.begin(now, Rate::from_mbps(1.0), 0);
            next_mi = now + Dur::from_millis(*mi_ms);
        }
        tr.on_send(now, bytes);
        sends.push((now, bytes));
    }
    for (t, bytes) in sends {
        tr.on_ack(t + rtt, rtt, bytes);
        total += bytes;
    }
    // Drain all MIs and sum.
    let mut acked = 0u64;
    let far = now + Dur::from_secs(10);
    tr.begin(far, Rate::from_mbps(1.0), 0);
    while let Some(mi) = tr.pop_complete(far + Dur::from_secs(10), Dur::ZERO) {
        acked += mi.acked;
    }
    require_eq!(acked, total);
    Ok(())
}

#[test]
fn prop_mi_attribution_conserves_bytes() {
    check(
        "mi_attribution_conserves_bytes",
        (
            vec_of((u64_in(1, 50), u64_in(1, 3_000)), 5, 100),
            u64_in(10, 100),
        ),
        mi_attribution_conserves_bytes,
    );
}

// ---------- cwnd floors ----------

fn all_ccas_keep_positive_cwnd_under_ack_storms(
    &(seed, rtt_ms, n): &(u64, f64, usize),
) -> Result<(), String> {
    let mut algos: Vec<cca::BoxCca> = vec![
        Box::new(cca::Vegas::default_params()),
        Box::new(cca::FastTcp::default_params()),
        Box::new(cca::Copa::default_params()),
        Box::new(cca::Bbr::new(1500, seed)),
        Box::new(cca::Vivace::new(seed)),
        Box::new(cca::Allegro::new(seed)),
        Box::new(cca::NewReno::default_params()),
        Box::new(cca::Cubic::default_params()),
    ];
    let mut now = Time::ZERO;
    for i in 0..n {
        now += Dur::from_millis(3);
        let ev = AckEvent {
            now,
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: 1500,
            in_flight: (i as u64 % 40) * 1500,
            delivered: (i as u64 + 1) * 1500,
            delivered_at_send: (i as u64).saturating_sub(30) * 1500,
            delivery_rate: Some(Rate::from_mbps(10.0)),
            app_limited: false,
            ecn: false,
        };
        for a in &mut algos {
            a.on_ack(&ev);
            require!(a.cwnd() >= 1500, "{} cwnd=0", a.name());
            if let Some(r) = a.pacing_rate() {
                require!(r.bytes_per_sec().is_finite(), "{} pacing not finite", a.name());
            }
        }
    }
    Ok(())
}

#[test]
fn prop_all_ccas_keep_positive_cwnd_under_ack_storms() {
    check(
        "all_ccas_keep_positive_cwnd_under_ack_storms",
        (u64_in(0, 1000), f64_in(1.0, 500.0), usize_in(1, 400)),
        all_ccas_keep_positive_cwnd_under_ack_storms,
    );
}

//! PCC Allegro (Dong et al., NSDI 2015) — loss-threshold utility.
//!
//! Allegro runs randomized controlled trials: four monitor intervals, two
//! at `(1+ε)·r` and two at `(1−ε)·r` in random order (attribution by send
//! time via [`crate::mi::MiTracker`]; results land one RTT after each MI).
//! If both higher-rate MIs produced higher utility than their paired
//! lower-rate MIs it moves up; both lower → down; otherwise it stays and
//! widens ε. After a decision it keeps moving in that direction with
//! growing steps until utility drops. Its utility,
//!
//! ```text
//! U(x) = x·(1−L)·sigmoid(L − 0.05) − x·L
//! sigmoid(y) = 1 / (1 + e^{100·y})
//! ```
//!
//! tolerates loss up to a 5 % threshold and collapses above it.
//!
//! §5.4's analysis: Allegro is to Reno what BBR's cwnd-limited mode is to
//! Vegas — it keeps *headroom* in its congestion signal (loss below 5 %)
//! as BBR keeps `Rm` of queueing delay. When two flows see *unequal*
//! random loss (2 % vs 0), the lossy flow hits the collapse threshold at a
//! much lower congestion-loss level and starves (paper: 10.3 vs
//! 99.1 Mbit/s); equal loss shares fairly; a single 2 %-loss flow fills
//! the link.

use crate::mi::MiTracker;
use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};

/// Allegro's sigmoid-threshold utility.
#[derive(Clone, Copy, Debug)]
pub struct AllegroUtility {
    /// Loss threshold (0.05).
    pub threshold: f64,
    /// Sigmoid steepness (100).
    pub alpha: f64,
}

impl Default for AllegroUtility {
    fn default() -> Self {
        AllegroUtility {
            threshold: 0.05,
            alpha: 100.0,
        }
    }
}

impl AllegroUtility {
    /// Utility of sending rate `x` (Mbit/s) at loss fraction `loss`.
    pub fn eval(&self, x_mbps: f64, loss: f64) -> f64 {
        let sig = 1.0 / (1.0 + (self.alpha * (loss - self.threshold)).exp());
        x_mbps * (1.0 - loss) * sig - x_mbps * loss
    }
}

/// MI tags: slow start, or trial slot 0..4 (direction looked up in
/// `trial_dirs`), or an adjusting-phase MI.
const TAG_SS: u32 = 10;
const TAG_ADJ: u32 = 11;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Double the rate each MI while utility improves.
    Starting,
    /// Sending the 4-MI randomized controlled trial (next slot to send).
    Trial(u8),
    /// Waiting for trial results while sending at the base rate.
    TrialWait,
    /// Moving in a fixed direction with growing steps until utility drops.
    Adjusting,
}

/// PCC Allegro congestion control.
#[derive(Clone, Debug)]
pub struct Allegro {
    utility: AllegroUtility,
    rate: Rate,
    phase: Phase,
    tracker: MiTracker,
    /// Probe directions for the current RCT (`true` = up), two of each.
    trial_dirs: [bool; 4],
    trial_utils: [Option<f64>; 4],
    epsilon: f64,
    epsilon_min: f64,
    epsilon_max: f64,
    adjust_dir: f64,
    adjust_n: u32,
    prev_utility: f64,
    prev_ss: Option<(f64, f64)>,
    srtt: Option<f64>,
    rng: Xoshiro256,
    mss: u64,
    min_rate: Rate,
}

impl Allegro {
    /// Allegro with the default utility and a deterministic RCT-order seed.
    pub fn new(seed: u64) -> Self {
        Allegro {
            utility: AllegroUtility::default(),
            rate: Rate::from_mbps(2.0),
            phase: Phase::Starting,
            tracker: MiTracker::new(),
            trial_dirs: [true, false, true, false],
            trial_utils: [None; 4],
            epsilon: 0.02,
            epsilon_min: 0.02,
            epsilon_max: 0.08,
            adjust_dir: 0.0,
            adjust_n: 0,
            prev_utility: f64::MIN,
            prev_ss: None,
            srtt: None,
            rng: Xoshiro256::new(seed),
            mss: 1500,
            min_rate: Rate::from_mbps(0.1),
        }
    }

    /// Default parameters (seed 1).
    pub fn default_params() -> Self {
        Allegro::new(1)
    }

    /// The base (un-probed) sending rate.
    pub fn base_rate(&self) -> Rate {
        self.rate
    }

    /// The rate the open MI transmits at.
    pub fn current_rate(&self) -> Rate {
        let gain = match self.phase {
            Phase::Trial(slot) => {
                if self.trial_dirs[slot.min(3) as usize] {
                    1.0 + self.epsilon
                } else {
                    1.0 - self.epsilon
                }
            }
            _ => 1.0,
        };
        self.rate.mul_f64(gain)
    }

    fn mi_duration(&self) -> Dur {
        Dur::from_secs_f64(self.srtt.unwrap_or(0.05)).max(Dur::from_millis(10))
    }

    fn srtt_dur(&self) -> Dur {
        Dur::from_secs_f64(self.srtt.unwrap_or(0.05))
    }

    fn shuffle_trial(&mut self) {
        let mut dirs = [true, true, false, false];
        for i in (1..4).rev() {
            let j = self.rng.range_u64(i as u64 + 1) as usize;
            dirs.swap(i, j);
        }
        self.trial_dirs = dirs;
        self.trial_utils = [None; 4];
    }

    /// Open the next MI per the sending-side state machine.
    fn open_next_mi(&mut self, now: Time) {
        match self.phase {
            Phase::Starting => {
                if !self.tracker.is_empty() {
                    self.rate = self.rate.mul_f64(2.0);
                }
                self.tracker.begin(now, self.rate, TAG_SS);
            }
            Phase::Trial(slot) => {
                let tag = slot as u32;
                self.tracker.begin(now, self.current_rate(), tag);
                self.phase = if slot >= 3 {
                    Phase::TrialWait
                } else {
                    Phase::Trial(slot + 1)
                };
            }
            Phase::TrialWait | Phase::Adjusting => {
                self.tracker.begin(now, self.rate, TAG_ADJ);
            }
        }
    }

    fn enter_trial(&mut self) {
        self.shuffle_trial();
        self.phase = Phase::Trial(0);
    }

    /// Consume completed MIs.
    fn harvest(&mut self, now: Time) {
        let grace = self.srtt_dur();
        while let Some(mi) = self.tracker.pop_complete(now, grace) {
            let u = self.utility.eval(mi.throughput_mbps(), mi.loss_fraction());
            match mi.tag {
                TAG_SS => {
                    if let Some((prev_u, prev_rate)) = self.prev_ss {
                        if u < prev_u {
                            self.rate =
                                Rate::from_mbps(prev_rate.max(self.min_rate.mbps()));
                            self.prev_ss = None;
                            self.enter_trial();
                            continue;
                        }
                    }
                    self.prev_ss = Some((u, mi.rate.mbps()));
                }
                slot @ 0..=3 => {
                    self.trial_utils[slot as usize] = Some(u);
                    if self.trial_utils.iter().all(Option::is_some) {
                        self.conclude_trial();
                    }
                }
                TAG_ADJ
                    if self.phase == Phase::Adjusting => {
                        if u >= self.prev_utility {
                            self.prev_utility = u;
                            self.adjust_n += 1;
                            let step = self.adjust_n as f64 * self.epsilon_min;
                            let new = self.rate.mbps() * (1.0 + self.adjust_dir * step);
                            self.rate = Rate::from_mbps(new.max(self.min_rate.mbps()));
                        } else {
                            let step = self.adjust_n as f64 * self.epsilon_min;
                            let new =
                                self.rate.mbps() / (1.0 + self.adjust_dir * step).max(0.1);
                            self.rate = Rate::from_mbps(new.max(self.min_rate.mbps()));
                            self.enter_trial();
                        }
                    }
                _ => {}
            }
        }
    }

    // simlint: cold: runs once per concluded 4-MI trial, not per ack
    fn conclude_trial(&mut self) {
        let ups: Vec<f64> = (0..4)
            .filter(|&i| self.trial_dirs[i])
            .map(|i| self.trial_utils[i].expect("conclude_trial runs only after all 4 sub-trials"))
            .collect();
        let downs: Vec<f64> = (0..4)
            .filter(|&i| !self.trial_dirs[i])
            .map(|i| self.trial_utils[i].expect("conclude_trial runs only after all 4 sub-trials"))
            .collect();
        let mut up_wins = 0;
        let (mut up_sum, mut down_sum) = (0.0, 0.0);
        for k in 0..2 {
            up_sum += ups[k];
            down_sum += downs[k];
            if ups[k] > downs[k] {
                up_wins += 1;
            }
        }
        if up_wins == 2 {
            self.adjust_dir = 1.0;
            self.adjust_n = 1;
            self.prev_utility = up_sum / 2.0;
            self.rate = Rate::from_mbps(self.rate.mbps() * (1.0 + self.epsilon));
            self.epsilon = self.epsilon_min;
            self.phase = Phase::Adjusting;
        } else if up_wins == 0 {
            self.adjust_dir = -1.0;
            self.adjust_n = 1;
            self.prev_utility = down_sum / 2.0;
            self.rate = Rate::from_mbps(
                (self.rate.mbps() * (1.0 - self.epsilon)).max(self.min_rate.mbps()),
            );
            self.epsilon = self.epsilon_min;
            self.phase = Phase::Adjusting;
        } else {
            self.epsilon = (self.epsilon + 0.01).min(self.epsilon_max);
            self.enter_trial();
        }
    }
}

impl CongestionControl for Allegro {
    fn on_ack(&mut self, ev: &AckEvent) {
        let rtt_s = ev.rtt.as_secs_f64();
        self.srtt = Some(match self.srtt {
            None => rtt_s,
            Some(s) => 0.875 * s + 0.125 * rtt_s,
        });
        self.tracker.on_ack(ev.now, ev.rtt, ev.newly_acked);
        match self.tracker.current_start() {
            None => self.open_next_mi(ev.now),
            Some(start) => {
                if ev.now >= start + self.mi_duration() {
                    self.open_next_mi(ev.now);
                }
            }
        }
        self.harvest(ev.now);
    }

    fn on_send(&mut self, now: Time, bytes: u64, _in_flight: u64) {
        if self.tracker.current_start().is_none() {
            self.open_next_mi(now);
        }
        self.tracker.on_send(now, bytes);
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        self.tracker.on_loss(ev.now, ev.sent_at, self.srtt_dur(), ev.lost_bytes);
        if ev.kind == LossKind::Timeout {
            self.rate = self.min_rate.max(self.rate.mul_f64(0.5));
        }
    }

    fn cwnd(&self) -> u64 {
        let rtt = self.srtt.unwrap_or(0.1);
        let bdp = self.current_rate().bytes_per_sec() * rtt;
        ((2.0 * bdp) as u64).max(4 * self.mss)
    }

    fn pacing_rate(&self) -> Option<Rate> {
        Some(self.current_rate())
    }

    fn name(&self) -> &'static str {
        "allegro"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_full_below_threshold() {
        let u = AllegroUtility::default();
        // At 2% loss the sigmoid is ≈ 0.95: utility stays strongly positive.
        assert!(u.eval(100.0, 0.02) > 80.0);
    }

    #[test]
    fn utility_collapses_above_threshold() {
        let u = AllegroUtility::default();
        assert!(u.eval(100.0, 0.08) < 0.0);
    }

    #[test]
    fn utility_monotone_in_rate_at_low_loss() {
        let u = AllegroUtility::default();
        assert!(u.eval(50.0, 0.01) > u.eval(25.0, 0.01));
    }

    #[test]
    fn trial_schedule_has_two_of_each() {
        let mut a = Allegro::default_params();
        for _ in 0..20 {
            a.shuffle_trial();
            let ups = a.trial_dirs.iter().filter(|&&d| d).count();
            assert_eq!(ups, 2);
        }
    }

    #[test]
    fn consistent_up_wins_raise_rate() {
        let mut a = Allegro::default_params();
        a.trial_dirs = [true, false, true, false];
        a.trial_utils = [Some(10.0), Some(5.0), Some(11.0), Some(6.0)];
        let r0 = a.base_rate().mbps();
        a.conclude_trial();
        assert!(a.base_rate().mbps() > r0);
        assert_eq!(a.phase, Phase::Adjusting);
        assert_eq!(a.adjust_dir, 1.0);
    }

    #[test]
    fn consistent_down_wins_lower_rate() {
        let mut a = Allegro::default_params();
        a.trial_dirs = [true, false, true, false];
        a.trial_utils = [Some(5.0), Some(10.0), Some(6.0), Some(11.0)];
        let r0 = a.base_rate().mbps();
        a.conclude_trial();
        assert!(a.base_rate().mbps() < r0);
        assert_eq!(a.adjust_dir, -1.0);
    }

    #[test]
    fn inconclusive_trial_widens_epsilon() {
        let mut a = Allegro::default_params();
        a.trial_dirs = [true, false, true, false];
        a.trial_utils = [Some(10.0), Some(5.0), Some(6.0), Some(11.0)];
        let e0 = a.epsilon;
        a.conclude_trial();
        assert!(a.epsilon > e0);
        assert!(matches!(a.phase, Phase::Trial(0)));
    }

    #[test]
    fn epsilon_capped() {
        let mut a = Allegro::default_params();
        for _ in 0..20 {
            a.trial_dirs = [true, false, true, false];
            a.trial_utils = [Some(10.0), Some(5.0), Some(6.0), Some(11.0)];
            a.conclude_trial();
        }
        assert!(a.epsilon <= a.epsilon_max + 1e-12);
    }

    #[test]
    fn rate_floor_enforced() {
        let mut a = Allegro::default_params();
        for _ in 0..100 {
            a.trial_dirs = [true, false, true, false];
            a.trial_utils = [Some(0.0), Some(10.0), Some(0.0), Some(10.0)];
            a.conclude_trial();
        }
        assert!(a.base_rate().mbps() >= 0.1);
    }

    #[test]
    fn trial_phase_probes_up_and_down() {
        let mut a = Allegro::default_params();
        a.trial_dirs = [true, false, true, false];
        a.epsilon = 0.05;
        let base = a.base_rate().mbps();
        a.phase = Phase::Trial(0);
        assert!((a.current_rate().mbps() - base * 1.05).abs() < 1e-9);
        a.phase = Phase::Trial(1);
        assert!((a.current_rate().mbps() - base * 0.95).abs() < 1e-9);
        a.phase = Phase::TrialWait;
        assert!((a.current_rate().mbps() - base).abs() < 1e-9);
    }

    #[test]
    fn slow_start_grows_in_closed_loop() {
        // Synthetic closed loop at constant RTT: rate must leave 2 Mbit/s
        // far behind on a clean path.
        let mut a = Allegro::default_params();
        let rtt_us = 50_000u64;
        let mut pipe: std::collections::VecDeque<(u64, u64)> = Default::default();
        let mut now = 0u64;
        while now < 3_000_000 {
            let bytes = (a.current_rate().bytes_per_sec() / 1000.0) as u64;
            a.on_send(Time::from_micros(now), bytes, 0);
            pipe.push_back((now, bytes));
            while let Some(&(t, b)) = pipe.front() {
                if t + rtt_us <= now {
                    pipe.pop_front();
                    a.on_ack(&AckEvent {
                        now: Time::from_micros(now),
                        rtt: Dur::from_micros(rtt_us),
                        newly_acked: b,
                        in_flight: 0,
                        delivered: 0,
                        delivered_at_send: 0,
                        delivery_rate: None,
                        app_limited: false,
                        ecn: false,
                    });
                } else {
                    break;
                }
            }
            now += 1000;
        }
        assert!(a.base_rate().mbps() > 16.0, "rate={}", a.base_rate());
    }
}

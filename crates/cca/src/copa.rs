//! Copa (Arun & Balakrishnan, NSDI 2018).
//!
//! Copa targets a sending rate of `1/(δ·dq)` packets per second, where `dq`
//! is its estimate of the queueing delay: *standing RTT* (minimum RTT over a
//! recent `srtt/2` window) minus *min RTT* (minimum over a long window).
//! On an ideal path it equilibrates with `2/δ` packets in the queue and
//! oscillates within `δ(C) = 4α/C` of delay (paper §2.2: < 0.5 ms when
//! C > 96 Mbit/s), making it sharply delay-convergent and hence susceptible
//! to starvation.
//!
//! The §5.1 scenario: one packet with an RTT 1 ms *below* the true
//! propagation delay poisons the min-RTT filter; Copa then believes there
//! is a standing queue of 1 ms it can never drain, caps its rate near
//! `1/(δ·1 ms)`, and a competing flow without the poisoned estimate takes
//! the rest of the link.

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::filter::WindowedMin;
use simcore::units::{Dur, Rate, Time};

/// Direction of the last window adjustment, for velocity tracking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    Up,
    Down,
}

/// Copa's operating mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopaMode {
    /// The delay-targeting mode analyzed by the paper (fixed δ).
    Default,
    /// TCP-competitive mode: AIMD on `1/δ` while the queue never empties
    /// (Copa's mechanism for coexisting with buffer-filling flows). Opt-in
    /// via [`Copa::with_competitive_mode`]; every scenario in the paper
    /// runs Copa against Copa in default mode.
    Competitive,
}

/// Copa congestion control.
#[derive(Clone, Debug)]
pub struct Copa {
    mss: u64,
    delta: f64,
    cwnd: f64, // bytes
    min_rtt: WindowedMin,      // long window (10 s), positions = ns
    standing_rtt: WindowedMin, // short window (srtt/2), positions = ns
    standing_width: u64,       // current width of `standing_rtt`, ns
    srtt: Option<f64>,         // seconds
    velocity: f64,
    last_dir: Option<Dir>,
    dir_streak: u32,
    round_end: Time,
    round_start_cwnd: f64,
    in_slow_start: bool,
    // --- competitive-mode machinery (inactive unless enabled) ---
    competitive_enabled: bool,
    mode: CopaMode,
    /// `1/δ` under AIMD in competitive mode.
    inv_delta: f64,
    /// Last time the queue was observed (nearly) empty.
    last_empty: Time,
    /// Peak queueing delay over a recent window, for the emptiness test.
    dq_peak: simcore::filter::WindowedMax,
}

impl Copa {
    /// Copa with the given MSS and δ (default mode). The NSDI paper's
    /// default is δ = 0.5.
    pub fn new(mss: u64, delta: f64) -> Self {
        assert!(delta > 0.0);
        Copa {
            mss,
            delta,
            cwnd: (2 * mss) as f64,
            min_rtt: WindowedMin::new(Dur::from_secs(10).as_nanos()),
            standing_rtt: WindowedMin::new(Dur::from_millis(100).as_nanos()),
            standing_width: Dur::from_millis(100).as_nanos(),
            srtt: None,
            velocity: 1.0,
            last_dir: None,
            dir_streak: 0,
            round_end: Time::ZERO,
            round_start_cwnd: (2 * mss) as f64,
            in_slow_start: true,
            competitive_enabled: false,
            mode: CopaMode::Default,
            inv_delta: 1.0 / delta,
            last_empty: Time::ZERO,
            dq_peak: simcore::filter::WindowedMax::new(Dur::from_millis(500).as_nanos()),
        }
    }

    /// Enable TCP-competitive mode switching (Copa §4 of its paper): when
    /// the bottleneck queue is never observed nearly-empty for 5 RTTs,
    /// Copa assumes a buffer-filling competitor and runs AIMD on `1/δ`
    /// (+1 per RTT, halved on loss, floored at the default δ).
    pub fn with_competitive_mode(mut self) -> Self {
        self.competitive_enabled = true;
        self
    }

    /// The mode Copa is currently operating in.
    pub fn mode(&self) -> CopaMode {
        self.mode
    }

    /// The effective δ (smaller in competitive mode = more aggressive).
    pub fn effective_delta(&self) -> f64 {
        match self.mode {
            CopaMode::Default => self.delta,
            CopaMode::Competitive => 1.0 / self.inv_delta,
        }
    }

    /// Default parameters: 1500-byte MSS, δ = 0.5.
    pub fn default_params() -> Self {
        Copa::new(1500, 0.5)
    }

    /// Set the long min-RTT window (default 10 s). The paper's §5.1
    /// experiments rely on a poisoned min-RTT sample persisting; with the
    /// default window the poison must recur at least every 10 s.
    pub fn with_min_rtt_window(mut self, w: Dur) -> Self {
        self.min_rtt = WindowedMin::new(w.as_nanos().max(1));
        self
    }

    /// Current min-RTT estimate (the poisonable filter).
    pub fn min_rtt(&self) -> Option<Dur> {
        self.min_rtt.get().map(Dur::from_secs_f64)
    }

    /// Current standing-RTT estimate.
    pub fn standing_rtt(&self) -> Option<Dur> {
        self.standing_rtt.get().map(Dur::from_secs_f64)
    }

    /// Estimated queueing delay `dq = standing RTT − min RTT`.
    pub fn queueing_delay(&self) -> Option<Dur> {
        let s = self.standing_rtt.get()?;
        let m = self.min_rtt.get()?;
        Some(Dur::from_secs_f64((s - m).max(0.0)))
    }

    /// Target rate `1/(δ·dq)` in packets/second (∞ encoded as `f64::MAX`
    /// when `dq = 0`).
    pub fn target_rate_pps(&self) -> Option<f64> {
        let dq = self.queueing_delay()?.as_secs_f64();
        if dq <= 0.0 {
            return Some(f64::MAX);
        }
        Some(1.0 / (self.delta * dq))
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd / self.mss as f64
    }
}

impl CongestionControl for Copa {
    fn on_ack(&mut self, ev: &AckEvent) {
        let pos = ev.now.as_nanos();
        let rtt_s = ev.rtt.as_secs_f64();
        self.min_rtt.insert(pos, rtt_s);
        self.srtt = Some(match self.srtt {
            None => rtt_s,
            Some(s) => 0.9 * s + 0.1 * rtt_s,
        });
        // Standing-RTT window is srtt/2, per the Copa paper. WindowedMin has
        // a fixed width, so rebuild the filter when the desired width drifts
        // by more than 2× (Copa is insensitive to small width errors).
        let srtt = self.srtt.expect("srtt assigned unconditionally above");
        let want_width = Dur::from_secs_f64(srtt / 2.0).as_nanos().max(1);
        if want_width * 2 < self.standing_width || want_width > self.standing_width * 2 {
            let mut f = WindowedMin::new(want_width);
            f.insert(pos, rtt_s);
            self.standing_rtt = f;
            self.standing_width = want_width;
        } else {
            self.standing_rtt.insert(pos, rtt_s);
        }

        let (Some(standing), Some(minr)) = (self.standing_rtt.get(), self.min_rtt.get())
        else {
            return;
        };
        let dq = (standing - minr).max(0.0);

        // --- competitive-mode detection (opt-in) ---
        if self.competitive_enabled {
            let srtt = self.srtt.unwrap_or(standing);
            self.dq_peak.insert(pos, dq);
            let peak = self.dq_peak.get().unwrap_or(0.0);
            // "Nearly empty": queueing delay under 10% of its recent peak
            // (or absolutely tiny).
            if dq < 0.1 * peak || dq < 2e-4 {
                self.last_empty = ev.now;
                if self.mode == CopaMode::Competitive {
                    self.mode = CopaMode::Default;
                }
            } else if ev.now.as_secs_f64() - self.last_empty.as_secs_f64() > 5.0 * srtt
                && self.mode == CopaMode::Default
            {
                self.mode = CopaMode::Competitive;
                self.inv_delta = 1.0 / self.delta;
            }
        }

        let delta = self.effective_delta();
        let target_pps = if dq <= 1e-9 {
            f64::MAX
        } else {
            1.0 / (delta * dq)
        };
        let current_pps = if standing > 0.0 {
            self.cwnd_pkts() / standing
        } else {
            0.0
        };

        if self.in_slow_start {
            if current_pps < target_pps {
                // Double once per RTT: spread the doubling across the
                // window's worth of acks.
                self.cwnd += ev.newly_acked as f64;
            } else {
                self.in_slow_start = false;
            }
        } else {
            // v/(δ·cwnd) packets per ack, cwnd in packets.
            let step = self.velocity / (delta * self.cwnd_pkts()) * self.mss as f64
                * (ev.newly_acked as f64 / self.mss as f64);
            if current_pps <= target_pps {
                self.cwnd += step;
            } else {
                self.cwnd -= step;
            }
        }
        self.cwnd = self.cwnd.max((2 * self.mss) as f64);

        // Velocity update once per RTT.
        if ev.now >= self.round_end {
            let rtt_dur = Dur::from_secs_f64(standing.max(1e-6));
            self.round_end = ev.now + rtt_dur;
            let dir = if self.cwnd >= self.round_start_cwnd {
                Dir::Up
            } else {
                Dir::Down
            };
            if Some(dir) == self.last_dir {
                self.dir_streak += 1;
                // Double velocity only after the direction has persisted
                // for three RTTs (Copa §2.2 of its paper).
                if self.dir_streak >= 3 {
                    self.velocity = (self.velocity * 2.0).min(1e6);
                }
            } else {
                self.velocity = 1.0;
                self.dir_streak = 0;
            }
            self.last_dir = Some(dir);
            self.round_start_cwnd = self.cwnd;
            // Competitive mode: additive increase of 1/δ each RTT.
            if self.mode == CopaMode::Competitive {
                self.inv_delta += 1.0;
            }
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        // Competitive mode: multiplicative decrease of 1/δ (δ doubles,
        // floored at the default) plus a window cut, like the AIMD flows
        // it is coexisting with.
        if self.mode == CopaMode::Competitive && ev.kind == LossKind::FastRetransmit {
            self.inv_delta = (self.inv_delta / 2.0).max(1.0 / self.delta);
            self.cwnd = (self.cwnd * 0.7).max((2 * self.mss) as f64);
            self.velocity = 1.0;
            return;
        }
        // Default-mode Copa reacts to loss only via timeouts (treated as
        // severe congestion).
        if ev.kind == LossKind::Timeout {
            self.cwnd = (2 * self.mss) as f64;
            self.velocity = 1.0;
            self.in_slow_start = true;
        }
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn pacing_rate(&self) -> Option<Rate> {
        // Copa paces at 2·cwnd/RTTstanding to avoid bursts.
        let standing = self.standing_rtt.get()?;
        if standing <= 0.0 {
            return None;
        }
        Some(Rate::from_bytes_per_sec(2.0 * self.cwnd / standing))
    }

    fn name(&self) -> &'static str {
        "copa"
    }

    fn internals(&self, probe: &mut dyn FnMut(&'static str, f64)) {
        if let Some(m) = self.min_rtt() {
            probe("copa.min_rtt", m.as_secs_f64());
        }
        if let Some(s) = self.standing_rtt() {
            probe("copa.standing_rtt", s.as_secs_f64());
        }
        if let Some(q) = self.queueing_delay() {
            probe("copa.queueing_delay", q.as_secs_f64());
        }
        probe("copa.velocity", self.velocity);
        probe("copa.delta", self.effective_delta());
        probe(
            "copa.competitive",
            (self.mode() == CopaMode::Competitive) as u8 as f64,
        );
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

impl Copa {
    #[doc(hidden)]
    pub fn debug_velocity(&self) -> f64 {
        self.velocity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_us: u64, rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_micros(now_us),
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: 1500,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    #[test]
    fn min_rtt_tracks_minimum() {
        let mut c = Copa::default_params();
        c.on_ack(&ack(0, 60.0));
        c.on_ack(&ack(1000, 59.0));
        c.on_ack(&ack(2000, 61.0));
        let m = c.min_rtt().unwrap();
        assert!((m.as_millis_f64() - 59.0).abs() < 1e-6);
    }

    #[test]
    fn queueing_delay_is_standing_minus_min() {
        let mut c = Copa::default_params();
        c.on_ack(&ack(0, 59.0));
        // Much later, all recent samples are 61 ms: standing = 61, min = 59.
        for i in 0..50 {
            c.on_ack(&ack(1_000_000 + i * 10_000, 61.0));
        }
        let dq = c.queueing_delay().unwrap();
        assert!((dq.as_millis_f64() - 2.0).abs() < 0.2, "dq={dq}");
    }

    #[test]
    fn slow_start_grows_fast() {
        let mut c = Copa::default_params();
        let w0 = c.cwnd();
        for i in 0..100 {
            c.on_ack(&ack(i * 5_000, 50.0));
        }
        assert!(c.cwnd() > 3 * w0);
    }

    #[test]
    fn rate_capped_by_poisoned_min_rtt() {
        // The §5.1 mechanism at the CCA level: min RTT 59 ms, real RTT
        // 60 ms. dq is stuck at 1 ms, so target rate = 1/(0.5·1ms) =
        // 2000 pkt/s. cwnd should gravitate to ≈ target·standing = 120 pkts.
        let mut c = Copa::default_params();
        c.on_ack(&ack(0, 59.0));
        c.cwnd = 400.0 * 1500.0; // start far above
        c.in_slow_start = false;
        // Stay within the 10 s min-RTT window so the poisoned sample holds.
        let mut now = 10_000u64;
        for _ in 0..18_000 {
            c.on_ack(&ack(now, 60.0));
            now += 500; // 2000 acks/sec for 9 s
        }
        let w_pkts = c.cwnd() as f64 / 1500.0;
        assert!(
            (w_pkts - 120.0).abs() < 40.0,
            "cwnd={w_pkts} pkts, expected ≈120"
        );
    }

    #[test]
    fn velocity_doubles_after_persistent_direction() {
        let mut c = Copa::default_params();
        c.in_slow_start = false;
        c.on_ack(&ack(0, 50.0));
        // All samples identical → dq=0 → target ∞ → always increasing.
        let mut now = 1_000u64;
        for _ in 0..400 {
            c.on_ack(&ack(now, 50.0));
            now += 5_000;
        }
        assert!(c.debug_velocity() > 1.0, "v={}", c.debug_velocity());
    }

    #[test]
    fn competitive_mode_engages_when_queue_never_empties() {
        let mut c = Copa::default_params().with_competitive_mode();
        c.in_slow_start = false;
        // Establish min RTT = 50 ms, then persistently high queueing delay.
        c.on_ack(&ack(0, 50.0));
        let mut now = 1_000u64;
        for _ in 0..3000 {
            c.on_ack(&ack(now, 80.0)); // dq = 30 ms forever
            now += 1_000;
        }
        assert_eq!(c.mode(), CopaMode::Competitive);
        // AIMD on 1/δ has been raising aggressiveness.
        assert!(c.effective_delta() < 0.5, "delta={}", c.effective_delta());
    }

    #[test]
    fn competitive_mode_disengages_when_queue_empties() {
        let mut c = Copa::default_params().with_competitive_mode();
        c.in_slow_start = false;
        c.on_ack(&ack(0, 50.0));
        let mut now = 1_000u64;
        for _ in 0..3000 {
            c.on_ack(&ack(now, 80.0));
            now += 1_000;
        }
        assert_eq!(c.mode(), CopaMode::Competitive);
        // Queue drains to (near) empty: back to default.
        c.on_ack(&ack(now, 50.1));
        assert_eq!(c.mode(), CopaMode::Default);
        assert!((c.effective_delta() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn competitive_loss_halves_aggressiveness() {
        let mut c = Copa::default_params().with_competitive_mode();
        c.mode = CopaMode::Competitive;
        c.inv_delta = 16.0;
        c.cwnd = 100.0 * 1500.0;
        c.on_loss(&LossEvent {
            now: Time::from_millis(5),
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
            sent_at: None,
        });
        assert!((c.inv_delta - 8.0).abs() < 1e-9);
        assert_eq!(c.cwnd(), 70 * 1500);
    }

    #[test]
    fn default_mode_never_switches_without_opt_in() {
        let mut c = Copa::default_params();
        c.in_slow_start = false;
        c.on_ack(&ack(0, 50.0));
        let mut now = 1_000u64;
        for _ in 0..3000 {
            c.on_ack(&ack(now, 80.0));
            now += 1_000;
        }
        assert_eq!(c.mode(), CopaMode::Default);
    }

    #[test]
    fn timeout_resets() {
        let mut c = Copa::default_params();
        c.cwnd = 100.0 * 1500.0;
        c.on_loss(&LossEvent {
            now: Time::ZERO,
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        assert_eq!(c.cwnd(), 2 * 1500);
    }

    #[test]
    fn pacing_rate_is_twice_window_rate() {
        let mut c = Copa::default_params();
        c.on_ack(&ack(0, 50.0));
        c.cwnd = 10.0 * 1500.0;
        let r = c.pacing_rate().unwrap();
        let expect = 2.0 * 10.0 * 1500.0 / 0.050;
        assert!((r.bytes_per_sec() - expect).abs() / expect < 0.01);
    }
}

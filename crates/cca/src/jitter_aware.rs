//! Algorithm 1 from §6.3: a delay-convergent CCA that designs for jitter.
//!
//! The paper's constructive answer to its own impossibility result. Given a
//! jitter budget `D`, a tolerable unfairness `s`, and a maximum delay
//! `Rmax`, map delays to rates *exponentially*:
//!
//! ```text
//! µ(d) = µ₋ · s^((Rmax − (d − Rm)) / D)
//! ```
//!
//! so that any two rates more than a factor `s` apart correspond to delays
//! more than `D` apart — rates that differ by the tolerated unfairness are
//! always *distinguishable* through jitter. The supported rate range is
//! `µ₊/µ₋ = s^((Rmax − Rm − D)/D)` (Eq. 2), exponentially larger than the
//! Vegas family's `O(Rmax/D)` (Eq. 1).
//!
//! Following the paper's CCAC-guided refinements: (a) AIMD, not AIAD —
//! "the fairness properties of AIMD are critical in the presence of
//! measurement ambiguity"; (b) the rate changes by the same amount every
//! `Rm` regardless of how many ACKs arrive.
//!
//! ```text
//! every Rm:
//!     if µ < µ₋·s^((Rmax − (d − Rm))/D) { µ ← µ + a } else { µ ← b·µ }
//! ```
//!
//! Like the paper's Algorithm 1, this assumes `Rm` is known (the paper runs
//! it with oracular `Rm` and discusses estimating it as an open problem);
//! `Rmax` can be set as `Rm + const`.

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::units::{Dur, Rate, Time};

/// Configuration for [`JitterAware`] (Algorithm 1).
#[derive(Clone, Copy, Debug)]
pub struct JitterAwareConfig {
    /// Known propagation RTT `Rm` (oracular, per the paper).
    pub rm: Dur,
    /// Maximum tolerable delay `Rmax` (e.g. `Rm` + 100 ms).
    pub rmax: Dur,
    /// Designed-for jitter bound `D`.
    pub d: Dur,
    /// Maximum tolerable throughput ratio `s > 1`.
    pub s: f64,
    /// Minimum supported rate `µ₋`.
    pub mu_minus: Rate,
    /// Additive increase per `Rm`.
    pub a: Rate,
    /// Multiplicative decrease factor `0 < b < 1`.
    pub b: f64,
}

impl JitterAwareConfig {
    /// The paper's running example: `D` = 10 ms, `s` = 2, `Rmax` = `Rm` +
    /// 100 ms, supporting a 2⁹ ≈ 500× rate range above `µ₋`.
    pub fn example(rm: Dur) -> Self {
        JitterAwareConfig {
            rm,
            rmax: rm + Dur::from_millis(100),
            d: Dur::from_millis(10),
            s: 2.0,
            mu_minus: Rate::from_mbps(0.1),
            a: Rate::from_mbps(0.2),
            b: 0.9,
        }
    }

    /// The target rate for a measured RTT `d`: `µ₋ · s^((Rmax − d)/D)`
    /// (Eq. 2 with `Rmax` expressed as a maximum tolerable *RTT*).
    pub fn target_rate(&self, d: Dur) -> Rate {
        let expo = (self.rmax.as_secs_f64() - d.as_secs_f64()) / self.d.as_secs_f64();
        // Cap the exponent to keep f64 finite on tiny delays.
        let expo = expo.clamp(-60.0, 60.0);
        Rate::from_bytes_per_sec(self.mu_minus.bytes_per_sec() * self.s.powf(expo))
    }

    /// The maximum rate at which `s`-fairness is still guaranteed:
    /// `µ₊ = µ₋·s^((Rmax − Rm − D)/D)` (the paper's Eq. 2 evaluated at
    /// `d = Rm + D`, the minimum RTT needed for full utilization per
    /// Theorem 2).
    pub fn mu_plus(&self) -> Rate {
        self.target_rate(self.rm + self.d)
    }

    /// Figure of merit `µ₊/µ₋` (§6.3).
    pub fn merit(&self) -> f64 {
        self.mu_plus().bytes_per_sec() / self.mu_minus.bytes_per_sec()
    }
}

/// Algorithm 1: jitter-aware exponential rate–delay CCA.
#[derive(Clone, Debug)]
pub struct JitterAware {
    cfg: JitterAwareConfig,
    rate: Rate,
    last_rtt: Option<Dur>,
    next_update: Time,
    mss: u64,
}

impl JitterAware {
    /// Create from a configuration, starting at `µ₋`.
    pub fn new(cfg: JitterAwareConfig) -> Self {
        assert!(cfg.s > 1.0, "s must exceed 1");
        assert!(cfg.b > 0.0 && cfg.b < 1.0, "b must be in (0,1)");
        assert!(cfg.rmax > cfg.rm, "Rmax must exceed Rm");
        JitterAware {
            rate: cfg.mu_minus,
            cfg,
            last_rtt: None,
            next_update: Time::ZERO,
        mss: 1500,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &JitterAwareConfig {
        &self.cfg
    }

    /// The current sending rate `µ`.
    pub fn rate(&self) -> Rate {
        self.rate
    }
}

impl CongestionControl for JitterAware {
    fn on_ack(&mut self, ev: &AckEvent) {
        self.last_rtt = Some(ev.rtt);
        if ev.now < self.next_update {
            return;
        }
        // Exactly one update per Rm, independent of ACK count (CCAC-guided
        // design note (b) in §6.3).
        self.next_update = ev.now + self.cfg.rm;
        let d = self.last_rtt.expect("last_rtt assigned at the top of on_ack");
        let target = self.cfg.target_rate(d);
        if self.rate < target {
            self.rate = self.rate + self.cfg.a;
        } else {
            self.rate = self.rate.mul_f64(self.cfg.b);
        }
        if self.rate < self.cfg.mu_minus.mul_f64(0.01) {
            self.rate = self.cfg.mu_minus.mul_f64(0.01);
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        // Algorithm 1 as printed has no loss response; we add the obvious
        // safety reaction to timeouts so short buffers don't wedge the flow.
        if ev.kind == LossKind::Timeout {
            self.rate = self.cfg.mu_minus;
        }
    }

    fn cwnd(&self) -> u64 {
        // In-flight cap of 2·µ·Rmax (the paper notes Algorithm 1 lacks a
        // cwnd cap for sudden capacity drops; this is that cap).
        let cap = 2.0 * self.rate.bytes_per_sec() * self.cfg.rmax.as_secs_f64();
        (cap as u64).max(2 * self.mss)
    }

    fn pacing_rate(&self) -> Option<Rate> {
        Some(self.rate)
    }

    fn name(&self) -> &'static str {
        "jitter-aware"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> JitterAwareConfig {
        JitterAwareConfig::example(Dur::from_millis(50))
    }

    fn ack(now_ms: u64, rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: 1500,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    #[test]
    fn target_rate_at_rmax_is_mu_minus() {
        let c = cfg();
        // d − Rm = Rmax → exponent 0 → µ₋.
        let d = c.rm + Dur::from_millis(100);
        let t = c.target_rate(d);
        assert!((t.mbps() - c.mu_minus.mbps()).abs() < 1e-9);
    }

    #[test]
    fn merit_matches_paper_example() {
        // D = 10 ms, s = 2, Rmax − Rm = 100 ms → µ₊/µ₋ = 2^((100−10)/10) = 2⁹.
        let c = cfg();
        assert!((c.merit() - 512.0).abs() / 512.0 < 1e-9, "merit={}", c.merit());
    }

    #[test]
    fn target_rate_monotone_decreasing_in_delay() {
        let c = cfg();
        let d1 = c.target_rate(Dur::from_millis(60));
        let d2 = c.target_rate(Dur::from_millis(80));
        let d3 = c.target_rate(Dur::from_millis(120));
        assert!(d1 > d2 && d2 > d3);
    }

    #[test]
    fn rates_s_apart_map_to_delays_d_apart() {
        // The design goal: µ and s·µ differ by at least D of delay.
        let c = cfg();
        let d_lo = Dur::from_millis(70);
        let d_hi = d_lo + c.d;
        let ratio = c.target_rate(d_lo).bytes_per_sec() / c.target_rate(d_hi).bytes_per_sec();
        assert!((ratio - c.s).abs() < 1e-9, "ratio={ratio}");
    }

    #[test]
    fn additive_increase_below_target() {
        let mut j = JitterAware::new(cfg());
        let r0 = j.rate().mbps();
        // Low delay → target far above → +a.
        j.on_ack(&ack(0, 51.0));
        assert!((j.rate().mbps() - (r0 + 0.2)).abs() < 1e-9);
    }

    #[test]
    fn multiplicative_decrease_above_target() {
        let mut j = JitterAware::new(cfg());
        j.rate = Rate::from_mbps(100.0);
        // Huge delay → target ≈ µ₋ → decrease by factor b.
        j.on_ack(&ack(0, 160.0));
        assert!((j.rate().mbps() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn one_update_per_rm() {
        let mut j = JitterAware::new(cfg());
        let r0 = j.rate().mbps();
        // Many ACKs inside one Rm window → exactly one +a.
        j.on_ack(&ack(0, 51.0));
        for ms in 1..45 {
            j.on_ack(&ack(ms, 51.0));
        }
        assert!((j.rate().mbps() - (r0 + 0.2)).abs() < 1e-9);
        // After Rm elapses, the next update applies.
        j.on_ack(&ack(51, 51.0));
        assert!((j.rate().mbps() - (r0 + 0.4)).abs() < 1e-9);
    }

    #[test]
    fn cwnd_caps_at_two_rate_rmax() {
        let mut j = JitterAware::new(cfg());
        j.rate = Rate::from_mbps(100.0);
        // 2 * 12.5 MB/s * 0.15 s = 3.75 MB
        assert_eq!(j.cwnd(), 3_750_000);
    }

    #[test]
    fn timeout_resets_rate() {
        let mut j = JitterAware::new(cfg());
        j.rate = Rate::from_mbps(50.0);
        j.on_loss(&LossEvent {
            now: Time::ZERO,
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        assert!((j.rate().mbps() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn exponent_clamped_for_tiny_delay() {
        let c = JitterAwareConfig {
            d: Dur::from_micros(1),
            ..cfg()
        };
        let t = c.target_rate(c.rm);
        assert!(t.bytes_per_sec().is_finite());
    }
}

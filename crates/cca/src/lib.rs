//! # cca — congestion-control algorithms
//!
//! From-scratch implementations of every CCA the paper analyzes or proposes
//! (*Starvation in End-to-End Congestion Control*, SIGCOMM 2022):
//!
//! | Module | Algorithm | Paper section |
//! |---|---|---|
//! | [`vegas`] | TCP Vegas (α/β packets-in-queue) | §2.2, §5.1 |
//! | [`ledbat`] | LEDBAT (RFC 6817 scavenger, min-filter base delay) | §1, §3 |
//! | [`fast`] | FAST TCP (periodic smoothed window update) | §2.2, §5.1 |
//! | [`copa`] | Copa (standing-RTT target rate, velocity) | §5.1 |
//! | [`bbr`] | BBR v1 (pacing + cwnd-limited modes) | §5.2 |
//! | [`verus`] | Verus (max-RTT delay-profile walker, simplified) | §1, §2.2 |
//! | [`vivace`] | PCC Vivace (latency-gradient online learning) | §5.3 |
//! | [`allegro`] | PCC Allegro (loss-threshold utility) | §5.4 |
//! | [`reno`] | TCP NewReno (loss-based AIMD baseline) | §5.4 |
//! | [`cubic`] | TCP Cubic (loss-based baseline) | §5.4 |
//! | [`jitter_aware`] | Algorithm 1: exponential rate–delay mapping | §6.3 |
//! | [`delay_aimd`] | AIMD-on-delay (the §6.2 conjecture, an extension) | §6.2 |
//! | [`const_cwnd`] | "silly CCA" (`cwnd = k` always) | §4.2 |
//!
//! All algorithms implement the event-driven [`CongestionControl`] trait and
//! are `Clone`, which the theorem machinery uses to snapshot converged state
//! (proof step 3 starts the two-flow scenario from the states at `T₁`/`T₂`).
//!
//! # Example
//!
//! Drive a CCA by hand with synthetic acknowledgements:
//!
//! ```
//! use cca::{AckEvent, CongestionControl, Vegas};
//! use simcore::units::{Dur, Time};
//!
//! let mut vegas = Vegas::default_params();
//! let w0 = vegas.cwnd();
//! // Flat RTTs at the propagation delay: Vegas sees an empty queue and grows.
//! for i in 0..10u64 {
//!     vegas.on_ack(&AckEvent {
//!         now: Time::from_millis(i * 51),
//!         rtt: Dur::from_millis(50),
//!         newly_acked: 1500,
//!         in_flight: 3000,
//!         delivered: (i + 1) * 1500,
//!         delivered_at_send: i * 1500,
//!         delivery_rate: None,
//!         app_limited: false,
//!         ecn: false,
//!     });
//! }
//! assert!(vegas.cwnd() > w0);
//! ```

pub mod allegro;
pub mod bbr;
pub mod const_cwnd;
pub mod copa;
pub mod cubic;
pub mod delay_aimd;
pub mod fast;
pub mod jitter_aware;
pub mod ledbat;
pub mod mi;
pub mod reno;
pub mod traits;
pub mod vegas;
pub mod verus;
pub mod vivace;

pub use allegro::Allegro;
pub use bbr::Bbr;
pub use const_cwnd::ConstCwnd;
pub use copa::Copa;
pub use cubic::Cubic;
pub use delay_aimd::DelayAimd;
pub use fast::FastTcp;
pub use jitter_aware::JitterAware;
pub use ledbat::Ledbat;
pub use reno::NewReno;
pub use traits::{AckEvent, CongestionControl, LossEvent, LossKind};
pub use vegas::Vegas;
pub use verus::Verus;
pub use vivace::Vivace;

/// A boxed CCA (object-safe, cloneable via [`CongestionControl::clone_box`]).
pub type BoxCca = Box<dyn CongestionControl>;

/// A factory producing fresh instances of a CCA configuration; sweeps and
/// theorem constructions run many independent single-flow simulations.
pub type CcaFactory = std::sync::Arc<dyn Fn() -> BoxCca + Send + Sync>;

/// Convenience: build a [`CcaFactory`] from a closure.
pub fn factory<F>(f: F) -> CcaFactory
where
    F: Fn() -> BoxCca + Send + Sync + 'static,
{
    std::sync::Arc::new(f)
}

//! FAST TCP (Wei, Jin, Low, Hegde, 2006).
//!
//! FAST shares Vegas's equilibrium — `α` packets buffered per flow, so
//! `δ(C) = 0` and RTT = `Rm + α/C` on an ideal path (Figure 3) — but reaches
//! it with a periodic multiplicative-smoothed update instead of ±1 AIAD:
//!
//! ```text
//! w ← min(2w, (1−γ)·w + γ·(base_rtt/rtt · w + α))
//! ```
//!
//! applied once per update period. Because its equilibrium is identical to
//! Vegas's, every §5.1 starvation scenario applies to it unchanged.

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::units::{Dur, Rate, Time};

/// FAST TCP congestion control.
#[derive(Clone, Debug)]
pub struct FastTcp {
    mss: u64,
    alpha_pkts: f64,
    gamma: f64,
    period: Dur,
    cwnd: f64, // bytes
    base_rtt: Option<Dur>,
    srtt: Option<f64>, // seconds, EWMA of samples
    next_update: Time,
}

impl FastTcp {
    /// FAST with target `alpha_pkts` packets in queue, smoothing `gamma`
    /// in `(0, 1]`, and the given update period (the FAST paper uses 20 ms).
    pub fn new(mss: u64, alpha_pkts: f64, gamma: f64, period: Dur) -> Self {
        assert!(alpha_pkts > 0.0);
        assert!(gamma > 0.0 && gamma <= 1.0);
        FastTcp {
            mss,
            alpha_pkts,
            gamma,
            period,
            cwnd: (2 * mss) as f64,
            base_rtt: None,
            srtt: None,
            next_update: Time::ZERO,
        }
    }

    /// Paper-typical parameters: α = 4 packets, γ = 0.5, 20 ms period.
    pub fn default_params() -> Self {
        FastTcp::new(1500, 4.0, 0.5, Dur::from_millis(20))
    }

    /// Override the minimum-RTT estimate (see [`crate::Vegas::set_base_rtt`]).
    pub fn set_base_rtt(&mut self, rtt: Dur) {
        self.base_rtt = Some(rtt);
    }

    /// Current estimate of the propagation RTT.
    pub fn base_rtt(&self) -> Option<Dur> {
        self.base_rtt
    }
}

impl CongestionControl for FastTcp {
    fn on_ack(&mut self, ev: &AckEvent) {
        match self.base_rtt {
            None => self.base_rtt = Some(ev.rtt),
            Some(b) if ev.rtt < b => self.base_rtt = Some(ev.rtt),
            _ => {}
        }
        let sample = ev.rtt.as_secs_f64();
        self.srtt = Some(match self.srtt {
            None => sample,
            // FAST weights new samples lightly (3/4 old, 1/4 new here).
            Some(s) => 0.75 * s + 0.25 * sample,
        });

        if ev.now < self.next_update {
            return;
        }
        self.next_update = ev.now + self.period;

        let rtt = self.srtt.expect("srtt assigned unconditionally above");
        let base = self
            .base_rtt
            .expect("base_rtt seeded by the first ACK, before any update")
            .as_secs_f64();
        if rtt <= 0.0 {
            return;
        }
        let w_pkts = self.cwnd / self.mss as f64;
        let target = (1.0 - self.gamma) * w_pkts
            + self.gamma * ((base / rtt) * w_pkts + self.alpha_pkts);
        let new_w = target.min(2.0 * w_pkts);
        self.cwnd = (new_w * self.mss as f64).max((2 * self.mss) as f64);
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        // FAST halves on loss (it predates widespread loss-resilience work).
        match ev.kind {
            LossKind::FastRetransmit => self.cwnd *= 0.5,
            LossKind::Timeout => self.cwnd = (2 * self.mss) as f64,
        }
        self.cwnd = self.cwnd.max((2 * self.mss) as f64);
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn pacing_rate(&self) -> Option<Rate> {
        None
    }

    fn name(&self) -> &'static str {
        "fast"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: 1500,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    fn drive(f: &mut FastTcp, rtt_ms: f64, updates: usize) {
        let mut now = 0u64;
        for _ in 0..updates {
            // Several acks per period so srtt settles toward the sample.
            for _ in 0..8 {
                f.on_ack(&ack(now, rtt_ms));
                now += 3;
            }
            now += 21;
        }
    }

    #[test]
    fn grows_toward_equilibrium_from_below() {
        let mut f = FastTcp::default_params();
        f.set_base_rtt(Dur::from_millis(50));
        // At rtt == base, update is w ← min(2w, w + γα): strictly growing.
        let w0 = f.cwnd();
        drive(&mut f, 50.0, 10);
        assert!(f.cwnd() > w0);
    }

    #[test]
    fn equilibrium_holds_alpha_packets() {
        // Fixed point: w = (base/rtt)w + α → w(1 − base/rtt) = α.
        // With base=50, rtt=52: w = α·rtt/(rtt−base) = 4*52/2 = 104 pkts.
        let mut f = FastTcp::default_params();
        f.set_base_rtt(Dur::from_millis(50));
        f.cwnd = 104.0 * 1500.0;
        drive(&mut f, 52.0, 40);
        let w_pkts = f.cwnd() as f64 / 1500.0;
        assert!((w_pkts - 104.0).abs() < 2.0, "w={w_pkts}");
    }

    #[test]
    fn converges_to_equilibrium_from_above() {
        let mut f = FastTcp::default_params();
        f.set_base_rtt(Dur::from_millis(50));
        f.cwnd = 400.0 * 1500.0;
        drive(&mut f, 52.0, 200);
        let w_pkts = f.cwnd() as f64 / 1500.0;
        assert!((w_pkts - 104.0).abs() < 5.0, "w={w_pkts}");
    }

    #[test]
    fn growth_capped_at_doubling() {
        let mut f = FastTcp::new(1500, 1000.0, 1.0, Dur::from_millis(20));
        f.set_base_rtt(Dur::from_millis(50));
        f.cwnd = 2.0 * 1500.0;
        f.on_ack(&ack(0, 50.0));
        assert!(f.cwnd() <= 4 * 1500);
    }

    #[test]
    fn loss_halves() {
        let mut f = FastTcp::default_params();
        f.cwnd = 100.0 * 1500.0;
        f.on_loss(&LossEvent {
            now: Time::ZERO,
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
            sent_at: None,
        });
        assert_eq!(f.cwnd(), 50 * 1500);
    }
}

//! Monitor-interval (MI) tracking shared by the PCC algorithms.
//!
//! PCC evaluates a sending rate by dedicating a monitor interval to it:
//! every packet **sent** during the MI is attributed to it, and the MI's
//! utility is computed once those packets' fates (ACK or loss) are known —
//! about one RTT after the MI ends. Getting this attribution right is
//! essential: measuring "ACKs that arrived during the MI" lags the probe by
//! an RTT and turns the gradient estimate into noise.
//!
//! ACKs are attributed by send time (`now − rtt`), which the sender's
//! per-packet RTT samples make exact for unambiguous (non-retransmitted)
//! packets.

use simcore::units::{Dur, Rate, Time};
use std::collections::VecDeque;

/// One monitor interval's accounting.
#[derive(Clone, Debug)]
pub struct Mi {
    /// Monotone id.
    pub id: u64,
    /// Send-time window `[start, end)` (`end` set when the MI closes).
    pub start: Time,
    /// Exclusive end of the send window.
    pub end: Option<Time>,
    /// The sending rate this MI probed.
    pub rate: Rate,
    /// Caller-defined tag (phase/probe-direction marker).
    pub tag: u32,
    /// Bytes sent with send time inside the window.
    pub sent: u64,
    /// Bytes acknowledged whose send time fell inside the window.
    pub acked: u64,
    /// Bytes declared lost attributed to the window.
    pub lost: u64,
    /// `(ACK arrival time s, RTT s)` samples for the latency-gradient
    /// regression. Arrival time (not send time) is the measurement axis —
    /// this is what makes link-layer ACK aggregation poisonous to Vivace:
    /// a burst of ACKs collapses onto one arrival instant and the
    /// regression returns cluster noise (§5.3).
    pub samples: Vec<(f64, f64)>,
}

impl Mi {
    /// Measured throughput in Mbit/s over the MI's send window.
    pub fn throughput_mbps(&self) -> f64 {
        let end = self.end.expect("throughput of an open MI");
        let dur = end.since(self.start).as_secs_f64().max(1e-6);
        self.acked as f64 * 8.0 / 1e6 / dur
    }

    /// Loss fraction among attributed bytes.
    pub fn loss_fraction(&self) -> f64 {
        let total = self.acked + self.lost;
        if total == 0 {
            0.0
        } else {
            self.lost as f64 / total as f64
        }
    }

    /// Least-squares slope of RTT vs ACK arrival time (s/s); 0 without
    /// spread.
    pub fn rtt_gradient(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let nf = n as f64;
        let (mut st, mut sr) = (0.0, 0.0);
        for &(t, r) in &self.samples {
            st += t;
            sr += r;
        }
        let (mt, mr) = (st / nf, sr / nf);
        let (mut num, mut den) = (0.0, 0.0);
        for &(t, r) in &self.samples {
            num += (t - mt) * (r - mr);
            den += (t - mt) * (t - mt);
        }
        if den <= 1e-12 {
            0.0
        } else {
            num / den
        }
    }
}

/// Tracks the open MI plus closed MIs awaiting their ACKs.
#[derive(Clone, Debug)]
pub struct MiTracker {
    intervals: VecDeque<Mi>,
    next_id: u64,
}

impl Default for MiTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl MiTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        MiTracker {
            intervals: VecDeque::new(),
            next_id: 0,
        }
    }

    /// Close the current MI (if any) at `now` and open a new one probing
    /// `rate` with `tag`. Returns the new MI's id.
    // simlint: cold: opens one MI per measurement interval, not per packet
    pub fn begin(&mut self, now: Time, rate: Rate, tag: u32) -> u64 {
        if let Some(cur) = self.intervals.back_mut() {
            if cur.end.is_none() {
                cur.end = Some(now);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.intervals.push_back(Mi {
            id,
            start: now,
            end: None,
            rate,
            tag,
            sent: 0,
            acked: 0,
            lost: 0,
            samples: Vec::new(),
        });
        id
    }

    /// The open MI's start, if one is open.
    pub fn current_start(&self) -> Option<Time> {
        self.intervals.back().and_then(|m| {
            if m.end.is_none() {
                Some(m.start)
            } else {
                None
            }
        })
    }

    /// Record bytes sent now (attributed to the open MI). Saturating: a
    /// CCA probing at an absurd rate (e.g. unbounded slow-start doubling in
    /// a synthetic closed loop) must not wrap the MI's byte counters.
    pub fn on_send(&mut self, _now: Time, bytes: u64) {
        if let Some(cur) = self.intervals.back_mut() {
            if cur.end.is_none() {
                cur.sent = cur.sent.saturating_add(bytes);
            }
        }
    }

    fn find_by_send_time(&mut self, send_t: Time) -> Option<&mut Mi> {
        self.intervals
            .iter_mut()
            .find(|m| send_t >= m.start && m.end.is_none_or(|e| send_t < e))
    }

    /// Attribute an ACK: `rtt` dates the packet's transmission.
    pub fn on_ack(&mut self, now: Time, rtt: Dur, bytes: u64) {
        let send_t = if now.as_nanos() >= rtt.as_nanos() {
            now - rtt
        } else {
            Time::ZERO
        };
        if let Some(mi) = self.find_by_send_time(send_t) {
            mi.acked = mi.acked.saturating_add(bytes);
            mi.samples.push((now.as_secs_f64(), rtt.as_secs_f64()));
        }
    }

    /// Attribute a loss. `sent_at` is the lost packet's exact send time
    /// when the transport knows it; otherwise the packet is assumed sent
    /// one `srtt` ago.
    pub fn on_loss(&mut self, now: Time, sent_at: Option<Time>, srtt: Dur, bytes: u64) {
        let send_t = sent_at.unwrap_or(if now.as_nanos() >= srtt.as_nanos() {
            now - srtt
        } else {
            Time::ZERO
        });
        if let Some(mi) = self.find_by_send_time(send_t) {
            mi.lost = mi.lost.saturating_add(bytes);
        }
    }

    /// Pop the oldest closed MI whose grace period (time for its last
    /// packets' ACKs to return) has elapsed.
    pub fn pop_complete(&mut self, now: Time, grace: Dur) -> Option<Mi> {
        let front = self.intervals.front()?;
        let end = front.end?;
        if now >= end + grace {
            self.intervals.pop_front()
        } else {
            None
        }
    }

    /// Number of tracked intervals (open + awaiting).
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True if no MIs are tracked.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn begin_closes_previous() {
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        tr.begin(t(50), Rate::from_mbps(4.0), 1);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.intervals[0].end, Some(t(50)));
        assert!(tr.intervals[1].end.is_none());
    }

    #[test]
    fn sends_attributed_to_open_mi() {
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        tr.on_send(t(10), 1500);
        tr.begin(t(50), Rate::from_mbps(4.0), 0);
        tr.on_send(t(60), 3000);
        assert_eq!(tr.intervals[0].sent, 1500);
        assert_eq!(tr.intervals[1].sent, 3000);
    }

    #[test]
    fn acks_attributed_by_send_time() {
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        tr.begin(t(50), Rate::from_mbps(4.0), 0);
        // ACK at 90 ms with RTT 60 ms → sent at 30 ms → first MI.
        tr.on_ack(t(90), Dur::from_millis(60), 1500);
        // ACK at 120 ms with RTT 60 ms → sent at 60 ms → second MI.
        tr.on_ack(t(120), Dur::from_millis(60), 1500);
        assert_eq!(tr.intervals[0].acked, 1500);
        assert_eq!(tr.intervals[1].acked, 1500);
    }

    #[test]
    fn losses_attributed_exactly_when_known() {
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        tr.begin(t(50), Rate::from_mbps(4.0), 0);
        // Exact send time 60 ms → second MI even though srtt would point
        // at the first.
        tr.on_loss(t(70), Some(t(60)), Dur::from_millis(60), 1500);
        assert_eq!(tr.intervals[1].lost, 1500);
        assert_eq!(tr.intervals[0].lost, 0);
    }

    #[test]
    fn losses_attributed_by_srtt() {
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        tr.begin(t(50), Rate::from_mbps(4.0), 0);
        tr.on_loss(t(70), None, Dur::from_millis(60), 1500); // ≈ sent at 10 ms
        assert_eq!(tr.intervals[0].lost, 1500);
    }

    #[test]
    fn completion_waits_for_grace() {
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        tr.begin(t(50), Rate::from_mbps(2.0), 0);
        assert!(tr.pop_complete(t(80), Dur::from_millis(60)).is_none());
        let mi = tr.pop_complete(t(110), Dur::from_millis(60)).unwrap();
        assert_eq!(mi.id, 0);
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn throughput_and_loss_math() {
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        tr.on_send(t(1), 15_000);
        tr.begin(t(100), Rate::from_mbps(2.0), 0);
        tr.on_ack(t(110), Dur::from_millis(100), 12_000);
        tr.on_loss(t(110), None, Dur::from_millis(100), 3_000);
        let mi = tr.pop_complete(t(500), Dur::from_millis(100)).unwrap();
        // 12 kB over 100 ms = 0.96 Mbit/s.
        assert!((mi.throughput_mbps() - 0.96).abs() < 1e-9);
        assert!((mi.loss_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn gradient_positive_when_rtt_rises() {
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        for i in 0..10u64 {
            let send = t(i * 10);
            let rtt = Dur::from_millis(50 + i); // +1 ms per 10 ms of send time
            tr.on_ack(send + rtt, rtt, 1500);
        }
        let mi = &tr.intervals[0];
        // Arrival spacing is 11 ms per +1 ms of RTT → slope 1/11.
        assert!((mi.rtt_gradient() - 1.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn gradient_noise_from_ack_clusters() {
        // Quantized ACKs: two bursts, each with identical arrival time but
        // spread RTTs; the regression sees only the cluster means.
        let mut tr = MiTracker::new();
        tr.begin(t(0), Rate::from_mbps(2.0), 0);
        for i in 0..5u64 {
            tr.on_ack(t(60), Dur::from_millis(60 - i * 10), 1500);
        }
        for i in 0..5u64 {
            tr.on_ack(t(120), Dur::from_millis(80 - i * 10), 1500);
        }
        let mi = &tr.intervals[0];
        // Cluster means: 40 ms @ 60 ms, 60 ms @ 120 ms → slope 1/3 — a huge
        // phantom gradient from aggregation alone.
        assert!((mi.rtt_gradient() - (0.020 / 0.060)).abs() < 1e-9);
    }
}

//! Verus (Zaki et al., SIGCOMM 2015) — the "maximum of RTT" CCA the paper
//! lists among the delay-convergent family (§1: "maximums (Verus)").
//!
//! Verus continuously learns a **delay profile** — a mapping from
//! congestion-window size to the delay that window produces — and walks
//! along it: each epoch it looks at the maximum delay of the epoch,
//! nudges a delay *target* up (if delay has been falling) or down (if
//! rising), and sets the next window to the largest one the profile says
//! stays under the target. Severe delay (beyond a ratio `R` of the
//! minimum) or loss halves the window directly.
//!
//! This is a faithful simplification of the published algorithm (the
//! original shapes per-epoch sending with short δ-epochs and models the
//! profile with curve fitting; we use bucketed EWMA learning and
//! RTT-quartile epochs — see DESIGN.md's substitution notes). Its
//! equilibrium oscillates in a narrow band around the learned operating
//! point, so it is delay-convergent and Theorem 1 applies.

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::units::{Dur, Rate, Time};

/// Window bucket size for the delay profile, in packets.
const BUCKET_PKTS: u64 = 4;
/// Number of profile buckets (covers up to 4·256 = 1024 packets).
const BUCKETS: usize = 256;
/// Profile entries older than this are ignored (ns).
const PROFILE_TTL: u64 = 2_000_000_000;

/// Verus congestion control (simplified).
#[derive(Clone, Debug)]
pub struct Verus {
    mss: u64,
    /// Delay profile: bucket → (EWMA of observed RTT in seconds, time of
    /// last update in ns). Entries go stale after [`PROFILE_TTL`] and are
    /// ignored — the network the profile describes may no longer exist.
    profile: Vec<Option<(f64, u64)>>,
    cwnd: f64, // bytes
    /// Minimum RTT ever observed (the profile's floor).
    rtt_min: Option<f64>,
    srtt: Option<f64>,
    /// Max RTT seen during the current epoch.
    epoch_max: f64,
    /// Max RTT of the previous epoch.
    prev_epoch_max: Option<f64>,
    epoch_end: Time,
    /// Multiplicative-decrease trigger: delay beyond `r_thresh · rtt_min`.
    r_thresh: f64,
    /// Target-delay decrement when delay is rising (seconds).
    delta_down: f64,
    /// Target-delay increment when delay is falling/flat (seconds).
    delta_up: f64,
    in_slow_start: bool,
}

impl Verus {
    /// Verus with the paper-suggested shape: `R = 2`, asymmetric target
    /// steps (decrease twice as fast as increase).
    pub fn new(mss: u64) -> Self {
        Verus {
            mss,
            profile: vec![None; BUCKETS],
            cwnd: (2 * mss) as f64,
            rtt_min: None,
            srtt: None,
            epoch_max: 0.0,
            prev_epoch_max: None,
            epoch_end: Time::ZERO,
            r_thresh: 2.0,
            delta_down: 0.002,
            delta_up: 0.001,
            in_slow_start: true,
        }
    }

    /// Default: 1500-byte MSS.
    pub fn default_params() -> Self {
        Verus::new(1500)
    }

    fn bucket_of(&self, cwnd_bytes: f64) -> usize {
        ((cwnd_bytes / self.mss as f64 / BUCKET_PKTS as f64) as usize).min(BUCKETS - 1)
    }

    /// Learn: fold an RTT observation into the profile. The delay a packet
    /// saw was caused by the data in flight when it was sent, so the
    /// observation is keyed by the in-flight amount at acknowledgement
    /// (the closest causally-sound proxy the sender has).
    fn learn(&mut self, now: Time, in_flight: u64, rtt: f64) {
        let b = self.bucket_of(in_flight.max(self.mss) as f64);
        let value = match self.profile[b] {
            Some((old, at)) if now.as_nanos().saturating_sub(at) < PROFILE_TTL => {
                0.7 * old + 0.3 * rtt
            }
            _ => rtt,
        };
        self.profile[b] = Some((value, now.as_nanos()));
    }

    /// The profile's inverse: the largest window whose learned delay stays
    /// at or below `target`. When even the highest *visited* window stays
    /// under the target, the answer lies beyond what the profile knows, so
    /// explore one bucket further (the published Verus extrapolates its
    /// fitted curve for the same reason). Falls back to the current window
    /// when the profile is empty.
    fn window_for_delay(&self, now: Time, target: f64) -> f64 {
        let mut best: Option<usize> = None;
        let mut highest: Option<usize> = None;
        let now_ns = now.as_nanos();
        for (b, d) in self.profile.iter().enumerate() {
            if let Some((d, at)) = d {
                if now_ns.saturating_sub(*at) >= PROFILE_TTL {
                    continue; // stale knowledge
                }
                highest = Some(b);
                if *d <= target {
                    best = Some(b);
                }
            }
        }
        match (best, highest) {
            (Some(b), Some(h)) if b >= h => {
                // Everything seen fits under the target: explore upward.
                (((b + 1) as u64 + 1) * BUCKET_PKTS * self.mss) as f64
            }
            (Some(b), _) => ((b as u64 + 1) * BUCKET_PKTS * self.mss) as f64,
            (None, _) => self.cwnd,
        }
    }

    fn epoch_len(&self) -> Dur {
        Dur::from_secs_f64(self.srtt.unwrap_or(0.05) / 4.0).max(Dur::from_millis(5))
    }

    /// Epoch decision: Verus's core loop.
    fn end_epoch(&mut self, now: Time) {
        let d_max = self.epoch_max;
        let rtt_min = self.rtt_min.unwrap_or(d_max.max(1e-3));

        if self.in_slow_start {
            // Grow once per RTT (epochs are srtt/4-long): ×1.1 per epoch
            // compounds to ≈×1.5 per RTT, the published growth rate.
            if d_max < self.r_thresh * rtt_min {
                self.cwnd *= 1.1;
            } else {
                self.in_slow_start = false;
                self.cwnd /= 2.0;
            }
        } else if d_max > self.r_thresh * rtt_min {
            // Delay blew past the tolerance ratio: multiplicative decrease.
            self.cwnd = (self.cwnd / 2.0).max((2 * self.mss) as f64);
        } else {
            // Normal operation: nudge the target and consult the profile.
            let rising = match self.prev_epoch_max {
                Some(prev) => d_max > prev,
                None => false,
            };
            let target = if rising {
                (d_max - self.delta_down).max(rtt_min)
            } else {
                d_max + self.delta_up
            };
            // Never walk the target into the MD trigger's territory; Verus
            // would just tear the window down next epoch. And rate-limit
            // upward jumps to two profile buckets per epoch — the profile
            // lags reality by an RTT and large jumps ring.
            let target = target.min(0.9 * self.r_thresh * rtt_min);
            let want = self.window_for_delay(now, target);
            let cap = self.cwnd + (2 * BUCKET_PKTS * self.mss) as f64;
            self.cwnd = want.min(cap).max((2 * self.mss) as f64);
        }
        self.prev_epoch_max = Some(d_max);
        self.epoch_max = 0.0;
        self.epoch_end = now + self.epoch_len();
    }
}

impl CongestionControl for Verus {
    fn on_ack(&mut self, ev: &AckEvent) {
        let rtt = ev.rtt.as_secs_f64();
        self.rtt_min = Some(match self.rtt_min {
            None => rtt,
            Some(m) => m.min(rtt),
        });
        self.srtt = Some(match self.srtt {
            None => rtt,
            Some(s) => 0.875 * s + 0.125 * rtt,
        });
        self.epoch_max = self.epoch_max.max(rtt);
        self.learn(ev.now, ev.in_flight, rtt);
        if ev.now >= self.epoch_end {
            self.end_epoch(ev.now);
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                self.cwnd = (self.cwnd / 2.0).max((2 * self.mss) as f64);
                self.in_slow_start = false;
            }
            LossKind::Timeout => {
                self.cwnd = (2 * self.mss) as f64;
                self.in_slow_start = true;
                self.prev_epoch_max = None;
            }
        }
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn pacing_rate(&self) -> Option<Rate> {
        // Verus spreads each epoch's quota; approximate with window pacing
        // at 2·cwnd/srtt.
        let srtt = self.srtt?;
        if srtt <= 0.0 {
            return None;
        }
        Some(Rate::from_bytes_per_sec(2.0 * self.cwnd / srtt))
    }

    fn name(&self) -> &'static str {
        "verus"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: 1500,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    #[test]
    fn slow_start_grows_until_delay_ratio() {
        let mut v = Verus::default_params();
        let w0 = v.cwnd();
        let mut now = 0;
        for _ in 0..20 {
            v.on_ack(&ack(now, 50.0)); // flat delay, ratio 1 < R
            now += 20;
        }
        assert!(v.cwnd() > 2 * w0, "cwnd={}", v.cwnd());
        assert!(v.in_slow_start);
    }

    #[test]
    fn slow_start_exits_on_delay_blowup() {
        let mut v = Verus::default_params();
        v.on_ack(&ack(0, 50.0));
        let mut now = 20;
        for _ in 0..10 {
            v.on_ack(&ack(now, 120.0)); // > 2 × 50 ms
            now += 20;
        }
        assert!(!v.in_slow_start);
    }

    #[test]
    fn profile_learns_window_delay_mapping() {
        let mut v = Verus::default_params();
        let t = Time::from_millis(100);
        for _ in 0..50 {
            v.learn(t, 8 * 1500, 0.060); // bucket 2
        }
        for _ in 0..50 {
            v.learn(t, 40 * 1500, 0.090); // bucket 10
        }
        // Inverse lookups respect the learned monotone structure.
        let w_low = v.window_for_delay(t, 0.065);
        let w_high = v.window_for_delay(t, 0.095);
        assert!(w_low < w_high, "w_low={w_low} w_high={w_high}");
        assert_eq!(w_low, (3 * BUCKET_PKTS * 1500) as f64);
    }

    #[test]
    fn md_on_delay_ratio_breach() {
        let mut v = Verus::default_params();
        v.in_slow_start = false;
        v.rtt_min = Some(0.050);
        v.cwnd = (100 * 1500) as f64;
        v.epoch_max = 0.150; // 3× the min
        v.end_epoch(Time::from_millis(100));
        assert_eq!(v.cwnd(), 50 * 1500);
    }

    #[test]
    fn loss_halves_and_timeout_resets() {
        let mut v = Verus::default_params();
        v.cwnd = (64 * 1500) as f64;
        v.on_loss(&LossEvent {
            now: Time::from_millis(1),
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
            sent_at: None,
        });
        assert_eq!(v.cwnd(), 32 * 1500);
        v.on_loss(&LossEvent {
            now: Time::from_millis(2),
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        assert_eq!(v.cwnd(), 2 * 1500);
    }

    #[test]
    fn target_rises_when_delay_falls() {
        // With a populated profile and falling epoch maxima, the chosen
        // window walks upward.
        let mut v = Verus::default_params();
        v.in_slow_start = false;
        v.rtt_min = Some(0.050);
        for (b, d) in [(2usize, 0.055), (4, 0.060), (6, 0.065), (8, 0.070)] {
            v.profile[b] = Some((d, Time::from_millis(90).as_nanos()));
        }
        v.cwnd = (2 * BUCKET_PKTS * 1500) as f64;
        v.prev_epoch_max = Some(0.062);
        v.epoch_max = 0.058; // falling → target = 0.059 → bucket 2
        v.end_epoch(Time::from_millis(100));
        let w1 = v.cwnd();
        v.prev_epoch_max = Some(0.070);
        v.epoch_max = 0.0605; // falling → target 0.0615 → bucket 4
        v.end_epoch(Time::from_millis(200));
        assert!(v.cwnd() > w1, "w1={w1} w2={}", v.cwnd());
    }
}

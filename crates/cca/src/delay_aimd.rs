//! AIMD-on-delay: the §6.2 design conjecture, implemented.
//!
//! §6.2 argues that large equilibrium delay *oscillations* sidestep the
//! pigeonhole argument behind Theorem 1: a CCA whose delay sweeps a range
//! wider than the jitter bound `D` receives fresh information each cycle,
//! and can encode its rate in the **frequency** of the oscillation rather
//! than its absolute value — the way loss-based AIMD encodes rate in loss
//! frequency. The paper leaves this as "an interesting design space"; this
//! module is our implementation of the conjectured design (an extension
//! beyond the paper's artifacts, exercised by the ablation benches).
//!
//! Mechanism: additively increase the sending rate until the *measured
//! queueing delay* exceeds a threshold `q_hi` (chosen > `D`, so a genuine
//! queue, not jitter, must be present), then multiplicatively decrease and
//! hold until the delay falls below `q_lo`. The induced sawtooth has
//! amplitude ≥ `q_hi − q_lo > D`, satisfying the paper's "oscillate at
//! least half the jitter" prescription with margin.

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::units::{Dur, Rate, Time};

/// Configuration for [`DelayAimd`].
#[derive(Clone, Copy, Debug)]
pub struct DelayAimdConfig {
    /// Known propagation RTT (oracular, as in Algorithm 1).
    pub rm: Dur,
    /// Queueing delay that triggers multiplicative decrease. Must exceed
    /// the designed-for jitter `D`.
    pub q_hi: Dur,
    /// Queueing delay below which additive increase resumes.
    pub q_lo: Dur,
    /// Additive rate increase per `Rm`.
    pub a: Rate,
    /// Multiplicative decrease factor.
    pub b: f64,
}

impl DelayAimdConfig {
    /// A configuration designed for jitter bound `d`: thresholds at
    /// `2·D` and `D/2` of queueing delay.
    pub fn for_jitter(rm: Dur, d: Dur) -> Self {
        DelayAimdConfig {
            rm,
            q_hi: Dur(2 * d.0),
            q_lo: Dur(d.0 / 2),
            a: Rate::from_mbps(0.5),
            b: 0.7,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Increase,
    Drain,
}

/// Delay-threshold AIMD congestion control.
#[derive(Clone, Debug)]
pub struct DelayAimd {
    cfg: DelayAimdConfig,
    rate: Rate,
    mode: Mode,
    next_update: Time,
    last_rtt: Option<Dur>,
    min_rate: Rate,
    mss: u64,
    /// Count of completed increase→drain cycles (rate is encoded in the
    /// frequency of these; exposed for analysis).
    cycles: u64,
}

impl DelayAimd {
    /// Create from a configuration.
    pub fn new(cfg: DelayAimdConfig) -> Self {
        assert!(cfg.q_hi > cfg.q_lo);
        assert!(cfg.b > 0.0 && cfg.b < 1.0);
        DelayAimd {
            cfg,
            rate: Rate::from_mbps(1.0),
            mode: Mode::Increase,
            next_update: Time::ZERO,
            last_rtt: None,
            min_rate: Rate::from_mbps(0.05),
            mss: 1500,
            cycles: 0,
        }
    }

    /// Current sending rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Completed sawtooth cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn queue_delay(&self, rtt: Dur) -> Dur {
        rtt.saturating_sub(self.cfg.rm)
    }
}

impl CongestionControl for DelayAimd {
    fn on_ack(&mut self, ev: &AckEvent) {
        self.last_rtt = Some(ev.rtt);
        // React to threshold crossings immediately; pace additive increases
        // at one per Rm.
        let q = self.queue_delay(ev.rtt);
        match self.mode {
            Mode::Increase => {
                if q >= self.cfg.q_hi {
                    self.rate = self.rate.mul_f64(self.cfg.b).max(self.min_rate);
                    self.mode = Mode::Drain;
                    self.cycles += 1;
                } else if ev.now >= self.next_update {
                    self.next_update = ev.now + self.cfg.rm;
                    self.rate = self.rate + self.cfg.a;
                }
            }
            Mode::Drain => {
                if q <= self.cfg.q_lo {
                    self.mode = Mode::Increase;
                    self.next_update = ev.now + self.cfg.rm;
                }
            }
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                self.rate = self.rate.mul_f64(self.cfg.b).max(self.min_rate);
            }
            LossKind::Timeout => {
                self.rate = self.min_rate;
                self.mode = Mode::Increase;
            }
        }
    }

    fn cwnd(&self) -> u64 {
        let rtt = self
            .last_rtt
            .unwrap_or(self.cfg.rm + self.cfg.q_hi)
            .as_secs_f64();
        ((2.0 * self.rate.bytes_per_sec() * rtt) as u64).max(2 * self.mss)
    }

    fn pacing_rate(&self) -> Option<Rate> {
        Some(self.rate)
    }

    fn name(&self) -> &'static str {
        "delay-aimd"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DelayAimdConfig {
        DelayAimdConfig::for_jitter(Dur::from_millis(50), Dur::from_millis(10))
    }

    fn ack(now_ms: u64, rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: 1500,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    #[test]
    fn thresholds_scale_with_jitter() {
        let c = cfg();
        assert_eq!(c.q_hi, Dur::from_millis(20));
        assert_eq!(c.q_lo, Dur::from_millis(5));
    }

    #[test]
    fn increases_while_queue_low() {
        let mut d = DelayAimd::new(cfg());
        let r0 = d.rate().mbps();
        d.on_ack(&ack(0, 52.0)); // q = 2 ms < q_hi
        d.on_ack(&ack(51, 52.0));
        d.on_ack(&ack(102, 52.0));
        assert!((d.rate().mbps() - (r0 + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn decreases_on_threshold_crossing() {
        let mut d = DelayAimd::new(cfg());
        d.rate = Rate::from_mbps(10.0);
        d.on_ack(&ack(0, 71.0)); // q = 21 ms ≥ q_hi = 20 ms
        assert!((d.rate().mbps() - 7.0).abs() < 1e-9);
        assert_eq!(d.mode, Mode::Drain);
        assert_eq!(d.cycles(), 1);
    }

    #[test]
    fn drain_holds_until_q_lo() {
        let mut d = DelayAimd::new(cfg());
        d.rate = Rate::from_mbps(10.0);
        d.on_ack(&ack(0, 71.0));
        let r_after_md = d.rate().mbps();
        // Queue still above q_lo: no changes.
        d.on_ack(&ack(51, 60.0)); // q = 10 ms > q_lo = 5 ms
        assert_eq!(d.rate().mbps(), r_after_md);
        // Queue drained: back to increase.
        d.on_ack(&ack(102, 54.0)); // q = 4 ms ≤ q_lo
        assert_eq!(d.mode, Mode::Increase);
    }

    #[test]
    fn jitter_below_q_hi_never_triggers_decrease() {
        // The design property: jitter ≤ D cannot cause an MD because
        // q_hi = 2D.
        let mut d = DelayAimd::new(cfg());
        d.rate = Rate::from_mbps(10.0);
        for i in 0..100 {
            let jitter_ms = (i % 10) as f64; // 0..9 ms ≤ D = 10 ms
            d.on_ack(&ack(i * 51, 50.0 + jitter_ms));
        }
        assert_eq!(d.cycles(), 0);
        assert!(d.rate().mbps() > 10.0);
    }

    #[test]
    fn oscillation_amplitude_exceeds_jitter() {
        let c = cfg();
        // Sawtooth sweeps [q_lo, q_hi]; amplitude must exceed D.
        assert!(c.q_hi - c.q_lo > Dur::from_millis(10));
    }

    #[test]
    fn timeout_floors_rate() {
        let mut d = DelayAimd::new(cfg());
        d.rate = Rate::from_mbps(50.0);
        d.on_loss(&LossEvent {
            now: Time::ZERO,
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        assert!((d.rate().mbps() - 0.05).abs() < 1e-9);
    }
}

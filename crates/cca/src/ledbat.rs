//! LEDBAT (RFC 6817) — the scavenger delay-based CCA the paper cites as a
//! "minimum of RTT" filter user (§1, §3).
//!
//! LEDBAT targets a fixed queueing delay `TARGET` (the RFC caps it at
//! 100 ms) above a base-delay estimate taken as a windowed minimum, and
//! moves its window proportionally to the distance from the target:
//!
//! ```text
//! off_target = (TARGET − (rtt − base)) / TARGET
//! cwnd += GAIN · off_target · bytes_acked · MSS / cwnd
//! ```
//!
//! It is delay-convergent with `δ(C) ≈ 0` (equilibrium RTT = `Rm + TARGET`
//! for every `C`), so Theorem 1 applies to it exactly as to Vegas, and its
//! min-filter base estimate is poisonable exactly like Copa's (§5.1).

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::filter::WindowedMin;
use simcore::units::{Dur, Rate};

/// LEDBAT congestion control.
#[derive(Clone, Debug)]
pub struct Ledbat {
    mss: u64,
    /// Queueing-delay target (RFC 6817 caps at 100 ms).
    target: Dur,
    /// Proportional gain (RFC 6817: ≤ 1 per RTT at full off-target).
    gain: f64,
    cwnd: f64, // bytes
    base: WindowedMin,
    last_pos: u64,
}

impl Ledbat {
    /// LEDBAT with the given queueing-delay target and gain; the base-delay
    /// minimum is tracked over a 2-minute window.
    pub fn new(mss: u64, target: Dur, gain: f64) -> Self {
        assert!(target > Dur::ZERO && gain > 0.0);
        Ledbat {
            mss,
            target,
            gain,
            cwnd: (2 * mss) as f64,
            base: WindowedMin::new(Dur::from_secs(120).as_nanos()),
            last_pos: 0,
        }
    }

    /// RFC defaults: 100 ms target, gain 1, 1500-byte MSS.
    pub fn default_params() -> Self {
        Ledbat::new(1500, Dur::from_millis(100), 1.0)
    }

    /// The current base-delay estimate.
    pub fn base_delay(&self) -> Option<Dur> {
        self.base.get().map(Dur::from_secs_f64)
    }

    /// Override the base-delay estimate (poisoning hook for tests).
    pub fn set_base_delay(&mut self, d: Dur) {
        let mut f = WindowedMin::new(Dur::from_secs(120).as_nanos());
        f.insert(0, d.as_secs_f64());
        self.base = f;
        self.last_pos = 0;
    }
}

impl CongestionControl for Ledbat {
    fn on_ack(&mut self, ev: &AckEvent) {
        let rtt = ev.rtt.as_secs_f64();
        let pos = ev.now.as_nanos();
        // The base-delay window is indexed by absolute time. A transplanted
        // converged state (Theorem 1 warm-starts a recorded CCA inside a
        // fresh simulation) sees the clock restart; re-anchor the window at
        // the new clock, carrying the converged estimate over.
        if pos < self.last_pos {
            let carried = self.base.get();
            self.base.reset();
            if let Some(b) = carried {
                self.base.insert(pos, b);
            }
        }
        self.last_pos = pos;
        self.base.insert(pos, rtt);
        let base = self.base.get().unwrap_or(rtt);
        let queuing = (rtt - base).max(0.0);
        let off_target = (self.target.as_secs_f64() - queuing) / self.target.as_secs_f64();
        // Proportional controller, growth capped at slow-start speed
        // (≤ bytes_acked per ack), per the RFC's ALLOWED_INCREASE spirit.
        let delta =
            self.gain * off_target * ev.newly_acked as f64 * self.mss as f64 / self.cwnd;
        let delta = delta.min(ev.newly_acked as f64);
        self.cwnd = (self.cwnd + delta).max((2 * self.mss) as f64);
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => self.cwnd = (self.cwnd / 2.0).max((2 * self.mss) as f64),
            LossKind::Timeout => self.cwnd = (2 * self.mss) as f64,
        }
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn pacing_rate(&self) -> Option<Rate> {
        None
    }

    fn name(&self) -> &'static str {
        "ledbat"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::Time;

    fn ack(now_ms: u64, rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: 1500,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    #[test]
    fn grows_below_target() {
        let mut l = Ledbat::default_params();
        l.set_base_delay(Dur::from_millis(50));
        let w0 = l.cwnd();
        for i in 0..50 {
            l.on_ack(&ack(i * 10, 60.0)); // 10 ms of queue < 100 ms target
        }
        assert!(l.cwnd() > w0);
    }

    #[test]
    fn shrinks_above_target() {
        let mut l = Ledbat::default_params();
        l.set_base_delay(Dur::from_millis(50));
        l.cwnd = (100 * 1500) as f64;
        for i in 0..50 {
            l.on_ack(&ack(i * 10, 200.0)); // 150 ms of queue > target
        }
        assert!(l.cwnd() < 100 * 1500);
    }

    #[test]
    fn equilibrium_at_target() {
        // At rtt = base + target, off_target = 0: the window holds.
        let mut l = Ledbat::default_params();
        l.set_base_delay(Dur::from_millis(50));
        l.cwnd = (50 * 1500) as f64;
        let w0 = l.cwnd();
        for i in 0..50 {
            l.on_ack(&ack(i * 10, 150.0));
        }
        assert_eq!(l.cwnd(), w0);
    }

    #[test]
    fn base_tracks_minimum() {
        let mut l = Ledbat::default_params();
        l.on_ack(&ack(0, 80.0));
        l.on_ack(&ack(1, 60.0));
        l.on_ack(&ack(2, 90.0));
        assert_eq!(l.base_delay(), Some(Dur::from_millis(60)));
    }

    #[test]
    fn poisoned_base_strangles_window_like_copa() {
        // §5.1's mechanism transfers: a base-delay estimate 10 ms below
        // truth makes LEDBAT hold 10 ms less queue than intended.
        let mut l = Ledbat::default_params();
        l.set_base_delay(Dur::from_millis(40));
        l.cwnd = (200 * 1500) as f64;
        // True path floor 50 ms, real queue 60 ms → perceived 70 > target.
        // It sheds window even though the real queue is below target.
        let w0 = l.cwnd();
        for i in 0..100 {
            l.on_ack(&ack(i * 10, 160.0));
        }
        assert!(l.cwnd() < w0);
    }

    #[test]
    fn growth_capped_at_bytes_acked() {
        let mut l = Ledbat::new(1500, Dur::from_millis(100), 1000.0);
        l.set_base_delay(Dur::from_millis(50));
        let w0 = l.cwnd();
        l.on_ack(&ack(0, 50.0));
        assert!(l.cwnd() <= w0 + 1500);
    }

    #[test]
    fn loss_halves() {
        let mut l = Ledbat::default_params();
        l.cwnd = (80 * 1500) as f64;
        l.on_loss(&LossEvent {
            now: Time::from_millis(1),
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
            sent_at: None,
        });
        assert_eq!(l.cwnd(), 40 * 1500);
    }
}

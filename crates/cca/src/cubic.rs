//! TCP Cubic (Ha, Rhee, Xu, 2008; RFC 8312).
//!
//! The second loss-based baseline of §5.4 / Figure 7. Cubic grows its window
//! as `W(t) = C·(t−K)³ + W_max` after a loss, where `K = ∛(W_max·β/C)`.
//! Like Reno it is not delay-convergent; the paper shows its unfairness
//! under ACK-burst jitter is bounded (≈3.2×) because the faster flow
//! eventually overshoots the whole BDP and gives the slower flow room.

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::units::{Rate, Time};

/// TCP Cubic congestion control.
#[derive(Clone, Debug)]
pub struct Cubic {
    mss: u64,
    /// Cubic aggressiveness constant (RFC 8312 uses 0.4, windows in MSS,
    /// time in seconds).
    c: f64,
    /// Multiplicative decrease factor (RFC 8312: 0.7).
    beta: f64,
    cwnd: f64,     // bytes
    ssthresh: f64, // bytes
    w_max: f64,    // bytes, window at last loss
    epoch_start: Option<Time>,
    recovery_until: Time,
    last_rtt: simcore::units::Dur,
    /// Fast-convergence: remember whether the previous loss happened below
    /// the previous `w_max` (another flow is taking bandwidth).
    fast_convergence: bool,
}

impl Cubic {
    /// Cubic with RFC 8312 constants.
    pub fn new(mss: u64) -> Self {
        Cubic {
            mss,
            c: 0.4,
            beta: 0.7,
            cwnd: (2 * mss) as f64,
            ssthresh: f64::MAX,
            w_max: 0.0,
            epoch_start: None,
            recovery_until: Time::ZERO,
            last_rtt: simcore::units::Dur::ZERO,
            fast_convergence: true,
        }
    }

    /// Default: 1500-byte MSS.
    pub fn default_params() -> Self {
        Cubic::new(1500)
    }

    /// Whether the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// The cubic window (in bytes) at time `t` since the epoch start.
    fn w_cubic(&self, t_secs: f64) -> f64 {
        let w_max_pkts = self.w_max / self.mss as f64;
        let k = (w_max_pkts * (1.0 - self.beta) / self.c).cbrt();
        let w_pkts = self.c * (t_secs - k).powi(3) + w_max_pkts;
        w_pkts * self.mss as f64
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, ev: &AckEvent) {
        self.last_rtt = ev.rtt;
        if self.in_slow_start() {
            self.cwnd += ev.newly_acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }
        let epoch = *self.epoch_start.get_or_insert(ev.now);
        let t = ev.now.since(epoch).as_secs_f64();
        let target = self.w_cubic(t + self.last_rtt.as_secs_f64());

        // TCP-friendly region (RFC 8312 §4.2): grow at least like Reno.
        let w_est = {
            // W_est(t) = W_max·β + 3(1−β)/(1+β) · t/RTT   (in MSS)
            let rtt = self.last_rtt.as_secs_f64().max(1e-6);
            let w_max_pkts = self.w_max / self.mss as f64;
            (w_max_pkts * self.beta + 3.0 * (1.0 - self.beta) / (1.0 + self.beta) * t / rtt)
                * self.mss as f64
        };
        let target = target.max(w_est);

        if target > self.cwnd {
            // Standard cubic pacing of growth: (target − cwnd)/cwnd per ack.
            let acked_frac = ev.newly_acked as f64 / self.mss as f64;
            self.cwnd += acked_frac * (target - self.cwnd) / (self.cwnd / self.mss as f64);
        }
        // If target <= cwnd, hold (cubic plateau).
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                if ev.now < self.recovery_until {
                    return;
                }
                self.recovery_until = ev.now + self.last_rtt;
                // Fast convergence: release bandwidth faster when the loss
                // happened below the previous W_max.
                if self.fast_convergence && self.cwnd < self.w_max {
                    self.w_max = self.cwnd * (1.0 + self.beta) / 2.0;
                } else {
                    self.w_max = self.cwnd;
                }
                self.cwnd = (self.cwnd * self.beta).max((2 * self.mss) as f64);
                self.ssthresh = self.cwnd;
                self.epoch_start = None;
            }
            LossKind::Timeout => {
                self.w_max = self.cwnd;
                self.ssthresh = (self.cwnd * self.beta).max((2 * self.mss) as f64);
                self.cwnd = self.mss as f64;
                self.epoch_start = None;
            }
        }
    }

    fn cwnd(&self) -> u64 {
        (self.cwnd as u64).max(self.mss)
    }

    fn pacing_rate(&self) -> Option<Rate> {
        None // ACK-clocked, like Reno
    }

    fn name(&self) -> &'static str {
        "cubic"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::Dur;

    fn ack(now_ms: u64, newly: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Dur::from_millis(100),
            newly_acked: newly,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    fn fr_loss(now_ms: u64) -> LossEvent {
        LossEvent {
            now: Time::from_millis(now_ms),
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
            sent_at: None,
        }
    }

    #[test]
    fn slow_start_doubles() {
        let mut c = Cubic::default_params();
        let w0 = c.cwnd();
        c.on_ack(&ack(0, w0));
        assert_eq!(c.cwnd(), 2 * w0);
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut c = Cubic::default_params();
        c.ssthresh = 0.0;
        c.cwnd = (100 * 1500) as f64;
        c.on_ack(&ack(0, 1500)); // get an RTT sample
        c.on_loss(&fr_loss(10));
        assert_eq!(c.cwnd(), 70 * 1500);
    }

    #[test]
    fn recovers_toward_w_max_and_plateaus() {
        let mut c = Cubic::default_params();
        c.ssthresh = 0.0;
        c.cwnd = (100 * 1500) as f64;
        c.on_ack(&ack(0, 1500));
        c.on_loss(&fr_loss(10));
        // After the loss, drive acks for a while; cwnd approaches W_max=100.
        let mut now = 200u64;
        for _ in 0..2000 {
            c.on_ack(&ack(now, 1500));
            now += 10;
        }
        let w = c.cwnd() as f64 / 1500.0;
        assert!(w > 85.0, "w={w}, should have re-approached W_max");
    }

    #[test]
    fn growth_is_concave_then_convex() {
        // Sample the cubic function: slope decreases toward K then increases.
        let mut c = Cubic::default_params();
        c.w_max = (100 * 1500) as f64;
        let k = ((100.0_f64 * (1.0 - 0.7)) / 0.4).cbrt();
        let early = c.w_cubic(0.1) - c.w_cubic(0.0);
        let mid = c.w_cubic(k + 0.05) - c.w_cubic(k - 0.05);
        let late = c.w_cubic(2.0 * k + 0.1) - c.w_cubic(2.0 * k);
        assert!(early > mid, "early={early} mid={mid}");
        assert!(late > mid, "late={late} mid={mid}");
    }

    #[test]
    fn losses_within_one_rtt_count_once() {
        let mut c = Cubic::default_params();
        c.ssthresh = 0.0;
        c.cwnd = (100 * 1500) as f64;
        c.on_ack(&ack(0, 1500));
        c.on_loss(&fr_loss(10));
        c.on_loss(&fr_loss(20)); // within 100 ms RTT of the first
        assert_eq!(c.cwnd(), 70 * 1500);
    }

    #[test]
    fn fast_convergence_lowers_w_max() {
        let mut c = Cubic::default_params();
        c.ssthresh = 0.0;
        c.cwnd = (100 * 1500) as f64;
        c.w_max = (120 * 1500) as f64; // loss below previous peak
        c.on_ack(&ack(0, 1500));
        c.on_loss(&fr_loss(10));
        let w_max_pkts = c.w_max / 1500.0;
        assert!((w_max_pkts - 85.0).abs() < 1e-9, "w_max={w_max_pkts}");
    }

    #[test]
    fn timeout_resets_to_one_mss() {
        let mut c = Cubic::default_params();
        c.cwnd = (50 * 1500) as f64;
        c.on_loss(&LossEvent {
            now: Time::from_millis(5),
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        assert_eq!(c.cwnd(), 1500);
    }
}

//! PCC Vivace (Dong et al., NSDI 2018) — latency-flavoured utility.
//!
//! Vivace is rate-based online learning. Time is divided into monitor
//! intervals (MIs) of ≈1 RTT; each MI probes one sending rate, and its
//! utility is computed from the fates of the packets **sent during** it
//! (attribution handled by [`crate::mi::MiTracker`] — results arrive one
//! RTT after an MI ends):
//!
//! ```text
//! U(x) = x^0.9 − b·x·max(0, dRTT/dt) − c·x·L        (x in Mbit/s)
//! ```
//!
//! with `b = 900`, `c = 11.35`. Rate control: slow-start doubling until
//! utility falls, then paired probes at `(1±ε)·r` in random order; the
//! measured utility gradient moves the rate, amplified by a confidence
//! streak and clipped by a dynamic change bound.
//!
//! With ε = 0.05 its equilibrium delay oscillation on an ideal path is
//! bounded by the probing amplitude: `d_max ≈ 1.05·Rm`, so
//! `δ_max = Rm/20` (paper §5.3 and Figure 3). The §5.3 starvation scenario
//! quantizes one flow's ACK arrivals to 60 ms boundaries: that flow's
//! per-MI RTT regressions return sawtooth noise whose utility penalty
//! scales with its rate, pinning it low while the clean flow takes the
//! link (paper: 9.9 vs 99.4 Mbit/s).

use crate::mi::{Mi, MiTracker};
use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};

/// Utility parameters (the NSDI paper's "largest constants", which bound
/// the equilibrium delay oscillation analyzed in §5.3).
#[derive(Clone, Copy, Debug)]
pub struct VivaceUtility {
    /// Throughput exponent (0.9).
    pub t_exp: f64,
    /// Latency-gradient penalty coefficient (900).
    pub b: f64,
    /// Loss penalty coefficient (11.35).
    pub c: f64,
}

impl Default for VivaceUtility {
    fn default() -> Self {
        VivaceUtility {
            t_exp: 0.9,
            b: 900.0,
            c: 11.35,
        }
    }
}

impl VivaceUtility {
    /// Utility of throughput `x` (Mbit/s), RTT slope `grad` (s/s) and loss
    /// fraction `loss` in `[0,1]`.
    pub fn eval(&self, x_mbps: f64, grad: f64, loss: f64) -> f64 {
        x_mbps.powf(self.t_exp) - self.b * x_mbps * grad.max(0.0) - self.c * x_mbps * loss
    }

    /// Utility of one completed MI.
    pub fn of_mi(&self, mi: &Mi) -> f64 {
        self.eval(mi.throughput_mbps(), mi.rtt_gradient(), mi.loss_fraction())
    }
}

/// MI tags.
const TAG_SS: u32 = 0;
const TAG_UP: u32 = 1;
const TAG_DOWN: u32 = 2;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Doubling each MI.
    SlowStart,
    /// Alternating ±ε probe MIs.
    Probing,
}

/// PCC Vivace congestion control (latency utility).
#[derive(Clone, Debug)]
pub struct Vivace {
    utility: VivaceUtility,
    epsilon: f64,
    /// Base rate `r` (probe MIs send at `(1±ε)·r`).
    rate: Rate,
    phase: Phase,
    tracker: MiTracker,
    /// Direction of the open probe MI (`true` = up).
    probing_up: bool,
    /// One completed probe result awaiting its partner: `(is_up, utility,
    /// base rate at that probe)`.
    pending: Option<(bool, f64, f64)>,
    /// Utility and rate of the last completed slow-start MI.
    prev_ss: Option<(f64, f64)>,
    srtt: Option<f64>,
    streak: u32,
    last_sign: f64,
    omega: f64,
    rng: Xoshiro256,
    mss: u64,
    min_rate: Rate,
}

impl Vivace {
    /// Vivace with the default utility, ε = 0.05 and a deterministic seed
    /// for probe-order randomization.
    pub fn new(seed: u64) -> Self {
        Vivace {
            utility: VivaceUtility::default(),
            epsilon: 0.05,
            rate: Rate::from_mbps(2.0),
            phase: Phase::SlowStart,
            tracker: MiTracker::new(),
            probing_up: true,
            pending: None,
            prev_ss: None,
            srtt: None,
            streak: 0,
            last_sign: 0.0,
            omega: 0.05,
            rng: Xoshiro256::new(seed),
            mss: 1500,
            min_rate: Rate::from_mbps(0.1),
        }
    }

    /// Default parameters (seed 1).
    pub fn default_params() -> Self {
        Vivace::new(1)
    }

    /// The base (un-probed) sending rate.
    pub fn base_rate(&self) -> Rate {
        self.rate
    }

    /// The rate the open MI transmits at.
    pub fn current_rate(&self) -> Rate {
        let gain = match self.phase {
            Phase::SlowStart => 1.0,
            Phase::Probing => {
                if self.probing_up {
                    1.0 + self.epsilon
                } else {
                    1.0 - self.epsilon
                }
            }
        };
        self.rate.mul_f64(gain)
    }

    fn mi_duration(&self) -> Dur {
        Dur::from_secs_f64(self.srtt.unwrap_or(0.05)).max(Dur::from_millis(10))
    }

    fn srtt_dur(&self) -> Dur {
        Dur::from_secs_f64(self.srtt.unwrap_or(0.05))
    }

    /// Open the next MI according to the sending-side state machine.
    fn open_next_mi(&mut self, now: Time) {
        match self.phase {
            Phase::SlowStart => {
                // First MI sends at the initial rate; each subsequent one
                // doubles.
                if !self.tracker.is_empty() {
                    self.rate = self.rate.mul_f64(2.0);
                }
                self.tracker.begin(now, self.rate, TAG_SS);
            }
            Phase::Probing => {
                self.probing_up = if self.pending.is_none() {
                    // Fresh pair: random first direction.
                    self.rng.bernoulli(0.5)
                } else {
                    // Partner probe: opposite direction.
                    !self.probing_up
                };
                let tag = if self.probing_up { TAG_UP } else { TAG_DOWN };
                self.tracker.begin(now, self.current_rate(), tag);
            }
        }
    }

    /// Consume completed MIs and update the rate.
    fn harvest(&mut self, now: Time) {
        let grace = self.srtt_dur();
        while let Some(mi) = self.tracker.pop_complete(now, grace) {
            let u = self.utility.of_mi(&mi);
            match mi.tag {
                TAG_SS => {
                    if let Some((prev_u, prev_rate)) = self.prev_ss {
                        if u < prev_u {
                            // Overshot: return to the last good rate and
                            // start probing.
                            self.rate = Rate::from_mbps(prev_rate.max(self.min_rate.mbps()));
                            self.phase = Phase::Probing;
                            self.pending = None;
                            self.prev_ss = None;
                            continue;
                        }
                    }
                    self.prev_ss = Some((u, mi.rate.mbps()));
                }
                TAG_UP | TAG_DOWN => {
                    let is_up = mi.tag == TAG_UP;
                    let base = mi.rate.mbps()
                        / if is_up {
                            1.0 + self.epsilon
                        } else {
                            1.0 - self.epsilon
                        };
                    match self.pending.take() {
                        None => self.pending = Some((is_up, u, base)),
                        Some((p_up, p_u, p_base)) if p_up != is_up => {
                            let (u_plus, u_minus) = if is_up { (u, p_u) } else { (p_u, u) };
                            let r = 0.5 * (base + p_base);
                            self.apply_gradient(u_plus, u_minus, r);
                        }
                        Some(_) => {
                            // Two same-direction results (possible after a
                            // slow-start exit raced a probe): keep the newer.
                            self.pending = Some((is_up, u, base));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn apply_gradient(&mut self, u_plus: f64, u_minus: f64, r_mbps: f64) {
        let r_mbps = r_mbps.max(0.001);
        let gamma = (u_plus - u_minus) / (2.0 * self.epsilon * r_mbps);
        let sign = if gamma >= 0.0 { 1.0 } else { -1.0 };

        if sign == self.last_sign {
            self.streak = (self.streak + 1).min(10);
        } else {
            self.streak = 0;
            self.omega = 0.05;
        }
        self.last_sign = sign;
        let m = (1u64 << self.streak.min(5)) as f64;

        let theta0 = 0.05;
        let mut delta = m * theta0 * gamma; // Mbit/s
        let bound = self.omega * r_mbps;
        if delta.abs() > bound {
            delta = sign * bound;
            self.omega += 0.05;
        } else {
            self.omega = (self.omega - 0.025).max(0.05);
        }
        let new_rate = (self.rate.mbps() + delta).max(self.min_rate.mbps());
        self.rate = Rate::from_mbps(new_rate);
    }
}

impl CongestionControl for Vivace {
    fn on_ack(&mut self, ev: &AckEvent) {
        let rtt_s = ev.rtt.as_secs_f64();
        self.srtt = Some(match self.srtt {
            None => rtt_s,
            Some(s) => 0.875 * s + 0.125 * rtt_s,
        });
        self.tracker.on_ack(ev.now, ev.rtt, ev.newly_acked);

        match self.tracker.current_start() {
            None => self.open_next_mi(ev.now),
            Some(start) => {
                if ev.now >= start + self.mi_duration() {
                    self.open_next_mi(ev.now);
                }
            }
        }
        self.harvest(ev.now);
    }

    fn on_send(&mut self, now: Time, bytes: u64, _in_flight: u64) {
        if self.tracker.current_start().is_none() {
            self.open_next_mi(now);
        }
        self.tracker.on_send(now, bytes);
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        self.tracker.on_loss(ev.now, ev.sent_at, self.srtt_dur(), ev.lost_bytes);
        if ev.kind == LossKind::Timeout {
            self.rate = self.min_rate.max(self.rate.mul_f64(0.5));
            self.phase = Phase::Probing;
            self.pending = None;
        }
    }

    fn cwnd(&self) -> u64 {
        // Cap in-flight at 2·rate·RTT so the pacer, not the window, governs.
        let rtt = self.srtt.unwrap_or(0.1);
        let bdp = self.current_rate().bytes_per_sec() * rtt;
        ((2.0 * bdp) as u64).max(4 * self.mss)
    }

    fn pacing_rate(&self) -> Option<Rate> {
        Some(self.current_rate())
    }

    fn name(&self) -> &'static str {
        "vivace"
    }

    fn internals(&self, probe: &mut dyn FnMut(&'static str, f64)) {
        probe("vivace.base_rate", self.base_rate().bytes_per_sec());
        probe("vivace.rate", self.current_rate().bytes_per_sec());
        probe("vivace.omega", self.omega);
        if let Some(srtt) = self.srtt {
            probe("vivace.srtt", srtt);
        }
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_us: u64, rtt_ms: f64, newly: u64) -> AckEvent {
        AckEvent {
            now: Time::from_micros(now_us),
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: newly,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    /// Drive a synthetic closed loop: the path delivers exactly what was
    /// sent one `rtt_ms` earlier, at constant RTT. Returns the final rate.
    fn drive_ideal(v: &mut Vivace, rtt_ms: f64, total_ms: u64) {
        let rtt_us = (rtt_ms * 1000.0) as u64;
        let step_us = 1000; // 1 ms
        // (send_time_us, bytes) queue emulating the pipe.
        let mut pipe: std::collections::VecDeque<(u64, u64)> = Default::default();
        let mut now = 0;
        while now < total_ms * 1000 {
            // Send at the CCA's current rate for 1 ms.
            let bytes = (v.current_rate().bytes_per_sec() / 1000.0) as u64;
            v.on_send(Time::from_micros(now), bytes, 0);
            pipe.push_back((now, bytes));
            // Deliver what was sent an RTT ago.
            while let Some(&(t, b)) = pipe.front() {
                if t + rtt_us <= now {
                    pipe.pop_front();
                    v.on_ack(&ack(now, rtt_ms, b));
                } else {
                    break;
                }
            }
            now += step_us;
        }
    }

    #[test]
    fn utility_rewards_throughput() {
        let u = VivaceUtility::default();
        assert!(u.eval(100.0, 0.0, 0.0) > u.eval(10.0, 0.0, 0.0));
    }

    #[test]
    fn utility_penalizes_latency_gradient() {
        let u = VivaceUtility::default();
        assert!(u.eval(100.0, 0.01, 0.0) < u.eval(100.0, 0.0, 0.0));
        // Negative gradients (draining queue) are not rewarded.
        assert_eq!(u.eval(100.0, -0.5, 0.0), u.eval(100.0, 0.0, 0.0));
    }

    #[test]
    fn utility_penalizes_loss() {
        let u = VivaceUtility::default();
        assert!(u.eval(100.0, 0.0, 0.05) < u.eval(100.0, 0.0, 0.0));
    }

    #[test]
    fn slow_start_grows_on_flat_rtt() {
        // On an uncongested path (flat RTT, everything delivered) the rate
        // must grow far above its initial 2 Mbit/s.
        let mut v = Vivace::default_params();
        drive_ideal(&mut v, 50.0, 2_000);
        assert!(
            v.base_rate().mbps() > 16.0,
            "rate={} phase={:?}",
            v.base_rate(),
            v.phase
        );
    }

    #[test]
    fn probing_alternates_rate() {
        let mut v = Vivace::default_params();
        v.phase = Phase::Probing;
        v.probing_up = true;
        let base = v.base_rate().mbps();
        assert!((v.current_rate().mbps() - base * 1.05).abs() < 1e-9);
        v.probing_up = false;
        assert!((v.current_rate().mbps() - base * 0.95).abs() < 1e-9);
    }

    #[test]
    fn gradient_moves_rate_up_when_up_probe_wins() {
        let mut v = Vivace::default_params();
        let r0 = v.base_rate().mbps();
        v.apply_gradient(100.0, 50.0, r0);
        assert!(v.base_rate().mbps() > r0);
    }

    #[test]
    fn gradient_moves_rate_down_when_down_probe_wins() {
        let mut v = Vivace::default_params();
        let r0 = v.base_rate().mbps();
        v.apply_gradient(50.0, 100.0, r0);
        assert!(v.base_rate().mbps() < r0);
    }

    #[test]
    fn rate_never_below_floor() {
        let mut v = Vivace::default_params();
        for _ in 0..100 {
            v.apply_gradient(0.0, 1000.0, v.base_rate().mbps());
        }
        assert!(v.base_rate().mbps() >= 0.1);
    }

    #[test]
    fn confidence_amplifier_grows_steps() {
        let mut v = Vivace::default_params();
        let mut deltas = Vec::new();
        let mut prev = v.base_rate().mbps();
        for _ in 0..6 {
            v.apply_gradient(100.0, 90.0, prev);
            let cur = v.base_rate().mbps();
            deltas.push(cur - prev);
            prev = cur;
        }
        assert!(deltas[4] > deltas[0]);
    }

    #[test]
    fn pair_of_results_triggers_one_step() {
        let mut v = Vivace::default_params();
        v.phase = Phase::Probing;
        v.srtt = Some(0.05);
        let r0 = v.base_rate().mbps();
        // Hand-craft two completed probe MIs: up measured better.
        v.probing_up = true;
        v.tracker.begin(Time::from_millis(0), v.current_rate(), TAG_UP);
        // Acks land inside the first MI's send window.
        v.tracker
            .on_ack(Time::from_millis(60), Dur::from_millis(50), 200_000);
        v.probing_up = false;
        v.tracker
            .begin(Time::from_millis(50), v.current_rate(), TAG_DOWN);
        v.tracker
            .on_ack(Time::from_millis(110), Dur::from_millis(50), 100_000);
        v.tracker.begin(Time::from_millis(100), v.rate, TAG_UP);
        // Both earlier MIs complete once the grace passes.
        v.harvest(Time::from_millis(300));
        assert!(v.base_rate().mbps() > r0, "rate={}", v.base_rate());
        assert!(v.pending.is_none());
    }

    #[test]
    fn cwnd_tracks_rate() {
        let mut v = Vivace::default_params();
        v.srtt = Some(0.05);
        v.phase = Phase::Probing;
        v.probing_up = true;
        v.rate = Rate::from_mbps(80.0);
        // 2 * (1.05 · 10 MB/s) * 0.05 s = 1.05 MB
        assert_eq!(v.cwnd(), 1_050_000);
    }

    #[test]
    fn timeout_halves_rate() {
        let mut v = Vivace::default_params();
        v.rate = Rate::from_mbps(80.0);
        v.on_loss(&LossEvent {
            now: Time::from_millis(100),
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        assert!((v.base_rate().mbps() - 40.0).abs() < 1e-9);
    }
}

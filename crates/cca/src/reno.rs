//! TCP NewReno (Jacobson 1988; Hoe 1996; RFC 6582).
//!
//! The loss-based AIMD baseline of §5.4. NewReno is *not* delay-convergent
//! (its delay oscillates over the whole buffer), which is exactly why the
//! paper's Theorem 1 does not apply to it: its large oscillations encode the
//! sending rate in the *frequency* of loss events rather than in an absolute
//! delay (§6.2). The paper shows it suffers bounded unfairness (≈2.7×) under
//! ACK-burst jitter (Figure 7) but not starvation.

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::units::{Rate, Time};

/// TCP NewReno congestion control.
///
/// Two §6.4 variants are available as builders:
/// [`NewReno::with_ecn`] reacts to ECN marks with a once-per-RTT
/// multiplicative decrease, and [`NewReno::loss_tolerant`] *ignores*
/// fast-retransmit loss signals (the transport still repairs the losses) —
/// together they form the paper's conjectured starvation-free combination:
/// "if the router set ECN bits when the queue exceeds a threshold, and a
/// CCA reacted to that and not to small amounts of loss, then it may avoid
/// starvation".
#[derive(Clone, Debug)]
pub struct NewReno {
    mss: u64,
    cwnd: f64,     // bytes
    ssthresh: f64, // bytes
    /// End of the current recovery episode: losses until the ack that was
    /// outstanding at loss time returns are part of the same episode.
    recovery_until: Time,
    /// Latest RTT sample (sets the recovery-episode length).
    last_rtt: simcore::units::Dur,
    /// React to ECN marks (once-per-RTT MD).
    ecn_react: bool,
    /// Ignore fast-retransmit loss signals (rely on ECN/timeouts only).
    ignore_loss: bool,
}

impl NewReno {
    /// NewReno with the given MSS, initial window of 2 MSS.
    pub fn new(mss: u64) -> Self {
        NewReno {
            mss,
            cwnd: (2 * mss) as f64,
            ssthresh: f64::MAX,
            recovery_until: Time::ZERO,
            last_rtt: simcore::units::Dur::ZERO,
            ecn_react: false,
            ignore_loss: false,
        }
    }

    /// React to ECN congestion marks with a once-per-RTT window halving.
    pub fn with_ecn(mut self) -> Self {
        self.ecn_react = true;
        self
    }

    /// Ignore fast-retransmit loss signals (§6.4: a CCA that reacts to ECN
    /// "and not to small amounts of loss"). Timeouts still reset.
    pub fn loss_tolerant(mut self) -> Self {
        self.ignore_loss = true;
        self
    }

    /// Default: 1500-byte MSS.
    pub fn default_params() -> Self {
        NewReno::new(1500)
    }

    /// Whether the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl CongestionControl for NewReno {
    fn on_ack(&mut self, ev: &AckEvent) {
        self.last_rtt = ev.rtt;
        // ECN reaction (RFC 3168-style): one multiplicative decrease per
        // RTT of marked acknowledgements.
        if self.ecn_react && ev.ecn && ev.now >= self.recovery_until {
            self.ssthresh = (self.cwnd / 2.0).max((2 * self.mss) as f64);
            self.cwnd = self.ssthresh;
            self.recovery_until = ev.now + self.last_rtt;
            return;
        }
        if self.in_slow_start() {
            // +1 MSS per MSS acked.
            self.cwnd += ev.newly_acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: +MSS²/cwnd per MSS acked
            // (= +1 MSS per RTT when a full window is acked per RTT).
            let acked_frac = ev.newly_acked as f64 / self.mss as f64;
            self.cwnd += acked_frac * (self.mss as f64 * self.mss as f64) / self.cwnd;
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                if self.ignore_loss {
                    return; // §6.4: loss is ambiguous; wait for ECN
                }
                // One multiplicative decrease per recovery episode (a window
                // of losses counts once — RFC 6582 recovery semantics).
                if ev.now < self.recovery_until {
                    return;
                }
                self.ssthresh = (self.cwnd / 2.0).max((2 * self.mss) as f64);
                self.cwnd = self.ssthresh;
                // Losses within the next RTT belong to the same window of
                // data and must not trigger further decreases.
                self.recovery_until = ev.now + self.last_rtt;
            }
            LossKind::Timeout => {
                self.ssthresh = (self.cwnd / 2.0).max((2 * self.mss) as f64);
                self.cwnd = self.mss as f64;
            }
        }
    }

    fn cwnd(&self) -> u64 {
        (self.cwnd as u64).max(self.mss)
    }

    fn pacing_rate(&self) -> Option<Rate> {
        None // pure ACK clocking; bursts are the point of Fig. 7
    }

    fn name(&self) -> &'static str {
        "newreno"
    }

    fn internals(&self, probe: &mut dyn FnMut(&'static str, f64)) {
        if self.ssthresh < f64::MAX {
            probe("newreno.ssthresh", self.ssthresh);
        }
        probe("newreno.slow_start", self.in_slow_start() as u8 as f64);
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::Dur;

    fn ack(newly: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(1),
            rtt: Dur::from_millis(100),
            newly_acked: newly,
            in_flight: 0,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    fn loss(kind: LossKind) -> LossEvent {
        LossEvent {
            now: Time::from_millis(2),
            lost_bytes: 1500,
            in_flight: 0,
            kind,
            sent_at: None,
        }
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut r = NewReno::default_params();
        assert!(r.in_slow_start());
        let w0 = r.cwnd();
        // Ack a full window: cwnd should double.
        r.on_ack(&ack(w0));
        assert_eq!(r.cwnd(), 2 * w0);
    }

    #[test]
    fn congestion_avoidance_one_mss_per_rtt() {
        let mut r = NewReno::default_params();
        r.ssthresh = 0.0; // force CA
        r.cwnd = (10 * 1500) as f64;
        // Ack one full window worth in MSS chunks → +1 MSS total.
        for _ in 0..10 {
            r.on_ack(&ack(1500));
        }
        // Slightly under +1 because cwnd compounds within the round.
        let w = r.cwnd() as f64 / 1500.0;
        assert!((w - 11.0).abs() < 0.06, "w={w}");
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut r = NewReno::default_params();
        r.ssthresh = 0.0;
        r.cwnd = (20 * 1500) as f64;
        r.on_loss(&loss(LossKind::FastRetransmit));
        assert_eq!(r.cwnd(), 10 * 1500);
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut r = NewReno::default_params();
        r.cwnd = (20 * 1500) as f64;
        r.on_loss(&loss(LossKind::Timeout));
        assert_eq!(r.cwnd(), 1500);
        assert!(r.in_slow_start());
        assert_eq!(r.ssthresh as u64, 10 * 1500);
    }

    #[test]
    fn slow_start_exits_at_ssthresh() {
        let mut r = NewReno::default_params();
        r.ssthresh = (8 * 1500) as f64;
        r.cwnd = (6 * 1500) as f64;
        r.on_ack(&ack(6 * 1500));
        assert_eq!(r.cwnd(), 8 * 1500); // clamped at ssthresh
        assert!(!r.in_slow_start());
    }

    #[test]
    fn ecn_mark_halves_once_per_rtt() {
        let mut r = NewReno::default_params().with_ecn();
        r.ssthresh = 0.0;
        r.cwnd = (40 * 1500) as f64;
        let mut ev = ack(1500);
        ev.ecn = true;
        r.on_ack(&ev);
        assert_eq!(r.cwnd(), 20 * 1500);
        // Marks within the same RTT are a single congestion event (the
        // window may creep up by the normal CA increase, but must not
        // halve again).
        r.on_ack(&ev);
        assert!(r.cwnd() >= 20 * 1500 && r.cwnd() < 21 * 1500);
    }

    #[test]
    fn ecn_ignored_without_opt_in() {
        let mut r = NewReno::default_params();
        r.ssthresh = 0.0;
        r.cwnd = (40 * 1500) as f64;
        let mut ev = ack(1500);
        ev.ecn = true;
        r.on_ack(&ev);
        assert!(r.cwnd() >= 40 * 1500);
    }

    #[test]
    fn loss_tolerant_ignores_fast_retransmit() {
        let mut r = NewReno::default_params().loss_tolerant();
        r.ssthresh = 0.0;
        r.cwnd = (40 * 1500) as f64;
        r.on_loss(&loss(LossKind::FastRetransmit));
        assert_eq!(r.cwnd(), 40 * 1500);
        // Timeouts still reset.
        r.on_loss(&loss(LossKind::Timeout));
        assert_eq!(r.cwnd(), 1500);
    }

    #[test]
    fn floor_is_one_mss() {
        let mut r = NewReno::default_params();
        for _ in 0..10 {
            r.on_loss(&loss(LossKind::Timeout));
        }
        assert!(r.cwnd() >= 1500);
    }
}

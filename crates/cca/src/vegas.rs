//! TCP Vegas (Brakmo & Peterson, 1994).
//!
//! Vegas is the archetypal delay-convergent CCA in the paper: it tries to
//! keep `α` packets queued at the bottleneck, so on an ideal path its
//! equilibrium RTT is `Rm + α/C` and its equilibrium delay *range* is a
//! single point — `δ(C) = 0` (Figure 3, leftmost panel). That extreme
//! convergence is exactly what makes it maximally susceptible to starvation:
//! a measurement ambiguity of `α/C` seconds (0.45 ms at 96→960 Mbit/s with
//! α = 4) changes its inferred fair rate by 10× (§4.1).
//!
//! Mechanism: once per RTT, compare the *expected* rate `cwnd/base_rtt`
//! against the *actual* rate `cwnd/rtt`. The difference, scaled by
//! `base_rtt`, estimates the number of packets this flow keeps in the
//! bottleneck queue. Keep it between `α` and `β` by additive ±1 MSS moves.

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::units::{Dur, Rate, Time};

/// TCP Vegas congestion control.
#[derive(Clone, Debug)]
pub struct Vegas {
    mss: u64,
    alpha: f64,
    beta: f64,
    cwnd: f64, // bytes, fractional accumulation
    base_rtt: Option<Dur>,
    // Per-round RTT aggregation.
    round_end: Time,
    round_rtt_sum: f64,
    round_rtt_n: u32,
    in_slow_start: bool,
    ssthresh: f64,
}

impl Vegas {
    /// Vegas with target queue occupancy between `alpha` and `beta` packets
    /// of `mss` bytes. The classic setting is `alpha = 2, beta = 4`; the
    /// paper's running example (§4.1) uses `alpha = 4`.
    pub fn new(mss: u64, alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta >= alpha);
        Vegas {
            mss,
            alpha,
            beta,
            cwnd: (2 * mss) as f64,
            base_rtt: None,
            round_end: Time::ZERO,
            round_rtt_sum: 0.0,
            round_rtt_n: 0,
            in_slow_start: true,
            ssthresh: f64::MAX,
        }
    }

    /// Classic parameters (α = 2, β = 4, 1500-byte MSS).
    pub fn default_params() -> Self {
        Vegas::new(1500, 2.0, 4.0)
    }

    /// Override the minimum-RTT estimate. The §5.1 scenarios poison this
    /// estimate through the network (a single under-delayed packet), but
    /// tests also use this directly.
    pub fn set_base_rtt(&mut self, rtt: Dur) {
        self.base_rtt = Some(rtt);
    }

    /// Current estimate of the propagation RTT.
    pub fn base_rtt(&self) -> Option<Dur> {
        self.base_rtt
    }

    /// Estimated packets queued at the bottleneck given the round's mean RTT.
    fn queued_packets(&self, rtt: f64) -> f64 {
        let base = self.base_rtt.expect("no RTT sample yet").as_secs_f64();
        if rtt <= 0.0 {
            return 0.0;
        }
        (self.cwnd / self.mss as f64) * (rtt - base) / rtt
    }

    fn clamp(&mut self) {
        let floor = (2 * self.mss) as f64;
        if self.cwnd < floor {
            self.cwnd = floor;
        }
    }
}

impl CongestionControl for Vegas {
    fn on_ack(&mut self, ev: &AckEvent) {
        // Track the minimum RTT ever observed (classic Vegas base RTT).
        match self.base_rtt {
            None => self.base_rtt = Some(ev.rtt),
            Some(b) if ev.rtt < b => self.base_rtt = Some(ev.rtt),
            _ => {}
        }
        self.round_rtt_sum += ev.rtt.as_secs_f64();
        self.round_rtt_n += 1;

        if ev.now < self.round_end {
            return;
        }
        // One window update per RTT, using the round's mean RTT.
        let rtt = self.round_rtt_sum / self.round_rtt_n as f64;
        self.round_rtt_sum = 0.0;
        self.round_rtt_n = 0;
        self.round_end = ev.now + Dur::from_secs_f64(rtt);

        let diff = self.queued_packets(rtt);
        if self.in_slow_start {
            if diff < self.alpha && self.cwnd < self.ssthresh {
                self.cwnd *= 2.0;
            } else {
                self.in_slow_start = false;
            }
            self.clamp();
            return;
        }
        if diff < self.alpha {
            self.cwnd += self.mss as f64;
        } else if diff > self.beta {
            self.cwnd -= self.mss as f64;
        }
        self.clamp();
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                self.cwnd *= 0.75; // Vegas's gentle reduction
                self.in_slow_start = false;
            }
            LossKind::Timeout => {
                self.ssthresh = self.cwnd / 2.0;
                self.cwnd = (2 * self.mss) as f64;
                self.in_slow_start = true;
            }
        }
        self.clamp();
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn pacing_rate(&self) -> Option<Rate> {
        None
    }

    fn name(&self) -> &'static str {
        "vegas"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Dur::from_millis_f64(rtt_ms),
            newly_acked: 1500,
            in_flight: 10 * 1500,
            delivered: 0,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        }
    }

    /// Drive one window update per simulated RTT with a fixed RTT sample.
    fn drive_rounds(v: &mut Vegas, rtt_ms: f64, rounds: usize) {
        let mut now = 0u64;
        for _ in 0..rounds {
            v.on_ack(&ack(now, rtt_ms));
            now += rtt_ms.ceil() as u64 + 1;
        }
    }

    #[test]
    fn slow_start_doubles() {
        let mut v = Vegas::default_params();
        let w0 = v.cwnd();
        // RTT equal to base → zero queueing → keep doubling.
        drive_rounds(&mut v, 50.0, 3);
        assert!(v.cwnd() >= w0 * 4, "cwnd={} w0={}", v.cwnd(), w0);
    }

    #[test]
    fn holds_when_queue_in_band() {
        let mut v = Vegas::default_params();
        v.set_base_rtt(Dur::from_millis(50));
        v.in_slow_start = false;
        // cwnd = 30 pkts; queued = 30*(55-50)/55 = 2.72 ∈ [2, 4] → hold.
        v.cwnd = (30 * 1500) as f64;
        let before = v.cwnd();
        drive_rounds(&mut v, 55.0, 5);
        assert_eq!(v.cwnd(), before);
    }

    #[test]
    fn increases_when_queue_below_alpha() {
        let mut v = Vegas::default_params();
        v.set_base_rtt(Dur::from_millis(50));
        v.in_slow_start = false;
        v.cwnd = (10 * 1500) as f64;
        // queued = 10*(50.5-50)/50.5 ≈ 0.1 < α → +1 MSS per round.
        drive_rounds(&mut v, 50.5, 4);
        assert_eq!(v.cwnd(), 14 * 1500);
    }

    #[test]
    fn decreases_when_queue_above_beta() {
        let mut v = Vegas::default_params();
        v.set_base_rtt(Dur::from_millis(50));
        v.in_slow_start = false;
        v.cwnd = (60 * 1500) as f64;
        // queued = 60*(60-50)/60 = 10 > β → −1 MSS per round.
        drive_rounds(&mut v, 60.0, 3);
        assert_eq!(v.cwnd(), 57 * 1500);
    }

    #[test]
    fn poisoned_base_rtt_strangles_window() {
        // The §5.1 mechanism: a single 59 ms RTT sample on a 60 ms path
        // makes Vegas believe 1 ms of its RTT is queueing.
        let mut v = Vegas::default_params();
        v.in_slow_start = false;
        v.cwnd = (300 * 1500) as f64;
        v.set_base_rtt(Dur::from_millis(59));
        // True RTT stays ~60 ms (no real queue): diff = 300/60 = 5 > β.
        drive_rounds(&mut v, 60.0, 100);
        // Window must shrink toward the point where diff = β:
        // cwnd*(1/59 - 1/60)*59 ≤ 4 → cwnd ≈ 240 pkts... keep shrinking.
        assert!(v.cwnd() < 250 * 1500, "cwnd={}", v.cwnd());
    }

    #[test]
    fn timeout_resets_to_slow_start() {
        let mut v = Vegas::default_params();
        v.cwnd = (100 * 1500) as f64;
        v.on_loss(&LossEvent {
            now: Time::from_millis(1),
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        assert_eq!(v.cwnd(), 2 * 1500);
    }

    #[test]
    fn cwnd_never_below_two_packets() {
        let mut v = Vegas::default_params();
        for _ in 0..50 {
            v.on_loss(&LossEvent {
                now: Time::from_millis(1),
                lost_bytes: 1500,
                in_flight: 0,
                kind: LossKind::FastRetransmit,
                sent_at: None,
            });
        }
        assert_eq!(v.cwnd(), 2 * 1500);
    }

    #[test]
    fn base_rtt_tracks_minimum() {
        let mut v = Vegas::default_params();
        v.on_ack(&ack(0, 80.0));
        assert_eq!(v.base_rtt(), Some(Dur::from_millis(80)));
        v.on_ack(&ack(1, 60.0));
        assert_eq!(v.base_rtt(), Some(Dur::from_millis(60)));
        v.on_ack(&ack(2, 90.0));
        assert_eq!(v.base_rtt(), Some(Dur::from_millis(60)));
    }
}

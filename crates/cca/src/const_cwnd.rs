//! The "silly CCA": a constant congestion window.
//!
//! §4.2 of the paper uses `cwnd = 10 always` as the canonical example of an
//! algorithm that trivially avoids starvation but is not `f`-efficient for
//! any `f > 0` (its throughput is `cwnd/RTT` regardless of link rate, so its
//! utilization → 0 as `C` grows). Definition 4 exists precisely to exclude
//! it. We keep it as a test fixture for the `f`-efficiency checker and as
//! the simplest possible [`CongestionControl`] implementation.

use crate::traits::{AckEvent, CongestionControl, LossEvent};
use simcore::units::Rate;

/// A CCA that always reports the same congestion window and never paces.
#[derive(Clone, Debug)]
pub struct ConstCwnd {
    cwnd_bytes: u64,
}

impl ConstCwnd {
    /// Create with a fixed window in bytes.
    pub fn new(cwnd_bytes: u64) -> Self {
        assert!(cwnd_bytes >= 1);
        ConstCwnd { cwnd_bytes }
    }

    /// The paper's example: ten 1500-byte packets.
    pub fn ten_packets() -> Self {
        ConstCwnd::new(10 * 1500)
    }
}

impl CongestionControl for ConstCwnd {
    fn on_ack(&mut self, _ev: &AckEvent) {}
    fn on_loss(&mut self, _ev: &LossEvent) {}
    fn cwnd(&self) -> u64 {
        self.cwnd_bytes
    }
    fn pacing_rate(&self) -> Option<Rate> {
        None
    }
    fn name(&self) -> &'static str {
        "const"
    }
    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::{Dur, Time};

    #[test]
    fn ignores_all_events() {
        let mut c = ConstCwnd::ten_packets();
        let before = c.cwnd();
        c.on_ack(&AckEvent {
            now: Time::from_millis(1),
            rtt: Dur::from_millis(50),
            newly_acked: 1500,
            in_flight: 0,
            delivered: 1500,
            delivered_at_send: 0,
            delivery_rate: None,
            app_limited: false,
            ecn: false,
        });
        c.on_loss(&LossEvent {
            now: Time::from_millis(2),
            lost_bytes: 1500,
            in_flight: 0,
            kind: crate::LossKind::Timeout,
            sent_at: None,
        });
        assert_eq!(c.cwnd(), before);
        assert_eq!(c.pacing_rate(), None);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        let _ = ConstCwnd::new(0);
    }
}

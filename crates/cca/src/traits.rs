//! The event-driven congestion-control interface.
//!
//! The sender endpoint (in `netsim`) owns the transport machinery —
//! sequencing, loss detection, retransmission, pacing clocks — and feeds the
//! CCA three kinds of events: acknowledgements carrying an RTT sample and a
//! delivery-rate sample, loss indications, and transmissions. The CCA
//! exposes two outputs read by the sender on every scheduling decision: a
//! congestion window in bytes and an optional pacing rate.
//!
//! This split mirrors how the paper treats a CCA: a deterministic function
//! from the history of observed delays (and losses) to a sending rate
//! (§4.3, step 3: "the sending rate at any time t is a function of the
//! delays observed up to time t and the initial state of the algorithm").

use simcore::units::{Dur, Rate, Time};

/// Information delivered to the CCA for every (cumulatively) acknowledged
/// packet.
#[derive(Clone, Copy, Debug)]
pub struct AckEvent {
    /// Current time at the sender.
    pub now: Time,
    /// RTT sample of the packet whose acknowledgement triggered this event.
    pub rtt: Dur,
    /// Bytes newly acknowledged by this event.
    pub newly_acked: u64,
    /// Bytes still in flight after this acknowledgement.
    pub in_flight: u64,
    /// Total bytes delivered over the lifetime of the flow.
    pub delivered: u64,
    /// Value of `delivered` when the acked packet was sent. BBR uses this
    /// for packet-timed round counting and delivery-rate sampling.
    pub delivered_at_send: u64,
    /// Delivery-rate sample for the acked packet (BBR-style: delivered-byte
    /// delta between this packet's send and its acknowledgement, divided by
    /// the elapsed interval), when the sender can compute one.
    pub delivery_rate: Option<Rate>,
    /// True if the flow was limited by the application (not the window)
    /// when the acked packet was sent; rate samples then under-estimate.
    pub app_limited: bool,
    /// True if the network marked this acknowledgement's data with an
    /// explicit congestion notification (§6.4: unlike delay and loss, ECN
    /// is an unambiguous congestion signal).
    pub ecn: bool,
}

/// What kind of loss signal the sender detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// Triple duplicate ACK → fast retransmit (isolated loss).
    FastRetransmit,
    /// Retransmission timeout (severe: the pipe drained).
    Timeout,
}

/// Information delivered to the CCA when the sender detects loss.
#[derive(Clone, Copy, Debug)]
pub struct LossEvent {
    /// Current time at the sender.
    pub now: Time,
    /// Bytes deemed lost.
    pub lost_bytes: u64,
    /// Bytes in flight after removing the lost bytes.
    pub in_flight: u64,
    /// Fast retransmit or timeout.
    pub kind: LossKind,
    /// Exact send time of the (first) lost packet, when the transport
    /// knows it — PCC's monitor intervals need precise loss attribution.
    pub sent_at: Option<Time>,
}

/// A congestion-control algorithm.
///
/// Implementations must be deterministic given their construction parameters
/// (any internal randomness must come from a seed fixed at construction) —
/// the theorem constructions replay recorded delay trajectories and rely on
/// the CCA reacting identically (§4.3).
pub trait CongestionControl: Send {
    /// An acknowledgement arrived.
    fn on_ack(&mut self, ev: &AckEvent);

    /// Loss was detected.
    fn on_loss(&mut self, ev: &LossEvent);

    /// A packet of `bytes` was transmitted (after which `in_flight` bytes
    /// are outstanding). Most CCAs ignore this; PCC's monitor intervals use
    /// it.
    fn on_send(&mut self, _now: Time, _bytes: u64, _in_flight: u64) {}

    /// Congestion window in bytes. The sender never lets
    /// `in_flight > cwnd()`. Must be at least one packet.
    fn cwnd(&self) -> u64;

    /// Pacing rate, if this CCA paces. `None` means purely window-limited
    /// (ACK-clocked) transmission, like Reno/Cubic.
    fn pacing_rate(&self) -> Option<Rate>;

    /// Short algorithm name for reports ("copa", "bbr", …).
    fn name(&self) -> &'static str;

    /// Report named internal state to `probe` — estimator outputs, mode
    /// flags, target rates — one `(key, value)` pair per scalar. The
    /// tracing subsystem forwards each pair as a per-flow probe event, so
    /// a trace shows *why* the CCA chose its window (BBR's bandwidth
    /// filter, Copa's min-RTT, …), not just the window itself. Keys should
    /// be stable, `"algo.field"`-style names. Default: report nothing.
    fn internals(&self, probe: &mut dyn FnMut(&'static str, f64)) {
        let _ = probe;
    }

    /// Clone into a box — used to snapshot converged CCA state.
    fn clone_box(&self) -> Box<dyn CongestionControl>;
}

impl Clone for Box<dyn CongestionControl> {
    // simlint: cold: boxed CCAs are cloned at snapshot/warm-start, never per event
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Helper: the sending rate a window-limited CCA implies at a given RTT,
/// `cwnd / RTT`. Used in reports and by delay-convergence analysis.
pub fn implied_rate(cwnd_bytes: u64, rtt: Dur) -> Rate {
    if rtt == Dur::ZERO {
        return Rate::ZERO;
    }
    Rate::from_bytes_per_sec(cwnd_bytes as f64 / rtt.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implied_rate_math() {
        // 600 kB window over 40 ms = 15 MB/s = 120 Mbit/s.
        let r = implied_rate(600_000, Dur::from_millis(40));
        assert!((r.mbps() - 120.0).abs() < 1e-9);
        assert_eq!(implied_rate(1000, Dur::ZERO), Rate::ZERO);
    }

    #[test]
    fn box_clone_preserves_state() {
        let cca = crate::ConstCwnd::new(7 * 1500);
        let boxed: Box<dyn CongestionControl> = Box::new(cca);
        let cloned = boxed.clone();
        assert_eq!(cloned.cwnd(), 7 * 1500);
        assert_eq!(cloned.name(), "const");
    }
}

//! BBR v1 (Cardwell et al., ACM Queue 2016; IETF draft -00).
//!
//! BBR estimates the bottleneck bandwidth as the **maximum** delivery rate
//! over the last 10 packet-timed rounds and the propagation delay as the
//! **minimum** RTT over the last 10 seconds, paces at
//! `pacing_gain × BtlBw`, and caps in-flight data with
//! `cwnd = cwnd_gain × BtlBw × RTprop + quanta`.
//!
//! The paper (§5.2) analyzes two regimes:
//!
//! * **Pacing-limited mode** — the original design. `d_min = Rm`,
//!   `d_max = 1.25·Rm` (the probe gain), so `δ_max = Rm/4`. With jitter
//!   `D > Rm/4` an adversary can hide the extra bandwidth a probe would
//!   reveal, and a flow starves.
//! * **cwnd-limited mode** — when ACK jitter makes the max-filter
//!   *over-estimate* the rate, the cwnd cap governs. Its fixed point is
//!   `rate = quanta/(RTT − 2·Rm)` (the paper's `α/(RTT − 2Rm)` curve in
//!   Figure 3), which is Vegas-like: the `+quanta` term is what forces a
//!   unique fair equilibrium, and it shrinks like `nα/C` — the same
//!   precision problem as Vegas. Flows with different `Rm` converge to
//!   `cwnd_i = 2·C·Rm_i/n + α`-style fixed points and the smaller-RTT flow
//!   starves (the paper's 40 ms vs 80 ms experiment: 8.3 vs 107 Mbit/s).

use crate::traits::{AckEvent, CongestionControl, LossEvent, LossKind};
use simcore::filter::{WindowedMax, WindowedMin};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};

/// BBR state machine phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BbrState {
    /// Exponential search for the bottleneck rate (gain 2/ln 2 ≈ 2.885).
    Startup,
    /// Drain the queue built during startup.
    Drain,
    /// Steady-state: cycle pacing gain through [1.25, 0.75, 1×6].
    ProbeBw,
    /// Periodically drain the pipe to re-measure the propagation RTT.
    ProbeRtt,
}

const STARTUP_GAIN: f64 = 2.885;
const DRAIN_GAIN: f64 = 1.0 / 2.885;
const PROBE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
const BW_WINDOW_ROUNDS: u64 = 10;
const RTPROP_WINDOW: Dur = Dur(10_000_000_000); // 10 s
const PROBE_RTT_DURATION: Dur = Dur(200_000_000); // 200 ms

/// BBR v1 congestion control.
#[derive(Clone, Debug)]
pub struct Bbr {
    mss: u64,
    /// The `+α` / `quanta` additive cwnd term (§5.2). BBR's draft default
    /// corresponds to 3 send quanta; the paper argues this term is what
    /// gives the cwnd-limited mode a unique fair fixed point.
    quanta: u64,
    cwnd_gain: f64,
    state: BbrState,
    btl_bw: WindowedMax, // bytes/sec, positions = round count
    rt_prop: WindowedMin, // seconds, positions = ns
    rtprop_stamp: Time,   // when rt_prop was last *reduced or refreshed*
    round_count: u64,
    next_round_delivered: u64,
    full_bw: f64,
    full_bw_rounds: u32,
    cycle_index: usize,
    cycle_stamp: Time,
    probe_rtt_done_at: Option<Time>,
    rng: Xoshiro256,
    /// Paced rate floor before any bandwidth sample exists.
    initial_rate: Rate,
}

impl Bbr {
    /// BBR with a deterministic seed for its randomized probe phasing.
    pub fn new(mss: u64, seed: u64) -> Self {
        Bbr {
            mss,
            quanta: 3 * mss,
            cwnd_gain: 2.0,
            state: BbrState::Startup,
            btl_bw: WindowedMax::new(BW_WINDOW_ROUNDS),
            rt_prop: WindowedMin::new(RTPROP_WINDOW.as_nanos()),
            rtprop_stamp: Time::ZERO,
            round_count: 0,
            next_round_delivered: 0,
            full_bw: 0.0,
            full_bw_rounds: 0,
            cycle_index: 0,
            cycle_stamp: Time::ZERO,
            probe_rtt_done_at: None,
            rng: Xoshiro256::new(seed),
            initial_rate: Rate::from_mbps(1.0),
        }
    }

    /// Default parameters with seed 1.
    pub fn default_params() -> Self {
        Bbr::new(1500, 1)
    }

    /// Remove the `+quanta` term — the §5.2 thought experiment showing that
    /// without it *any* split of `2·Rm·C` between flows is a fixed point.
    pub fn without_quanta(mut self) -> Self {
        self.quanta = 0;
        self
    }

    /// Set the quanta (`α`) additive cwnd term in bytes.
    pub fn with_quanta(mut self, quanta: u64) -> Self {
        self.quanta = quanta;
        self
    }

    /// Current state-machine phase.
    pub fn state(&self) -> BbrState {
        self.state
    }

    /// Current bottleneck-bandwidth estimate.
    pub fn btl_bw(&self) -> Option<Rate> {
        self.btl_bw.get().map(Rate::from_bytes_per_sec)
    }

    /// Current propagation-RTT estimate.
    pub fn rt_prop(&self) -> Option<Dur> {
        self.rt_prop.get().map(Dur::from_secs_f64)
    }

    /// Estimated bandwidth-delay product in bytes.
    pub fn bdp(&self) -> Option<u64> {
        let bw = self.btl_bw.get()?;
        let rt = self.rt_prop.get()?;
        Some((bw * rt) as u64)
    }

    fn pacing_gain(&self) -> f64 {
        match self.state {
            BbrState::Startup => STARTUP_GAIN,
            BbrState::Drain => DRAIN_GAIN,
            BbrState::ProbeBw => PROBE_GAINS[self.cycle_index],
            BbrState::ProbeRtt => 1.0,
        }
    }

    fn enter_probe_bw(&mut self, now: Time) {
        self.state = BbrState::ProbeBw;
        // Random initial phase, excluding the 0.75 drain phase (index 1),
        // per the BBR draft.
        let mut idx = self.rng.range_u64(7) as usize; // 0..7
        if idx >= 1 {
            idx += 1;
        }
        self.cycle_index = idx % 8;
        self.cycle_stamp = now;
    }

    fn advance_cycle(&mut self, now: Time) {
        let rtprop = self
            .rt_prop
            .get()
            .map(Dur::from_secs_f64)
            .unwrap_or(Dur::from_millis(10));
        if now.checked_since(self.cycle_stamp).is_some_and(|e| e >= rtprop) {
            self.cycle_index = (self.cycle_index + 1) % 8;
            self.cycle_stamp = now;
        }
    }

    fn check_full_pipe(&mut self) {
        if self.state != BbrState::Startup {
            return;
        }
        let bw = self.btl_bw.get().unwrap_or(0.0);
        if bw > self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_rounds = 0;
        } else {
            self.full_bw_rounds += 1;
            if self.full_bw_rounds >= 3 {
                self.state = BbrState::Drain;
            }
        }
    }
}

impl CongestionControl for Bbr {
    fn on_ack(&mut self, ev: &AckEvent) {
        // --- Round accounting (packet-timed rounds) ---
        if ev.delivered_at_send >= self.next_round_delivered {
            self.round_count += 1;
            self.next_round_delivered = ev.delivered;
            self.check_full_pipe();
        }

        // --- Bandwidth sample ---
        if let Some(rate) = ev.delivery_rate {
            let sample = rate.bytes_per_sec();
            // App-limited samples only count if they *raise* the estimate.
            if !ev.app_limited || sample > self.btl_bw.get().unwrap_or(0.0) {
                self.btl_bw.insert(self.round_count, sample);
            } else {
                self.btl_bw.advance(self.round_count);
            }
        }

        // --- RTprop sample ---
        let rtt_s = ev.rtt.as_secs_f64();
        let prior = self.rt_prop.get();
        self.rt_prop.insert(ev.now.as_nanos(), rtt_s);
        if prior.is_none_or(|p| rtt_s <= p) {
            self.rtprop_stamp = ev.now;
        }

        // --- State machine ---
        match self.state {
            BbrState::Startup => { /* full-pipe check runs per round */ }
            BbrState::Drain => {
                if let Some(bdp) = self.bdp() {
                    if ev.in_flight <= bdp {
                        self.enter_probe_bw(ev.now);
                    }
                }
            }
            BbrState::ProbeBw => {
                self.advance_cycle(ev.now);
                // ProbeRTT entry: min RTT stale for 10 s.
                if ev.now.checked_since(self.rtprop_stamp).is_some_and(|e| e >= RTPROP_WINDOW)
                {
                    self.state = BbrState::ProbeRtt;
                    self.probe_rtt_done_at = None;
                }
            }
            BbrState::ProbeRtt => {
                match self.probe_rtt_done_at {
                    None => {
                        // Wait until inflight has fallen to the ProbeRTT cwnd
                        // before starting the 200 ms clock.
                        if ev.in_flight <= 4 * self.mss {
                            self.probe_rtt_done_at = Some(ev.now + PROBE_RTT_DURATION);
                        }
                    }
                    Some(done) => {
                        if ev.now >= done {
                            self.rtprop_stamp = ev.now;
                            self.enter_probe_bw(ev.now);
                        }
                    }
                }
            }
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        // BBR v1 ignores isolated losses; a timeout means the pipe drained
        // and estimates are stale.
        if ev.kind == LossKind::Timeout {
            self.btl_bw.reset();
            self.full_bw = 0.0;
            self.full_bw_rounds = 0;
            self.state = BbrState::Startup;
        }
    }

    fn cwnd(&self) -> u64 {
        if self.state == BbrState::ProbeRtt {
            return 4 * self.mss;
        }
        match self.bdp() {
            None => 10 * self.mss, // initial window
            Some(bdp) => {
                let gained = (self.cwnd_gain * bdp as f64) as u64;
                gained + self.quanta
            }
        }
    }

    fn pacing_rate(&self) -> Option<Rate> {
        let bw = self
            .btl_bw
            .get()
            .map(Rate::from_bytes_per_sec)
            .unwrap_or(self.initial_rate);
        Some(bw.mul_f64(self.pacing_gain()))
    }

    fn name(&self) -> &'static str {
        "bbr"
    }

    fn internals(&self, probe: &mut dyn FnMut(&'static str, f64)) {
        probe(
            "bbr.state",
            match self.state {
                BbrState::Startup => 0.0,
                BbrState::Drain => 1.0,
                BbrState::ProbeBw => 2.0,
                BbrState::ProbeRtt => 3.0,
            },
        );
        if let Some(bw) = self.btl_bw() {
            probe("bbr.btl_bw", bw.bytes_per_sec());
        }
        if let Some(rt) = self.rt_prop() {
            probe("bbr.rt_prop", rt.as_secs_f64());
        }
        probe("bbr.pacing_gain", self.pacing_gain());
        probe("bbr.round", self.round_count as f64);
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Driver {
        bbr: Bbr,
        now: Time,
        delivered: u64,
    }

    impl Driver {
        fn new() -> Self {
            Driver {
                bbr: Bbr::default_params(),
                now: Time::ZERO,
                delivered: 0,
            }
        }

        /// Feed one ack with the given rate sample and RTT; advances time.
        fn ack(&mut self, rate_mbps: f64, rtt_ms: f64, in_flight: u64) {
            let newly = 1500;
            let delivered_at_send = self.delivered.saturating_sub(30 * 1500);
            self.delivered += newly;
            self.now += Dur::from_millis_f64(rtt_ms / 30.0);
            self.bbr.on_ack(&AckEvent {
                now: self.now,
                rtt: Dur::from_millis_f64(rtt_ms),
                newly_acked: newly,
                in_flight,
                delivered: self.delivered,
                delivered_at_send,
                delivery_rate: Some(Rate::from_mbps(rate_mbps)),
                app_limited: false,
                ecn: false,
            });
        }
    }

    #[test]
    fn startup_exits_when_bw_plateaus() {
        let mut d = Driver::new();
        // Growing bandwidth: stay in startup.
        for i in 0..100 {
            d.ack(10.0 + i as f64, 50.0, 10 * 1500);
        }
        assert_eq!(d.bbr.state(), BbrState::Startup);
        // Plateau: must leave startup within a few rounds.
        for _ in 0..2000 {
            d.ack(110.0, 50.0, 10 * 1500);
        }
        assert_ne!(d.bbr.state(), BbrState::Startup);
    }

    #[test]
    fn drain_exits_to_probe_bw_when_inflight_below_bdp() {
        let mut d = Driver::new();
        for _ in 0..5000 {
            d.ack(100.0, 50.0, 10 * 1500);
        }
        // BDP = 100 Mbit/s * 50 ms = 625000 bytes; inflight 15000 << BDP.
        assert_eq!(d.bbr.state(), BbrState::ProbeBw);
    }

    #[test]
    fn btl_bw_is_windowed_max() {
        let mut d = Driver::new();
        for _ in 0..200 {
            d.ack(80.0, 50.0, 10 * 1500);
        }
        for _ in 0..10 {
            d.ack(120.0, 50.0, 10 * 1500);
        }
        let bw = d.bbr.btl_bw().unwrap();
        assert!((bw.mbps() - 120.0).abs() < 1.0, "bw={bw}");
        // Max-filter holds the peak even after the rate drops...
        for _ in 0..50 {
            d.ack(60.0, 50.0, 10 * 1500);
        }
        assert!(d.bbr.btl_bw().unwrap().mbps() > 100.0);
        // ...but forgets it after 10 rounds.
        for _ in 0..1000 {
            d.ack(60.0, 50.0, 10 * 1500);
        }
        let bw = d.bbr.btl_bw().unwrap();
        assert!((bw.mbps() - 60.0).abs() < 1.0, "bw={bw}");
    }

    #[test]
    fn rt_prop_is_windowed_min() {
        let mut d = Driver::new();
        d.ack(100.0, 55.0, 1500);
        d.ack(100.0, 50.0, 1500);
        d.ack(100.0, 70.0, 1500);
        let rt = d.bbr.rt_prop().unwrap();
        assert!((rt.as_millis_f64() - 50.0).abs() < 0.1);
    }

    #[test]
    fn cwnd_is_two_bdp_plus_quanta() {
        let mut d = Driver::new();
        for _ in 0..5000 {
            d.ack(100.0, 50.0, 10 * 1500);
        }
        let bdp = d.bbr.bdp().unwrap();
        assert_eq!(d.bbr.cwnd(), 2 * bdp + 3 * 1500);
    }

    #[test]
    fn without_quanta_removes_additive_term() {
        let mut d = Driver::new();
        d.bbr = Bbr::default_params().without_quanta();
        for _ in 0..5000 {
            d.ack(100.0, 50.0, 10 * 1500);
        }
        let bdp = d.bbr.bdp().unwrap();
        assert_eq!(d.bbr.cwnd(), 2 * bdp);
    }

    #[test]
    fn probe_bw_cycles_gains() {
        let mut d = Driver::new();
        for _ in 0..5000 {
            d.ack(100.0, 50.0, 10 * 1500);
        }
        assert_eq!(d.bbr.state(), BbrState::ProbeBw);
        // Collect pacing gains over several cycles; must include both the
        // 1.25 probe and the 0.75 drain.
        let mut seen_hi = false;
        let mut seen_lo = false;
        for _ in 0..5000 {
            d.ack(100.0, 50.0, 10 * 1500);
            let g = d.bbr.pacing_gain();
            if (g - 1.25).abs() < 1e-9 {
                seen_hi = true;
            }
            if (g - 0.75).abs() < 1e-9 {
                seen_lo = true;
            }
        }
        assert!(seen_hi && seen_lo);
    }

    #[test]
    fn probe_rtt_entered_when_min_rtt_stale() {
        let mut d = Driver::new();
        for _ in 0..5000 {
            d.ack(100.0, 50.0, 10 * 1500);
        }
        assert_eq!(d.bbr.state(), BbrState::ProbeBw);
        // RTT creeps up, never making a new minimum, for > 10 s.
        for _ in 0..7000 {
            d.ack(100.0, 60.0, 10 * 1500);
        }
        // 7000 acks * (60/30) ms = 14 s > 10 s staleness window.
        assert_eq!(d.bbr.state(), BbrState::ProbeRtt);
        assert_eq!(d.bbr.cwnd(), 4 * 1500);
    }

    #[test]
    fn probe_rtt_exits_after_duration() {
        let mut d = Driver::new();
        for _ in 0..5000 {
            d.ack(100.0, 50.0, 10 * 1500);
        }
        for _ in 0..7000 {
            d.ack(100.0, 60.0, 10 * 1500);
        }
        assert_eq!(d.bbr.state(), BbrState::ProbeRtt);
        // Inflight drops below 4 MSS; 200 ms later we exit.
        for _ in 0..300 {
            d.ack(100.0, 60.0, 2 * 1500);
        }
        assert_eq!(d.bbr.state(), BbrState::ProbeBw);
    }

    #[test]
    fn timeout_restarts_startup() {
        let mut d = Driver::new();
        for _ in 0..5000 {
            d.ack(100.0, 50.0, 10 * 1500);
        }
        d.bbr.on_loss(&LossEvent {
            now: d.now,
            lost_bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        assert_eq!(d.bbr.state(), BbrState::Startup);
        assert!(d.bbr.btl_bw().is_none());
    }

    #[test]
    fn startup_paces_at_startup_gain() {
        let mut d = Driver::new();
        d.ack(50.0, 50.0, 10 * 1500);
        assert_eq!(d.bbr.state(), BbrState::Startup);
        let pacing = d.bbr.pacing_rate().unwrap().mbps();
        // pacing = 2.885 × bw estimate.
        assert!((pacing - 50.0 * 2.885).abs() < 1.0, "pacing={pacing}");
    }

    #[test]
    fn drain_paces_below_estimate() {
        let mut d = Driver::new();
        // Plateau to trigger Drain while inflight stays above BDP.
        for _ in 0..3000 {
            d.ack(100.0, 50.0, 3_000_000);
        }
        assert_eq!(d.bbr.state(), BbrState::Drain);
        let pacing = d.bbr.pacing_rate().unwrap().mbps();
        assert!(pacing < 100.0 * 0.5, "pacing={pacing}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut d = Driver::new();
            d.bbr = Bbr::new(1500, 42);
            for _ in 0..6000 {
                d.ack(100.0, 50.0, 10 * 1500);
            }
            (d.bbr.cycle_index, d.bbr.cwnd())
        };
        assert_eq!(mk(), mk());
    }
}

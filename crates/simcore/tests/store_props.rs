//! Property tests for the content-addressed store: write/read round-trips,
//! header validation, and manifest convergence — random payloads and
//! digests through the testkit harness (shrinking enabled).

use simcore::store::{checksum, Digest, Manifest, ReadError, Store, CODE_TAG};
use std::path::PathBuf;
use testkit::prop::{check, check_with, u64_in, vec_of, Config};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store_props_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn raw(bytes: &[u64]) -> Vec<u8> {
    bytes.iter().map(|&b| b as u8).collect()
}

/// Whatever bytes go in come back out, byte for byte.
fn prop_write_read_roundtrip(input: &(Vec<u64>, u64)) -> Result<(), String> {
    let (bytes, seed) = input;
    let payload = raw(bytes);
    let dir = tmp("roundtrip");
    let store = Store::open(&dir).map_err(|e| e.to_string())?;
    let d = Digest::job(&payload, *seed, CODE_TAG);
    store.write(&d, &payload).map_err(|e| e.to_string())?;
    let back = store.read(&d).map_err(|e| e.to_string())?;
    testkit::require_eq!(back, payload);
    // Re-writing the same content leaves the entry byte-identical.
    let on_disk = std::fs::read(store.path_of(&d)).map_err(|e| e.to_string())?;
    store.write(&d, &payload).map_err(|e| e.to_string())?;
    let on_disk2 = std::fs::read(store.path_of(&d)).map_err(|e| e.to_string())?;
    testkit::require_eq!(on_disk, on_disk2);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Flipping any stored byte (header or payload) makes the read fail —
/// never return wrong bytes.
fn prop_any_flip_is_detected(input: &(Vec<u64>, u64, u64)) -> Result<(), String> {
    let (bytes, seed, flip) = input;
    let payload = raw(bytes);
    let dir = tmp("flip");
    let store = Store::open(&dir).map_err(|e| e.to_string())?;
    let d = Digest::job(&payload, *seed, CODE_TAG);
    store.write(&d, &payload).map_err(|e| e.to_string())?;
    let path = store.path_of(&d);
    let mut on_disk = std::fs::read(&path).map_err(|e| e.to_string())?;
    let pos = (*flip as usize) % on_disk.len();
    on_disk[pos] ^= 0x01;
    std::fs::write(&path, &on_disk).map_err(|e| e.to_string())?;
    match store.read(&d) {
        Ok(got) => {
            // The only acceptable Ok is the flip landing in ignorable
            // header whitespace — and there is none; equality would mean
            // an undetected corruption.
            testkit::require!(
                got == payload,
                "corrupted entry served wrong bytes (flip at {pos})"
            );
            Err(format!("flip at {pos} went undetected"))
        }
        Err(ReadError::Missing) => Err("flipped entry reported missing".into()),
        Err(_) => Ok(()), // detected: BadHeader / StaleTag / Truncated / BadChecksum
    }
}

/// The checksum function matches what the header records.
fn prop_checksum_is_fnv_lane_a(input: &(Vec<u64>, u64)) -> Result<(), String> {
    let (bytes, _) = input;
    let payload = raw(bytes);
    let a = checksum(&payload);
    let b = checksum(&payload.clone());
    testkit::require_eq!(a, b);
    testkit::require_eq!(Digest::of(&payload).0, a);
    Ok(())
}

/// Manifests converge: any insertion order of the same digest set saves
/// byte-identical files.
fn prop_manifest_order_immaterial(input: &(Vec<u64>, u64)) -> Result<(), String> {
    let (seeds, _) = input;
    let digests: Vec<Digest> = seeds.iter().map(|&s| Digest::job(b"row", s, CODE_TAG)).collect();
    let dir = tmp("manifest");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let path_a = dir.join("a.manifest");
    let path_b = dir.join("b.manifest");

    let mut fwd = Manifest::new("prop", CODE_TAG, digests.len());
    fwd.done = digests.clone();
    fwd.save(&path_a).map_err(|e| e.to_string())?;

    let mut rev = Manifest::new("prop", CODE_TAG, digests.len());
    rev.done = digests.iter().rev().cloned().collect();
    // Duplicates (a resumed run re-confirming rows) must not change the
    // bytes either.
    rev.done.extend(digests.first().cloned());
    rev.save(&path_b).map_err(|e| e.to_string())?;

    let a = std::fs::read(&path_a).map_err(|e| e.to_string())?;
    let b = std::fs::read(&path_b).map_err(|e| e.to_string())?;
    testkit::require_eq!(a, b);

    let loaded = Manifest::load(&path_a).ok_or("manifest reloads")?;
    let mut expect: Vec<Digest> = digests;
    expect.sort();
    expect.dedup();
    testkit::require_eq!(loaded.done, expect);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

#[test]
fn store_roundtrip_properties_hold() {
    // Filesystem-backed properties: fewer cases, same shrinking.
    let cfg = Config::with_cases(24);
    check_with(
        cfg,
        "prop_write_read_roundtrip",
        (vec_of(u64_in(0, 256), 0, 200), u64_in(0, u64::MAX)),
        prop_write_read_roundtrip,
    );
    check_with(
        cfg,
        "prop_any_flip_is_detected",
        (vec_of(u64_in(0, 256), 0, 200), u64_in(0, u64::MAX), u64_in(0, u64::MAX)),
        prop_any_flip_is_detected,
    );
    check_with(
        cfg,
        "prop_manifest_order_immaterial",
        (vec_of(u64_in(0, u64::MAX), 1, 40), u64_in(0, 4)),
        prop_manifest_order_immaterial,
    );
}

#[test]
fn checksum_properties_hold() {
    check(
        "prop_checksum_is_fnv_lane_a",
        (vec_of(u64_in(0, 256), 0, 200), u64_in(0, 4)),
        prop_checksum_is_fnv_lane_a,
    );
}

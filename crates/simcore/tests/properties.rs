//! Property tests of the simulation core's foundations.
//!
//! Each property is a plain function over a tuple of inputs, so testkit's
//! failure output is a paste-ready regression test calling it.

use simcore::filter::{WindowedMax, WindowedMin};
use simcore::rng::Xoshiro256;
use simcore::series::TimeSeries;
use simcore::units::{Dur, Rate, Time};
use testkit::prop::{check, f64_in, u64_in, vec_of};
use testkit::{require, require_eq};

// ---------- units ----------

fn dur_float_roundtrip_within_a_nanosecond(&ms: &f64) -> Result<(), String> {
    let d = Dur::from_millis_f64(ms);
    require!(
        (d.as_millis_f64() - ms).abs() < 1e-5,
        "ms={ms} roundtrip={}",
        d.as_millis_f64()
    );
    Ok(())
}

#[test]
fn prop_dur_float_roundtrip_within_a_nanosecond() {
    check(
        "dur_float_roundtrip_within_a_nanosecond",
        (f64_in(0.0, 1e7),),
        |&(ms,): &(f64,)| dur_float_roundtrip_within_a_nanosecond(&ms),
    );
}

fn time_plus_dur_minus_dur_is_identity(&(t, d): &(u64, u64)) -> Result<(), String> {
    let time = Time(t);
    let dur = Dur(d);
    require_eq!((time + dur) - dur, time);
    require_eq!((time + dur).since(time), dur);
    Ok(())
}

#[test]
fn prop_time_plus_dur_minus_dur_is_identity() {
    check(
        "time_plus_dur_minus_dur_is_identity",
        (u64_in(0, u64::MAX / 4), u64_in(0, u64::MAX / 4)),
        time_plus_dur_minus_dur_is_identity,
    );
}

fn rate_tx_time_inverts_bytes_over(&(mbps, bytes): &(f64, u64)) -> Result<(), String> {
    let r = Rate::from_mbps(mbps);
    let t = r.tx_time(bytes);
    // Transmitting for exactly tx_time carries (almost exactly) `bytes`.
    let carried = r.bytes_over(t) as f64;
    require!(
        (carried - bytes as f64).abs() <= bytes as f64 * 1e-6 + 1.0,
        "bytes={bytes} carried={carried}"
    );
    Ok(())
}

#[test]
fn prop_rate_tx_time_inverts_bytes_over() {
    check(
        "rate_tx_time_inverts_bytes_over",
        (f64_in(0.1, 10_000.0), u64_in(1, 10_000_000)),
        rate_tx_time_inverts_bytes_over,
    );
}

fn rate_unit_conversions_consistent(&mbps: &f64) -> Result<(), String> {
    let r = Rate::from_mbps(mbps);
    require!(
        (r.bps() / 1e6 - mbps).abs() < mbps * 1e-12 + 1e-12,
        "mbps={mbps} bps={}",
        r.bps()
    );
    require!(
        (Rate::from_bps(r.bps()).bytes_per_sec() - r.bytes_per_sec()).abs() < 1e-6,
        "mbps={mbps}"
    );
    Ok(())
}

#[test]
fn prop_rate_unit_conversions_consistent() {
    check(
        "rate_unit_conversions_consistent",
        (f64_in(0.001, 100_000.0),),
        |&(mbps,): &(f64,)| rate_unit_conversions_consistent(&mbps),
    );
}

// ---------- series ----------

fn value_at_matches_linear_scan(
    (points, query): &(Vec<(u64, f64)>, u64),
) -> Result<(), String> {
    let query = *query;
    let mut sorted = points.clone();
    sorted.sort_by_key(|&(t, _)| t);
    let mut s = TimeSeries::new();
    for &(t, v) in &sorted {
        s.push(Time(t), v);
    }
    let expect = sorted
        .iter().rfind(|&&(t, _)| t <= query)          // last point at or before `query`...
        .map(|&(_, v)| v);
    // ...except ties: value_at takes the *last* pushed at that time.
    let expect = {
        let at_or_before: Vec<&(u64, f64)> =
            sorted.iter().filter(|&&(t, _)| t <= query).collect();
        at_or_before.last().map(|&&(_, v)| v).or(expect)
    };
    require_eq!(s.value_at(Time(query)), expect);
    Ok(())
}

#[test]
fn prop_value_at_matches_linear_scan() {
    check(
        "value_at_matches_linear_scan",
        (
            vec_of((u64_in(0, 1_000_000), f64_in(-1e6, 1e6)), 1, 200),
            u64_in(0, 1_100_000),
        ),
        value_at_matches_linear_scan,
    );
}

fn shifted_from_preserves_relative_spacing(
    (offsets, base, cut): &(Vec<u64>, u64, u64),
) -> Result<(), String> {
    let mut s = TimeSeries::new();
    let mut t = *base;
    for (i, &o) in offsets.iter().enumerate() {
        t += o;
        s.push(Time(t), i as f64);
    }
    let cut_at = Time(base + cut);
    let shifted = s.shifted_from(cut_at);
    for w in shifted.points().windows(2) {
        // Spacing between consecutive surviving points is unchanged.
        let orig: Vec<(Time, f64)> = s
            .points()
            .iter()
            .copied()
            .filter(|&(pt, _)| pt >= cut_at)
            .collect();
        let i = shifted
            .points()
            .iter()
            .position(|p| p == &w[0])
            .unwrap();
        let d_orig = orig[i + 1].0.since(orig[i].0);
        let d_new = w[1].0.since(w[0].0);
        require_eq!(d_orig, d_new);
    }
    Ok(())
}

#[test]
fn prop_shifted_from_preserves_relative_spacing() {
    check(
        "shifted_from_preserves_relative_spacing",
        (
            vec_of(u64_in(0, 10_000), 2, 50),
            u64_in(0, 1_000_000),
            u64_in(0, 20_000),
        ),
        shifted_from_preserves_relative_spacing,
    );
}

// ---------- filters ----------

fn windowed_max_equals_naive((steps, width): &(Vec<(u64, f64)>, u64)) -> Result<(), String> {
    let width = *width;
    let mut f = WindowedMax::new(width);
    let mut hist: Vec<(u64, f64)> = Vec::new();
    let mut pos = 0u64;
    for &(dp, v) in steps {
        pos += dp;
        f.insert(pos, v);
        hist.push((pos, v));
        let naive = hist
            .iter()
            .filter(|&&(p, _)| p + width >= pos)
            .map(|&(_, v)| v)
            .fold(f64::MIN, f64::max);
        require_eq!(f.get(), Some(naive));
    }
    Ok(())
}

#[test]
fn prop_windowed_max_equals_naive() {
    check(
        "windowed_max_equals_naive",
        (
            vec_of((u64_in(0, 5), f64_in(-1e3, 1e3)), 1, 300),
            u64_in(1, 50),
        ),
        windowed_max_equals_naive,
    );
}

fn windowed_min_never_above_latest_sample(
    (steps, width): &(Vec<(u64, f64)>, u64),
) -> Result<(), String> {
    let mut f = WindowedMin::new(*width);
    let mut pos = 0u64;
    for &(dp, v) in steps {
        pos += dp;
        f.insert(pos, v);
        require!(f.get().unwrap() <= v, "min above sample {v}");
    }
    Ok(())
}

#[test]
fn prop_windowed_min_never_above_latest_sample() {
    check(
        "windowed_min_never_above_latest_sample",
        (
            vec_of((u64_in(0, 5), f64_in(0.0, 1e3)), 1, 300),
            u64_in(1, 50),
        ),
        windowed_min_never_above_latest_sample,
    );
}

// ---------- rng ----------

fn rng_range_f64_in_bounds(&(seed, lo, span): &(u64, f64, f64)) -> Result<(), String> {
    let mut r = Xoshiro256::new(seed);
    let hi = lo + span;
    for _ in 0..100 {
        let x = r.range_f64(lo, hi);
        require!(x >= lo && x < hi, "x={x} lo={lo} hi={hi}");
    }
    Ok(())
}

#[test]
fn prop_rng_range_f64_in_bounds() {
    check(
        "rng_range_f64_in_bounds",
        (
            u64_in(0, u64::MAX),
            f64_in(-1e9, 1e9),
            f64_in(1e-9, 1e9),
        ),
        rng_range_f64_in_bounds,
    );
}

fn rng_deterministic_per_seed(&seed: &u64) -> Result<(), String> {
    let mut a = Xoshiro256::new(seed);
    let mut b = Xoshiro256::new(seed);
    for _ in 0..50 {
        require_eq!(a.next_u64(), b.next_u64());
    }
    Ok(())
}

#[test]
fn prop_rng_deterministic_per_seed() {
    check(
        "rng_deterministic_per_seed",
        (u64_in(0, u64::MAX),),
        |&(seed,): &(u64,)| rng_deterministic_per_seed(&seed),
    );
}

//! Property tests of the simulation core's foundations.

use proptest::prelude::*;
use simcore::filter::{WindowedMax, WindowedMin};
use simcore::rng::Xoshiro256;
use simcore::series::TimeSeries;
use simcore::units::{Dur, Rate, Time};

proptest! {
    // ---------- units ----------

    #[test]
    fn dur_float_roundtrip_within_a_nanosecond(ms in 0.0f64..1e7) {
        let d = Dur::from_millis_f64(ms);
        prop_assert!((d.as_millis_f64() - ms).abs() < 1e-5);
    }

    #[test]
    fn time_plus_dur_minus_dur_is_identity(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = Time(t);
        let dur = Dur(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur).since(time), dur);
    }

    #[test]
    fn rate_tx_time_inverts_bytes_over(mbps in 0.1f64..10_000.0, bytes in 1u64..10_000_000) {
        let r = Rate::from_mbps(mbps);
        let t = r.tx_time(bytes);
        // Transmitting for exactly tx_time carries (almost exactly) `bytes`.
        let carried = r.bytes_over(t) as f64;
        prop_assert!((carried - bytes as f64).abs() <= bytes as f64 * 1e-6 + 1.0,
            "bytes={bytes} carried={carried}");
    }

    #[test]
    fn rate_unit_conversions_consistent(mbps in 0.001f64..100_000.0) {
        let r = Rate::from_mbps(mbps);
        prop_assert!((r.bps() / 1e6 - mbps).abs() < mbps * 1e-12 + 1e-12);
        prop_assert!((Rate::from_bps(r.bps()).bytes_per_sec() - r.bytes_per_sec()).abs() < 1e-6);
    }

    // ---------- series ----------

    #[test]
    fn value_at_matches_linear_scan(
        points in prop::collection::vec((0u64..1_000_000, -1e6f64..1e6), 1..200),
        query in 0u64..1_100_000,
    ) {
        let mut sorted = points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut s = TimeSeries::new();
        for &(t, v) in &sorted {
            s.push(Time(t), v);
        }
        let expect = sorted
            .iter().rfind(|&&(t, _)| t <= query)          // last point at or before `query`...
            .map(|&(_, v)| v);
        // ...except ties: value_at takes the *last* pushed at that time.
        let expect = {
            let at_or_before: Vec<&(u64, f64)> =
                sorted.iter().filter(|&&(t, _)| t <= query).collect();
            at_or_before.last().map(|&&(_, v)| v).or(expect)
        };
        prop_assert_eq!(s.value_at(Time(query)), expect);
    }

    #[test]
    fn shifted_from_preserves_relative_spacing(
        offsets in prop::collection::vec(0u64..10_000, 2..50),
        base in 0u64..1_000_000,
        cut in 0u64..20_000,
    ) {
        let mut s = TimeSeries::new();
        let mut t = base;
        for (i, &o) in offsets.iter().enumerate() {
            t += o;
            s.push(Time(t), i as f64);
        }
        let cut_at = Time(base + cut);
        let shifted = s.shifted_from(cut_at);
        for w in shifted.points().windows(2) {
            // Spacing between consecutive surviving points is unchanged.
            let orig: Vec<(Time, f64)> = s
                .points()
                .iter()
                .copied()
                .filter(|&(pt, _)| pt >= cut_at)
                .collect();
            let i = shifted
                .points()
                .iter()
                .position(|p| p == &w[0])
                .unwrap();
            let d_orig = orig[i + 1].0.since(orig[i].0);
            let d_new = w[1].0.since(w[0].0);
            prop_assert_eq!(d_orig, d_new);
        }
    }

    // ---------- filters ----------

    #[test]
    fn windowed_max_equals_naive(
        steps in prop::collection::vec((0u64..5, -1e3f64..1e3), 1..300),
        width in 1u64..50,
    ) {
        let mut f = WindowedMax::new(width);
        let mut hist: Vec<(u64, f64)> = Vec::new();
        let mut pos = 0u64;
        for &(dp, v) in &steps {
            pos += dp;
            f.insert(pos, v);
            hist.push((pos, v));
            let naive = hist
                .iter()
                .filter(|&&(p, _)| p + width >= pos)
                .map(|&(_, v)| v)
                .fold(f64::MIN, f64::max);
            prop_assert_eq!(f.get(), Some(naive));
        }
    }

    #[test]
    fn windowed_min_never_above_latest_sample(
        steps in prop::collection::vec((0u64..5, 0.0f64..1e3), 1..300),
        width in 1u64..50,
    ) {
        let mut f = WindowedMin::new(width);
        let mut pos = 0u64;
        for &(dp, v) in &steps {
            pos += dp;
            f.insert(pos, v);
            prop_assert!(f.get().unwrap() <= v);
        }
    }

    // ---------- rng ----------

    #[test]
    fn rng_range_f64_in_bounds(seed in 0u64..u64::MAX, lo in -1e9f64..1e9, span in 1e-9f64..1e9) {
        let mut r = Xoshiro256::new(seed);
        let hi = lo + span;
        for _ in 0..100 {
            let x = r.range_f64(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    #[test]
    fn rng_deterministic_per_seed(seed in 0u64..u64::MAX) {
        let mut a = Xoshiro256::new(seed);
        let mut b = Xoshiro256::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

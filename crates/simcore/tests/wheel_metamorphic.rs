//! Metamorphic equivalence: the timer-wheel-backed [`EventQueue`] must
//! behave observably identically to the binary heap it replaced.
//!
//! The reference model is a literal min-heap over `(time, insertion seq)`
//! — the exact structure `EventQueue` used before the wheel swap. Random
//! schedule/pop interleavings (with deliberate tie storms and far-future
//! outliers that land in the wheel's overflow heap) must produce the same
//! pop sequence, the same `peek_time` at every step, and the same
//! `pop_at_or_before` refusals. Together with the golden-trace digest
//! tests (which pin whole-simulator behavior), this is the evidence that
//! the wheel swap cannot perturb any simulation result.

use simcore::rng::Xoshiro256;
use simcore::units::Time;
use simcore::EventQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use testkit::prop::{check, u64_in};
use testkit::require_eq;

/// The pre-wheel implementation, kept as an executable specification.
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(Time, u64, u32)>>,
    seq: u64,
    now: Time,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    fn schedule_at(&mut self, at: Time, id: u32) {
        assert!(at >= self.now);
        self.heap.push(Reverse((at, self.seq, id)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Time, u32)> {
        let Reverse((at, _, id)) = self.heap.pop()?;
        self.now = at;
        Some((at, id))
    }

    fn pop_at_or_before(&mut self, limit: Time) -> Option<(Time, u32)> {
        if self.peek_time()? > limit {
            return None;
        }
        self.pop()
    }

    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|&Reverse((at, _, _))| at)
    }
}

/// One randomized interleaving of schedules and pops, `ops` operations
/// long, exercising tie storms, multi-level spans, overflow outliers and
/// conditional pops — checked step by step against the reference.
fn wheel_matches_reference(&seed: &u64) -> Result<(), String> {
    let mut rng = Xoshiro256::new(seed);
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut reference = ReferenceQueue::new();
    let mut next_id = 0u32;
    for _ in 0..400 {
        let op = rng.range_u64(10);
        if op < 6 {
            // Schedule at `now` plus an offset whose scale varies from
            // same-tick ties to beyond the wheel's ~19-hour horizon.
            let offset = match rng.range_u64(5) {
                0 => rng.range_u64(4),                      // tie-prone, same tick
                1 => rng.range_u64(2_000),                  // level 0
                2 => rng.range_u64(2_000_000),              // level 1-2 (µs..ms)
                3 => rng.range_u64(5_000_000_000),          // level 3-4 (..5 s)
                _ => 80_000_000_000_000 + rng.range_u64(1 << 50), // overflow
            };
            let at = Time(wheel.now().as_nanos().saturating_add(offset));
            wheel.schedule_at(at, next_id);
            reference.schedule_at(at, next_id);
            next_id += 1;
        } else if op < 8 {
            require_eq!(wheel.pop(), reference.pop());
        } else {
            let limit = Time(
                reference
                    .peek_time()
                    .unwrap_or(wheel.now())
                    .as_nanos()
                    .saturating_add(rng.range_u64(3_000_000))
                    .saturating_sub(rng.range_u64(3_000_000)),
            );
            let limit = limit.max(wheel.now());
            require_eq!(wheel.pop_at_or_before(limit),
                reference.pop_at_or_before(limit));
        }
        require_eq!(wheel.peek_time(), reference.peek_time());
        require_eq!(wheel.len(), reference.heap.len());
        require_eq!(wheel.now(), reference.now);
    }
    // Drain both completely: residues (including overflow) must agree too.
    loop {
        let (w, r) = (wheel.pop(), reference.pop());
        require_eq!(w, r);
        if w.is_none() {
            break;
        }
    }
    Ok(())
}

#[test]
fn prop_wheel_matches_reference_heap() {
    check(
        "wheel_matches_reference_heap",
        (u64_in(0, u64::MAX),),
        |&(seed,): &(u64,)| wheel_matches_reference(&seed),
    );
}

/// Dense tie storm: thousands of events at identical instants interleaved
/// with same-instant reschedules — the FIFO tie contract under stress.
#[test]
fn tie_storm_preserves_insertion_order() {
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut reference = ReferenceQueue::new();
    let t = Time(5_000_000);
    for id in 0..3_000 {
        wheel.schedule_at(t, id);
        reference.schedule_at(t, id);
    }
    for _ in 0..3_000 {
        let (wt, wid) = wheel.pop().expect("wheel event");
        let (rt, rid) = reference.pop().expect("reference event");
        assert_eq!((wt, wid), (rt, rid));
        // Reschedule some at the same instant mid-drain (the causal-chain
        // pattern the simulator relies on: children fire before later events).
        if wid % 7 == 0 {
            let child = 100_000 + wid;
            wheel.schedule_at(wt, child);
            reference.schedule_at(rt, child);
        }
    }
    let drained_w: Vec<_> = std::iter::from_fn(|| wheel.pop()).collect();
    let drained_r: Vec<_> = std::iter::from_fn(|| reference.pop()).collect();
    assert_eq!(drained_w, drained_r);
}

//! Measurement filters shared by the congestion-control algorithms.
//!
//! * [`WindowedMax`] / [`WindowedMin`] — exact sliding-window extrema over a
//!   monotone position axis (time in nanoseconds, or round-trip counts),
//!   implemented as monotonic deques. BBR's bandwidth max-filter ("max over
//!   the last 10 RTTs") and min-RTT filter ("min over the last 10 s"), and
//!   Copa's standing-RTT / min-RTT filters are all instances.
//! * [`Ewma`] — exponentially-weighted moving average.
//! * [`RttEstimator`] — RFC 6298 SRTT/RTTVAR/RTO estimation used by the
//!   sender endpoint for retransmission timeouts.

use crate::units::Dur;
use std::collections::VecDeque;

/// Exact sliding-window maximum over a monotone `u64` position axis.
///
/// `insert` positions must be non-decreasing. A sample at position `p` stays
/// eligible while `p + width >= now` where `now` is the latest insert/evict
/// position.
#[derive(Clone, Debug)]
pub struct WindowedMax {
    width: u64,
    // Deque of (position, value), values strictly decreasing front→back.
    dq: VecDeque<(u64, f64)>,
    last_pos: u64,
}

impl WindowedMax {
    /// Create a filter with the given window width (same units as the
    /// positions passed to [`WindowedMax::insert`]).
    pub fn new(width: u64) -> Self {
        WindowedMax {
            width,
            dq: VecDeque::new(),
            last_pos: 0,
        }
    }

    /// Insert a sample at `pos` (must be `>=` all previous positions).
    pub fn insert(&mut self, pos: u64, v: f64) {
        debug_assert!(pos >= self.last_pos, "WindowedMax positions must be monotone");
        self.last_pos = pos;
        while let Some(&(_, back)) = self.dq.back() {
            if back <= v {
                self.dq.pop_back();
            } else {
                break;
            }
        }
        self.dq.push_back((pos, v));
        self.evict(pos);
    }

    /// Advance the window to `pos` without inserting (evicts stale samples).
    pub fn advance(&mut self, pos: u64) {
        if pos > self.last_pos {
            self.last_pos = pos;
        }
        self.evict(self.last_pos);
    }

    fn evict(&mut self, now: u64) {
        let cutoff = now.saturating_sub(self.width);
        while let Some(&(p, _)) = self.dq.front() {
            if p < cutoff {
                self.dq.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current windowed maximum, if any sample is in the window.
    pub fn get(&self) -> Option<f64> {
        self.dq.front().map(|&(_, v)| v)
    }

    /// Drop all state, including the position watermark: the next insert
    /// may be at any position, as on a fresh filter.
    pub fn reset(&mut self) {
        self.dq.clear();
        self.last_pos = 0;
    }
}

/// Exact sliding-window minimum; see [`WindowedMax`].
#[derive(Clone, Debug)]
pub struct WindowedMin {
    inner: WindowedMax,
}

impl WindowedMin {
    /// Create a min-filter with the given window width.
    pub fn new(width: u64) -> Self {
        WindowedMin {
            inner: WindowedMax::new(width),
        }
    }
    /// Insert a sample at a monotone position.
    pub fn insert(&mut self, pos: u64, v: f64) {
        self.inner.insert(pos, -v);
    }
    /// Advance the window without inserting.
    pub fn advance(&mut self, pos: u64) {
        self.inner.advance(pos);
    }
    /// Current windowed minimum.
    pub fn get(&self) -> Option<f64> {
        self.inner.get().map(|v| -v)
    }
    /// Drop all state.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Exponentially-weighted moving average with gain `g`:
/// `avg ← (1−g)·avg + g·sample`.
#[derive(Clone, Debug)]
pub struct Ewma {
    gain: f64,
    avg: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with gain in `(0, 1]`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0);
        Ewma { gain, avg: None }
    }
    /// Fold in a sample; the first sample initializes the average.
    pub fn update(&mut self, sample: f64) {
        self.avg = Some(match self.avg {
            None => sample,
            Some(a) => (1.0 - self.gain) * a + self.gain * sample,
        });
    }
    /// Current average.
    pub fn get(&self) -> Option<f64> {
        self.avg
    }
    /// Forget all history.
    pub fn reset(&mut self) {
        self.avg = None;
    }
}

/// RFC 6298 round-trip-time estimator (SRTT, RTTVAR, RTO).
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<Dur>,
    rttvar: Dur,
    min_rto: Dur,
    max_rto: Dur,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// Estimator with a 200 ms RTO floor (Linux-like rather than RFC's 1 s,
    /// which matches the short experiments in the paper) and 60 s ceiling.
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Dur::ZERO,
            min_rto: Dur::from_millis(200),
            max_rto: Dur::from_secs(60),
        }
    }

    /// Fold in an RTT sample.
    pub fn update(&mut self, rtt: Dur) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Dur(rtt.0 / 2);
            }
            Some(srtt) => {
                let diff = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - RTT|
                self.rttvar = Dur(self.rttvar.0 - self.rttvar.0 / 4 + diff.0 / 4);
                // SRTT = 7/8 SRTT + 1/8 RTT
                self.srtt = Some(Dur(srtt.0 - srtt.0 / 8 + rtt.0 / 8));
            }
        }
    }

    /// Smoothed RTT, if any sample has arrived.
    pub fn srtt(&self) -> Option<Dur> {
        self.srtt
    }

    /// Current retransmission timeout: `SRTT + 4·RTTVAR`, clamped.
    pub fn rto(&self) -> Dur {
        match self.srtt {
            None => Dur::from_secs(1),
            Some(srtt) => {
                let rto = Dur(srtt.0 + 4 * self.rttvar.0.max(1_000_000 / 4));
                rto.max(self.min_rto).min(self.max_rto)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_max_basic() {
        let mut f = WindowedMax::new(10);
        f.insert(0, 3.0);
        f.insert(2, 5.0);
        f.insert(4, 1.0);
        assert_eq!(f.get(), Some(5.0));
        f.advance(13); // window [3,13]: the 5.0@2 falls out
        assert_eq!(f.get(), Some(1.0));
    }

    #[test]
    fn windowed_max_matches_naive() {
        let mut f = WindowedMax::new(7);
        let mut samples: Vec<(u64, f64)> = Vec::new();
        let mut rng = crate::rng::Xoshiro256::new(99);
        let mut pos = 0u64;
        for _ in 0..2000 {
            pos += rng.range_u64(3);
            let v = rng.next_f64();
            f.insert(pos, v);
            samples.push((pos, v));
            let naive = samples
                .iter()
                .filter(|&&(p, _)| p + 7 >= pos)
                .map(|&(_, v)| v)
                .fold(f64::MIN, f64::max);
            assert_eq!(f.get(), Some(naive));
        }
    }

    #[test]
    fn windowed_min_matches_naive() {
        let mut f = WindowedMin::new(5);
        let mut samples: Vec<(u64, f64)> = Vec::new();
        let mut rng = crate::rng::Xoshiro256::new(100);
        let mut pos = 0u64;
        for _ in 0..2000 {
            pos += rng.range_u64(2);
            let v = rng.next_f64();
            f.insert(pos, v);
            samples.push((pos, v));
            let naive = samples
                .iter()
                .filter(|&&(p, _)| p + 5 >= pos)
                .map(|&(_, v)| v)
                .fold(f64::MAX, f64::min);
            assert_eq!(f.get(), Some(naive));
        }
    }

    #[test]
    fn windowed_empty_after_advance() {
        let mut f = WindowedMax::new(3);
        f.insert(0, 1.0);
        f.advance(100);
        assert_eq!(f.get(), None);
    }

    #[test]
    fn ewma_first_sample_initializes() {
        let mut e = Ewma::new(0.25);
        assert_eq!(e.get(), None);
        e.update(4.0);
        assert_eq!(e.get(), Some(4.0));
        e.update(8.0);
        assert_eq!(e.get(), Some(5.0));
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        for _ in 0..60 {
            e.update(10.0);
        }
        assert!((e.get().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_estimator_first_sample() {
        let mut est = RttEstimator::new();
        assert_eq!(est.rto(), Dur::from_secs(1));
        est.update(Dur::from_millis(100));
        assert_eq!(est.srtt(), Some(Dur::from_millis(100)));
        // RTO = 100 + 4*50 = 300 ms
        assert_eq!(est.rto(), Dur::from_millis(300));
    }

    #[test]
    fn rtt_estimator_stable_rtt_shrinks_var() {
        let mut est = RttEstimator::new();
        for _ in 0..200 {
            est.update(Dur::from_millis(50));
        }
        let srtt = est.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 50.0).abs() < 1.0);
        assert!(est.rto() >= Dur::from_millis(200)); // floor applies
    }

    #[test]
    fn rtt_estimator_rto_floor_and_ceiling() {
        let mut est = RttEstimator::new();
        est.update(Dur::from_micros(10));
        assert!(est.rto() >= Dur::from_millis(200));
        let mut est2 = RttEstimator::new();
        est2.update(Dur::from_secs(120));
        assert!(est2.rto() <= Dur::from_secs(60));
    }
}

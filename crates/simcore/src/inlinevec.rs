//! A small vector that stores up to `N` elements inline, spilling to a
//! heap `Vec` only when it grows past `N`.
//!
//! The per-event hot paths in `netsim` (ACK emission, trace probes) carry
//! tiny, bounded collections — almost always 0 or 1 elements, rarely more
//! than a delayed-ACK flush's worth. Allocating a `Vec` per event turns
//! into malloc/free churn that dominates the simulator's profile at scale.
//! `InlineVec<T, 4>` keeps the common case entirely on the stack while
//! preserving `Vec`-like ergonomics (`push`, indexing, iteration,
//! `IntoIterator`) and having no unsafe code: inline storage is
//! `[Option<T>; N]`, which the compiler lays out densely for the payload
//! types used here.
//!
//! This is deliberately *not* a general-purpose smallvec: no `remove`, no
//! `Deref<Target=[T]>`, no capacity tuning. The simulator only ever
//! appends, reads and drains — a minimal API is easier to keep obviously
//! correct.

/// Growable vector with inline storage for the first `N` elements.
#[derive(Clone, Debug)]
pub struct InlineVec<T, const N: usize> {
    inner: Inner<T, N>,
}

#[derive(Clone, Debug)]
enum Inner<T, const N: usize> {
    Inline { arr: [Option<T>; N], len: usize },
    Heap(Vec<T>),
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> InlineVec<T, N> {
    /// An empty vector. Does not allocate.
    pub fn new() -> Self {
        InlineVec {
            inner: Inner::Inline {
                arr: std::array::from_fn(|_| None),
                len: 0,
            },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Inline { len, .. } => *len,
            Inner::Heap(v) => v.len(),
        }
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append an element, spilling to the heap past `N` elements.
    pub fn push(&mut self, value: T) {
        match &mut self.inner {
            Inner::Inline { arr, len } => {
                if *len < N {
                    arr[*len] = Some(value);
                    *len += 1;
                } else {
                    let mut v: Vec<T> = Vec::with_capacity(N + 1);
                    v.extend(arr.iter_mut().filter_map(Option::take));
                    v.push(value);
                    self.inner = Inner::Heap(v);
                }
            }
            Inner::Heap(v) => v.push(value),
        }
    }

    /// Remove all elements. Inline storage is retained; a spilled heap
    /// buffer is dropped so the vector is allocation-free again.
    pub fn clear(&mut self) {
        *self = Self::new();
    }

    /// Borrow the element at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<&T> {
        match &self.inner {
            Inner::Inline { arr, len } => {
                if index < *len {
                    arr[index].as_ref()
                } else {
                    None
                }
            }
            Inner::Heap(v) => v.get(index),
        }
    }

    /// Iterate over borrowed elements in insertion order.
    pub fn iter(&self) -> Iter<'_, T> {
        match &self.inner {
            Inner::Inline { arr, len } => Iter::Inline(arr[..*len].iter()),
            Inner::Heap(v) => Iter::Heap(v.iter()),
        }
    }
}

impl<T, const N: usize> std::ops::Index<usize> for InlineVec<T, N> {
    type Output = T;
    fn index(&self, index: usize) -> &T {
        self.get(index).expect("InlineVec index out of bounds")
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

/// Borrowing iterator over an [`InlineVec`].
pub enum Iter<'a, T> {
    /// Inline storage: the slice of occupied `Option` cells.
    Inline(std::slice::Iter<'a, Option<T>>),
    /// Spilled storage.
    Heap(std::slice::Iter<'a, T>),
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        match self {
            // Cells below `len` are always `Some`; `and_then` just unwraps
            // without a panic path.
            Iter::Inline(it) => it.next().and_then(Option::as_ref),
            Iter::Heap(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Iter::Inline(it) => it.size_hint(),
            Iter::Heap(it) => it.size_hint(),
        }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning iterator over an [`InlineVec`].
pub enum IntoIter<T, const N: usize> {
    /// Inline storage: occupied cells yield, trailing `None`s are skipped
    /// by the `Flatten`.
    Inline(std::iter::Flatten<std::array::IntoIter<Option<T>, N>>),
    /// Spilled storage.
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match self {
            IntoIter::Inline(it) => it.next(),
            IntoIter::Heap(it) => it.next(),
        }
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        match self.inner {
            Inner::Inline { arr, .. } => IntoIter::Inline(arr.into_iter().flatten()),
            Inner::Heap(v) => IntoIter::Heap(v.into_iter()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_inline() {
        let v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.get(0), None);
        assert_eq!(v.iter().count(), 0);
        assert_eq!(v.into_iter().count(), 0);
    }

    #[test]
    fn push_and_index_within_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i * 10);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], 0);
        assert_eq!(v[3], 30);
        assert!(matches!(v.inner, Inner::Inline { .. }));
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected, vec![0, 10, 20, 30]);
        let owned: Vec<u32> = v.into_iter().collect();
        assert_eq!(owned, vec![0, 10, 20, 30]);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(matches!(v.inner, Inner::Heap(_)));
        assert_eq!(v.len(), 5);
        assert_eq!(v[4], 4);
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
        let owned: Vec<u32> = v.into_iter().collect();
        assert_eq!(owned, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn index_out_of_bounds_panics() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.push(1);
        let _ = v[1];
    }

    #[test]
    fn clear_resets_to_inline() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        v.clear();
        assert!(v.is_empty());
        assert!(matches!(v.inner, Inner::Inline { .. }));
        v.push(7);
        assert_eq!(v[0], 7);
    }

    #[test]
    fn equality_and_from_iter() {
        let a: InlineVec<u32, 4> = (0..3).collect();
        let b: InlineVec<u32, 4> = (0..3).collect();
        let c: InlineVec<u32, 4> = (0..6).collect(); // spilled
        assert_eq!(a, b);
        assert!(a != c);
        let d: InlineVec<u32, 4> = c.iter().copied().take(3).collect();
        assert_eq!(a, d);
    }

    #[test]
    fn clone_of_spilled_and_inline() {
        let mut v: InlineVec<String, 2> = InlineVec::new();
        v.push("a".into());
        let w = v.clone();
        assert_eq!(w[0], "a");
        v.push("b".into());
        v.push("c".into());
        let s = v.clone();
        assert_eq!(s.len(), 3);
        assert_eq!(s[2], "c");
    }
}

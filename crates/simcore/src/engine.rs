//! Deterministic discrete-event queue.
//!
//! The simulator's only source of ordering is this queue: events fire in
//! `(time, insertion sequence)` order, so two events scheduled for the same
//! instant fire in the order they were scheduled. That rule, plus integer
//! time and the self-contained PRNG, makes every run bit-reproducible.
//!
//! The queue is generic over the event payload; the network simulator in
//! `netsim` instantiates it with its own event enum. There is no trait-object
//! dispatch or async machinery — the main loop is a plain `while let`.
//!
//! Storage is a hierarchical timer wheel ([`crate::wheel::TimerWheel`]):
//! near-horizon schedule/pop are `O(1)` bitmap operations instead of
//! `O(log n)` heap sifts, with the exact same `(time, seq)` firing order the
//! original binary heap produced — golden-trace digests are bit-identical
//! across the swap.

use crate::units::{Dur, Time};
use crate::wheel::TimerWheel;

/// A deterministic future-event list.
///
/// Tracks the current simulated time: popping an event advances the clock to
/// the event's timestamp. Scheduling an event in the past is a bug and
/// panics.
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.wheel.now()
    }

    /// Schedule `ev` to fire at absolute time `at`.
    ///
    /// Panics if `at` is before the current time — the simulation can never
    /// act on the past.
    pub fn schedule_at(&mut self, at: Time, ev: E) {
        self.wheel.schedule_at(at, ev);
    }

    /// Schedule `ev` to fire `after` from now.
    pub fn schedule_after(&mut self, after: Dur, ev: E) {
        let at = self.now().saturating_add(after);
        self.schedule_at(at, ev);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.wheel.pop()
    }

    /// Pop the earliest event only if its timestamp is `<= limit`;
    /// otherwise leave the queue untouched and return `None`. The
    /// simulator's main loop uses this in place of `peek_time` + `pop` so
    /// the next-event search runs once per event.
    pub fn pop_at_or_before(&mut self, limit: Time) -> Option<(Time, E)> {
        self.wheel.pop_at_or_before(limit)
    }

    /// Pop *every* event sharing the earliest timestamp `<= limit` into
    /// `out` (in insertion order), advancing the clock once; returns that
    /// timestamp, or `None` if nothing is due by `limit`. The dispatch
    /// order across repeated calls is bit-identical to a
    /// [`pop_at_or_before`](Self::pop_at_or_before) loop — same-time
    /// events a handler schedules mid-batch simply arrive in the next
    /// batch. See [`TimerWheel::pop_batch_at_or_before`].
    pub fn pop_batch_at_or_before(&mut self, limit: Time, out: &mut Vec<E>) -> Option<Time> {
        self.wheel.pop_batch_at_or_before(limit, out)
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.wheel.peek_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_millis(30), "c");
        q.schedule_at(Time::from_millis(10), "a");
        q.schedule_at(Time::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_millis(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_millis(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_millis(7));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_millis(10), 0);
        q.pop();
        q.schedule_after(Dur::from_millis(5), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_millis(15));
    }

    #[test]
    #[should_panic]
    fn scheduling_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_millis(10), ());
        q.pop();
        q.schedule_at(Time::from_millis(5), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(Time::from_millis(3), ());
        q.schedule_at(Time::from_millis(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_millis(1)));
    }

    #[test]
    fn interleaved_same_time_across_pops() {
        // Events scheduled at the current instant during processing fire
        // before later events, preserving causal order.
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_millis(1), "first");
        q.schedule_at(Time::from_millis(2), "later");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "first");
        q.schedule_at(t, "child-of-first");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "child-of-first");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "later");
    }
}

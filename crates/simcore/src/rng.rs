//! Self-contained deterministic PRNG (xoshiro256**).
//!
//! The simulator cannot depend on an external crate's stream stability for
//! reproducibility, so randomness used *inside* simulations (random jitter,
//! Bernoulli loss, BBR/PCC probe phasing) comes from this generator. It is
//! seeded through SplitMix64 as recommended by the xoshiro authors, so any
//! 64-bit seed produces a well-mixed state.

/// xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's method (unbiased enough for
    /// simulation purposes; exact rejection is overkill here).
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Derive an independent child generator (for per-flow streams).
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_reference_sequence() {
        // xoshiro256** with SplitMix64 state expansion, per the reference
        // implementation by Blackman & Vigna (prng.di.unimi.it). Seed 0 is
        // the canonical vector; seed 42 pins this exact implementation.
        // Any change to these outputs silently invalidates every recorded
        // simulation seed in the repo, so they are locked here.
        let mut r = Xoshiro256::new(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x99ec5f36cb75f2b4,
                0xbf6e1f784956452a,
                0x1a5f849d4933e6e0,
                0x6aa594f1262d2d2c
            ]
        );
        let mut r = Xoshiro256::new(42);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x15780b2e0c2ec716,
                0x6104d9866d113a7e,
                0xae17533239e499a1,
                0xecb8ad4703b360a1
            ]
        );
    }

    #[test]
    fn known_answer_derived_draws() {
        // The derived draw functions are part of the stable stream too:
        // next_f64 takes the top 53 bits, range_u64 is Lemire's multiply.
        let mut r = Xoshiro256::new(42);
        assert_eq!(r.next_f64(), 0.08386297105988216);
        let mut r = Xoshiro256::new(7);
        let got: Vec<u64> = (0..6).map(|_| r.range_u64(100)).collect();
        assert_eq!(got, [70, 27, 83, 98, 99, 87]);
    }

    #[test]
    fn uniformity_chi_squared_smoke() {
        // 16 buckets, 64k draws: E[χ²] = 15 (df = 15). The p ≈ 1e-4
        // cutoff is ~45; the seed is fixed, so this cannot flake.
        let mut r = Xoshiro256::new(12345);
        let n = 65_536u64;
        let mut buckets = [0u64; 16];
        for _ in 0..n {
            buckets[r.range_u64(16) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 45.0, "chi2={chi2} buckets={buckets:?}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Xoshiro256::new(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn range_u64_bounds() {
        let mut r = Xoshiro256::new(3);
        for _ in 0..10_000 {
            assert!(r.range_u64(10) < 10);
        }
    }

    #[test]
    fn range_u64_covers_all_values() {
        let mut r = Xoshiro256::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range_u64(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Xoshiro256::new(11);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = Xoshiro256::new(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.02)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.02).abs() < 0.003, "rate={rate}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Xoshiro256::new(17);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}

//! Summary statistics and fairness indices used by the experiment harness.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance; `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Percentile in `[0, 100]` by nearest-rank on a sorted copy.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p));
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("percentile input must not contain NaN"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    Some(v[rank])
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`. 1.0 is perfectly fair,
/// `1/n` is maximally unfair. `None` if empty or all-zero.
pub fn jain_index(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    // simlint: allow(float-eq): exact-zero sentinel for all-zero input, not a tolerance compare
    if s2 == 0.0 {
        return None;
    }
    Some(s * s / (xs.len() as f64 * s2))
}

/// Ratio of the largest to the smallest value — the paper's measure of
/// unfairness between flows (Definition 2's `s`). Returns `f64::INFINITY`
/// when the smallest value is zero (starvation in the strictest sense).
pub fn max_min_ratio(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min >= 0.0, "throughputs cannot be negative");
    // simlint: allow(float-eq): exact zero is the starvation sentinel (Definition 2)
    if min == 0.0 {
        return Some(f64::INFINITY);
    }
    Some(max / min)
}

/// Compact distribution summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarize a slice; `None` if empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        Some(Summary {
            n: xs.len(),
            min: xs.iter().cloned().fold(f64::MAX, f64::min),
            max: xs.iter().cloned().fold(f64::MIN, f64::max),
            mean: mean(xs)?,
            p50: percentile(xs, 50.0)?,
            p95: percentile(xs, 95.0)?,
        })
    }
}

/// Number of log-spaced buckets in a [`Histogram`] (plus an underflow
/// bucket below `lo` and an overflow bucket at/above `hi`).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-size log-spaced histogram for streaming aggregation: a
/// million-row sweep folds one value at a time into 34 counters instead
/// of holding a million samples for an exact percentile pass. Folding is
/// allocation-free and order-independent (integer counters), so a
/// histogram built at `jobs = 4` is identical to one built serially.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    /// `counts[0]` is the underflow bucket (`x < lo`, including zero and
    /// negatives); `counts[33]` is the overflow bucket (`x >= hi`).
    counts: [u64; HISTOGRAM_BUCKETS + 2],
    total: u64,
}

impl Histogram {
    /// Log-spaced buckets covering `[lo, hi)`; `lo` must be positive and
    /// below `hi`.
    pub fn new(lo: f64, hi: f64) -> Histogram {
        assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi, got [{lo}, {hi})");
        Histogram { lo, hi, counts: [0; HISTOGRAM_BUCKETS + 2], total: 0 }
    }

    /// Fold one sample in (per-row hot path: no allocation, O(1)).
    // simlint: hot-root: per-sample fold on the sweep aggregation path
    pub fn fold(&mut self, x: f64) {
        let i = if x.is_nan() || x < self.lo {
            // NaN and underflow both land in bucket 0: the histogram is an
            // aggregate view, not a validator.
            0
        } else if x >= self.hi {
            HISTOGRAM_BUCKETS + 1
        } else {
            let frac = (x / self.lo).ln() / (self.hi / self.lo).ln();
            1 + ((frac * HISTOGRAM_BUCKETS as f64) as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Samples folded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below `lo` (the underflow bucket).
    pub fn underflow(&self) -> u64 {
        self.counts[0]
    }

    /// Samples at or above `hi` (the overflow bucket).
    pub fn overflow(&self) -> u64 {
        self.counts[HISTOGRAM_BUCKETS + 1]
    }

    /// Approximate quantile `q ∈ [0, 1]`: the lower edge of the bucket
    /// holding the `q`-th sample (`lo`/`hi` for the extreme buckets).
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * (self.total - 1) as f64) as u64).min(self.total - 1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return Some(self.bucket_lo(i));
            }
        }
        Some(self.hi)
    }

    /// The lower edge of bucket `i` (0 = underflow ⇒ 0.0).
    fn bucket_lo(&self, i: usize) -> f64 {
        if i == 0 {
            0.0
        } else if i > HISTOGRAM_BUCKETS {
            self.hi
        } else {
            self.lo * (self.hi / self.lo).powf((i - 1) as f64 / HISTOGRAM_BUCKETS as f64)
        }
    }

    /// One-line render: `n=…  p50≈…  p95≈…  over=…` — the sweep service's
    /// terminal summary of a distribution.
    pub fn render(&self, unit: &str) -> String {
        match (self.quantile(0.5), self.quantile(0.95)) {
            (Some(p50), Some(p95)) => format!(
                "n={}  p50≈{:.3}{unit}  p95≈{:.3}{unit}  under={}  over={}",
                self.total,
                p50,
                p95,
                self.underflow(),
                self.overflow()
            ),
            _ => format!("n=0 ({unit})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(variance(&xs), Some(1.25));
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn histogram_folds_and_quantiles() {
        let mut h = Histogram::new(0.001, 1000.0);
        assert_eq!(h.quantile(0.5), None);
        for i in 1..=100 {
            h.fold(i as f64);
        }
        h.fold(0.0); // underflow
        h.fold(1e9); // overflow
        h.fold(f64::NAN); // counted, bucketed as underflow
        assert_eq!(h.total(), 103);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 1);
        let p50 = h.quantile(0.5).expect("non-empty histogram has a median");
        assert!(p50 > 10.0 && p50 < 100.0, "{p50}");
        assert!(h.quantile(0.0).expect("q0") <= p50);
        assert!(h.quantile(1.0).expect("q1") >= p50);
    }

    #[test]
    fn histogram_fold_order_is_immaterial() {
        let mut a = Histogram::new(0.01, 100.0);
        let mut b = Histogram::new(0.01, 100.0);
        let xs: Vec<f64> = (0..64).map(|i| (i as f64) * 0.37).collect();
        for x in &xs {
            a.fold(*x);
        }
        for x in xs.iter().rev() {
            b.fold(*x);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        let unfair = jain_index(&[1.0, 0.0, 0.0]).unwrap();
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_index(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn ratio_basic() {
        assert_eq!(max_min_ratio(&[10.0, 1.0]), Some(10.0));
        assert_eq!(max_min_ratio(&[5.0, 0.0]), Some(f64::INFINITY));
        assert!(max_min_ratio(&[]).is_none());
    }

    #[test]
    fn percentile_tail_known_vectors() {
        // Nearest-rank on 101 evenly spaced points: pXX lands exactly on
        // the XX value — the vectors the bench harness's p50/p99 rest on.
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 99.0), Some(99.0));
        assert_eq!(percentile(&xs, 95.0), Some(95.0));
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        // Tiny samples: p99 rounds to the upper rank.
        assert_eq!(percentile(&[1.0, 2.0], 99.0), Some(2.0));
        // Input order must not matter.
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 99.0), Some(9.0));
    }

    #[test]
    fn stddev_known_answer() {
        // Population stddev of the classic textbook vector is exactly 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(stddev(&xs), Some(2.0));
        assert!(stddev(&[]).is_none());
    }

    #[test]
    fn jain_two_to_one_split() {
        // x = (2, 1): (3²)/(2·5) = 0.9.
        assert!((jain_index(&[2.0, 1.0]).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn summary_percentiles_on_hundred_points() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        // rank = round(p/100 · 99): p50 → 50 → value 51, p95 → 94 → 95.
        assert_eq!(s.p50, 51.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.p50, 2.0);
        assert!(Summary::of(&[]).is_none());
    }
}

//! Summary statistics and fairness indices used by the experiment harness.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance; `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Percentile in `[0, 100]` by nearest-rank on a sorted copy.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p));
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("percentile input must not contain NaN"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    Some(v[rank])
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`. 1.0 is perfectly fair,
/// `1/n` is maximally unfair. `None` if empty or all-zero.
pub fn jain_index(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    // simlint: allow(float-eq): exact-zero sentinel for all-zero input, not a tolerance compare
    if s2 == 0.0 {
        return None;
    }
    Some(s * s / (xs.len() as f64 * s2))
}

/// Ratio of the largest to the smallest value — the paper's measure of
/// unfairness between flows (Definition 2's `s`). Returns `f64::INFINITY`
/// when the smallest value is zero (starvation in the strictest sense).
pub fn max_min_ratio(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min >= 0.0, "throughputs cannot be negative");
    // simlint: allow(float-eq): exact zero is the starvation sentinel (Definition 2)
    if min == 0.0 {
        return Some(f64::INFINITY);
    }
    Some(max / min)
}

/// Compact distribution summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarize a slice; `None` if empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        Some(Summary {
            n: xs.len(),
            min: xs.iter().cloned().fold(f64::MAX, f64::min),
            max: xs.iter().cloned().fold(f64::MIN, f64::max),
            mean: mean(xs)?,
            p50: percentile(xs, 50.0)?,
            p95: percentile(xs, 95.0)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(variance(&xs), Some(1.25));
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        let unfair = jain_index(&[1.0, 0.0, 0.0]).unwrap();
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_index(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn ratio_basic() {
        assert_eq!(max_min_ratio(&[10.0, 1.0]), Some(10.0));
        assert_eq!(max_min_ratio(&[5.0, 0.0]), Some(f64::INFINITY));
        assert!(max_min_ratio(&[]).is_none());
    }

    #[test]
    fn percentile_tail_known_vectors() {
        // Nearest-rank on 101 evenly spaced points: pXX lands exactly on
        // the XX value — the vectors the bench harness's p50/p99 rest on.
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 99.0), Some(99.0));
        assert_eq!(percentile(&xs, 95.0), Some(95.0));
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        // Tiny samples: p99 rounds to the upper rank.
        assert_eq!(percentile(&[1.0, 2.0], 99.0), Some(2.0));
        // Input order must not matter.
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 99.0), Some(9.0));
    }

    #[test]
    fn stddev_known_answer() {
        // Population stddev of the classic textbook vector is exactly 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(stddev(&xs), Some(2.0));
        assert!(stddev(&[]).is_none());
    }

    #[test]
    fn jain_two_to_one_split() {
        // x = (2, 1): (3²)/(2·5) = 0.9.
        assert!((jain_index(&[2.0, 1.0]).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn summary_percentiles_on_hundred_points() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        // rank = round(p/100 · 99): p50 → 50 → value 51, p95 → 94 → 95.
        assert_eq!(s.p50, 51.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.p50, 2.0);
        assert!(Summary::of(&[]).is_none());
    }
}

//! Content-addressed, crash-safe result store for sweep services.
//!
//! A million-point sweep must never recompute the world: every completed
//! row is persisted under a key derived from *what produced it* — the
//! canonical scenario/config bytes, the seed, and a code-version tag —
//! so a re-run (or a resumed run after a kill) executes only the rows the
//! store does not already hold. The pieces:
//!
//! * [`Digest`] — a 128-bit FNV-1a job key (two independent 64-bit lanes)
//!   over `(canonical bytes, seed, code tag)`. A digest is a pure function
//!   of its inputs: same job ⇒ same digest across clones, worker counts
//!   and process restarts; any input change ⇒ a different digest.
//! * [`Store`] — the on-disk store: one entry per digest at
//!   `<root>/<shard>/<hex>` (shard = first two hex chars, so a million
//!   entries spread over 256 directories). Entries carry a self-describing
//!   header (magic, code tag, payload length, payload checksum); reads
//!   validate all four, so truncation, corruption and stale code versions
//!   are *detected and reported* ([`ReadError`]) rather than silently
//!   served. Writes are write-temp-then-rename, so a kill mid-write can
//!   never leave a half-entry under a valid name.
//! * [`Manifest`] — the sweep checkpoint: the sorted set of completed
//!   digests, saved atomically (temp + rename) so a killed sweep resumes
//!   from a consistent snapshot. The store itself remains the source of
//!   truth — rows completed after the last checkpoint are found by
//!   probing — the manifest records progress and pins the grid identity.
//! * [`Checkpointer`] — the cadence policy for manifest snapshots: every
//!   N rows or every T of wall time, whichever comes first. The wall
//!   clock here is the one legitimate nondeterminism in the store layer:
//!   it only decides *when* a snapshot is taken, never what any file
//!   eventually contains.
//!
//! The store assumes a single writing process (the sweep runner); open
//! sweeps away stale temp files left by a killed predecessor.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The code-version tag baked into every digest and entry header. Bump it
/// whenever a change alters simulation *results* (not just performance):
/// old entries then stop matching any digest, and any entry reached by
/// other means is rejected as [`ReadError::StaleTag`] and recomputed.
pub const CODE_TAG: &str = "starvation-sim/1";

/// Store entry magic: format version of the header line.
const MAGIC: &str = "cas1";

/// Manifest magic: format version of the checkpoint file.
const MANIFEST_MAGIC: &str = "manifest1";

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Second lane: an arbitrary distinct nonzero offset basis so the two
/// 64-bit streams decorrelate (a collision must now happen in both).
const FNV_OFFSET_B: u64 = 0x8422_2325_cbf2_9ce4;

/// One FNV-1a lane folded over a byte stream. Allocation-free: digesting
/// and checksumming run once per row on the sweep hot path.
#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Payload checksum: one FNV-1a-64 lane. Stored in the entry header and
/// re-verified on every read, so a flipped byte in an entry is detected.
// simlint: hot-root: hashed over every entry payload on both read and write
pub fn checksum(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET_A, bytes)
}

/// A 128-bit content digest: the store key of one sweep row.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Digest(pub u64, pub u64);

impl Digest {
    /// Digest of raw bytes (both lanes over the same stream).
    pub fn of(bytes: &[u8]) -> Digest {
        Digest(fnv1a(FNV_OFFSET_A, bytes), fnv1a(FNV_OFFSET_B, bytes))
    }

    /// The job digest: a pure function of the canonical config bytes, the
    /// scenario seed, and the code-version tag. Fields are length/domain
    /// separated so `("ab", 1)` and `("a", ?)` can never collide by
    /// concatenation.
    pub fn job(canonical: &[u8], seed: u64, code_tag: &str) -> Digest {
        let fold = |offset: u64| {
            let mut h = fnv1a(offset, code_tag.as_bytes());
            h = fnv1a(h, &[0x1f]);
            h = fnv1a(h, &seed.to_le_bytes());
            h = fnv1a(h, &(canonical.len() as u64).to_le_bytes());
            fnv1a(h, canonical)
        };
        Digest(fold(FNV_OFFSET_A), fold(FNV_OFFSET_B))
    }

    /// 32 lowercase hex characters.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parse [`Digest::hex`] output; `None` on anything else.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest(hi, lo))
    }

    /// The shard directory name: the first two hex characters.
    pub fn shard(&self) -> String {
        self.hex()[..2].to_string()
    }
}

/// Why a store entry could not be served. Everything except [`Missing`]
/// means the entry exists but is unusable — callers report the reason and
/// recompute the row, never silently trust the bytes.
///
/// [`Missing`]: ReadError::Missing
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// No entry under this digest (the normal cache miss).
    Missing,
    /// The header line is not a valid `cas1` header.
    BadHeader(String),
    /// The entry was written by a different code version.
    StaleTag {
        /// Tag found in the entry header.
        found: String,
        /// Tag this store expects.
        expected: String,
    },
    /// The payload is shorter or longer than the header declares
    /// (a truncated or padded file).
    Truncated {
        /// Payload length the header declares.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The payload checksum does not match the header (bit rot or a
    /// hand-edited entry).
    BadChecksum {
        /// Checksum the header declares.
        declared: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// An I/O error other than not-found.
    Io(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Missing => write!(f, "missing"),
            ReadError::BadHeader(what) => write!(f, "bad header: {what}"),
            ReadError::StaleTag { found, expected } => {
                write!(f, "stale code tag: entry has {found:?}, store expects {expected:?}")
            }
            ReadError::Truncated { declared, actual } => {
                write!(f, "truncated: header declares {declared} payload bytes, found {actual}")
            }
            ReadError::BadChecksum { declared, actual } => {
                write!(f, "checksum mismatch: header declares {declared:016x}, payload hashes to {actual:016x}")
            }
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Distinct temp-file names for concurrent writers within one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The content-addressed on-disk store.
pub struct Store {
    root: PathBuf,
    tag: String,
}

impl Store {
    /// Open (creating if needed) a store rooted at `dir`, expecting the
    /// current [`CODE_TAG`]. Sweeps away stale `*.tmp-*` files left by a
    /// killed predecessor (single-writer assumption; a rename that never
    /// happened is a row that was never completed).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        Store::open_tagged(dir, CODE_TAG)
    }

    /// [`Store::open`] with an explicit code tag (corruption tests write
    /// entries under a deliberately stale tag).
    pub fn open_tagged(dir: impl Into<PathBuf>, tag: &str) -> std::io::Result<Store> {
        assert!(
            !tag.is_empty() && !tag.contains(char::is_whitespace),
            "code tag must be non-empty and whitespace-free (it lives in a space-separated header)"
        );
        let root = dir.into();
        std::fs::create_dir_all(&root)?;
        let store = Store { root, tag: tag.to_string() };
        store.remove_stale_tmp()?;
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The code tag entries are validated against.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The on-disk path of a digest's entry.
    pub fn path_of(&self, d: &Digest) -> PathBuf {
        self.root.join(d.shard()).join(d.hex())
    }

    /// Serialize an entry: header line, then payload.
    fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let header = format!("{MAGIC} {} {} {:016x}\n", self.tag, payload.len(), checksum(payload));
        let mut out = Vec::with_capacity(header.len() + payload.len());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Write (or atomically replace) the entry for `d`. The bytes land in
    /// a unique temp file in the shard directory first and are renamed
    /// into place, so a reader (or a resumed sweep after a kill) can only
    /// ever observe a complete entry under the final name.
    pub fn write(&self, d: &Digest, payload: &[u8]) -> std::io::Result<()> {
        let final_path = self.path_of(d);
        let shard = final_path
            .parent()
            .expect("entry path always has a shard parent directory");
        std::fs::create_dir_all(shard)?;
        let tmp = shard.join(format!(
            "{}.tmp-{}-{}",
            d.hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.encode(payload))?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &final_path)
    }

    /// Read and fully validate the entry for `d`, returning its payload.
    pub fn read(&self, d: &Digest) -> Result<Vec<u8>, ReadError> {
        let bytes = match std::fs::read(self.path_of(d)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(ReadError::Missing),
            Err(e) => return Err(ReadError::Io(e.to_string())),
        };
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| ReadError::BadHeader("no header line".to_string()))?;
        let header = std::str::from_utf8(&bytes[..nl])
            .map_err(|_| ReadError::BadHeader("header is not UTF-8".to_string()))?;
        let mut fields = header.split(' ');
        let (magic, tag, len, sum) = match (fields.next(), fields.next(), fields.next(), fields.next(), fields.next())
        {
            (Some(m), Some(t), Some(l), Some(s), None) => (m, t, l, s),
            _ => return Err(ReadError::BadHeader(format!("expected 4 header fields, got {header:?}"))),
        };
        if magic != MAGIC {
            return Err(ReadError::BadHeader(format!("bad magic {magic:?}")));
        }
        let declared: usize = len
            .parse()
            .map_err(|_| ReadError::BadHeader(format!("bad length field {len:?}")))?;
        let declared_sum = u64::from_str_radix(sum, 16)
            .map_err(|_| ReadError::BadHeader(format!("bad checksum field {sum:?}")))?;
        if tag != self.tag {
            return Err(ReadError::StaleTag { found: tag.to_string(), expected: self.tag.clone() });
        }
        let payload = &bytes[nl + 1..];
        if payload.len() != declared {
            return Err(ReadError::Truncated { declared, actual: payload.len() });
        }
        let actual = checksum(payload);
        if actual != declared_sum {
            return Err(ReadError::BadChecksum { declared: declared_sum, actual });
        }
        Ok(payload.to_vec())
    }

    /// Every digest with an entry file, sorted. Scans the shard
    /// directories; non-entry files (manifests, stray temp files) are
    /// ignored, so the scan is safe to run on a store that also hosts
    /// sweep checkpoints at its root.
    pub fn digests(&self) -> std::io::Result<Vec<Digest>> {
        let mut out = Vec::new();
        for shard in Self::read_dir_sorted(&self.root)? {
            let name = shard.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.len() != 2 || !name.bytes().all(|b| b.is_ascii_hexdigit()) {
                continue;
            }
            if !shard.path().is_dir() {
                continue;
            }
            for entry in Self::read_dir_sorted(&shard.path())? {
                if let Some(d) = entry.file_name().to_str().and_then(Digest::from_hex) {
                    out.push(d);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Directory entries sorted by name (OS iteration order varies).
    fn read_dir_sorted(dir: &Path) -> std::io::Result<Vec<std::fs::DirEntry>> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::file_name);
        Ok(entries)
    }

    /// Delete temp files a killed writer may have left in the shards.
    fn remove_stale_tmp(&self) -> std::io::Result<()> {
        for shard in Self::read_dir_sorted(&self.root)? {
            if !shard.path().is_dir() {
                continue;
            }
            for entry in Self::read_dir_sorted(&shard.path())? {
                if entry.file_name().to_str().is_some_and(|n| n.contains(".tmp-")) {
                    std::fs::remove_file(entry.path())?;
                }
            }
        }
        Ok(())
    }
}

/// A sweep checkpoint: which rows of a named grid are complete. Saved
/// atomically and with its digest set sorted, so (a) a reader never
/// observes a torn manifest and (b) an interrupted-then-resumed sweep
/// converges to a manifest byte-identical to an uninterrupted run's.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The sweep's name.
    pub sweep: String,
    /// Code tag the rows were computed under.
    pub tag: String,
    /// Total rows in the grid.
    pub total: usize,
    /// Digests of completed rows, sorted.
    pub done: Vec<Digest>,
}

impl Manifest {
    /// An empty checkpoint for a named grid under the current code tag.
    pub fn new(sweep: impl Into<String>, tag: impl Into<String>, total: usize) -> Manifest {
        Manifest { sweep: sweep.into(), tag: tag.into(), total, done: Vec::new() }
    }

    /// Serialize: a header line, then one digest per line, sorted.
    fn encode(&self) -> String {
        let mut done = self.done.clone();
        done.sort();
        done.dedup();
        let mut out = format!("{MANIFEST_MAGIC} {} {} {}\n", self.tag, self.total, self.sweep);
        for d in &done {
            out.push_str(&d.hex());
            out.push('\n');
        }
        out
    }

    /// Atomically save (write-temp-then-rename) at `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            "{}.tmp-{}-{}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("manifest"),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(self.encode().as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    }

    /// Load a checkpoint; `None` when the file is absent or malformed
    /// (a manifest is advisory — the store is the source of truth, so a
    /// bad checkpoint degrades to "probe everything", never to an error).
    pub fn load(path: &Path) -> Option<Manifest> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut fields = header.splitn(4, ' ');
        if fields.next()? != MANIFEST_MAGIC {
            return None;
        }
        let tag = fields.next()?.to_string();
        let total: usize = fields.next()?.parse().ok()?;
        let sweep = fields.next()?.to_string();
        let mut done = Vec::new();
        for line in lines {
            done.push(Digest::from_hex(line)?);
        }
        Some(Manifest { sweep, tag, total, done })
    }
}

/// Checkpoint cadence: snapshot the manifest every `rows` completions or
/// every `wall` of elapsed time, whichever comes first. Row cadence bounds
/// recompute-after-kill on fast grids; wall cadence bounds it on slow ones
/// (a grid of minute-long scenarios should not wait a thousand rows
/// between snapshots).
pub struct Checkpointer {
    every_rows: usize,
    every_wall: Duration,
    rows_since: usize,
    last: Instant,
}

impl Checkpointer {
    /// The one wall-clock read in the store layer, isolated here: cadence
    /// only decides *when* a snapshot happens, never what any file ends up
    /// containing, so it cannot leak into results.
    fn wall_now() -> Instant {
        // simlint: allow(determinism): checkpoint-timer cadence only; final on-disk state is wall-clock independent
        Instant::now()
    }

    /// A cadence of every `every_rows` rows or `every_wall`, first wins.
    /// `every_rows = 0` means "rows never trigger" (wall cadence only).
    pub fn new(every_rows: usize, every_wall: Duration) -> Checkpointer {
        // simlint: allow(determinism-taint): cadence decides *when* to snapshot, never file contents
        Checkpointer { every_rows, every_wall, rows_since: 0, last: Self::wall_now() }
    }

    /// Record one completed row; true when a snapshot is due. The caller
    /// takes the snapshot, which resets both cadences.
    pub fn row_done(&mut self) -> bool {
        self.rows_since += 1;
        let due = (self.every_rows > 0 && self.rows_since >= self.every_rows)
            // simlint: allow(determinism-taint): cadence decides *when* to snapshot, never file contents
            || Self::wall_now().duration_since(self.last) >= self.every_wall;
        if due {
            self.rows_since = 0;
            // simlint: allow(determinism-taint): cadence decides *when* to snapshot, never file contents
            self.last = Self::wall_now();
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simcore_store_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn digest_hex_roundtrips() {
        let d = Digest::job(b"grid cca=bbr", 7, CODE_TAG);
        assert_eq!(d.hex().len(), 32);
        assert_eq!(Digest::from_hex(&d.hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"f".repeat(31)), None);
    }

    #[test]
    fn job_digest_separates_every_input() {
        let base = Digest::job(b"canon", 1, "tag/1");
        assert_eq!(Digest::job(b"canon", 1, "tag/1"), base, "pure function");
        assert_ne!(Digest::job(b"canoN", 1, "tag/1"), base, "canonical bytes");
        assert_ne!(Digest::job(b"canon", 2, "tag/1"), base, "seed");
        assert_ne!(Digest::job(b"canon", 1, "tag/2"), base, "code tag");
        // Length separation: moving a byte across the seed/canonical
        // boundary cannot produce the same stream.
        assert_ne!(Digest::job(b"canonx", 1, "tag/1"), Digest::job(b"canon", 1, "tag/1x"));
    }

    #[test]
    fn write_read_roundtrip_and_shard_layout() {
        let dir = tmpdir("roundtrip");
        let store = Store::open(&dir).expect("tempdir store opens");
        let d = Digest::of(b"row one");
        store.write(&d, b"payload bytes").expect("write succeeds");
        assert_eq!(store.read(&d).expect("read back"), b"payload bytes");
        let path = store.path_of(&d);
        assert!(path.starts_with(dir.join(d.shard())), "{path:?}");
        // No temp litter after a completed write.
        let shard_files: Vec<_> = std::fs::read_dir(dir.join(d.shard()))
            .expect("shard dir exists")
            .map(|e| e.expect("dir entry").file_name())
            .collect();
        assert_eq!(shard_files, vec![std::ffi::OsString::from(d.hex())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_entry_reads_as_missing() {
        let dir = tmpdir("missing");
        let store = Store::open(&dir).expect("tempdir store opens");
        assert_eq!(store.read(&Digest::of(b"nope")), Err(ReadError::Missing));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_detected() {
        let dir = tmpdir("trunc");
        let store = Store::open(&dir).expect("tempdir store opens");
        let d = Digest::of(b"t");
        store.write(&d, b"0123456789").expect("write succeeds");
        let path = store.path_of(&d);
        let bytes = std::fs::read(&path).expect("entry readable");
        std::fs::write(&path, &bytes[..bytes.len() - 4]).expect("truncate");
        assert_eq!(store.read(&d), Err(ReadError::Truncated { declared: 10, actual: 6 }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_is_detected() {
        let dir = tmpdir("flip");
        let store = Store::open(&dir).expect("tempdir store opens");
        let d = Digest::of(b"f");
        store.write(&d, b"payload").expect("write succeeds");
        let path = store.path_of(&d);
        let mut bytes = std::fs::read(&path).expect("entry readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(matches!(store.read(&d), Err(ReadError::BadChecksum { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_header_is_detected() {
        let dir = tmpdir("header");
        let store = Store::open(&dir).expect("tempdir store opens");
        let d = Digest::of(b"h");
        store.write(&d, b"x").expect("write succeeds");
        std::fs::write(store.path_of(&d), b"not a header\npayload").expect("overwrite");
        assert!(matches!(store.read(&d), Err(ReadError::BadHeader(_))));
        std::fs::write(store.path_of(&d), b"no newline at all").expect("overwrite");
        assert!(matches!(store.read(&d), Err(ReadError::BadHeader(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_code_tag_is_detected() {
        let dir = tmpdir("stale");
        let d = Digest::of(b"s");
        {
            let old = Store::open_tagged(&dir, "starvation-sim/0").expect("tempdir store opens");
            old.write(&d, b"old result").expect("write succeeds");
        }
        let store = Store::open(&dir).expect("reopen under current tag");
        assert_eq!(
            store.read(&d),
            Err(ReadError::StaleTag {
                found: "starvation-sim/0".to_string(),
                expected: CODE_TAG.to_string(),
            })
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digests_scan_is_sorted_and_skips_foreign_files() {
        let dir = tmpdir("scan");
        let store = Store::open(&dir).expect("tempdir store opens");
        let mut expect: Vec<Digest> = (0u64..20)
            .map(|i| {
                let d = Digest::of(format!("row {i}").as_bytes());
                store.write(&d, b"x").expect("write succeeds");
                d
            })
            .collect();
        expect.sort();
        // Foreign files the scan must ignore: a manifest at the root, a
        // stray file in a shard, a non-shard directory.
        std::fs::write(dir.join("sweep-abc.manifest"), "manifest1 t 1 s\n").expect("write manifest");
        std::fs::create_dir_all(dir.join("not-a-shard")).expect("mkdir");
        let shard0 = expect[0].shard();
        std::fs::write(dir.join(&shard0).join("README"), "hi").expect("write stray");
        assert_eq!(store.digests().expect("scan succeeds"), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = tmpdir("sweep_tmp");
        let store = Store::open(&dir).expect("tempdir store opens");
        let d = Digest::of(b"victim");
        store.write(&d, b"kept").expect("write succeeds");
        // A killed writer's torn temp file next to a real entry.
        let torn = dir.join(d.shard()).join(format!("{}.tmp-999-0", d.hex()));
        std::fs::write(&torn, b"cas1 half-writ").expect("write torn tmp");
        let store = Store::open(&dir).expect("reopen");
        assert!(!torn.exists(), "stale tmp must be swept on open");
        assert_eq!(store.read(&d).expect("entry survives"), b"kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_saves_sorted_and_roundtrips() {
        let dir = tmpdir("manifest");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sweep-x.manifest");
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        let mut m = Manifest::new("grid demo", CODE_TAG, 4);
        // Insertion order differs from sorted order; saved form must not.
        m.done = if a < b { vec![b, a] } else { vec![a, b] };
        m.save(&path).expect("save succeeds");
        let loaded = Manifest::load(&path).expect("loads back");
        assert_eq!(loaded.sweep, "grid demo");
        assert_eq!(loaded.tag, CODE_TAG);
        assert_eq!(loaded.total, 4);
        let mut sorted = m.done.clone();
        sorted.sort();
        assert_eq!(loaded.done, sorted);
        // Same logical state saved from different orders: identical bytes.
        let text = std::fs::read_to_string(&path).expect("readable");
        m.done.reverse();
        m.save(&path).expect("save again");
        assert_eq!(std::fs::read_to_string(&path).expect("readable"), text);
        assert_eq!(Manifest::load(&dir.join("absent.manifest")), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointer_row_cadence() {
        // Wall cadence effectively off (1 hour): rows drive it.
        let mut ck = Checkpointer::new(3, Duration::from_secs(3600));
        assert!(!ck.row_done());
        assert!(!ck.row_done());
        assert!(ck.row_done(), "third row triggers");
        assert!(!ck.row_done(), "cadence resets after a snapshot");
        // Rows off, wall at zero: every row is due (elapsed >= 0).
        let mut ck = Checkpointer::new(0, Duration::ZERO);
        assert!(ck.row_done());
        assert!(ck.row_done());
    }
}

//! Flow identity: the typed per-flow key used across the simulator.
//!
//! Historically the simulator indexed flows with bare `usize`s, which made
//! every per-flow array an index-parallel sibling of every other and let
//! any integer masquerade as a flow. [`FlowId`] is the replacement: a
//! compact newtype that all flow-keyed state (trace events, audit specs,
//! per-flow results) shares. The wire format is unchanged — a `FlowId`
//! hashes and prints as the bare index it wraps, so trace digests and
//! JSONL output are bit-identical to the `usize` era.
//!
//! Ids are dense: statically-configured flows take `0..n` in declaration
//! order, and workload-spawned flows continue the sequence in arrival
//! order. That keeps iteration order deterministic and lets hot-path
//! per-flow state live in plain `Vec`s indexed by [`FlowId::index`].

use std::fmt;

/// A flow's identity within one simulation run.
///
/// Construct with [`FlowId::from_index`] (or `From<usize>`); recover the
/// dense index with [`FlowId::index`]. The raw value `u32::MAX` is
/// reserved for sentinel uses (the warm-fill phantom flow).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u32);

impl FlowId {
    /// Wrap a raw id without range checking (sentinel construction).
    pub const fn from_raw(raw: u32) -> FlowId {
        FlowId(raw)
    }

    /// The id for the flow at dense index `i`.
    pub fn from_index(i: usize) -> FlowId {
        assert!(i < u32::MAX as usize, "flow index {i} out of FlowId range");
        FlowId(i as u32)
    }

    /// The dense index this id wraps (slot in per-flow `Vec`s).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The id as a `u64`, for hashing and accounting arithmetic.
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

impl From<usize> for FlowId {
    fn from(i: usize) -> FlowId {
        FlowId::from_index(i)
    }
}

impl fmt::Display for FlowId {
    /// Prints the bare index — the same text a `usize` id produced, which
    /// keeps JSONL trace output and audit messages stable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_index() {
        for i in [0usize, 1, 7, 1000] {
            assert_eq!(FlowId::from_index(i).index(), i);
            assert_eq!(FlowId::from(i).as_u64(), i as u64);
        }
    }

    #[test]
    fn displays_as_the_bare_index() {
        assert_eq!(FlowId::from_index(3).to_string(), "3");
        assert_eq!(format!("{}", FlowId::from_index(42)), "42");
    }

    #[test]
    fn orders_by_index() {
        assert!(FlowId::from_index(1) < FlowId::from_index(2));
        assert_eq!(FlowId::from_index(5), FlowId::from_index(5));
    }

    #[test]
    #[should_panic(expected = "out of FlowId range")]
    fn rejects_indices_at_the_sentinel() {
        let _ = FlowId::from_index(u32::MAX as usize);
    }
}

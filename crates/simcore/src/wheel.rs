//! Hierarchical timer wheel: the storage engine behind [`EventQueue`].
//!
//! A discrete-event simulator spends a large share of its cycles pushing and
//! popping the future-event list. A binary heap does both in `O(log n)` with
//! poor locality; a hashed hierarchical timer wheel (the classic
//! Varghese–Lauck design, as used by kernel timer subsystems) does the common
//! case — events scheduled near the current time — in `O(1)` with a couple of
//! bitmap instructions.
//!
//! Layout: [`LEVELS`] levels of [`SLOTS`] slots each. Level 0 buckets time at
//! the tick granularity (`2^GRAN_BITS` ns ≈ 1 µs); each higher level is
//! `SLOTS`× coarser. An event files into the finest level whose slot range
//! still contains it, relative to the wheel's `cursor` (the tick the wheel
//! has drained up to). Events beyond the top level's horizon (~19 hours) go
//! to a small overflow heap. Per-level occupancy bitmaps make "next
//! non-empty slot" one `trailing_zeros`, so empty-slot churn — the classic
//! timer-wheel tax — never happens: the cursor jumps directly between
//! occupied slots.
//!
//! Ordering contract (the simulator's determinism hinges on it): events fire
//! in exactly `(time, insertion seq)` order, bit-identical to the binary
//! heap this replaced. Slots are unordered buckets; when the cursor reaches
//! a slot, the slot is drained and either re-filed one level down or, at
//! level 0, sorted by `(time, seq)` into the `ready` queue that `pop`
//! consumes. Sorting per-tick buckets (a handful of entries) is cheaper than
//! paying a heap's comparison cascade on every operation.
//!
//! The pop-side monotonicity check (`popped.at >= now`) is a *hard* assert,
//! not a debug assert: a wheel bug that re-files an entry into the past
//! would silently corrupt causality in release builds otherwise, and the
//! check costs one predictable branch per event.

use crate::units::Time;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the number of slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; beyond `SLOT_BITS * LEVELS` tick bits lies the
/// overflow heap.
const LEVELS: usize = 6;
/// log2 of nanoseconds per level-0 tick (1.024 µs).
const GRAN_BITS: u32 = 10;

/// A scheduled event: absolute time, insertion sequence, payload.
struct Entry<E> {
    at: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want earliest (time, seq) first.
    fn cmp(&self, o: &Self) -> Ordering {
        (o.at, o.seq).cmp(&(self.at, self.seq))
    }
}

/// Bitmask of slot indices strictly greater than `idx`.
fn above(idx: u64) -> u64 {
    if idx >= (SLOTS as u64 - 1) {
        0
    } else {
        !0u64 << (idx + 1)
    }
}

/// Hierarchical timer wheel with exact `(time, seq)` FIFO-tie ordering.
///
/// Invariants:
/// * `ready` holds, sorted by `(at, seq)`, every pending event whose tick is
///   `<= cursor`;
/// * wheel slots and the overflow heap hold only events with tick `> cursor`;
/// * each occupancy bit is set iff the corresponding slot is non-empty.
pub struct TimerWheel<E> {
    /// Sorted run of imminent events; `pop` takes from the front.
    ready: VecDeque<Entry<E>>,
    /// `slots[level * SLOTS + slot]`: unordered buckets of future events.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level occupancy bitmaps.
    occ: [u64; LEVELS],
    /// Events past the top level's horizon.
    overflow: BinaryHeap<Entry<E>>,
    /// Tick the wheel has drained up to (events at this tick are in `ready`).
    cursor: u64,
    /// Total pending events across `ready`, slots and overflow.
    len: usize,
    /// Next insertion sequence number.
    seq: u64,
    /// Timestamp of the last popped event.
    now: Time,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel at time zero.
    pub fn new() -> Self {
        TimerWheel {
            ready: VecDeque::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            overflow: BinaryHeap::new(),
            cursor: 0,
            len: 0,
            seq: 0,
            now: Time::ZERO,
        }
    }

    fn tick_of(at: Time) -> u64 {
        at.as_nanos() >> GRAN_BITS
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `ev` at absolute time `at`. Panics if `at` is before the
    /// current time — the simulation can never act on the past.
    pub fn schedule_at(&mut self, at: Time, ev: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let e = Entry {
            at,
            seq: self.seq,
            ev,
        };
        self.seq += 1;
        self.len += 1;
        if Self::tick_of(at) <= self.cursor {
            // Imminent (usually: scheduled at the current instant while
            // processing). Sorted insert; same-time chains hit the back.
            let key = (e.at, e.seq);
            let idx = self.ready.partition_point(|x| (x.at, x.seq) <= key);
            self.ready.insert(idx, e);
        } else {
            self.file(e);
        }
    }

    /// File an event with tick strictly greater than `cursor` into the
    /// finest level whose range contains it, or the overflow heap.
    fn file(&mut self, e: Entry<E>) {
        let t = Self::tick_of(e.at);
        debug_assert!(t > self.cursor);
        for level in 0..LEVELS {
            let level_shift = SLOT_BITS * level as u32;
            // Same block at this level's parent granularity => this level's
            // slot range contains the event.
            if (t >> (level_shift + SLOT_BITS)) == (self.cursor >> (level_shift + SLOT_BITS)) {
                let slot = ((t >> level_shift) & (SLOTS as u64 - 1)) as usize;
                self.slots[level * SLOTS + slot].push(e);
                self.occ[level] |= 1u64 << slot;
                return;
            }
        }
        self.overflow.push(e);
    }

    /// Advance the cursor to the next occupied slot, cascading coarse slots
    /// downward, until `ready` gains at least one event (or nothing is
    /// pending outside `ready`). Called only when `ready` is empty.
    fn advance(&mut self) {
        debug_assert!(self.ready.is_empty());
        // simlint: allow(hot-path-alloc): Vec::new is allocation-free until first push; the batch only fills while cascading coarse slots
        let mut batch: Vec<Entry<E>> = Vec::new();
        while batch.is_empty() {
            let mut progressed = false;
            for level in 0..LEVELS {
                let level_shift = SLOT_BITS * level as u32;
                let idx = (self.cursor >> level_shift) & (SLOTS as u64 - 1);
                let mask = self.occ[level] & above(idx);
                if mask == 0 {
                    continue;
                }
                let slot = mask.trailing_zeros() as u64;
                // Jump the cursor straight to the start of that slot's tick
                // range — empty slots are never visited.
                self.cursor =
                    (((self.cursor >> (level_shift + SLOT_BITS)) << SLOT_BITS) | slot) << level_shift;
                self.occ[level] &= !(1u64 << slot);
                let entries = std::mem::take(&mut self.slots[level * SLOTS + slot as usize]);
                if level == 0 {
                    // A level-0 slot is exactly one tick: everything is due.
                    batch = entries;
                } else {
                    for e in entries {
                        self.refile(e, &mut batch);
                    }
                }
                progressed = true;
                break;
            }
            if progressed {
                continue;
            }
            // Wheel empty: pull the next horizon block out of overflow.
            let Some(top) = self.overflow.peek() else {
                return; // nothing pending outside `ready`
            };
            self.cursor = Self::tick_of(top.at);
            let horizon_shift = SLOT_BITS * LEVELS as u32;
            while let Some(top) = self.overflow.peek() {
                if (Self::tick_of(top.at) >> horizon_shift) != (self.cursor >> horizon_shift) {
                    break;
                }
                let e = self.overflow.pop().expect("peeked entry present");
                self.refile(e, &mut batch);
            }
        }
        batch.sort_unstable_by_key(|e| (e.at, e.seq));
        self.ready = batch.into();
    }

    /// Re-file a cascaded event: due now (tick == cursor) goes to `batch`,
    /// anything later goes back into a finer slot.
    fn refile(&mut self, e: Entry<E>, batch: &mut Vec<Entry<E>>) {
        if Self::tick_of(e.at) <= self.cursor {
            batch.push(e);
        } else {
            self.file(e);
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.ready.is_empty() {
            self.advance();
        }
        let e = self.ready.pop_front()?;
        // Hard (non-debug) monotonicity check; see the module docs.
        assert!(
            e.at >= self.now,
            "event queue clock went backwards: popped at={:?} now={:?}",
            e.at,
            self.now
        );
        self.now = e.at;
        self.len -= 1;
        Some((e.at, e.ev))
    }

    /// Pop the earliest event only if its timestamp is `<= limit`.
    ///
    /// Equivalent to `peek_time` + conditional `pop`, but does the slot
    /// search once. The simulator's main loop uses this to stop at the end
    /// of the run without disturbing still-pending events.
    pub fn pop_at_or_before(&mut self, limit: Time) -> Option<(Time, E)> {
        if self.ready.is_empty() {
            self.advance();
        }
        if self.ready.front()?.at > limit {
            return None;
        }
        self.pop()
    }

    /// Pop *every* event sharing the earliest timestamp `<= limit` into
    /// `out`, advancing the clock once. Returns that timestamp, or `None`
    /// if nothing is due by `limit` (then `out` is untouched).
    ///
    /// Batch completeness: `ready` is sorted by `(at, seq)` and anything
    /// still in the wheel slots or overflow heap has tick `> cursor >=`
    /// the front entry's tick — so the front equal-`at` run of `ready` is
    /// the *entire* set of pending events at that instant. Events a
    /// handler schedules at the same timestamp mid-batch get a higher
    /// insertion seq and land in the *next* batch, which still dispatches
    /// before any later-time event: the total dispatch order is
    /// bit-identical to calling [`pop`](Self::pop) in a loop. One slot
    /// search and one monotonicity check then cover the whole batch,
    /// which is what makes same-time dispatch cheaper than per-event
    /// popping.
    // simlint: hot-root
    pub fn pop_batch_at_or_before(&mut self, limit: Time, out: &mut Vec<E>) -> Option<Time> {
        if self.ready.is_empty() {
            self.advance();
        }
        let t = self.ready.front()?.at;
        if t > limit {
            return None;
        }
        // Hard (non-debug) monotonicity check; see the module docs.
        assert!(
            t >= self.now,
            "event queue clock went backwards: popped at={t:?} now={:?}",
            self.now
        );
        self.now = t;
        while let Some(e) = self.ready.front() {
            if e.at != t {
                break;
            }
            let e = self.ready.pop_front().expect("front entry present");
            self.len -= 1;
            out.push(e.ev);
        }
        Some(t)
    }

    /// Timestamp of the next event without popping it. Read-only: scans the
    /// occupancy bitmaps instead of draining slots.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(e) = self.ready.front() {
            return Some(e.at);
        }
        for level in 0..LEVELS {
            let level_shift = SLOT_BITS * level as u32;
            let idx = (self.cursor >> level_shift) & (SLOTS as u64 - 1);
            let mask = self.occ[level] & above(idx);
            if mask == 0 {
                continue;
            }
            let slot = mask.trailing_zeros() as usize;
            // The first occupied slot (finest level first) covers the
            // earliest tick range; the earliest event in it is the minimum.
            return self.slots[level * SLOTS + slot].iter().map(|e| e.at).min();
        }
        self.overflow.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Dur;

    #[test]
    fn fires_in_time_order_across_levels() {
        let mut w = TimerWheel::new();
        // Spread across level 0 (sub-µs), level 2-3 (ms), and overflow (>19h).
        w.schedule_at(Time(100_000_000_000_000), "overflow");
        w.schedule_at(Time::from_millis(30), "c");
        w.schedule_at(Time(500), "a");
        w.schedule_at(Time::from_millis(10), "b");
        let order: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c", "overflow"]);
    }

    #[test]
    fn ties_fire_in_insertion_order_through_slots() {
        let mut w = TimerWheel::new();
        let t = Time::from_millis(5);
        for i in 0..100 {
            w.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_tick_different_times_sort_exactly() {
        // Two events in the same 1.024 µs tick but at different nanosecond
        // times must still fire in time order, not insertion order.
        let mut w = TimerWheel::new();
        w.schedule_at(Time(2000 + 700), "late");
        w.schedule_at(Time(2000 + 100), "early");
        assert_eq!(w.pop().map(|(_, e)| e), Some("early"));
        assert_eq!(w.pop().map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn schedule_at_current_instant_lands_in_ready() {
        let mut w = TimerWheel::new();
        w.schedule_at(Time::from_millis(1), "first");
        w.schedule_at(Time::from_millis(2), "later");
        let (t, e) = w.pop().expect("event");
        assert_eq!(e, "first");
        w.schedule_at(t, "child-of-first");
        assert_eq!(w.pop().map(|(_, e)| e), Some("child-of-first"));
        assert_eq!(w.pop().map(|(_, e)| e), Some("later"));
    }

    #[test]
    fn pop_at_or_before_respects_limit() {
        let mut w = TimerWheel::new();
        w.schedule_at(Time::from_millis(10), "in");
        w.schedule_at(Time::from_millis(20), "out");
        assert_eq!(
            w.pop_at_or_before(Time::from_millis(15)).map(|(_, e)| e),
            Some("in")
        );
        assert_eq!(w.pop_at_or_before(Time::from_millis(15)), None);
        assert_eq!(w.len(), 1);
        // The refused event is still intact and pops normally.
        assert_eq!(w.pop().map(|(_, e)| e), Some("out"));
    }

    #[test]
    fn schedule_before_drained_cursor_still_orders() {
        // pop_at_or_before can advance the cursor past a tick that later
        // gets a new event (at >= now is still satisfied). The new event
        // must fire before the already-drained later one.
        let mut w = TimerWheel::new();
        w.schedule_at(Time::from_millis(1), 1u32);
        assert_eq!(w.pop().map(|(_, e)| e), Some(1));
        w.schedule_at(Time::from_millis(50), 3u32);
        // Force the cursor up to the ms-50 tick without popping.
        assert_eq!(w.pop_at_or_before(Time::from_millis(2)), None);
        w.schedule_at(Time::from_millis(10), 2u32);
        assert_eq!(w.pop().map(|(_, e)| e), Some(2));
        assert_eq!(w.pop().map(|(_, e)| e), Some(3));
    }

    #[test]
    fn overflow_far_future_mixes_with_near() {
        let mut w = TimerWheel::new();
        let horizon_ns = 1u64 << (GRAN_BITS + SLOT_BITS * LEVELS as u32);
        w.schedule_at(Time(3 * horizon_ns + 17), 4u32);
        w.schedule_at(Time(horizon_ns + 5), 2u32);
        w.schedule_at(Time(horizon_ns + 5), 3u32); // tie in overflow
        w.schedule_at(Time(42), 1u32);
        let order: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
        assert!(w.is_empty());
    }

    #[test]
    fn peek_matches_pop_everywhere() {
        let mut w = TimerWheel::new();
        let times = [
            Time(10),
            Time(2_000),
            Time::from_millis(3),
            Time::from_millis(200),
            Time(1u64 << 50),
        ];
        for (i, &t) in times.iter().enumerate() {
            w.schedule_at(t, i);
        }
        while !w.is_empty() {
            let peeked = w.peek_time();
            let (t, _) = w.pop().expect("non-empty");
            assert_eq!(peeked, Some(t));
        }
    }

    #[test]
    fn schedule_after_relative_and_clock() {
        let mut w = TimerWheel::new();
        w.schedule_at(Time::from_millis(10), 0);
        assert_eq!(w.now(), Time::ZERO);
        w.pop();
        assert_eq!(w.now(), Time::from_millis(10));
        let at = w.now().saturating_add(Dur::from_millis(5));
        w.schedule_at(at, 1);
        let (t, _) = w.pop().expect("event");
        assert_eq!(t, Time::from_millis(15));
    }

    #[test]
    fn batch_pop_drains_exactly_the_tied_run() {
        let mut w = TimerWheel::new();
        let t = Time::from_millis(5);
        for i in 0..4 {
            w.schedule_at(t, i);
        }
        w.schedule_at(Time::from_millis(7), 99);
        let mut out = Vec::new();
        assert_eq!(w.pop_batch_at_or_before(Time::from_millis(10), &mut out), Some(t));
        assert_eq!(out, vec![0, 1, 2, 3]);
        out.clear();
        // Limit refusal leaves the queue intact.
        assert_eq!(w.pop_batch_at_or_before(Time::from_millis(6), &mut out), None);
        assert!(out.is_empty());
        assert_eq!(
            w.pop_batch_at_or_before(Time::from_millis(10), &mut out),
            Some(Time::from_millis(7))
        );
        assert_eq!(out, vec![99]);
        assert!(w.is_empty());
    }

    #[test]
    fn batch_pop_same_time_reschedule_lands_in_next_batch() {
        // A handler scheduling at the batch's own timestamp must see its
        // event dispatched in the *next* batch at the same time — exactly
        // the order a single-pop loop would produce.
        let mut w = TimerWheel::new();
        let t = Time::from_millis(3);
        w.schedule_at(t, "a");
        w.schedule_at(Time::from_millis(9), "later");
        let mut out = Vec::new();
        assert_eq!(w.pop_batch_at_or_before(Time::from_millis(20), &mut out), Some(t));
        assert_eq!(out, vec!["a"]);
        out.clear();
        w.schedule_at(t, "child"); // mid-dispatch follow-up at the same instant
        assert_eq!(w.pop_batch_at_or_before(Time::from_millis(20), &mut out), Some(t));
        assert_eq!(out, vec!["child"]);
        out.clear();
        assert_eq!(
            w.pop_batch_at_or_before(Time::from_millis(20), &mut out),
            Some(Time::from_millis(9))
        );
        assert_eq!(out, vec!["later"]);
    }

    #[test]
    #[should_panic]
    fn scheduling_past_panics() {
        let mut w = TimerWheel::new();
        w.schedule_at(Time::from_millis(10), ());
        w.pop();
        w.schedule_at(Time::from_millis(5), ());
    }
}

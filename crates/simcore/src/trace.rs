//! Structured event tracing and runtime invariant auditing.
//!
//! The simulator's aggregate metrics (`netsim::metrics`) tell you *what* a
//! run produced; this module is how you see *why*. Instrumented components
//! push [`Event`]s into a [`TraceSink`]:
//!
//! * [`NullSink`] — discards everything. The simulator's default is no sink
//!   at all (an `Option` left `None`), so tracing costs one branch per
//!   instrumentation point when disabled; `NullSink` exists for sink
//!   plumbing that needs a concrete no-op (e.g. an auditor with no
//!   downstream consumer).
//! * [`RingSink`] — a bounded in-memory ring plus per-class digests
//!   (event count and FNV-1a hash), cheap enough for tests and precise
//!   enough for golden-trace regression checks. Clonable handle: keep one
//!   clone, hand the other to the simulator, read the digest after the run.
//! * [`JsonlSink`] — streams one JSON object per event to a file for
//!   offline analysis (`repro trace <scenario>` writes these).
//! * [`Auditor`] — a checking sink: verifies runtime invariants on the
//!   event stream (conservation of packets, FIFO order, bounded jitter
//!   displacement, monotonic clock, minimum cwnd, per-flow byte
//!   accounting) and panics with the offending event plus recent context
//!   on the first violation. Wraps an optional downstream sink.
//!
//! Event timestamps are the simulator clock at the instant the event was
//! *processed*, so a sink observes a non-decreasing time sequence — one of
//! the invariants the [`Auditor`] checks.

use crate::units::{Dur, Rate, Time};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

pub use crate::flow::FlowId;

/// One traced simulator event.
///
/// Variants mirror the §3 path: a packet is sent, offered to the bottleneck
/// (enqueue or drop), dequeued at line rate, held by the jitter element,
/// released to the receiver; the returning ACK updates the sender's
/// accounting and its CCA (cwnd/pacing plus named internals via
/// [`Event::Probe`]). [`Event::RunEnd`] closes the stream with the
/// bottleneck's final backlog so conservation can be settled exactly.
#[derive(Clone, Debug)]
pub enum Event {
    /// A sender transmitted a packet (fresh data or a retransmission).
    Send {
        /// The sending flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// Packet size in bytes.
        bytes: u64,
        /// True for retransmissions (classified as `"retransmit"`).
        retransmit: bool,
    },
    /// The bottleneck accepted a packet into its queue.
    Enqueue {
        /// The owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// Packet size in bytes.
        bytes: u64,
        /// Queue backlog in bytes *after* the enqueue.
        queued_bytes: u64,
    },
    /// The bottleneck tail-dropped a packet (buffer full).
    Drop {
        /// The owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// Packet size in bytes.
        bytes: u64,
    },
    /// The bottleneck finished serving a packet.
    Dequeue {
        /// The owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// Packet size in bytes.
        bytes: u64,
        /// Queue backlog in bytes *after* the dequeue.
        queued_bytes: u64,
    },
    /// The jitter element decided a packet's hold: it arrives at the
    /// element at `arrive` (post-propagation) and is released at `release`.
    /// Displacement `release − arrive` must stay within the policy's bound.
    JitterHold {
        /// The owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// Arrival time at the element.
        arrive: Time,
        /// Chosen release time (≥ `arrive`, never reordering the flow).
        release: Time,
    },
    /// A held packet left the jitter element and reached the receiver.
    JitterRelease {
        /// The owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
    },
    /// A sender processed an acknowledgement. Carries the sender's
    /// byte-accounting snapshot *after* processing; the auditor checks the
    /// exact identity
    /// `sent + spurious_rtx = delivered + in_flight + lost + unresolved`.
    Ack {
        /// The receiving flow.
        flow: FlowId,
        /// Cumulative sequence the ACK carried (reliable transport).
        cum_seq: Option<u64>,
        /// RTT sample this ACK produced, if any (Karn's rule may skip it).
        rtt: Option<Dur>,
        /// Lifetime bytes transmitted (including retransmissions).
        sent: u64,
        /// Lifetime bytes delivered (cumulatively acknowledged).
        delivered: u64,
        /// Bytes currently outstanding.
        in_flight: u64,
        /// Lifetime bytes declared lost.
        lost: u64,
        /// Bytes SACKed or orphaned above the cumulative point: received
        /// by the receiver but not yet cumulatively acknowledged.
        unresolved: u64,
        /// Bytes declared lost whose original copy was later cumulatively
        /// acknowledged before the retransmission left (spurious
        /// go-back-N declarations).
        spurious_rtx: u64,
    },
    /// A retransmission timeout fired and was processed.
    Rto {
        /// The flow whose timer expired.
        flow: FlowId,
    },
    /// The sender's CCA outputs after processing an ACK or a timeout.
    CwndUpdate {
        /// The flow.
        flow: FlowId,
        /// Congestion window in bytes (must be ≥ 1 MSS).
        cwnd: u64,
        /// Pacing rate, when the CCA paces.
        pacing: Option<Rate>,
    },
    /// A named CCA-internal scalar (`"bbr.btl_bw"`, `"copa.min_rtt"`, …)
    /// reported through [`CongestionControl::internals`].
    ///
    /// [`CongestionControl::internals`]: ../../cca/trait.CongestionControl.html
    Probe {
        /// The flow.
        flow: FlowId,
        /// Stable internal-state key.
        key: &'static str,
        /// Current value (units are key-specific).
        value: f64,
    },
    /// A workload-scheduled flow arrived and was spawned mid-run. The
    /// auditor registers the flow from this event; statically-configured
    /// flows are registered at construction and never emit it, which keeps
    /// the canonical golden digests free of workload classes.
    FlowArrive {
        /// The new flow (must extend the dense id sequence).
        flow: FlowId,
        /// The flow's packet size (min-cwnd invariant).
        mss: u64,
        /// Jitter displacement bound, when the flow's policy has one.
        jitter_bound: Option<Dur>,
        /// Byte budget for finite flows (`None` = bulk, runs to the end).
        size: Option<u64>,
    },
    /// A finite flow delivered its byte budget and retired. Carries the
    /// sender's final accounting snapshot; the auditor checks a retired
    /// flow leaks nothing (`in_flight = 0` and the byte identity balances).
    FlowComplete {
        /// The retiring flow.
        flow: FlowId,
        /// Lifetime bytes transmitted (including retransmissions).
        sent: u64,
        /// Lifetime bytes delivered.
        delivered: u64,
        /// Bytes still outstanding (must be zero at retirement).
        in_flight: u64,
        /// Lifetime bytes declared lost.
        lost: u64,
        /// Bytes SACKed or orphaned above the cumulative point.
        unresolved: u64,
        /// Spuriously retransmitted bytes.
        spurious_rtx: u64,
    },
    /// The run ended; `queued_pkts` packets (excluding warm-start phantoms)
    /// were still in the bottleneck queue.
    RunEnd {
        /// Final bottleneck backlog in packets.
        queued_pkts: u64,
    },
}

impl Event {
    /// Stable class name used by digests and JSON output. `Send` events
    /// with `retransmit = true` classify as `"retransmit"`.
    pub fn class(&self) -> &'static str {
        match self {
            Event::Send { retransmit: true, .. } => "retransmit",
            Event::Send { .. } => "send",
            Event::Enqueue { .. } => "enqueue",
            Event::Drop { .. } => "drop",
            Event::Dequeue { .. } => "dequeue",
            Event::JitterHold { .. } => "jitter-hold",
            Event::JitterRelease { .. } => "jitter-release",
            Event::Ack { .. } => "ack",
            Event::Rto { .. } => "rto",
            Event::CwndUpdate { .. } => "cwnd",
            Event::Probe { .. } => "probe",
            Event::FlowArrive { .. } => "flow-arrive",
            Event::FlowComplete { .. } => "flow-complete",
            Event::RunEnd { .. } => "run-end",
        }
    }

    /// The flow the event belongs to (`None` for [`Event::RunEnd`]).
    pub fn flow(&self) -> Option<FlowId> {
        match self {
            Event::Send { flow, .. }
            | Event::Enqueue { flow, .. }
            | Event::Drop { flow, .. }
            | Event::Dequeue { flow, .. }
            | Event::JitterHold { flow, .. }
            | Event::JitterRelease { flow, .. }
            | Event::Ack { flow, .. }
            | Event::Rto { flow }
            | Event::CwndUpdate { flow, .. }
            | Event::Probe { flow, .. }
            | Event::FlowArrive { flow, .. }
            | Event::FlowComplete { flow, .. } => Some(*flow),
            Event::RunEnd { .. } => None,
        }
    }

    /// Fold the event (and its timestamp) into an FNV-1a hash in a
    /// canonical field order, so digests are bit-stable across runs.
    fn fold(&self, at: Time, h: &mut Fnv64) {
        h.u64(at.as_nanos());
        match self {
            Event::Send { flow, seq, bytes, retransmit } => {
                h.u64(flow.as_u64()).u64(*seq).u64(*bytes).u64(*retransmit as u64);
            }
            Event::Enqueue { flow, seq, bytes, queued_bytes }
            | Event::Dequeue { flow, seq, bytes, queued_bytes } => {
                h.u64(flow.as_u64()).u64(*seq).u64(*bytes).u64(*queued_bytes);
            }
            Event::Drop { flow, seq, bytes } => {
                h.u64(flow.as_u64()).u64(*seq).u64(*bytes);
            }
            Event::JitterHold { flow, seq, arrive, release } => {
                h.u64(flow.as_u64()).u64(*seq).u64(arrive.as_nanos()).u64(release.as_nanos());
            }
            Event::JitterRelease { flow, seq } => {
                h.u64(flow.as_u64()).u64(*seq);
            }
            Event::Ack {
                flow,
                cum_seq,
                rtt,
                sent,
                delivered,
                in_flight,
                lost,
                unresolved,
                spurious_rtx,
            } => {
                h.u64(flow.as_u64())
                    .opt_u64(cum_seq.as_ref().copied())
                    .opt_u64(rtt.map(|d| d.as_nanos()))
                    .u64(*sent)
                    .u64(*delivered)
                    .u64(*in_flight)
                    .u64(*lost)
                    .u64(*unresolved)
                    .u64(*spurious_rtx);
            }
            Event::Rto { flow } => {
                h.u64(flow.as_u64());
            }
            Event::CwndUpdate { flow, cwnd, pacing } => {
                h.u64(flow.as_u64())
                    .u64(*cwnd)
                    .opt_u64(pacing.map(|r| r.bytes_per_sec().to_bits()));
            }
            Event::Probe { flow, key, value } => {
                h.u64(flow.as_u64()).bytes(key.as_bytes()).u64(value.to_bits());
            }
            Event::FlowArrive { flow, mss, jitter_bound, size } => {
                h.u64(flow.as_u64())
                    .u64(*mss)
                    .opt_u64(jitter_bound.map(|d| d.as_nanos()))
                    .opt_u64(*size);
            }
            Event::FlowComplete {
                flow,
                sent,
                delivered,
                in_flight,
                lost,
                unresolved,
                spurious_rtx,
            } => {
                h.u64(flow.as_u64())
                    .u64(*sent)
                    .u64(*delivered)
                    .u64(*in_flight)
                    .u64(*lost)
                    .u64(*unresolved)
                    .u64(*spurious_rtx);
            }
            Event::RunEnd { queued_pkts } => {
                h.u64(*queued_pkts);
            }
        }
    }

    /// One JSON object (no trailing newline) for [`JsonlSink`]. Hand-rolled
    /// like the sweep engine's timing records: the repo has no serde.
    pub fn to_json(&self, at: Time) -> String {
        let mut s = format!("{{\"t_ns\":{},\"ev\":\"{}\"", at.as_nanos(), self.class());
        if let Some(f) = self.flow() {
            s.push_str(&format!(",\"flow\":{f}"));
        }
        match self {
            Event::Send { seq, bytes, .. } | Event::Drop { seq, bytes, .. } => {
                s.push_str(&format!(",\"seq\":{seq},\"bytes\":{bytes}"));
            }
            Event::Enqueue { seq, bytes, queued_bytes, .. }
            | Event::Dequeue { seq, bytes, queued_bytes, .. } => {
                s.push_str(&format!(
                    ",\"seq\":{seq},\"bytes\":{bytes},\"queued\":{queued_bytes}"
                ));
            }
            Event::JitterHold { seq, arrive, release, .. } => {
                s.push_str(&format!(
                    ",\"seq\":{seq},\"arrive_ns\":{},\"release_ns\":{}",
                    arrive.as_nanos(),
                    release.as_nanos()
                ));
            }
            Event::JitterRelease { seq, .. } => {
                s.push_str(&format!(",\"seq\":{seq}"));
            }
            Event::Ack {
                cum_seq,
                rtt,
                sent,
                delivered,
                in_flight,
                lost,
                unresolved,
                spurious_rtx,
                ..
            } => {
                if let Some(c) = cum_seq {
                    s.push_str(&format!(",\"cum_seq\":{c}"));
                }
                if let Some(r) = rtt {
                    s.push_str(&format!(",\"rtt_ns\":{}", r.as_nanos()));
                }
                s.push_str(&format!(
                    ",\"sent\":{sent},\"delivered\":{delivered},\"in_flight\":{in_flight},\"lost\":{lost},\"unresolved\":{unresolved},\"spurious_rtx\":{spurious_rtx}"
                ));
            }
            Event::Rto { .. } => {}
            Event::CwndUpdate { cwnd, pacing, .. } => {
                s.push_str(&format!(",\"cwnd\":{cwnd}"));
                if let Some(p) = pacing {
                    s.push_str(&format!(",\"pacing_bps\":{:.3}", p.bytes_per_sec() * 8.0));
                }
            }
            Event::Probe { key, value, .. } => {
                s.push_str(&format!(",\"key\":\"{key}\",\"value\":{value}"));
            }
            Event::FlowArrive { mss, jitter_bound, size, .. } => {
                s.push_str(&format!(",\"mss\":{mss}"));
                if let Some(b) = jitter_bound {
                    s.push_str(&format!(",\"jitter_bound_ns\":{}", b.as_nanos()));
                }
                if let Some(sz) = size {
                    s.push_str(&format!(",\"size\":{sz}"));
                }
            }
            Event::FlowComplete {
                sent,
                delivered,
                in_flight,
                lost,
                unresolved,
                spurious_rtx,
                ..
            } => {
                s.push_str(&format!(
                    ",\"sent\":{sent},\"delivered\":{delivered},\"in_flight\":{in_flight},\"lost\":{lost},\"unresolved\":{unresolved},\"spurious_rtx\":{spurious_rtx}"
                ));
            }
            Event::RunEnd { queued_pkts } => {
                s.push_str(&format!(",\"queued_pkts\":{queued_pkts}"));
            }
        }
        s.push('}');
        s
    }
}

/// A consumer of traced events.
///
/// The simulator calls [`TraceSink::event`] with a non-decreasing `at` and
/// [`TraceSink::finish`] exactly once at the end of the run, after the
/// final [`Event::RunEnd`].
pub trait TraceSink: Send {
    /// Observe one event at simulator time `at`.
    fn event(&mut self, at: Time, ev: &Event);

    /// The run is over; flush any buffered output.
    fn finish(&mut self, at: Time) {
        let _ = at;
    }
}

/// A factory producing a fresh sink per simulation. `SimConfig` must stay
/// `Clone` (the sweep engine expands a job list once and runs it at any
/// worker count), and a boxed sink is not — so configs carry one of these
/// and each `Network` builds its own sink at construction.
pub type TraceFactory = Arc<dyn Fn() -> Box<dyn TraceSink> + Send + Sync>;

/// A sink that discards every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _at: Time, _ev: &Event) {}
}

/// 64-bit FNV-1a. Hand-rolled (the workspace is dependency-free) and only
/// used for trace digests, where stability matters more than strength.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    fn bytes(&mut self, data: &[u8]) -> &mut Fnv64 {
        for &b in data {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
        self
    }

    fn u64(&mut self, v: u64) -> &mut Fnv64 {
        self.bytes(&v.to_le_bytes())
    }

    fn opt_u64(&mut self, v: Option<u64>) -> &mut Fnv64 {
        match v {
            None => self.u64(0),
            Some(v) => self.u64(1).u64(v),
        }
    }
}

/// Per-class event counts and order-sensitive FNV-1a hashes — the compact,
/// diff-friendly fingerprint of a trace that the golden-trace regression
/// tests record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceDigest {
    classes: BTreeMap<&'static str, (u64, Fnv64)>,
}

impl TraceDigest {
    fn observe(&mut self, at: Time, ev: &Event) {
        let entry = self.classes.entry(ev.class()).or_insert((0, Fnv64::new()));
        entry.0 += 1;
        ev.fold(at, &mut entry.1);
    }

    /// Number of events of `class` observed.
    pub fn count(&self, class: &str) -> u64 {
        self.classes.get(class).map(|(n, _)| *n).unwrap_or(0)
    }

    /// Total events across all classes.
    pub fn total(&self) -> u64 {
        self.classes.values().map(|(n, _)| n).sum()
    }

    /// The observed classes with their event counts, in class order.
    pub fn classes(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.classes.iter().map(|(&class, &(n, _))| (class, n))
    }

    /// Render as sorted `class count hash` lines — the golden-file format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (class, (count, hash)) in &self.classes {
            out.push_str(&format!("{class} {count} {:016x}\n", hash.0));
        }
        out
    }
}

struct RingInner {
    cap: usize,
    ring: VecDeque<(Time, Event)>,
    digest: TraceDigest,
}

/// A bounded in-memory ring of recent events plus an unbounded
/// [`TraceDigest`]. Cloning shares the underlying buffer, so tests keep one
/// handle and give the simulator's trace factory another.
#[derive(Clone)]
pub struct RingSink {
    inner: Arc<Mutex<RingInner>>,
}

impl RingSink {
    /// A ring retaining the last `cap` events (the digest counts them all).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            inner: Arc::new(Mutex::new(RingInner {
                cap: cap.max(1),
                ring: VecDeque::new(),
                digest: TraceDigest::default(),
            })),
        }
    }

    /// Snapshot of the retained (most recent) events.
    pub fn events(&self) -> Vec<(Time, Event)> {
        self.inner.lock().expect("ring sink mutex poisoned").ring.iter().cloned().collect()
    }

    /// Snapshot of the digest.
    pub fn digest(&self) -> TraceDigest {
        self.inner.lock().expect("ring sink mutex poisoned").digest.clone()
    }
}

impl TraceSink for RingSink {
    fn event(&mut self, at: Time, ev: &Event) {
        let mut g = self.inner.lock().expect("ring sink mutex poisoned");
        g.digest.observe(at, ev);
        if g.ring.len() == g.cap {
            g.ring.pop_front();
        }
        g.ring.push_back((at, ev.clone()));
    }
}

/// Streams one JSON object per line to a writer (usually a file).
pub struct JsonlSink {
    w: std::io::BufWriter<Box<dyn std::io::Write + Send>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::from_writer(Box::new(f)))
    }

    /// Wrap any writer.
    pub fn from_writer(w: Box<dyn std::io::Write + Send>) -> JsonlSink {
        JsonlSink {
            w: std::io::BufWriter::new(w),
        }
    }
}

impl TraceSink for JsonlSink {
    fn event(&mut self, at: Time, ev: &Event) {
        use std::io::Write;
        let _ = writeln!(self.w, "{}", ev.to_json(at));
    }

    fn finish(&mut self, _at: Time) {
        use std::io::Write;
        let _ = self.w.flush();
    }
}

/// What the auditor needs to know about one flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowAuditSpec {
    /// The flow's packet size: `cwnd` must never fall below it.
    pub mss: u64,
    /// The jitter policy's displacement bound `D` (`None` = unbounded
    /// policy, displacement unchecked).
    pub jitter_bound: Option<Dur>,
}

/// How many recent events the auditor reports as context on a violation.
const AUDIT_CONTEXT: usize = 16;

/// Per-flow counters the auditor tracks between [`Event::Ack`]s.
#[derive(Clone, Copy, Debug, Default)]
struct AckCounters {
    sent: u64,
    delivered: u64,
    lost: u64,
    spurious_rtx: u64,
}

/// A [`TraceSink`] that checks runtime invariants and panics with the
/// offending event plus recent context on the first violation:
///
/// 1. **Conservation of packets** — every accepted enqueue is eventually
///    dequeued or still queued when the run ends (cross-checked against the
///    bottleneck's own final backlog in [`Event::RunEnd`]).
/// 2. **FIFO order at the bottleneck** — packets dequeue in exactly the
///    order they enqueued.
/// 3. **Bounded jitter displacement** — every hold satisfies
///    `release − arrive ≤ D` for the flow's declared bound, and releases
///    never reorder a flow.
/// 4. **Monotonic sim clock** — event timestamps never decrease.
/// 5. **Minimum window** — `cwnd ≥ 1 MSS` at every CCA update.
/// 6. **Per-flow byte accounting** — the exact identity
///    `sent + spurious_rtx = delivered + in_flight + lost + unresolved`
///    holds at every ACK, and the lifetime counters are monotone.
/// 7. **Flow lifecycle** — workload-spawned flows register via
///    [`Event::FlowArrive`] in dense id order, and a retired flow
///    ([`Event::FlowComplete`]) leaks nothing: zero bytes in flight, the
///    byte identity balanced, lifetime counters extending the last ACK.
///
/// Failing fast inside the event loop means the panic lands in the sweep
/// engine's per-job isolation (`par::map` catches it) or aborts a CLI run
/// with the full context — either way the violation is tied to the exact
/// simulated instant it occurred.
pub struct Auditor {
    flows: Vec<FlowAuditSpec>,
    inner: Option<Box<dyn TraceSink>>,
    last_at: Option<Time>,
    /// (flow, seq) of queued packets, in enqueue order.
    fifo: VecDeque<(FlowId, u64)>,
    enqueued: u64,
    dequeued: u64,
    /// Last jitter release per flow (no-reorder check).
    last_release: Vec<Option<Time>>,
    prev: Vec<AckCounters>,
    recent: VecDeque<(Time, Event)>,
}

impl Auditor {
    /// An auditor for the given statically-configured flows, forwarding
    /// events to `inner`. Workload-spawned flows register later via
    /// [`Event::FlowArrive`].
    pub fn new(flows: Vec<FlowAuditSpec>, inner: Option<Box<dyn TraceSink>>) -> Auditor {
        let n = flows.len();
        Auditor {
            flows,
            inner,
            last_at: None,
            fifo: VecDeque::new(),
            enqueued: 0,
            dequeued: 0,
            last_release: vec![None; n],
            prev: vec![AckCounters::default(); n],
            recent: VecDeque::new(),
        }
    }

    fn fail(&self, at: Time, ev: &Event, invariant: &str, detail: String) -> ! {
        let mut ctx = String::new();
        for (t, e) in &self.recent {
            ctx.push_str(&format!("  {} {}\n", t.as_nanos(), e.to_json(*t)));
        }
        panic!(
            "audit: {invariant} violated at t={}ns on {}: {detail}\nrecent events:\n{ctx}  {} {}",
            at.as_nanos(),
            ev.class(),
            at.as_nanos(),
            ev.to_json(at),
        );
    }

    fn spec(&self, at: Time, ev: &Event, flow: FlowId) -> FlowAuditSpec {
        match self.flows.get(flow.index()) {
            Some(s) => *s,
            None => self.fail(at, ev, "flow-id", format!("unknown flow {flow}")),
        }
    }
}

impl TraceSink for Auditor {
    fn event(&mut self, at: Time, ev: &Event) {
        // Invariant 4: monotonic clock.
        if let Some(last) = self.last_at {
            if at < last {
                self.fail(
                    at,
                    ev,
                    "monotonic-clock",
                    format!("time went backwards ({} < {})", at.as_nanos(), last.as_nanos()),
                );
            }
        }
        self.last_at = Some(at);

        match ev {
            Event::Enqueue { flow, seq, .. } => {
                self.spec(at, ev, *flow);
                self.fifo.push_back((*flow, *seq));
                self.enqueued += 1;
            }
            Event::Dequeue { flow, seq, .. } => {
                // Invariant 2: FIFO order.
                match self.fifo.pop_front() {
                    Some(head) if head == (*flow, *seq) => {}
                    Some((hf, hs)) => self.fail(
                        at,
                        ev,
                        "fifo-order",
                        format!("dequeued flow {flow} seq {seq} but head of queue is flow {hf} seq {hs}"),
                    ),
                    None => self.fail(
                        at,
                        ev,
                        "conservation",
                        format!("dequeued flow {flow} seq {seq} that was never enqueued"),
                    ),
                }
                self.dequeued += 1;
            }
            Event::JitterHold { flow, seq, arrive, release } => {
                let spec = self.spec(at, ev, *flow);
                if release < arrive {
                    self.fail(
                        at,
                        ev,
                        "jitter-bound",
                        format!(
                            "flow {flow} seq {seq} released before it arrived ({} < {})",
                            release.as_nanos(),
                            arrive.as_nanos()
                        ),
                    );
                }
                if let Some(bound) = spec.jitter_bound {
                    let disp = release.since(*arrive);
                    if disp > bound {
                        self.fail(
                            at,
                            ev,
                            "jitter-bound",
                            format!(
                                "flow {flow} seq {seq} displaced {} ns > bound {} ns",
                                disp.as_nanos(),
                                bound.as_nanos()
                            ),
                        );
                    }
                }
                if let Some(prev) = self.last_release[flow.index()] {
                    if *release < prev {
                        self.fail(
                            at,
                            ev,
                            "jitter-reorder",
                            format!(
                                "flow {flow} seq {seq} released at {} before previous release {}",
                                release.as_nanos(),
                                prev.as_nanos()
                            ),
                        );
                    }
                }
                self.last_release[flow.index()] = Some(*release);
            }
            Event::Ack {
                flow,
                sent,
                delivered,
                in_flight,
                lost,
                unresolved,
                spurious_rtx,
                ..
            } => {
                // Invariant 6: byte accounting.
                self.spec(at, ev, *flow);
                let prev = self.prev[flow.index()];
                if *sent < prev.sent
                    || *delivered < prev.delivered
                    || *lost < prev.lost
                    || *spurious_rtx < prev.spurious_rtx
                {
                    self.fail(
                        at,
                        ev,
                        "byte-accounting",
                        format!(
                            "flow {flow} lifetime counters regressed (prev sent={} delivered={} lost={} spurious={})",
                            prev.sent, prev.delivered, prev.lost, prev.spurious_rtx
                        ),
                    );
                }
                if sent + spurious_rtx != delivered + in_flight + lost + unresolved {
                    self.fail(
                        at,
                        ev,
                        "byte-accounting",
                        format!(
                            "flow {flow}: sent({sent}) + spurious_rtx({spurious_rtx}) != delivered({delivered}) + in_flight({in_flight}) + lost({lost}) + unresolved({unresolved})"
                        ),
                    );
                }
                self.prev[flow.index()] = AckCounters {
                    sent: *sent,
                    delivered: *delivered,
                    lost: *lost,
                    spurious_rtx: *spurious_rtx,
                };
            }
            Event::FlowArrive { flow, mss, jitter_bound, .. } => {
                // Invariant 7: flow lifecycle. Ids are dense and arrive in
                // order; a gap or a duplicate means the workload scheduler
                // and the trace disagree about flow identity.
                if flow.index() != self.flows.len() {
                    self.fail(
                        at,
                        ev,
                        "flow-id",
                        format!(
                            "flow {flow} arrived out of order (next dense index is {})",
                            self.flows.len()
                        ),
                    );
                }
                self.flows.push(FlowAuditSpec { mss: *mss, jitter_bound: *jitter_bound });
                self.last_release.push(None);
                self.prev.push(AckCounters::default());
            }
            Event::FlowComplete {
                flow,
                sent,
                delivered,
                in_flight,
                lost,
                unresolved,
                spurious_rtx,
            } => {
                // Invariant 7: a retired flow leaks nothing. Everything the
                // sender ever put on the wire must be resolved (delivered,
                // lost, or unresolved-at-receiver) — zero bytes in flight —
                // and the final snapshot must extend the last ACK's
                // monotone lifetime counters.
                self.spec(at, ev, *flow);
                if *in_flight != 0 {
                    self.fail(
                        at,
                        ev,
                        "flow-retire",
                        format!("flow {flow} retired with {in_flight} bytes still in flight"),
                    );
                }
                if sent + spurious_rtx != delivered + in_flight + lost + unresolved {
                    self.fail(
                        at,
                        ev,
                        "flow-retire",
                        format!(
                            "flow {flow} retired unbalanced: sent({sent}) + spurious_rtx({spurious_rtx}) != delivered({delivered}) + in_flight({in_flight}) + lost({lost}) + unresolved({unresolved})"
                        ),
                    );
                }
                let prev = self.prev[flow.index()];
                if *sent < prev.sent
                    || *delivered < prev.delivered
                    || *lost < prev.lost
                    || *spurious_rtx < prev.spurious_rtx
                {
                    self.fail(
                        at,
                        ev,
                        "flow-retire",
                        format!(
                            "flow {flow} retirement snapshot regressed lifetime counters (prev sent={} delivered={} lost={} spurious={})",
                            prev.sent, prev.delivered, prev.lost, prev.spurious_rtx
                        ),
                    );
                }
                self.prev[flow.index()] = AckCounters {
                    sent: *sent,
                    delivered: *delivered,
                    lost: *lost,
                    spurious_rtx: *spurious_rtx,
                };
            }
            Event::CwndUpdate { flow, cwnd, .. } => {
                // Invariant 5: cwnd ≥ 1 MSS.
                let spec = self.spec(at, ev, *flow);
                if *cwnd < spec.mss {
                    self.fail(
                        at,
                        ev,
                        "min-cwnd",
                        format!("flow {flow} cwnd {cwnd} < 1 MSS ({})", spec.mss),
                    );
                }
            }
            Event::RunEnd { queued_pkts } => {
                // Invariant 1: conservation, settled exactly at the end.
                let residual = self.fifo.len() as u64;
                if residual != *queued_pkts || self.enqueued != self.dequeued + residual {
                    self.fail(
                        at,
                        ev,
                        "conservation",
                        format!(
                            "enqueued {} = dequeued {} + residual {residual}, but the bottleneck reports {queued_pkts} queued",
                            self.enqueued, self.dequeued
                        ),
                    );
                }
            }
            Event::Send { .. } | Event::Drop { .. } | Event::JitterRelease { .. }
            | Event::Rto { .. } | Event::Probe { .. } => {}
        }

        if self.recent.len() == AUDIT_CONTEXT {
            self.recent.pop_front();
        }
        self.recent.push_back((at, ev.clone()));
        if let Some(inner) = &mut self.inner {
            inner.event(at, ev);
        }
    }

    fn finish(&mut self, at: Time) {
        if let Some(inner) = &mut self.inner {
            inner.finish(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Vec<FlowAuditSpec> {
        vec![FlowAuditSpec {
            mss: 1500,
            jitter_bound: Some(Dur::from_millis(10)),
        }]
    }

    fn fid(i: usize) -> FlowId {
        FlowId::from_index(i)
    }

    fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> Option<String> {
        std::panic::catch_unwind(f).err().map(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        })
    }

    fn enq(seq: u64) -> Event {
        Event::Enqueue { flow: fid(0), seq, bytes: 1500, queued_bytes: 1500 }
    }

    fn deq(seq: u64) -> Event {
        Event::Dequeue { flow: fid(0), seq, bytes: 1500, queued_bytes: 0 }
    }

    #[test]
    fn clean_stream_passes() {
        let mut a = Auditor::new(spec(), None);
        let t = Time::from_millis(1);
        a.event(t, &enq(0));
        a.event(Time::from_millis(2), &deq(0));
        a.event(Time::from_millis(2), &Event::JitterHold {
            flow: fid(0),
            seq: 0,
            arrive: Time::from_millis(42),
            release: Time::from_millis(45),
        });
        a.event(Time::from_millis(45), &Event::Ack {
            flow: fid(0),
            cum_seq: Some(0),
            rtt: Some(Dur::from_millis(44)),
            sent: 1500,
            delivered: 1500,
            in_flight: 0,
            lost: 0,
            unresolved: 0,
            spurious_rtx: 0,
        });
        a.event(Time::from_millis(45), &Event::CwndUpdate { flow: fid(0), cwnd: 3000, pacing: None });
        a.event(Time::from_secs(1), &Event::RunEnd { queued_pkts: 0 });
        a.finish(Time::from_secs(1));
    }

    #[test]
    fn fifo_violation_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &enq(0));
            a.event(Time::from_millis(1), &enq(1));
            a.event(Time::from_millis(2), &deq(1)); // out of order
        })
        .expect("must panic");
        assert!(msg.contains("fifo-order"), "{msg}");
        assert!(msg.contains("recent events"), "{msg}");
    }

    #[test]
    fn conservation_violation_detected() {
        // A dequeue that was never enqueued.
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &deq(7));
        })
        .expect("must panic");
        assert!(msg.contains("conservation"), "{msg}");

        // A packet that vanished from the queue: RunEnd disagrees.
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &enq(0));
            a.event(Time::from_secs(1), &Event::RunEnd { queued_pkts: 0 });
        })
        .expect("must panic");
        assert!(msg.contains("conservation"), "{msg}");
    }

    #[test]
    fn jitter_bound_violation_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &Event::JitterHold {
                flow: fid(0),
                seq: 0,
                arrive: Time::from_millis(40),
                release: Time::from_millis(60), // 20 ms > 10 ms bound
            });
        })
        .expect("must panic");
        assert!(msg.contains("jitter-bound"), "{msg}");
    }

    #[test]
    fn jitter_reorder_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &Event::JitterHold {
                flow: fid(0),
                seq: 0,
                arrive: Time::from_millis(40),
                release: Time::from_millis(45),
            });
            a.event(Time::from_millis(2), &Event::JitterHold {
                flow: fid(0),
                seq: 1,
                arrive: Time::from_millis(41),
                release: Time::from_millis(44), // before seq 0's release
            });
        })
        .expect("must panic");
        assert!(msg.contains("jitter-reorder"), "{msg}");
    }

    #[test]
    fn clock_regression_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(5), &enq(0));
            a.event(Time::from_millis(4), &deq(0));
        })
        .expect("must panic");
        assert!(msg.contains("monotonic-clock"), "{msg}");
    }

    #[test]
    fn min_cwnd_violation_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &Event::CwndUpdate { flow: fid(0), cwnd: 1499, pacing: None });
        })
        .expect("must panic");
        assert!(msg.contains("min-cwnd"), "{msg}");
    }

    #[test]
    fn byte_accounting_violation_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &Event::Ack {
                flow: fid(0),
                cum_seq: Some(0),
                rtt: None,
                sent: 3000,
                delivered: 1500,
                in_flight: 0, // 1500 bytes unaccounted for
                lost: 0,
                unresolved: 0,
                spurious_rtx: 0,
            });
        })
        .expect("must panic");
        assert!(msg.contains("byte-accounting"), "{msg}");
    }

    #[test]
    fn counter_regression_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            let ack = |sent: u64, delivered: u64| Event::Ack {
                flow: fid(0),
                cum_seq: Some(0),
                rtt: None,
                sent,
                delivered,
                in_flight: sent - delivered,
                lost: 0,
                unresolved: 0,
                spurious_rtx: 0,
            };
            a.event(Time::from_millis(1), &ack(3000, 1500));
            a.event(Time::from_millis(2), &ack(1500, 1500)); // sent regressed
        })
        .expect("must panic");
        assert!(msg.contains("regressed"), "{msg}");
    }

    #[test]
    fn auditor_forwards_to_inner_sink() {
        let ring = RingSink::new(8);
        let mut a = Auditor::new(spec(), Some(Box::new(ring.clone())));
        a.event(Time::from_millis(1), &enq(0));
        a.event(Time::from_millis(2), &deq(0));
        assert_eq!(ring.digest().total(), 2);
        assert_eq!(ring.digest().count("enqueue"), 1);
    }

    #[test]
    fn ring_keeps_tail_but_counts_all() {
        let ring = RingSink::new(4);
        let mut sink = ring.clone();
        for i in 0..10 {
            sink.event(Time::from_millis(i), &enq(i));
        }
        assert_eq!(ring.digest().count("enqueue"), 10);
        let ev = ring.events();
        assert_eq!(ev.len(), 4);
        assert!(matches!(ev[0].1, Event::Enqueue { seq: 6, .. }));
    }

    #[test]
    fn digest_is_order_sensitive_and_deterministic() {
        let run = |seqs: &[u64]| {
            let ring = RingSink::new(4);
            let mut sink = ring.clone();
            for (i, &s) in seqs.iter().enumerate() {
                sink.event(Time::from_millis(i as u64), &enq(s));
            }
            ring.digest()
        };
        assert_eq!(run(&[1, 2, 3]).render(), run(&[1, 2, 3]).render());
        assert_ne!(run(&[1, 2, 3]).render(), run(&[2, 1, 3]).render());
    }

    #[test]
    fn digest_render_format() {
        let ring = RingSink::new(4);
        let mut sink = ring.clone();
        sink.event(Time::from_millis(1), &enq(0));
        sink.event(Time::from_millis(2), &deq(0));
        let text = ring.digest().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Classes render sorted; each line is `class count hash`.
        assert!(lines[0].starts_with("dequeue 1 "), "{text}");
        assert!(lines[1].starts_with("enqueue 1 "), "{text}");
        assert_eq!(lines[0].split_whitespace().count(), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("trace_jsonl_selftest");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.event(Time::from_millis(1), &enq(0));
        sink.event(Time::from_millis(2), &Event::Probe { flow: fid(0), key: "x", value: 1.5 });
        sink.finish(Time::from_millis(2));
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"enqueue\""), "{text}");
        assert!(lines[1].contains("\"key\":\"x\""), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retransmit_classifies_separately() {
        let fresh = Event::Send { flow: fid(0), seq: 1, bytes: 1500, retransmit: false };
        let retx = Event::Send { flow: fid(0), seq: 1, bytes: 1500, retransmit: true };
        assert_eq!(fresh.class(), "send");
        assert_eq!(retx.class(), "retransmit");
    }

    fn arrive(i: usize) -> Event {
        Event::FlowArrive {
            flow: fid(i),
            mss: 1500,
            jitter_bound: None,
            size: Some(3000),
        }
    }

    #[test]
    fn flow_arrive_registers_a_new_flow() {
        // Flow 1 is unknown at construction (spec() declares only flow 0);
        // after FlowArrive its ACKs and cwnd updates audit cleanly.
        let mut a = Auditor::new(spec(), None);
        a.event(Time::from_millis(1), &arrive(1));
        a.event(Time::from_millis(2), &Event::CwndUpdate {
            flow: fid(1),
            cwnd: 3000,
            pacing: None,
        });
        a.event(Time::from_millis(3), &Event::Ack {
            flow: fid(1),
            cum_seq: Some(0),
            rtt: None,
            sent: 1500,
            delivered: 1500,
            in_flight: 0,
            lost: 0,
            unresolved: 0,
            spurious_rtx: 0,
        });
    }

    #[test]
    fn unregistered_flow_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &Event::CwndUpdate {
                flow: fid(5),
                cwnd: 3000,
                pacing: None,
            });
        })
        .expect("must panic");
        assert!(msg.contains("unknown flow 5"), "{msg}");
    }

    #[test]
    fn flow_arrive_out_of_dense_order_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &arrive(2)); // next dense index is 1
        })
        .expect("must panic");
        assert!(msg.contains("arrived out of order"), "{msg}");
    }

    #[test]
    fn flow_complete_with_clean_accounting_passes() {
        let mut a = Auditor::new(spec(), None);
        a.event(Time::from_millis(5), &Event::FlowComplete {
            flow: fid(0),
            sent: 4500,
            delivered: 3000,
            in_flight: 0,
            lost: 1500,
            unresolved: 0,
            spurious_rtx: 0,
        });
    }

    #[test]
    fn flow_complete_with_in_flight_leak_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(5), &Event::FlowComplete {
                flow: fid(0),
                sent: 3000,
                delivered: 1500,
                in_flight: 1500, // retired while bytes are still on the wire
                lost: 0,
                unresolved: 0,
                spurious_rtx: 0,
            });
        })
        .expect("must panic");
        assert!(msg.contains("flow-retire"), "{msg}");
        assert!(msg.contains("still in flight"), "{msg}");
    }

    #[test]
    fn flow_complete_counter_regression_detected() {
        let msg = catch(|| {
            let mut a = Auditor::new(spec(), None);
            a.event(Time::from_millis(1), &Event::Ack {
                flow: fid(0),
                cum_seq: Some(1),
                rtt: None,
                sent: 3000,
                delivered: 3000,
                in_flight: 0,
                lost: 0,
                unresolved: 0,
                spurious_rtx: 0,
            });
            a.event(Time::from_millis(2), &Event::FlowComplete {
                flow: fid(0),
                sent: 1500, // below the last ACK's lifetime counter
                delivered: 1500,
                in_flight: 0,
                lost: 0,
                unresolved: 0,
                spurious_rtx: 0,
            });
        })
        .expect("must panic");
        assert!(msg.contains("flow-retire"), "{msg}");
        assert!(msg.contains("regressed"), "{msg}");
    }
}

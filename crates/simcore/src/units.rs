//! Simulated-time and rate units.
//!
//! All simulated time is integer **nanoseconds**. The paper's scenarios span
//! sub-millisecond transmission delays (a 1500-byte packet at 960 Mbit/s
//! takes 12.5 µs) up to minutes of simulated time; nanoseconds cover both
//! with exact integer arithmetic, which keeps event ordering deterministic.
//!
//! [`Rate`] is stored as `f64` bytes/second. Rates are *measurements and
//! parameters*, never used for event ordering, so floating point is safe
//! here; converting a (rate, byte-count) pair to a duration rounds to whole
//! nanoseconds in one place ([`Rate::tx_time`]) so the rounding policy is
//! consistent everywhere.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of simulated time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }
    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }
    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }
    /// Seconds as floating point (for reporting and rate math only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Milliseconds as floating point.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    /// Duration elapsed since `earlier`. Panics if `earlier` is later than
    /// `self` — a time going backwards is always a simulator bug.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self
            .0
            .checked_sub(earlier.0)
            .expect("Time::since: earlier is in the future"))
    }
    /// `self - earlier` if non-negative, else `None`.
    pub fn checked_since(self, earlier: Time) -> Option<Dur> {
        self.0.checked_sub(earlier.0).map(Dur)
    }
    /// Saturating add (sentinel-safe).
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);
    /// Largest representable duration (sentinel).
    pub const MAX: Dur = Dur(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }
    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }
    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }
    /// Construct from floating-point seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero (delay can't be negative).
    pub fn from_secs_f64(s: f64) -> Dur {
        if s <= 0.0 || !s.is_finite() {
            return Dur::ZERO;
        }
        Dur((s * 1e9).round() as u64)
    }
    /// Construct from floating-point milliseconds (clamping like
    /// [`Dur::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Dur {
        Dur::from_secs_f64(ms / 1e3)
    }
    /// Seconds as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Milliseconds as floating point.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    /// `self - other` clamped at zero.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
    /// Scale by a non-negative factor, rounding to whole nanoseconds.
    pub fn mul_f64(self, k: f64) -> Dur {
        assert!(k >= 0.0, "Dur::mul_f64: negative factor");
        Dur((self.0 as f64 * k).round() as u64)
    }
    /// The larger of two durations.
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }
    /// The smaller of two durations.
    pub fn min(self, other: Dur) -> Dur {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}
impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}
impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, d: Dur) -> Time {
        Time(self.0.checked_sub(d.0).expect("Time - Dur underflow"))
    }
}
impl Add for Dur {
    type Output = Dur;
    fn add(self, o: Dur) -> Dur {
        Dur(self.0 + o.0)
    }
}
impl AddAssign for Dur {
    fn add_assign(&mut self, o: Dur) {
        self.0 += o.0;
    }
}
impl Sub for Dur {
    type Output = Dur;
    fn sub(self, o: Dur) -> Dur {
        Dur(self.0.checked_sub(o.0).expect("Dur - Dur underflow"))
    }
}
impl SubAssign for Dur {
    fn sub_assign(&mut self, o: Dur) {
        *self = *self - o;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

/// A data rate, stored as bytes per second.
///
/// The paper quotes everything in Mbit/s; [`Rate::from_mbps`] and
/// [`Rate::mbps`] are the idiomatic constructors/accessors here.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// Zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// Construct from bytes per second.
    pub fn from_bytes_per_sec(b: f64) -> Rate {
        assert!(b >= 0.0 && b.is_finite(), "Rate must be finite and >= 0");
        Rate(b)
    }
    /// Construct from bits per second.
    pub fn from_bps(bits: f64) -> Rate {
        Rate::from_bytes_per_sec(bits / 8.0)
    }
    /// Construct from megabits per second (the paper's unit).
    pub fn from_mbps(mbps: f64) -> Rate {
        Rate::from_bps(mbps * 1e6)
    }
    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }
    /// Bits per second.
    pub fn bps(self) -> f64 {
        self.0 * 8.0
    }
    /// Megabits per second.
    pub fn mbps(self) -> f64 {
        self.0 * 8.0 / 1e6
    }
    /// Packets per second for a given packet size.
    pub fn pkts_per_sec(self, pkt_bytes: u64) -> f64 {
        self.0 / pkt_bytes as f64
    }
    /// Time to transmit `bytes` at this rate. Zero rate yields
    /// [`Dur::MAX`] (the link is stalled).
    pub fn tx_time(self, bytes: u64) -> Dur {
        if self.0 <= 0.0 {
            return Dur::MAX;
        }
        Dur::from_secs_f64(bytes as f64 / self.0)
    }
    /// Bytes transferred over `d` at this rate (floor).
    pub fn bytes_over(self, d: Dur) -> u64 {
        (self.0 * d.as_secs_f64()).floor() as u64
    }
    /// Bandwidth-delay product in bytes for a given RTT.
    pub fn bdp_bytes(self, rtt: Dur) -> u64 {
        (self.0 * rtt.as_secs_f64()).round() as u64
    }
    /// Throughput from a byte count delivered over an interval.
    pub fn from_transfer(bytes: u64, elapsed: Dur) -> Rate {
        if elapsed == Dur::ZERO {
            return Rate::ZERO;
        }
        Rate::from_bytes_per_sec(bytes as f64 / elapsed.as_secs_f64())
    }
    /// Scale by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Rate {
        assert!(k >= 0.0 && k.is_finite());
        Rate(self.0 * k)
    }
    /// Elementwise max.
    pub fn max(self, other: Rate) -> Rate {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
    /// Elementwise min.
    pub fn min(self, other: Rate) -> Rate {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, o: Rate) -> Rate {
        Rate(self.0 + o.0)
    }
}
impl Sub for Rate {
    type Output = Rate;
    fn sub(self, o: Rate) -> Rate {
        Rate((self.0 - o.0).max(0.0))
    }
}
impl Mul<f64> for Rate {
    type Output = Rate;
    fn mul(self, k: f64) -> Rate {
        self.mul_f64(k)
    }
}
impl Div<f64> for Rate {
    type Output = Rate;
    fn div(self, k: f64) -> Rate {
        assert!(k > 0.0);
        Rate(self.0 / k)
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Mbps", self.mbps())
    }
}
impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} Mbit/s", self.mbps())
    }
}

/// Default MTU-sized packet used throughout the reproduction, matching the
/// paper's 1500-byte packets (§4.1).
pub const DEFAULT_PKT_BYTES: u64 = 1500;

/// Widen a byte (or packet) count to `f64` for rate math.
///
/// This and its inverses below are the *named* unit casts the `simlint`
/// `unit-cast` rule steers netsim code toward: a raw `as f64` says nothing
/// about what quantity is crossing the int/float boundary or what happens
/// to fractional values, so every conversion routes through one of these
/// helpers where the unit and rounding policy are spelled out once.
pub fn bytes_as_f64(n: u64) -> f64 {
    n as f64
}

/// Truncate a non-negative `f64` byte quantity back to a whole count.
///
/// Same semantics as the raw `as u64` cast it replaces: truncation toward
/// zero, NaN → 0, saturation at `u64::MAX`. Callers that want rounding
/// should round before converting.
pub fn f64_as_bytes(x: f64) -> u64 {
    x as u64
}

/// Widen a `usize` count (queue lengths, packet tallies) to `u64`.
pub fn count_as_u64(n: usize) -> u64 {
    n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(Time::from_secs(2), Time(2_000_000_000));
        assert_eq!(Time::from_millis(2000), Time::from_secs(2));
        assert_eq!(Time::from_micros(2_000_000), Time::from_secs(2));
    }

    #[test]
    fn time_since() {
        let a = Time::from_millis(100);
        let b = Time::from_millis(250);
        assert_eq!(b.since(a), Dur::from_millis(150));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    #[should_panic]
    fn time_since_panics_backwards() {
        let _ = Time::from_millis(1).since(Time::from_millis(2));
    }

    #[test]
    fn dur_float_roundtrip() {
        let d = Dur::from_secs_f64(0.060);
        assert_eq!(d, Dur::from_millis(60));
        assert!((d.as_millis_f64() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn dur_negative_clamps() {
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
    }

    #[test]
    fn dur_arith() {
        let a = Dur::from_millis(10);
        let b = Dur::from_millis(4);
        assert_eq!(a + b, Dur::from_millis(14));
        assert_eq!(a - b, Dur::from_millis(6));
        assert_eq!(b.saturating_sub(a), Dur::ZERO);
        assert_eq!(a * 3, Dur::from_millis(30));
        assert_eq!(a / 2, Dur::from_millis(5));
        assert_eq!(a.mul_f64(0.5), Dur::from_millis(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn rate_units() {
        let r = Rate::from_mbps(120.0);
        assert!((r.mbps() - 120.0).abs() < 1e-9);
        assert!((r.bps() - 120e6).abs() < 1e-3);
        assert!((r.bytes_per_sec() - 15e6).abs() < 1e-3);
        assert!((r.pkts_per_sec(1500) - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn rate_tx_time() {
        // 1500 bytes at 12 Mbit/s = 1 ms.
        let r = Rate::from_mbps(12.0);
        assert_eq!(r.tx_time(1500), Dur::from_millis(1));
        assert_eq!(Rate::ZERO.tx_time(1), Dur::MAX);
    }

    #[test]
    fn rate_bdp() {
        // 120 Mbit/s * 40 ms = 600 kB.
        let r = Rate::from_mbps(120.0);
        assert_eq!(r.bdp_bytes(Dur::from_millis(40)), 600_000);
    }

    #[test]
    fn rate_from_transfer() {
        let r = Rate::from_transfer(15_000_000, Dur::from_secs(1));
        assert!((r.mbps() - 120.0).abs() < 1e-9);
        assert_eq!(Rate::from_transfer(100, Dur::ZERO), Rate::ZERO);
    }

    #[test]
    fn rate_bytes_over() {
        let r = Rate::from_mbps(12.0); // 1.5e6 B/s
        assert_eq!(r.bytes_over(Dur::from_millis(10)), 15_000);
    }

    #[test]
    fn rate_sub_saturates() {
        let a = Rate::from_mbps(1.0);
        let b = Rate::from_mbps(2.0);
        assert_eq!(a - b, Rate::ZERO);
    }

    #[test]
    fn named_casts_match_raw_semantics() {
        assert_eq!(bytes_as_f64(1500), 1500.0);
        assert_eq!(f64_as_bytes(12.9), 12); // truncates, never rounds
        assert_eq!(f64_as_bytes(-1.0), 0);
        assert_eq!(f64_as_bytes(f64::NAN), 0);
        assert_eq!(f64_as_bytes(f64::INFINITY), u64::MAX);
        assert_eq!(count_as_u64(7usize), 7u64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rate::from_mbps(1.5)), "1.500 Mbit/s");
        assert_eq!(format!("{}", Dur::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Dur::from_secs(5)), "5.000s");
    }
}

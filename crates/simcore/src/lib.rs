//! # simcore — deterministic discrete-event simulation core
//!
//! Foundation crate for the reproduction of *Starvation in End-to-End
//! Congestion Control* (SIGCOMM 2022). Everything above this crate — the
//! congestion-control algorithms (`cca`), the packet-level link emulator
//! (`netsim`), the theorem machinery (`starvation`) and the model checker
//! (`ccmc`) — is built on these primitives:
//!
//! * [`units`] — strongly-typed simulated time ([`Time`], [`Dur`]) and
//!   rates ([`Rate`]). Time is integer nanoseconds, so event ordering is
//!   exact and runs are bit-reproducible.
//! * [`engine`] — the event queue API with deterministic tie-breaking,
//!   backed by [`wheel`].
//! * [`flow`] — the [`FlowId`] newtype keying all per-flow state (trace
//!   events, audit specs, per-flow results) with dense deterministic ids.
//! * [`wheel`] — a hierarchical timer wheel: `O(1)` near-horizon
//!   schedule/pop with the exact `(time, seq)` firing order of a binary
//!   heap, plus an overflow heap for the far future.
//! * [`inlinevec`] — a small-capacity inline vector that spills to the heap
//!   only past `N` elements; used to keep per-event hot paths in `netsim`
//!   allocation-free.
//! * [`par`] — a scoped worker pool over an indexed job queue: order-
//!   preserving, panic-isolating, std-only. The execution layer under the
//!   experiment sweeps (`starvation::sweep`).
//! * [`rng`] — a self-contained xoshiro256** PRNG so simulation results do
//!   not depend on external crate versions.
//! * [`filter`] — windowed min/max and EWMA filters shared by the CCAs
//!   (BBR's bandwidth max-filter, Copa's standing-RTT min-filter, …).
//! * [`series`] — time-series recording used for RTT/rate trajectories
//!   (Figures 1, 5, 6 of the paper).
//! * [`stats`] — summary statistics, percentiles and Jain's fairness index,
//!   plus the fixed-bucket [`stats::Histogram`] the sweep service folds
//!   row summaries into (streaming aggregation, no per-row allocation).
//! * [`store`] — the content-addressed result store behind incremental
//!   sweeps: 128-bit FNV job digests over (canonical config bytes, seed,
//!   code tag), crash-safe write-temp-then-rename entries with validated
//!   headers, and atomic sweep checkpoints ([`store::Manifest`]).
//! * [`trace`] — structured event tracing ([`trace::TraceSink`] with null,
//!   ring-buffer and JSON-lines sinks) and the runtime invariant
//!   [`trace::Auditor`]. Zero-cost when disabled: the simulator holds an
//!   `Option` that stays `None` by default.
//!
//! The design follows the smoltcp school: event-driven, no allocation
//! tricks, no async runtime (the workload is CPU-bound and must be
//! deterministic), simple and robust.

pub mod engine;
pub mod filter;
pub mod flow;
pub mod inlinevec;
pub mod par;
pub mod rng;
pub mod series;
pub mod stats;
pub mod store;
pub mod trace;
pub mod units;
pub mod wheel;

pub use engine::EventQueue;
pub use flow::FlowId;
pub use inlinevec::InlineVec;
pub use rng::Xoshiro256;
pub use series::TimeSeries;
pub use units::{Dur, Rate, Time};

//! Deterministic parallel execution: a scoped worker pool over an indexed
//! job queue.
//!
//! Every §5 reproduction is a sweep of *independent* deterministic
//! simulations, so parallelism must never be observable in the results:
//!
//! * **Order preservation** — job `i`'s report lands at index `i` of the
//!   returned vector no matter which worker ran it or when it finished.
//!   A sweep at `jobs = 16` produces the same rows, in the same order, as
//!   the same sweep at `jobs = 1`.
//! * **Determinism** — workers share nothing but the job counter. Each job
//!   closure owns its inputs (seeds included), so scheduling cannot leak
//!   into simulation state.
//! * **Panic isolation** — a diverging scenario panics *its job*, not the
//!   sweep: the panic is caught, its message captured into
//!   [`JobOutcome::Panicked`], and the remaining jobs keep running.
//! * **Progress** — an optional log callback observes completions (index,
//!   done/total, per-job elapsed time) as they happen; reporting order may
//!   differ across runs, results never do.
//!
//! Std-only, scoped (no `'static` bounds), no work stealing: workers pull
//! the next index from an atomic counter, which keeps the scheduler trivial
//! and the load balance good enough for jobs that each run for milliseconds
//! to minutes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Worker count to use when the caller does not specify one: the machine's
/// available parallelism (1 if it cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// How one job ended.
#[derive(Clone, Debug)]
pub enum JobOutcome<T> {
    /// The job returned a value.
    Ok(T),
    /// The job panicked; the payload's message, when it was a string.
    Panicked(String),
}

impl<T> JobOutcome<T> {
    /// The value, if the job completed.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            JobOutcome::Panicked(_) => None,
        }
    }

    /// The value, or a panic repeating the job's own panic message.
    pub fn expect(self, what: &str) -> T {
        match self {
            JobOutcome::Ok(v) => v,
            JobOutcome::Panicked(msg) => panic!("{what}: job panicked: {msg}"),
        }
    }

    /// True if the job completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }
}

/// One job's report: its queue index, outcome, and wall time.
#[derive(Clone, Debug)]
pub struct JobReport<T> {
    /// Position in the job queue (== position in the result vector).
    pub index: usize,
    /// Value or captured panic.
    pub outcome: JobOutcome<T>,
    /// Wall-clock time the job ran for.
    pub elapsed: Duration,
}

/// A completion event handed to the progress callback.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Index of the job that just finished.
    pub index: usize,
    /// Jobs finished so far (including this one).
    pub done: usize,
    /// Total jobs in the queue.
    pub total: usize,
    /// This job's wall time.
    pub elapsed: Duration,
    /// False if the job panicked.
    pub ok: bool,
}

/// Progress callback type: observes [`Progress`] events from worker threads.
pub type ProgressFn<'a> = &'a (dyn Fn(Progress) + Sync);

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f(0), f(1), …, f(n-1)` across `jobs` workers, returning the reports
/// in index order. `jobs` is clamped to `[1, n]`; at 1 the queue runs on the
/// calling thread (no threads are spawned, so `jobs = 1` is also the
/// zero-overhead serial baseline).
pub fn map_indexed<T, F>(n: usize, jobs: usize, f: F, log: Option<ProgressFn<'_>>) -> Vec<JobReport<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_pool(n, jobs, f, log) // simlint: allow(determinism-taint): per-job wall time is diagnostics only, reports are index-ordered
}

/// Run `f(i, item_i)` for every item across `jobs` workers, returning the
/// reports in item order. Items are moved into their jobs (each job owns its
/// input); see [`map_indexed`] for the scheduling contract.
pub fn map<I, T, F>(items: Vec<I>, jobs: usize, f: F, log: Option<ProgressFn<'_>>) -> Vec<JobReport<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    run_pool( // simlint: allow(determinism-taint): per-job wall time is diagnostics only, reports are index-ordered
        n,
        jobs,
        |i| {
            let item = slots[i].lock().expect("job slot").take().expect("job taken once");
            f(i, item)
        },
        log,
    )
}

/// The shared pool: an atomic next-index counter, one result slot per job,
/// `catch_unwind` around every job body.
fn run_pool<T, F>(n: usize, jobs: usize, f: F, log: Option<ProgressFn<'_>>) -> Vec<JobReport<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<JobReport<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let worker = |_w: usize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        // simlint: allow(determinism): per-job wall time is diagnostics only, never a result
        let t0 = Instant::now();
        let outcome = match catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(v) => JobOutcome::Ok(v),
            Err(payload) => JobOutcome::Panicked(panic_message(payload)),
        };
        let elapsed = t0.elapsed();
        let ok = outcome.is_ok();
        *results[i].lock().expect("result slot") = Some(JobReport { index: i, outcome, elapsed });
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(log) = log {
            log(Progress { index: i, done: finished, total: n, elapsed, ok });
        }
    };

    if jobs == 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..jobs {
                scope.spawn(move || worker(w));
            }
        });
    }

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result mutex").expect("every index ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        // Jobs finish out of order (later indices sleep less); reports must
        // still come back 0..n.
        let reports = map_indexed(
            8,
            4,
            |i| {
                std::thread::sleep(Duration::from_millis(8 - i as u64));
                i * 10
            },
            None,
        );
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(*r.outcome.clone().ok().as_ref().unwrap(), i * 10);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let a: Vec<u64> = map_indexed(32, 1, f, None).into_iter().map(|r| r.outcome.expect("a")).collect();
        let b: Vec<u64> = map_indexed(32, 7, f, None).into_iter().map(|r| r.outcome.expect("b")).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn panic_is_isolated_and_captured() {
        let reports = map_indexed(
            5,
            3,
            |i| {
                if i == 2 {
                    panic!("job {i} diverged");
                }
                i
            },
            None,
        );
        assert_eq!(reports.len(), 5);
        for (i, r) in reports.iter().enumerate() {
            if i == 2 {
                match &r.outcome {
                    JobOutcome::Panicked(msg) => assert!(msg.contains("diverged"), "{msg}"),
                    JobOutcome::Ok(_) => panic!("job 2 should have panicked"),
                }
            } else {
                assert!(r.outcome.is_ok(), "job {i} should have survived job 2's panic");
            }
        }
    }

    #[test]
    fn map_moves_items_into_jobs() {
        let items: Vec<String> = (0..6).map(|i| format!("item-{i}")).collect();
        let reports = map(items, 3, |i, s| format!("{s}/{i}"), None);
        for (i, r) in reports.into_iter().enumerate() {
            assert_eq!(r.outcome.expect("map"), format!("item-{i}/{i}"));
        }
    }

    #[test]
    fn progress_callback_sees_every_completion() {
        let seen = Mutex::new(Vec::new());
        let log = |p: Progress| seen.lock().unwrap().push((p.index, p.done, p.total, p.ok));
        map_indexed(6, 2, |i| i, Some(&log));
        let mut events = seen.into_inner().unwrap();
        assert_eq!(events.len(), 6);
        events.sort();
        let indices: Vec<usize> = events.iter().map(|e| e.0).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
        assert!(events.iter().all(|e| e.2 == 6 && e.3));
        // `done` counts reach the total exactly once.
        let mut dones: Vec<usize> = events.iter().map(|e| e.1).collect();
        dones.sort();
        assert_eq!(dones, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn empty_and_oversubscribed_edge_cases() {
        let none: Vec<JobReport<u32>> = map_indexed(0, 8, |_| 1, None);
        assert!(none.is_empty());
        // More workers than jobs: clamped, still correct.
        let one = map_indexed(1, 64, |i| i + 100, None);
        assert_eq!(one[0].outcome.clone().ok(), Some(100));
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}

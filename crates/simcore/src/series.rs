//! Time-series recording.
//!
//! RTT and sending-rate trajectories are the raw material of the paper's
//! constructions: the convergence detector (Definition 1), the recorded
//! single-flow trajectories `d̄ᵢ(t)`, `r̄ᵢ(t)` (proof step 2, Figure 5) and
//! the emulation target `d*(t)` (Eq. 5, Figure 6) are all series of
//! `(time, value)` points.

use crate::units::{Dur, Time};

/// An append-only series of `(time, f64)` points with non-decreasing times.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(Time, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a point. Times must be non-decreasing.
    pub fn push(&mut self, t: Time, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries times must be non-decreasing");
        }
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First point.
    pub fn first(&self) -> Option<(Time, f64)> {
        self.points.first().copied()
    }

    /// Last point.
    pub fn last(&self) -> Option<(Time, f64)> {
        self.points.last().copied()
    }

    /// Step-function value at `t`: the value of the latest point at or
    /// before `t` (None before the first point).
    pub fn value_at(&self, t: Time) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(mut i) => {
                // On exact ties, take the last point with this timestamp.
                while i + 1 < self.points.len() && self.points[i + 1].0 == t {
                    i += 1;
                }
                Some(self.points[i].1)
            }
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Iterator over points in `[a, b]`.
    pub fn range(&self, a: Time, b: Time) -> impl Iterator<Item = (Time, f64)> + '_ {
        self.points
            .iter()
            .copied()
            .skip_while(move |&(t, _)| t < a)
            .take_while(move |&(t, _)| t <= b)
    }

    /// Minimum value over `[a, b]`.
    pub fn min_in(&self, a: Time, b: Time) -> Option<f64> {
        self.range(a, b).map(|(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.min(v),
            })
        })
    }

    /// Maximum value over `[a, b]`.
    pub fn max_in(&self, a: Time, b: Time) -> Option<f64> {
        self.range(a, b).map(|(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Mean value over `[a, b]` (unweighted by inter-sample spacing).
    pub fn mean_in(&self, a: Time, b: Time) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for (_, v) in self.range(a, b) {
            n += 1;
            sum += v;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Resample onto a fixed grid `[start, start+tick, ...]` of `n` points
    /// using the step-function value (holding the last value; points before
    /// the first sample hold the first sample's value).
    pub fn resample(&self, start: Time, tick: Dur, n: usize) -> Vec<f64> {
        assert!(!self.points.is_empty(), "cannot resample an empty series");
        let first = self.points[0].1;
        (0..n)
            .map(|i| {
                let t = start + Dur(tick.0 * i as u64);
                self.value_at(t).unwrap_or(first)
            })
            .collect()
    }

    /// Keep only points with `t >= at`, shifting times so `at` becomes zero.
    /// Used to time-shift trajectories to their convergence instant
    /// (`d̄(t) = d(t + T)` in the proof).
    pub fn shifted_from(&self, at: Time) -> TimeSeries {
        let mut out = TimeSeries::new();
        for &(t, v) in &self.points {
            if t >= at {
                out.push(Time(t.0 - at.0), v);
            }
        }
        out
    }

    /// Time of the last point, or zero if empty.
    pub fn end_time(&self) -> Time {
        self.points.last().map(|&(t, _)| t).unwrap_or(Time::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(points: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in points {
            s.push(Time::from_millis(t), v);
        }
        s
    }

    #[test]
    fn push_and_access() {
        let s = mk(&[(0, 1.0), (10, 2.0), (20, 3.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.first(), Some((Time::ZERO, 1.0)));
        assert_eq!(s.last(), Some((Time::from_millis(20), 3.0)));
    }

    #[test]
    #[should_panic]
    fn push_rejects_decreasing_time() {
        let mut s = TimeSeries::new();
        s.push(Time::from_millis(10), 1.0);
        s.push(Time::from_millis(5), 2.0);
    }

    #[test]
    fn value_at_step_semantics() {
        let s = mk(&[(10, 1.0), (20, 2.0)]);
        assert_eq!(s.value_at(Time::from_millis(5)), None);
        assert_eq!(s.value_at(Time::from_millis(10)), Some(1.0));
        assert_eq!(s.value_at(Time::from_millis(15)), Some(1.0));
        assert_eq!(s.value_at(Time::from_millis(20)), Some(2.0));
        assert_eq!(s.value_at(Time::from_millis(99)), Some(2.0));
    }

    #[test]
    fn value_at_duplicate_times_takes_last() {
        let mut s = TimeSeries::new();
        let t = Time::from_millis(10);
        s.push(t, 1.0);
        s.push(t, 2.0);
        s.push(t, 3.0);
        assert_eq!(s.value_at(t), Some(3.0));
    }

    #[test]
    fn min_max_mean_in_range() {
        let s = mk(&[(0, 5.0), (10, 1.0), (20, 3.0), (30, 9.0)]);
        let a = Time::from_millis(5);
        let b = Time::from_millis(25);
        assert_eq!(s.min_in(a, b), Some(1.0));
        assert_eq!(s.max_in(a, b), Some(3.0));
        assert_eq!(s.mean_in(a, b), Some(2.0));
        assert_eq!(s.min_in(Time::from_millis(40), Time::from_millis(50)), None);
    }

    #[test]
    fn resample_holds_last_value() {
        let s = mk(&[(0, 1.0), (10, 2.0)]);
        let v = s.resample(Time::ZERO, Dur::from_millis(5), 4);
        assert_eq!(v, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn shifted_from_drops_and_rebases() {
        let s = mk(&[(0, 1.0), (10, 2.0), (20, 3.0)]);
        let sh = s.shifted_from(Time::from_millis(10));
        assert_eq!(sh.points(), &[(Time::ZERO, 2.0), (Time::from_millis(10), 3.0)]);
    }

    #[test]
    fn end_time() {
        assert_eq!(TimeSeries::new().end_time(), Time::ZERO);
        assert_eq!(mk(&[(0, 1.0), (7, 2.0)]).end_time(), Time::from_millis(7));
    }
}

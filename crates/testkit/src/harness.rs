//! Shared scenario fixtures for integration tests and benches.
//!
//! These are the `run_one`-style builders that used to be copy-pasted
//! between `tests/*.rs` files and `crates/bench/benches/*.rs`. Keeping them
//! here means a scenario change (say, the §5.1 poison pattern) happens in
//! exactly one place, and tests/benches measure the same configuration.

use cca::BoxCca;
use netsim::{
    AckPolicy, FlowConfig, Jitter, LinkConfig, Network, PathSpec, SimConfig, SimResult, Transport,
};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};

/// Throughput of `flow` over the whole run, in Mbit/s.
pub fn mbps(r: &SimResult, flow: usize) -> f64 {
    r.flows[flow].throughput_at(r.end).mbps()
}

/// Single `ConstCwnd` flow on an ample-buffer link — the emulator-invariant
/// workhorse. `cwnd_pkts` is in 1500-byte packets; jitter is i.i.d. uniform
/// in `[0, jitter_ms]` (off when 0); `loss_pct` is a Bernoulli loss
/// fraction (off when 0).
///
/// Expands a [`netsim::PathSpec`] — the same spec type
/// `starvation::runner::run_ideal_path` consumes — so fixtures and
/// ideal-path runs derive their `LinkConfig`/`FlowConfig` from one place.
pub fn run_one(
    cwnd_pkts: u64,
    rate_mbps: f64,
    rm_ms: u64,
    jitter_ms: u64,
    loss_pct: f64,
    seed: u64,
    secs: u64,
) -> SimResult {
    let mut spec = PathSpec::new(
        Rate::from_mbps(rate_mbps),
        Dur::from_millis(rm_ms),
        Dur::from_secs(secs),
    );
    if jitter_ms > 0 {
        spec = spec.with_jitter(Dur::from_millis(jitter_ms), seed);
    }
    if loss_pct > 0.0 {
        spec = spec.with_loss(loss_pct, seed.wrapping_add(1));
    }
    Network::new(spec.sim(Box::new(cca::ConstCwnd::new(cwnd_pkts * 1500)))).run()
}

/// Two identical-CCA flows on a 40 Mbit/s, `Rm` = 50 ms path; the first
/// sees up to 10 ms of random jitter (seed 11), the second is clean. The
/// §6 jitter-robustness scenario shared by Algorithm 1's tests and the
/// ablation bench.
pub fn asymmetric_jitter_run(mk: impl Fn() -> BoxCca, secs: u64) -> SimResult {
    let link = LinkConfig::ample_buffer(Rate::from_mbps(40.0));
    let rm = Dur::from_millis(50);
    let jittered = FlowConfig::bulk(mk(), rm).with_jitter(Jitter::Random {
        max: Dur::from_millis(10),
        rng: Xoshiro256::new(11),
    });
    let clean = FlowConfig::bulk(mk(), rm);
    Network::new(SimConfig::new(link, vec![jittered, clean], Dur::from_secs(secs))).run()
}

/// §5.1: a Copa flow whose path under-reports the propagation delay by
/// 1 ms on one packet in every 5000 (the min-RTT poison).
pub fn copa_poisoned_flow() -> FlowConfig {
    FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(59)).with_jitter(
        Jitter::ExtraExcept {
            extra: Dur::from_millis(1),
            period: 5_000,
            offset: 0,
        },
    )
}

/// §5.4: the Allegro experiments' 120 Mbit/s, 40 ms, 1-BDP-buffer link.
pub fn allegro_link() -> LinkConfig {
    LinkConfig::bdp_buffer(Rate::from_mbps(120.0), Dur::from_millis(40), 1.0)
}

/// §5.4: a datagram Allegro flow, optionally with Bernoulli random loss.
/// The loss stream is fixed (seed 7): Allegro's RCT noise makes the outcome
/// stream-dependent, and this is the representative stream published by
/// `repro seeds` (see EXPERIMENTS.md). `seed` only varies the CCA's own
/// probing phase.
pub fn allegro_flow(loss: f64, seed: u64) -> FlowConfig {
    let f = FlowConfig::bulk(Box::new(cca::Allegro::new(seed)), Dur::from_millis(40))
        .with_transport(Transport::Datagram);
    if loss > 0.0 {
        f.with_loss(loss, 7)
    } else {
        f
    }
}

/// Figure 7's scenario: two same-CCA flows on a 6 Mbit/s, 120 ms, shallow
/// (60-packet) link, the second with 4-packet delayed ACKs. Returns the
/// steady-state throughputs (Mbit/s) of the clean and delayed flow,
/// skipping the first tenth of the run.
pub fn fig7_scenario(mk: impl Fn() -> BoxCca, secs: u64) -> (f64, f64) {
    let rm = Dur::from_millis(120);
    let link = LinkConfig::new(Rate::from_mbps(6.0), 60 * 1500);
    let clean = FlowConfig::bulk(mk(), rm);
    let delayed = FlowConfig::bulk(mk(), rm).with_ack_policy(AckPolicy::Delayed {
        max_pkts: 4,
        timeout: Dur::from_millis(100),
    });
    let r = Network::new(SimConfig::new(link, vec![clean, delayed], Dur::from_secs(secs))).run();
    let a = Time(r.end.as_nanos() / 10);
    (
        r.flows[0].throughput_over(a, r.end).mbps(),
        r.flows[1].throughput_over(a, r.end).mbps(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_produces_traffic() {
        let r = run_one(10, 24.0, 40, 2, 0.01, 1, 2);
        assert!(r.flows[0].total_delivered() > 0);
        assert!(mbps(&r, 0) > 0.0);
    }

    #[test]
    fn asymmetric_jitter_run_has_two_flows() {
        let r = asymmetric_jitter_run(|| Box::new(cca::ConstCwnd::new(20 * 1500)), 2);
        assert_eq!(r.flows.len(), 2);
        assert!(r.flows[1].total_delivered() > 0);
    }

    #[test]
    fn fig7_scenario_reports_both_flows() {
        let (clean, delayed) = fig7_scenario(|| Box::new(cca::NewReno::default_params()), 4);
        assert!(clean > 0.0 && delayed > 0.0);
    }
}

//! Measurement harness (in-repo `criterion` replacement).
//!
//! Each bench target (`crates/bench/benches/*.rs`, `harness = false`)
//! constructs a [`Runner`], registers closures with [`Runner::bench`], and
//! calls [`Runner::finish`]. Per benchmark the runner does a warmup, times N
//! iterations individually, and reports mean/p50/p99 (computed with
//! [`simcore::stats`], the same code the experiments trust).
//!
//! Results go to stdout for humans and to `results/bench/<target>.json` as
//! JSON lines for trajectory tracking — one object per benchmark:
//!
//! ```json
//! {"target":"engine","name":"engine/xoshiro_next_1k","quick":false,
//!  "warmup_iters":2,"iters":10,"mean_ns":123,"p50_ns":120,"p99_ns":150,
//!  "min_ns":110,"max_ns":151}
//! ```
//!
//! Modes:
//! * full (default under `cargo bench`): 2 warmup + 10 timed iterations;
//! * quick/smoke (`cargo bench -- --quick`, or `TESTKIT_BENCH_QUICK=1`):
//!   1 warmup + 3 timed iterations — a compile-and-run check for CI.

use std::hint::black_box as bb;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Fully qualified benchmark name (`target/function[/param]`).
    pub name: String,
    /// Warmup iterations (untimed).
    pub warmup_iters: u32,
    /// Timed iterations.
    pub iters: u32,
    /// Mean of per-iteration wall times.
    pub mean_ns: u64,
    /// Median per-iteration wall time.
    pub p50_ns: u64,
    /// 99th-percentile per-iteration wall time (nearest rank).
    pub p99_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
}

/// A named benchmark case for [`Runner::bench_group`]: the parameter name
/// (appended to the group name as `group/param`) and the closure to time.
pub type GroupCase<'a, R> = (&'a str, Box<dyn FnMut() -> R + 'a>);

/// Time one closure: `warmup_iters` untimed runs, then `iters` individually
/// timed runs, summarized with [`simcore::stats`]. This is the measurement
/// primitive behind [`Runner::bench`]; standalone harnesses (e.g.
/// `repro perfbench`) call it directly and do their own reporting.
pub fn measure<R>(name: &str, warmup_iters: u32, iters: u32, mut f: impl FnMut() -> R) -> Measurement {
    for _ in 0..warmup_iters {
        bb(f());
    }
    let mut samples_ns: Vec<f64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        // simlint: allow(determinism): benchmarking measures real wall time by design
        let t0 = Instant::now();
        bb(f());
        samples_ns.push(t0.elapsed().as_nanos() as f64);
    }
    Measurement {
        name: name.to_string(),
        warmup_iters,
        iters,
        mean_ns: simcore::stats::mean(&samples_ns).unwrap_or(0.0) as u64,
        p50_ns: simcore::stats::percentile(&samples_ns, 50.0).unwrap_or(0.0) as u64,
        p99_ns: simcore::stats::percentile(&samples_ns, 99.0).unwrap_or(0.0) as u64,
        min_ns: samples_ns.iter().cloned().fold(f64::MAX, f64::min) as u64,
        max_ns: samples_ns.iter().cloned().fold(f64::MIN, f64::max) as u64,
    }
}

/// Bench runner for one target file. See the module docs.
pub struct Runner {
    target: String,
    quick: bool,
    warmup_iters: u32,
    iters: u32,
    results: Vec<Measurement>,
    filter: Option<String>,
}

impl Runner {
    /// Create a runner for `target` (e.g. `"engine"`), reading mode and
    /// name filter from the command line (`cargo bench -- --quick <filter>`)
    /// and the `TESTKIT_BENCH_QUICK` environment variable.
    pub fn from_args(target: &str) -> Runner {
        let mut quick = std::env::var("TESTKIT_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" | "--smoke" | "--test" => quick = true,
                // Flags cargo passes to bench binaries; ignore.
                "--bench" | "--nocapture" | "--exact" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        let (warmup_iters, iters) = if quick { (1, 3) } else { (2, 10) };
        Runner {
            target: target.to_string(),
            quick,
            warmup_iters,
            iters,
            results: Vec::new(),
            filter,
        }
    }

    /// True when running in quick/smoke mode. Bench bodies can use this to
    /// shorten simulated durations further.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Register and immediately run one benchmark. The closure's return
    /// value is passed through [`black_box`](std::hint::black_box) so the
    /// measured work is not optimized away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let m = measure(name, self.warmup_iters, self.iters, &mut f);
        println!(
            "bench {:<44} mean {:>12}  p50 {:>12}  p99 {:>12}  ({} iters{})",
            m.name,
            fmt_ns(m.mean_ns),
            fmt_ns(m.p50_ns),
            fmt_ns(m.p99_ns),
            m.iters,
            if self.quick { ", quick" } else { "" },
        );
        self.results.push(m);
    }

    /// Run a group of parameterized benchmarks: `group/param` per entry.
    /// Each case is a `(param_name, closure)` pair — see [`GroupCase`].
    pub fn bench_group<R>(&mut self, group: &str, cases: Vec<GroupCase<'_, R>>) {
        for (param, mut f) in cases {
            self.bench(&format!("{group}/{param}"), &mut f);
        }
    }

    /// Write `results/bench/<target>.json` and return the measurements.
    /// The output directory is resolved from `TESTKIT_BENCH_DIR`, else
    /// `CARGO_MANIFEST_DIR/../../results/bench` (the workspace layout), else
    /// `./results/bench`.
    pub fn finish(self) -> Vec<Measurement> {
        let dir = std::env::var("TESTKIT_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
                Ok(m) => PathBuf::from(m).join("../../results/bench"),
                Err(_) => PathBuf::from("results/bench"),
            });
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("testkit::bench: cannot create {}: {e}", dir.display());
            return self.results;
        }
        let path = dir.join(format!("{}.json", self.target));
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                for m in &self.results {
                    let _ = writeln!(
                        f,
                        "{{\"target\":\"{}\",\"name\":\"{}\",\"quick\":{},\
                         \"warmup_iters\":{},\"iters\":{},\"mean_ns\":{},\
                         \"p50_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                        json_escape(&self.target),
                        json_escape(&m.name),
                        self.quick,
                        m.warmup_iters,
                        m.iters,
                        m.mean_ns,
                        m.p50_ns,
                        m.p99_ns,
                        m.min_ns,
                        m.max_ns,
                    );
                }
                println!(
                    "bench results: {} benchmarks -> {}",
                    self.results.len(),
                    path.display()
                );
            }
            Err(e) => eprintln!("testkit::bench: cannot write {}: {e}", path.display()),
        }
        self.results
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_runner(quick: bool) -> Runner {
        Runner {
            target: "selftest".into(),
            quick,
            warmup_iters: 1,
            iters: 4,
            results: Vec::new(),
            filter: None,
        }
    }

    #[test]
    fn measures_and_orders_percentiles() {
        let mut r = test_runner(true);
        let mut x = 0u64;
        r.bench("selftest/spin", || {
            for i in 0..10_000u64 {
                x = x.wrapping_add(bb(i));
            }
            x
        });
        let m = &r.results[0];
        assert!(m.min_ns <= m.p50_ns && m.p50_ns <= m.p99_ns && m.p99_ns <= m.max_ns);
        assert!(m.mean_ns > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = test_runner(true);
        r.filter = Some("other".into());
        r.bench("selftest/skipped", || 1);
        assert!(r.results.is_empty());
    }

    #[test]
    fn finish_writes_json_lines() {
        let dir = std::env::temp_dir().join("testkit_bench_selftest");
        std::env::set_var("TESTKIT_BENCH_DIR", &dir);
        let mut r = test_runner(false);
        r.bench("selftest/a\"quoted\"", || 1);
        r.finish();
        std::env::remove_var("TESTKIT_BENCH_DIR");
        let text = std::fs::read_to_string(dir.join("selftest.json")).unwrap();
        assert!(text.contains("\"name\":\"selftest/a\\\"quoted\\\"\""), "{text}");
        assert!(text.contains("\"mean_ns\":"));
        assert_eq!(text.lines().count(), 1);
    }
}

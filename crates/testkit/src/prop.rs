//! Property-based testing harness (in-repo `proptest` replacement).
//!
//! A property is a plain function `fn(&Input) -> Result<(), String>`; the
//! harness generates `cases` random inputs from a [`Strategy`], and on the
//! first failure greedily shrinks the input toward a minimal counterexample,
//! then panics with the seed and a ready-to-paste regression test.
//!
//! ```
//! use testkit::prop::{check, f64_in, u64_in};
//!
//! fn sum_commutes(&(a, b): &(u64, f64)) -> Result<(), String> {
//!     testkit::require!(a as f64 + b == b + a as f64, "a={a} b={b}");
//!     Ok(())
//! }
//!
//! // Inside a `#[test]` this is the whole body:
//! check("sum_commutes", (u64_in(0, 100), f64_in(0.0, 1.0)), sum_commutes);
//! ```
//!
//! Runs are deterministic: the default master seed is fixed, and
//! `TESTKIT_SEED` / `TESTKIT_CASES` override it for reproduction or soak
//! runs. Each case derives its own `case seed`, printed on failure, so a
//! single failing case can be replayed without re-running the whole batch
//! (see [`Config::only_case_seed`]).

use simcore::rng::Xoshiro256;
use std::fmt::Debug;

/// Master seed used when `TESTKIT_SEED` is not set. Fixed so that CI and
/// local runs exercise the same cases — change it deliberately, not often.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_0001;

/// Default number of cases per property when `TESTKIT_CASES` is not set.
pub const DEFAULT_CASES: u32 = 64;

/// A source of random values with support for shrinking.
///
/// `shrink` proposes *strictly simpler* candidates for a failing value
/// (smaller numbers, shorter vectors); the harness keeps any candidate that
/// still fails and repeats until no candidate fails.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;
    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut Xoshiro256) -> Self::Value;
    /// Propose simpler variants of a failing value (possibly empty).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

// ---------- scalar strategies ----------

/// Uniform `u64` in the half-open range `[lo, hi)`.
pub fn u64_in(lo: u64, hi: u64) -> U64In {
    assert!(lo < hi, "u64_in: empty range {lo}..{hi}");
    U64In { lo, hi }
}

/// See [`u64_in`].
#[derive(Clone, Copy, Debug)]
pub struct U64In {
    lo: u64,
    hi: u64,
}

impl Strategy for U64In {
    type Value = u64;
    fn generate(&self, rng: &mut Xoshiro256) -> u64 {
        self.lo + rng.range_u64(self.hi - self.lo)
    }
    fn shrink(&self, &v: &u64) -> Vec<u64> {
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
            out.push(v - 1);
        }
        out.dedup();
        out
    }
}

/// Uniform `usize` in the half-open range `[lo, hi)`.
pub fn usize_in(lo: usize, hi: usize) -> UsizeIn {
    UsizeIn(u64_in(lo as u64, hi as u64))
}

/// See [`usize_in`].
#[derive(Clone, Copy, Debug)]
pub struct UsizeIn(U64In);

impl Strategy for UsizeIn {
    type Value = usize;
    fn generate(&self, rng: &mut Xoshiro256) -> usize {
        self.0.generate(rng) as usize
    }
    fn shrink(&self, &v: &usize) -> Vec<usize> {
        self.0.shrink(&(v as u64)).into_iter().map(|x| x as usize).collect()
    }
}

/// Uniform `f64` in the half-open range `[lo, hi)`.
pub fn f64_in(lo: f64, hi: f64) -> F64In {
    assert!(lo < hi, "f64_in: empty range {lo}..{hi}");
    F64In { lo, hi }
}

/// See [`f64_in`].
#[derive(Clone, Copy, Debug)]
pub struct F64In {
    lo: f64,
    hi: f64,
}

impl Strategy for F64In {
    type Value = f64;
    fn generate(&self, rng: &mut Xoshiro256) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
    fn shrink(&self, &v: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2.0;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
            // Rounder numbers read better in regression tests.
            let trunc = v.trunc();
            if trunc >= self.lo && trunc < v && trunc != mid {
                out.push(trunc);
            }
        }
        out
    }
}

/// Uniform `bool` (fair coin). Shrinks `true` to `false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

/// See [`any_bool`].
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut Xoshiro256) -> bool {
        rng.bernoulli(0.5)
    }
    fn shrink(&self, &v: &bool) -> Vec<bool> {
        if v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ---------- composite strategies ----------

/// `Vec` of values from `elem`, with length uniform in `[min_len, max_len)`.
///
/// Shrinks by truncating toward `min_len`, dropping single elements, and
/// shrinking individual elements in place.
pub fn vec_of<S: Strategy>(elem: S, min_len: usize, max_len: usize) -> VecOf<S> {
    assert!(min_len < max_len, "vec_of: empty length range {min_len}..{max_len}");
    VecOf { elem, min_len, max_len }
}

/// See [`vec_of`].
#[derive(Clone, Copy, Debug)]
pub struct VecOf<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Xoshiro256) -> Vec<S::Value> {
        let len = self.min_len + rng.range_u64((self.max_len - self.min_len) as u64) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        if v.len() > self.min_len {
            // Aggressive first: halve toward the minimum length.
            let half = self.min_len.max(v.len() / 2);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            // Then drop single elements.
            for i in 0..v.len() {
                let mut shorter = v.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Finally shrink elements in place.
        for i in 0..v.len() {
            for cand in self.elem.shrink(&v[i]) {
                let mut w = v.clone();
                w[i] = cand;
                out.push(w);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut Xoshiro256) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

// ---------- runner ----------

/// Harness configuration. [`Config::from_env`] is what [`check`] uses.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Master seed; each case derives its own seed from this stream.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_evals: u32,
    /// If set, skip generation and run exactly one case with this case seed
    /// (as printed in a failure report). Set via `TESTKIT_CASE_SEED`.
    pub only_case_seed: Option<u64>,
}

impl Config {
    /// Defaults ([`DEFAULT_CASES`], [`DEFAULT_SEED`]) overridden by the
    /// `TESTKIT_CASES`, `TESTKIT_SEED` and `TESTKIT_CASE_SEED` environment
    /// variables (seeds accept decimal or `0x`-prefixed hex).
    pub fn from_env() -> Config {
        // A malformed override panics instead of silently falling back to
        // the defaults: a typo'd replay seed exploring the wrong cases
        // would look exactly like "the bug is gone".
        fn env_u64(name: &str, parse: fn(&str) -> Option<u64>) -> Option<u64> {
            let s = std::env::var(name).ok()?;
            match parse(&s) {
                Some(v) => Some(v),
                None => panic!("{name}={s:?} is not a valid value"),
            }
        }
        Config {
            cases: env_u64("TESTKIT_CASES", |s| s.parse().ok())
                .map(|v| v as u32)
                .unwrap_or(DEFAULT_CASES),
            seed: env_u64("TESTKIT_SEED", parse_u64).unwrap_or(DEFAULT_SEED),
            max_shrink_evals: 2000,
            only_case_seed: env_u64("TESTKIT_CASE_SEED", parse_u64),
        }
    }

    /// Same defaults as [`Config::from_env`] but with a fixed case count
    /// (environment variables still override the seed).
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::from_env()
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Run `property` against [`Config::from_env`]`.cases` values drawn from
/// `strategy`. Panics with a shrunken counterexample on failure.
///
/// `name` should be the name of the property function so the printed
/// regression test is paste-ready.
pub fn check<S: Strategy>(
    name: &str,
    strategy: S,
    property: impl Fn(&S::Value) -> Result<(), String>,
) {
    check_with(Config::from_env(), name, strategy, property);
}

/// [`check`] with an explicit [`Config`] (e.g. a smaller case count for
/// expensive simulation-backed properties).
pub fn check_with<S: Strategy>(
    cfg: Config,
    name: &str,
    strategy: S,
    property: impl Fn(&S::Value) -> Result<(), String>,
) {
    let mut master = Xoshiro256::new(cfg.seed);
    for case in 0..cfg.cases {
        let case_seed = match cfg.only_case_seed {
            Some(s) => s,
            None => master.next_u64(),
        };
        let mut rng = Xoshiro256::new(case_seed);
        let input = strategy.generate(&mut rng);
        if let Err(err) = property(&input) {
            let (shrunk, shrunk_err, evals) =
                shrink_failure(&strategy, &property, input.clone(), err.clone(), cfg.max_shrink_evals);
            panic!(
                "\nproperty `{name}` falsified (case {case_no}/{cases}, master seed {seed:#x}, \
                 case seed {case_seed:#x})\n  \
                 original: {input:?}\n            -> {err}\n  \
                 shrunk ({evals} evals): {shrunk:?}\n            -> {shrunk_err}\n\
                 \nready-to-paste regression test:\n\n    \
                 /// Regression: `{name}` falsified (testkit case seed {case_seed:#x}).\n    \
                 #[test]\n    \
                 fn regression_{name}() {{\n        \
                 {name}(&{shrunk:?}).unwrap();\n    \
                 }}\n\n\
                 replay just this case with TESTKIT_CASE_SEED={case_seed:#x}, or the whole \
                 batch with TESTKIT_SEED={seed:#x} TESTKIT_CASES={cases}\n",
                case_no = case + 1,
                cases = cfg.cases,
                seed = cfg.seed,
            );
        }
        if cfg.only_case_seed.is_some() {
            return;
        }
    }
}

/// Greedily minimize a failing value outside the [`check`] runner:
/// repeatedly replace it with the first [`Strategy::shrink`] candidate for
/// which `fails` still holds, until no candidate fails or the eval budget
/// runs out. Returns the minimized value and the number of `fails`
/// evaluations spent.
///
/// This is the shrinking core of [`check`] exposed for harnesses whose
/// failure signal is not a property `Result` — e.g. the scenario fuzzer,
/// where "fails" means "the simulation panics under the runtime auditor".
pub fn minimize<S: Strategy>(
    strategy: &S,
    value: S::Value,
    fails: impl Fn(&S::Value) -> bool,
    max_evals: u32,
) -> (S::Value, u32) {
    let property = |v: &S::Value| if fails(v) { Err(String::new()) } else { Ok(()) };
    let (min, _, evals) = shrink_failure(strategy, &property, value, String::new(), max_evals);
    (min, evals)
}

/// Greedy shrink: repeatedly replace the failing value with the first
/// shrink candidate that still fails, until none fails or the eval budget
/// runs out. Returns the final value, its error, and evals spent.
fn shrink_failure<S: Strategy>(
    strategy: &S,
    property: &impl Fn(&S::Value) -> Result<(), String>,
    mut value: S::Value,
    mut error: String,
    max_evals: u32,
) -> (S::Value, String, u32) {
    let mut evals = 0u32;
    'outer: loop {
        for cand in strategy.shrink(&value) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if let Err(e) = property(&cand) {
                value = cand;
                error = e;
                continue 'outer;
            }
        }
        break;
    }
    (value, error, evals)
}

/// Assert a condition inside a property, returning `Err` with the formatted
/// message (plus the stringified condition) instead of panicking.
#[macro_export]
macro_rules! require {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("requirement failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "requirement failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// [`require!`] for equality, printing both sides on failure.
#[macro_export]
macro_rules! require_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "requirement failed: {} == {} — left={a:?} right={b:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = (u64_in(0, 1000), f64_in(-1.0, 1.0));
        let a: Vec<_> = {
            let mut r = Xoshiro256::new(9);
            (0..20).map(|_| s.generate(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = Xoshiro256::new(9);
            (0..20).map(|_| s.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn scalars_respect_bounds() {
        let mut r = Xoshiro256::new(3);
        for _ in 0..1000 {
            let x = u64_in(5, 17).generate(&mut r);
            assert!((5..17).contains(&x));
            let y = f64_in(-2.0, 3.5).generate(&mut r);
            assert!((-2.0..3.5).contains(&y));
            let n = usize_in(1, 4).generate(&mut r);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn shrink_candidates_stay_in_range() {
        let s = u64_in(10, 100);
        for cand in s.shrink(&57) {
            assert!((10..100).contains(&cand));
        }
        let f = f64_in(0.5, 9.0);
        for cand in f.shrink(&7.3) {
            assert!((0.5..9.0).contains(&cand));
        }
    }

    #[test]
    fn greedy_shrink_reaches_the_boundary() {
        // Property: x < 40. The minimal counterexample in [0, 1000) is 40.
        let s = u64_in(0, 1000);
        let prop = |&x: &u64| -> Result<(), String> {
            if x < 40 {
                Ok(())
            } else {
                Err(format!("x={x}"))
            }
        };
        let (min, _, _) = shrink_failure(&s, &prop, 917, "x=917".into(), 2000);
        assert_eq!(min, 40);
    }

    #[test]
    fn tuple_shrink_minimizes_each_component() {
        let s = (u64_in(0, 100), u64_in(0, 100));
        let prop = |&(a, b): &(u64, u64)| -> Result<(), String> {
            if a + b < 30 {
                Ok(())
            } else {
                Err(format!("a={a} b={b}"))
            }
        };
        let (min, _, _) = shrink_failure(&s, &prop, (80, 90), "".into(), 2000);
        assert_eq!(min.0 + min.1, 30, "not minimal: {min:?}");
    }

    #[test]
    fn vec_shrink_drops_irrelevant_elements() {
        let s = vec_of(u64_in(0, 100), 0, 50);
        // Fails iff the vector contains a value ≥ 90: minimal case is one
        // element equal to 90.
        let prop = |v: &Vec<u64>| -> Result<(), String> {
            if v.iter().all(|&x| x < 90) {
                Ok(())
            } else {
                Err("contains big".into())
            }
        };
        let start = vec![3, 99, 17, 91, 4, 12];
        let (min, _, _) = shrink_failure(&s, &prop, start, "".into(), 4000);
        assert_eq!(min, vec![90]);
    }

    #[test]
    fn check_passes_a_true_property() {
        check("always_true", u64_in(0, 10), |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "ready-to-paste regression test")]
    fn check_panics_with_regression_snippet() {
        check("never_true", u64_in(0, 10), |_| Err("nope".into()));
    }

    #[test]
    fn require_macros_return_err() {
        fn p(x: u64) -> Result<(), String> {
            crate::require!(x.is_multiple_of(2), "x={x}");
            crate::require_eq!(x / 2 * 2, x);
            Ok(())
        }
        assert!(p(4).is_ok());
        assert!(p(3).unwrap_err().contains("x=3"));
    }
}

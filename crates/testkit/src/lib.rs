//! # testkit — hermetic in-repo test toolkit
//!
//! The workspace's reproducibility contract (bit-identical simulations for a
//! given seed) extends to the build itself: no registry dependencies, so the
//! suite compiles and runs with `--locked --offline` on a machine that has
//! never seen crates.io. This crate supplies the three pieces that used to
//! come from registry crates:
//!
//! * [`prop`] — a proptest-style property harness: composable generators
//!   seeded from [`simcore::rng::Xoshiro256`], fixed case counts, greedy
//!   shrinking toward a minimal counterexample, and failure output that is a
//!   ready-to-paste regression test (replaces `proptest`).
//! * [`bench`] — a measurement harness with warmup, timed iterations,
//!   mean/p50/p99 via [`simcore::stats`], and JSON-lines output under
//!   `results/bench/*.json` (replaces `criterion`).
//! * [`harness`] — the scenario fixtures (`run_one`-style builders) that the
//!   integration tests used to copy-paste from each other.
//!
//! Determinism is the point: a property run with the same
//! `TESTKIT_SEED`/`TESTKIT_CASES` is bit-identical, and the simulator's own
//! PRNG drives generation, so nothing about test outcomes depends on an
//! external crate's stream stability.
#![warn(missing_docs)]

pub mod bench;
pub mod harness;
pub mod prop;

pub use std::hint::black_box;

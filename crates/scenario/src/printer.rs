//! Canonical pretty-printer: `Scenario` → `.scn` source.
//!
//! The output is the language's *canonical form*: durations print in the
//! largest unit that divides them evenly, rates print in Mbit/s with
//! Rust's shortest-round-trip `f64` formatting, optional fields are
//! omitted at their defaults. `parse(print(ast)) == ast` for every AST the
//! parser can produce — the round-trip property test pins this — which is
//! what lets the fuzzer hand a mutated AST to the shrinker and write the
//! minimal reproducer back out as a file.

use crate::ast::{ArrivalSpec, Buffer, Flow, Link, Scenario, SizeSpec, WorkloadSpec};
use simcore::units::Dur;
use std::fmt;

/// Format a duration in the largest evenly-dividing unit.
fn fmt_dur(d: Dur) -> String {
    let ns = d.as_nanos();
    if ns == 0 {
        return "0s".to_string();
    }
    if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link {{ rate {}mbps buffer ", self.rate_mbps)?;
        match self.buffer {
            Buffer::Ample => write!(f, "ample")?,
            Buffer::Bytes(b) => write!(f, "{b}B")?,
            Buffer::Bdp { n, rtt } => write!(f, "bdp {n} {}", fmt_dur(rtt))?,
        }
        if let Some(ecn) = self.ecn_bytes {
            write!(f, " ecn {ecn}B")?;
        }
        write!(f, " }}")
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  flow {} {{", self.id)?;
        writeln!(f, "    cca {}", self.cca.slug())?;
        writeln!(f, "    rtt {}", fmt_dur(self.rtt))?;
        if let Some(j) = self.jitter {
            writeln!(f, "    jitter {} seed {}", fmt_dur(j.max), j.seed)?;
        }
        if let Some(l) = self.loss {
            writeln!(f, "    loss {} seed {}", l.rate, l.seed)?;
        }
        if self.datagram {
            writeln!(f, "    transport datagram")?;
        }
        if let Some(start) = self.start {
            writeln!(f, "    start {}", fmt_dur(start))?;
        }
        if let Some(mss) = self.mss {
            writeln!(f, "    mss {mss}")?;
        }
        if let Some(b) = self.audit_jitter_bound {
            writeln!(f, "    audit-jitter-bound {}", fmt_dur(b))?;
        }
        write!(f, "  }}")
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  workload {{")?;
        writeln!(f, "    flows {}", self.count)?;
        match self.arrivals {
            ArrivalSpec::Every(d) => writeln!(f, "    arrivals every {}", fmt_dur(d))?,
            ArrivalSpec::Poisson { mean, seed } => {
                writeln!(f, "    arrivals poisson {} seed {seed}", fmt_dur(mean))?
            }
        }
        match self.sizes {
            SizeSpec::Fixed(bytes) => writeln!(f, "    sizes fixed {bytes}B")?,
            SizeSpec::Pareto { min, alpha, cap, seed } => {
                writeln!(f, "    sizes pareto {min}B {alpha} {cap}B seed {seed}")?
            }
        }
        writeln!(f, "    cca {}", self.cca.slug())?;
        writeln!(f, "    rtt {}", fmt_dur(self.rtt))?;
        if let Some(j) = self.jitter {
            writeln!(f, "    jitter {} seed {}", fmt_dur(j.max), j.seed)?;
        }
        if let Some(l) = self.loss {
            writeln!(f, "    loss {} seed {}", l.rate, l.seed)?;
        }
        if let Some(start) = self.start {
            writeln!(f, "    start {}", fmt_dur(start))?;
        }
        if let Some(mss) = self.mss {
            writeln!(f, "    mss {mss}")?;
        }
        write!(f, "  }}")
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario \"{}\" {{", self.name)?;
        writeln!(f, "  {}", self.link)?;
        writeln!(f, "  duration {}", fmt_dur(self.duration))?;
        if let Some(every) = self.sample_every {
            writeln!(f, "  sample-every {}", fmt_dur(every))?;
        }
        for flow in &self.flows {
            writeln!(f, "{flow}")?;
        }
        if let Some(w) = &self.workload {
            writeln!(f, "{w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CcaId, JitterSpec, LossSpec};
    use crate::parser::parse;

    fn sample_workload() -> WorkloadSpec {
        WorkloadSpec {
            count: 24,
            arrivals: ArrivalSpec::Poisson { mean: Dur::from_millis(25), seed: 11 },
            sizes: SizeSpec::Pareto { min: 12_000, alpha: 1.3, cap: 300_000, seed: 5 },
            cca: CcaId::Reno,
            rtt: Dur::from_millis(20),
            jitter: Some(JitterSpec { max: Dur::from_millis(2), seed: 3 }),
            loss: Some(LossSpec { rate: 0.001, seed: 4 }),
            start: Some(Dur::from_millis(100)),
            mss: Some(1200),
        }
    }

    #[test]
    fn durations_pick_the_largest_even_unit() {
        assert_eq!(fmt_dur(Dur::from_secs(5)), "5s");
        assert_eq!(fmt_dur(Dur::from_millis(40)), "40ms");
        assert_eq!(fmt_dur(Dur::from_millis(1500)), "1500ms");
        assert_eq!(fmt_dur(Dur::from_micros(250)), "250us");
        assert_eq!(fmt_dur(Dur(123)), "123ns");
    }

    #[test]
    fn printed_form_reparses_identically() {
        let s = Scenario {
            name: "printer-roundtrip".to_string(),
            link: Link {
                rate_mbps: 24.5,
                buffer: Buffer::Bdp { n: 1.5, rtt: Dur::from_millis(40) },
                ecn_bytes: Some(30000),
            },
            duration: Dur::from_millis(1500),
            sample_every: Some(Dur::from_millis(5)),
            flows: vec![
                Flow {
                    id: "f0".to_string(),
                    cca: CcaId::DelayAimd,
                    rtt: Dur::from_millis(40),
                    jitter: Some(JitterSpec { max: Dur::from_millis(12), seed: 9 }),
                    loss: Some(LossSpec { rate: 0.02, seed: 7 }),
                    datagram: true,
                    start: Some(Dur::from_millis(250)),
                    mss: Some(1200),
                    audit_jitter_bound: Some(Dur::from_millis(1)),
                },
                Flow {
                    id: "f1".to_string(),
                    cca: CcaId::Reno,
                    rtt: Dur::from_millis(20),
                    jitter: None,
                    loss: None,
                    datagram: false,
                    start: None,
                    mss: None,
                    audit_jitter_bound: None,
                },
            ],
            workload: Some(sample_workload()),
        };
        let printed = s.to_string();
        let reparsed = parse(&printed).expect("canonical form parses");
        assert_eq!(reparsed, s, "print → parse must be identity:\n{printed}");
        assert_eq!(reparsed.to_string(), printed, "printing is idempotent");
    }

    #[test]
    fn workload_only_scenario_round_trips() {
        let s = Scenario {
            name: "population".to_string(),
            link: Link { rate_mbps: 48.0, buffer: Buffer::Ample, ecn_bytes: None },
            duration: Dur::from_secs(12),
            sample_every: None,
            flows: vec![],
            workload: Some(WorkloadSpec {
                count: 1000,
                arrivals: ArrivalSpec::Every(Dur::from_millis(8)),
                sizes: SizeSpec::Fixed(30_000),
                cca: CcaId::Cubic,
                rtt: Dur::from_millis(40),
                jitter: None,
                loss: None,
                start: None,
                mss: None,
            }),
        };
        let printed = s.to_string();
        let reparsed = parse(&printed).expect("canonical form parses");
        assert_eq!(reparsed, s, "print → parse must be identity:\n{printed}");
    }
}

//! `scenario` — a hermetic scenario DSL and a coverage-guided scenario
//! fuzzer with the runtime invariant auditor as its bug oracle.
//!
//! ## The DSL
//!
//! A `.scn` file describes one simulation: a bottleneck link, a run
//! length, and one or more flows with their congestion-control algorithm,
//! propagation RTT, and optional path impairments (jitter, random loss).
//! The canonical Copa-under-jitter scenario from the paper (§2) reads:
//!
//! ```text
//! scenario "copa-jitter" {
//!   link { rate 24mbps buffer ample }
//!   duration 5s
//!   flow f0 {
//!     cca copa
//!     rtt 40ms
//!     jitter 10ms seed 42
//!   }
//! }
//! ```
//!
//! The pipeline is [`parse`] → [`Scenario`] → [`compile()`] →
//! `netsim::SimConfig`. Parsing rejects every malformed input with a
//! positioned, stable diagnostic; compilation is therefore infallible.
//! The pretty-printer ([`Scenario`]'s `Display`) emits the canonical
//! form, and `parse(print(s)) == s` is a pinned property.
//!
//! Like `simlint`, the lexer and parser are written from scratch — the
//! whole crate has zero registry dependencies and works offline.
//!
//! ## The fuzzer
//!
//! [`fuzz::fuzz`] mutates scenario ASTs from a seed corpus, biases
//! toward under-explored coverage regions (unseen CCA pairings, jitter
//! near the `2·δ` starvation boundary, extreme rate/RTT ratios), runs
//! every generated scenario under the auditor, and treats any invariant
//! violation — not just a crash — as a finding. Findings are shrunk to a
//! minimal scenario via the testkit shrinking core and written out as
//! replayable `.scn` reproducers. Coverage persists across runs and the
//! whole loop is deterministic per seed; `repro fuzz` is the CLI.

pub mod ast;
pub mod compile;
pub mod fuzz;
pub mod gen;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{Buffer, CcaId, Flow, JitterSpec, Link, LossSpec, Scenario, ALL_CCAS};
pub use compile::compile;
pub use fuzz::{fuzz, Coverage, Finding, FuzzOptions, FuzzReport};
pub use gen::{boundary_jitter, mutate, ScenarioStrategy};
pub use lexer::ParseError;
pub use parser::parse;

use std::path::Path;

/// Parse a `.scn` file from disk. IO and parse errors are both rendered
/// into the error string, prefixed with the path.
pub fn load_file(path: &Path) -> Result<Scenario, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&src).map_err(|e| format!("{}:{e}", path.display()))
}

/// Load every `*.scn` file in a directory, sorted by file name so corpus
/// order (and with it fuzzer planning) is deterministic. A missing
/// directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> Result<Vec<Scenario>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(Vec::new()),
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_file(p)).collect()
}

//! The coverage-guided scenario fuzzer, with the runtime invariant
//! auditor (`simcore::trace::Auditor`) as its bug oracle.
//!
//! Each round plans a batch of scenarios — corpus mutants, targeted
//! probes of under-explored coverage regions, or fresh draws — compiles
//! them, and runs them under the auditor across the worker pool. A run
//! that panics (an invariant violation, or any other divergence) is a
//! *finding*: it is greedily shrunk to a minimal scenario via the testkit
//! shrinking core and written out as a replayable `.scn` reproducer.
//!
//! Coverage is a feature vector over
//! `(CCA set, jitter/2δ bucket, rate bucket, outcome class)` where the
//! outcome classes are `fair`, `starved`, `loss-dominated` and
//! `violation`. The map persists to `coverage.txt` (sorted, one key per
//! line), so successive runs resume from — and bias away from — what has
//! already been explored.
//!
//! Everything is deterministic per `(seed, corpus, count)`: planning is
//! serial from one seeded stream, execution preserves job order at any
//! worker count (`simcore::par::map`), and results are folded back in
//! order. The determinism suite asserts byte-identical `coverage.txt` and
//! `findings.jsonl` across repeat runs and across `--jobs 4` vs serial.

use crate::ast::{CcaId, Flow, JitterSpec, Link, Scenario, ALL_CCAS};
use crate::compile::compile;
use crate::gen::{boundary_jitter, mutate, ScenarioStrategy};
use netsim::{Network, SimResult};
use simcore::par::{self, JobOutcome};
use simcore::rng::Xoshiro256;
use simcore::units::Dur;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use testkit::prop::Strategy;

/// Fuzzer configuration.
pub struct FuzzOptions {
    /// Master seed: same seed + corpus + count ⇒ byte-identical outputs.
    pub seed: u64,
    /// Number of scenarios to generate and run.
    pub count: usize,
    /// Worker threads (0 = available parallelism). Never affects results.
    pub jobs: usize,
    /// Output directory for `coverage.txt`, `findings.jsonl` and
    /// `finding-NNN.scn` reproducers.
    pub out_dir: PathBuf,
    /// Seed corpus (typically the parsed `tests/scenarios/*.scn`).
    pub corpus: Vec<Scenario>,
    /// Findings shrunk and written out before the run stops early — a
    /// budget guard: every shrink evaluation is a full simulation.
    pub max_findings: usize,
    /// Eval budget per finding for the greedy shrinker.
    pub max_shrink_evals: u32,
    /// Log batch progress to stderr.
    pub verbose: bool,
}

impl FuzzOptions {
    /// Defaults: 240 scenarios (the CI smoke floor is 200), up to 3
    /// findings shrunk at 300 evals each, quiet.
    pub fn new(seed: u64, out_dir: PathBuf) -> FuzzOptions {
        FuzzOptions {
            seed,
            count: 240,
            jobs: 0,
            out_dir,
            corpus: Vec::new(),
            max_findings: 3,
            max_shrink_evals: 300,
            verbose: false,
        }
    }
}

/// One shrunk finding.
pub struct Finding {
    /// The minimized scenario (also written to [`Finding::path`]).
    pub scenario: Scenario,
    /// Name of the generated scenario that first failed (`fuzz-NNNNNN`).
    pub origin: String,
    /// The panic message of the original failure (first line is the
    /// auditor's invariant verdict).
    pub message: String,
    /// Shrink evaluations spent minimizing.
    pub shrink_evals: u32,
    /// Where the `.scn` reproducer was written.
    pub path: PathBuf,
}

/// A completed fuzz run.
pub struct FuzzReport {
    /// Scenarios executed this run.
    pub executed: usize,
    /// Distinct coverage features after the run.
    pub features: usize,
    /// Features first seen this run.
    pub new_features: usize,
    /// Total failing scenarios observed (≥ `findings.len()` when the
    /// `max_findings` cap truncates shrinking).
    pub violations: usize,
    /// The shrunk findings, in discovery order.
    pub findings: Vec<Finding>,
}

/// The persisted coverage map: feature key → observation count.
pub type Coverage = BTreeMap<String, u64>;

const COVERAGE_HEADER: &str = "# scenario-fuzz coverage v1";

/// Parse a persisted coverage file (the inverse of [`render_coverage`]).
pub fn parse_coverage(text: &str) -> Coverage {
    let mut map = Coverage::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, count)) = line.rsplit_once(' ') {
            if let Ok(n) = count.parse::<u64>() {
                map.insert(key.to_string(), n);
            }
        }
    }
    map
}

/// Render the coverage map in its persisted form: a header line, then
/// `key count` pairs in sorted key order.
pub fn render_coverage(map: &Coverage) -> String {
    let mut out = String::from(COVERAGE_HEADER);
    out.push('\n');
    for (key, count) in map {
        out.push_str(&format!("{key} {count}\n"));
    }
    out
}

/// The CCA component of a feature key: sorted slugs joined with `+`
/// (`bbr+copa`, or a single slug for one-flow scenarios). A workload
/// block contributes its template CCA as `wl-<slug>`, so population
/// scenarios occupy their own coverage region.
fn cca_key(s: &Scenario) -> String {
    let mut slugs: Vec<String> = s.flows.iter().map(|f| f.cca.slug().to_string()).collect();
    if let Some(w) = &s.workload {
        slugs.push(format!("wl-{}", w.cca.slug()));
    }
    slugs.sort_unstable();
    slugs.join("+")
}

/// The jitter/2δ bucket: where the scenario's largest jitter bound sits
/// relative to the paper's starvation boundary for its CCAs (workload
/// jitter and CCA included).
fn jitter_bucket(s: &Scenario) -> &'static str {
    let wl_jitter = s
        .workload
        .as_ref()
        .and_then(|w| w.jitter.map(|j| j.max.as_millis_f64()))
        .unwrap_or(0.0);
    let jitter_ms = s
        .flows
        .iter()
        .filter_map(|f| f.jitter.map(|j| j.max.as_millis_f64()))
        .fold(wl_jitter, f64::max);
    if jitter_ms <= 0.0 {
        return "j0";
    }
    let wl_delta = s
        .workload
        .as_ref()
        .map(|w| w.cca.delta_hint().as_millis_f64())
        .unwrap_or(1.0);
    let delta_ms = s
        .flows
        .iter()
        .map(|f| f.cca.delta_hint().as_millis_f64())
        .fold(1.0f64.max(wl_delta), f64::max);
    let ratio = jitter_ms / (2.0 * delta_ms);
    if ratio < 0.5 {
        "jlt0.5"
    } else if ratio < 0.9 {
        "j0.5-0.9"
    } else if ratio < 1.1 {
        "j0.9-1.1"
    } else if ratio < 2.0 {
        "j1.1-2"
    } else {
        "jge2"
    }
}

fn rate_bucket(mbps: f64) -> &'static str {
    if mbps < 4.0 {
        "rlt4"
    } else if mbps < 16.0 {
        "r4-16"
    } else if mbps < 64.0 {
        "r16-64"
    } else {
        "rge64"
    }
}

/// Classify a completed run: `loss-dominated` when any flow lost ≥ 5% of
/// its packets, `starved` when the worst flow got under 10% of the best
/// flow's throughput (or nothing moved at all), `fair` otherwise.
fn outcome_class(result: &SimResult) -> &'static str {
    let max_loss = result.flows.iter().map(|f| f.loss_fraction()).fold(0.0f64, f64::max);
    if max_loss >= 0.05 {
        return "loss-dominated";
    }
    let tputs: Vec<f64> = result.throughputs().iter().map(|r| r.bytes_per_sec()).collect();
    let hi = tputs.iter().fold(0.0f64, |a, &b| a.max(b));
    if hi <= 0.0 {
        return "starved";
    }
    let lo = tputs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    if tputs.len() >= 2 && lo / hi < 0.1 {
        return "starved";
    }
    "fair"
}

/// The full feature key of a scenario and its outcome class.
fn feature_key(s: &Scenario, outcome: &str) -> String {
    format!("{}|{}|{}|{}", cca_key(s), jitter_bucket(s), rate_bucket(s.link.rate_mbps), outcome)
}

/// CCA sets with no coverage entry at all yet, in registry-pair order.
fn uncovered_pairs(coverage: &Coverage) -> Vec<(CcaId, CcaId)> {
    let covered: std::collections::BTreeSet<&str> = coverage
        .keys()
        .filter_map(|k| k.split('|').next())
        .collect();
    let mut out = Vec::new();
    for (i, &a) in ALL_CCAS.iter().enumerate() {
        for &b in &ALL_CCAS[i..] {
            let mut slugs = [a.slug(), b.slug()];
            slugs.sort_unstable();
            if !covered.contains(slugs.join("+").as_str()) {
                out.push((a, b));
            }
        }
    }
    out
}

/// Build a targeted probe: an uncovered CCA pair head-to-head with jitter
/// at the starvation boundary on flow 0.
fn targeted(rng: &mut Xoshiro256, coverage: &Coverage) -> Scenario {
    let pairs = uncovered_pairs(coverage);
    let (a, b) = if pairs.is_empty() {
        // Everything seen at least once: re-probe a random pairing.
        let a = ALL_CCAS[rng.range_u64(ALL_CCAS.len() as u64) as usize];
        let b = ALL_CCAS[rng.range_u64(ALL_CCAS.len() as u64) as usize];
        (a, b)
    } else {
        pairs[rng.range_u64(pairs.len() as u64) as usize]
    };
    let rtt = Dur::from_millis([5, 10, 20, 40, 80][rng.range_u64(5) as usize]);
    let jitter = boundary_jitter(rng, a);
    let mk = |id: &str, cca: CcaId, jitter: Option<JitterSpec>| Flow {
        id: id.to_string(),
        cca,
        rtt,
        jitter,
        loss: None,
        datagram: false,
        start: None,
        mss: None,
        audit_jitter_bound: None,
    };
    Scenario {
        name: "targeted".to_string(),
        link: Link {
            rate_mbps: [4.0, 8.0, 16.0, 24.0, 48.0][rng.range_u64(5) as usize],
            buffer: crate::ast::Buffer::Ample,
            ecn_bytes: None,
        },
        duration: Dur::from_millis(1000),
        sample_every: None,
        flows: vec![
            mk("f0", a, Some(JitterSpec { max: jitter, seed: rng.range_u64(1000) })),
            mk("f1", b, None),
        ],
        workload: None,
    }
}

/// Plan the next scenario: mutate a corpus entry (50%), probe an
/// under-explored coverage region (30%), or draw fresh (20%).
fn plan(
    rng: &mut Xoshiro256,
    strategy: &ScenarioStrategy,
    corpus: &[Scenario],
    coverage: &Coverage,
    index: usize,
) -> Scenario {
    let mode = rng.range_u64(10);
    let mut s = if !corpus.is_empty() && mode < 5 {
        let pick = rng.range_u64(corpus.len() as u64) as usize;
        mutate(rng, strategy, corpus[pick].clone())
    } else if mode < 8 {
        targeted(rng, coverage)
    } else {
        strategy.generate(rng)
    };
    s.name = format!("fuzz-{index:06}");
    s
}

/// Does this scenario fail under the auditor? The shrinking predicate.
fn fails_under_audit(s: &Scenario) -> bool {
    let cfg = compile(s).with_audit(true);
    catch_unwind(AssertUnwindSafe(|| {
        Network::new(cfg).run();
    }))
    .is_err()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Run the fuzzer. Writes `coverage.txt` (accumulated across runs),
/// `findings.jsonl` (this run's findings) and one `finding-NNN.scn`
/// reproducer per shrunk finding into `opts.out_dir`.
pub fn fuzz(opts: &FuzzOptions) -> Result<FuzzReport, String> {
    let out_dir = &opts.out_dir;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let cov_path = out_dir.join("coverage.txt");
    let mut coverage: Coverage = match std::fs::read_to_string(&cov_path) {
        Ok(text) => parse_coverage(&text),
        Err(_) => Coverage::new(),
    };
    let initial_features = coverage.len();

    let strategy = ScenarioStrategy::default();
    let mut rng = Xoshiro256::new(opts.seed);
    let jobs = if opts.jobs == 0 { par::available_jobs() } else { opts.jobs };
    // Fixed batch size, NOT a function of `jobs`: planning consults the
    // coverage accumulated so far, so batch boundaries are part of the
    // deterministic plan — a jobs-dependent batch would make `--jobs 4`
    // explore differently from a serial run.
    let batch_size = 32;

    let mut executed = 0usize;
    let mut failures: Vec<(Scenario, String)> = Vec::new();
    while executed < opts.count {
        let n = batch_size.min(opts.count - executed);
        // Planning is serial from the single seeded stream (and sees the
        // coverage accumulated so far); only execution fans out.
        let scenarios: Vec<Scenario> = (0..n)
            .map(|i| plan(&mut rng, &strategy, &opts.corpus, &coverage, executed + i))
            .collect();
        let configs: Vec<_> = scenarios.iter().map(|s| compile(s).with_audit(true)).collect();
        let reports = par::map(configs, jobs, |_i, cfg| Network::new(cfg).run(), None);
        for (s, report) in scenarios.into_iter().zip(reports) {
            let outcome = match report.outcome {
                JobOutcome::Ok(result) => outcome_class(&result),
                JobOutcome::Panicked(msg) => {
                    failures.push((s.clone(), msg));
                    "violation"
                }
            };
            *coverage.entry(feature_key(&s, outcome)).or_insert(0) += 1;
        }
        executed += n;
        if opts.verbose {
            eprintln!(
                "fuzz: {executed}/{} scenarios, {} features, {} violation(s)",
                opts.count,
                coverage.len(),
                failures.len()
            );
        }
    }

    // Shrink the findings (each evaluation is a full audited simulation,
    // so the count and per-finding budget are capped).
    let mut findings = Vec::new();
    let mut log_lines = Vec::new();
    for (i, (scenario, message)) in failures.iter().take(opts.max_findings).enumerate() {
        let origin = scenario.name.clone();
        let (mut min, shrink_evals) = testkit::prop::minimize(
            &strategy,
            scenario.clone(),
            fails_under_audit,
            opts.max_shrink_evals,
        );
        min.name = format!("finding-{i:03}");
        let path = out_dir.join(format!("finding-{i:03}.scn"));
        let source = format!(
            "# Minimal reproducer shrunk from {origin} (seed {}).\n# Replay: repro fuzz --replay {}\n{}\n",
            opts.seed,
            path.display(),
            min
        );
        std::fs::write(&path, &source).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let first_line = message.lines().next().unwrap_or("");
        log_lines.push(format!(
            "{{\"finding\":{i},\"origin\":\"{}\",\"repro\":\"finding-{i:03}.scn\",\"shrink_evals\":{shrink_evals},\"message\":\"{}\"}}",
            json_escape(&origin),
            json_escape(first_line),
        ));
        findings.push(Finding {
            scenario: min,
            origin,
            message: message.clone(),
            shrink_evals,
            path,
        });
    }
    if failures.len() > opts.max_findings {
        log_lines.push(format!(
            "{{\"truncated\":{},\"note\":\"further failures not shrunk (max_findings cap)\"}}",
            failures.len() - opts.max_findings
        ));
    }

    let findings_path = out_dir.join("findings.jsonl");
    let mut text = log_lines.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    std::fs::write(&findings_path, text)
        .map_err(|e| format!("cannot write {}: {e}", findings_path.display()))?;
    std::fs::write(&cov_path, render_coverage(&coverage))
        .map_err(|e| format!("cannot write {}: {e}", cov_path.display()))?;

    Ok(FuzzReport {
        executed,
        features: coverage.len(),
        new_features: coverage.len() - initial_features,
        violations: failures.len(),
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn coverage_renders_and_reparses() {
        let mut map = Coverage::new();
        map.insert("bbr+copa|j0.9-1.1|r4-16|fair".to_string(), 3);
        map.insert("reno|j0|rlt4|loss-dominated".to_string(), 1);
        let text = render_coverage(&map);
        assert!(text.starts_with(COVERAGE_HEADER));
        assert_eq!(parse_coverage(&text), map);
    }

    #[test]
    fn feature_key_buckets_make_sense() {
        let s = parse(
            r#"
scenario "k" {
  link { rate 24mbps buffer ample }
  duration 1s
  flow f0 { cca copa rtt 40ms jitter 10ms seed 1 }
  flow f1 { cca bbr rtt 40ms }
}
"#,
        )
        .expect("parses");
        // Copa δ-hint 5 ms, BBR 10 ms → scenario δ = 10 ms; 10 ms jitter
        // over a 20 ms boundary lands in the 0.5 bucket edge.
        assert_eq!(feature_key(&s, "fair"), "bbr+copa|j0.5-0.9|r16-64|fair");
    }

    #[test]
    fn uncovered_pairs_shrink_as_coverage_grows() {
        let mut cov = Coverage::new();
        let all = uncovered_pairs(&cov);
        let n = ALL_CCAS.len();
        assert_eq!(all.len(), n * (n + 1) / 2);
        cov.insert("bbr+copa|j0|rlt4|fair".to_string(), 1);
        let after = uncovered_pairs(&cov);
        assert_eq!(after.len(), all.len() - 1);
        assert!(!after.contains(&(CcaId::Copa, CcaId::Bbr)));
        assert!(!after.contains(&(CcaId::Bbr, CcaId::Copa)));
    }

    #[test]
    fn seeded_violation_fails_under_audit_and_clean_scenario_passes() {
        let bad = parse(
            r#"
scenario "seeded" {
  link { rate 12mbps buffer ample }
  duration 1s
  flow f0 { cca const-cwnd rtt 40ms jitter 20ms seed 5 audit-jitter-bound 1ms }
}
"#,
        )
        .expect("parses");
        assert!(fails_under_audit(&bad));
        let mut good = bad.clone();
        good.flows[0].audit_jitter_bound = None;
        assert!(!fails_under_audit(&good));
    }
}

//! Compile a parsed [`Scenario`] into a runnable `netsim::SimConfig`.
//!
//! Compilation is infallible: everything that can be wrong with a
//! scenario is rejected at parse time with a positioned diagnostic, so a
//! `Scenario` value is a valid simulation by construction. The mapping is
//! deliberately thin — each DSL field corresponds to exactly one
//! `LinkConfig`/`FlowConfig`/`SimConfig` builder call, so a `.scn` file
//! and the Rust constructor it replaces produce bit-identical configs
//! (the golden-trace suite holds the canonical corpus to this).

use crate::ast::{ArrivalSpec, Buffer, CcaId, Flow, Scenario, SizeSpec, WorkloadSpec};
use cca::delay_aimd::DelayAimdConfig;
use cca::jitter_aware::JitterAwareConfig;
use cca::BoxCca;
use netsim::{ArrivalProcess, FlowConfig, Jitter, LinkConfig, SimConfig, SizeDist, Workload};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate, Time};

/// Fixed window of the `const-cwnd` "silly CCA" (§4.2): 20 packets.
const CONST_CWND_BYTES: u64 = 20 * 1500;

/// Designed-for jitter bound used by the two rtt-parameterized CCAs
/// (`delay-aimd`, `jitter-aware`) when the flow declares no jitter element.
const DEFAULT_DESIGN_JITTER: Dur = Dur(10_000_000); // 10 ms

/// Instantiate a CCA for a flow. `rm` parameterizes the algorithms that
/// take the propagation RTT as an oracle (`delay-aimd`, `jitter-aware`);
/// their designed-for jitter bound `D` is the flow's declared jitter bound
/// (or 10 ms on clean paths), so fuzzing jitter across the design point is
/// meaningful.
fn build_cca(id: CcaId, rm: Dur, declared_jitter: Option<Dur>) -> BoxCca {
    let design = match declared_jitter {
        Some(d) if d > Dur::ZERO => d,
        _ => DEFAULT_DESIGN_JITTER,
    };
    match id {
        CcaId::Reno => Box::new(cca::NewReno::default_params()),
        CcaId::Cubic => Box::new(cca::Cubic::default_params()),
        CcaId::Vegas => Box::new(cca::Vegas::default_params()),
        CcaId::Fast => Box::new(cca::FastTcp::default_params()),
        CcaId::Ledbat => Box::new(cca::Ledbat::default_params()),
        CcaId::Copa => Box::new(cca::Copa::default_params()),
        CcaId::Bbr => Box::new(cca::Bbr::default_params()),
        CcaId::Verus => Box::new(cca::Verus::default_params()),
        CcaId::Vivace => Box::new(cca::Vivace::default_params()),
        CcaId::Allegro => Box::new(cca::Allegro::default_params()),
        CcaId::DelayAimd => Box::new(cca::DelayAimd::new(DelayAimdConfig::for_jitter(rm, design))),
        CcaId::JitterAware => Box::new(cca::JitterAware::new(JitterAwareConfig::example(rm))),
        CcaId::ConstCwnd => Box::new(cca::ConstCwnd::new(CONST_CWND_BYTES)),
    }
}

fn flow_config(f: &Flow) -> FlowConfig {
    let mut cfg = FlowConfig::bulk(build_cca(f.cca, f.rtt, f.jitter.map(|j| j.max)), f.rtt);
    if let Some(j) = f.jitter {
        cfg = cfg.with_jitter(Jitter::Random { max: j.max, rng: Xoshiro256::new(j.seed) });
    }
    if let Some(l) = f.loss {
        cfg = cfg.with_loss(l.rate, l.seed);
    }
    if f.datagram {
        cfg = cfg.with_transport(netsim::Transport::Datagram);
    }
    if let Some(start) = f.start {
        cfg = cfg.with_start(Time(start.as_nanos()));
    }
    if let Some(mss) = f.mss {
        cfg = cfg.with_mss(mss);
    }
    if let Some(bound) = f.audit_jitter_bound {
        cfg = cfg.with_audit_jitter_bound(bound);
    }
    cfg
}

fn workload_config(w: &WorkloadSpec) -> Workload {
    let arrivals = match w.arrivals {
        ArrivalSpec::Every(interval) => ArrivalProcess::Fixed { interval },
        ArrivalSpec::Poisson { mean, seed } => ArrivalProcess::Poisson { mean, seed },
    };
    let sizes = match w.sizes {
        SizeSpec::Fixed(bytes) => SizeDist::Fixed { bytes },
        SizeSpec::Pareto { min, alpha, cap, seed } => {
            SizeDist::Pareto { min_bytes: min, alpha, cap_bytes: cap, seed }
        }
    };
    let cca = build_cca(w.cca, w.rtt, w.jitter.map(|j| j.max));
    let mut wl = Workload::new(w.count, arrivals, sizes, cca, w.rtt);
    if let Some(start) = w.start {
        wl = wl.with_start(Time(start.as_nanos()));
    }
    if let Some(mss) = w.mss {
        wl = wl.with_mss(mss);
    }
    if let Some(j) = w.jitter {
        wl = wl.with_jitter(j.max, j.seed);
    }
    if let Some(l) = w.loss {
        wl = wl.with_loss(l.rate, l.seed);
    }
    wl
}

/// Lower a scenario to a runnable simulation configuration.
pub fn compile(s: &Scenario) -> SimConfig {
    let rate = Rate::from_mbps(s.link.rate_mbps);
    let link = match s.link.buffer {
        Buffer::Ample => LinkConfig::ample_buffer(rate),
        Buffer::Bytes(b) => LinkConfig::new(rate, b),
        Buffer::Bdp { n, rtt } => LinkConfig::bdp_buffer(rate, rtt, n),
    };
    let link = match s.link.ecn_bytes {
        Some(threshold) => link.with_ecn(threshold),
        None => link,
    };
    let flows = s.flows.iter().map(flow_config).collect();
    let mut cfg = SimConfig::new(link, flows, s.duration);
    if let Some(every) = s.sample_every {
        cfg = cfg.with_sample_every(every);
    }
    if let Some(w) = &s.workload {
        cfg = cfg.with_workload(workload_config(w));
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use netsim::Network;

    fn compile_src(src: &str) -> SimConfig {
        compile(&parse(src).expect("parses"))
    }

    #[test]
    fn canonical_copa_jitter_matches_its_rust_construction() {
        let from_dsl = compile_src(
            r#"
scenario "copa-jitter" {
  link { rate 24mbps buffer ample }
  duration 5s
  flow f0 { cca copa rtt 40ms jitter 10ms seed 42 }
}
"#,
        );
        let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
        let flow = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(40))
            .with_jitter(Jitter::Random { max: Dur::from_millis(10), rng: Xoshiro256::new(42) });
        let by_hand = SimConfig::new(link, vec![flow], Dur::from_secs(5));
        assert_eq!(from_dsl.link.buffer_bytes, by_hand.link.buffer_bytes);
        assert_eq!(from_dsl.duration, by_hand.duration);
        assert_eq!(from_dsl.sample_every, by_hand.sample_every);
        // Bit-identical behaviour, not just matching fields.
        let a = Network::new(from_dsl).run();
        let b = Network::new(by_hand).run();
        assert_eq!(a.flows[0].sent_bytes, b.flows[0].sent_bytes);
        assert_eq!(a.flows[0].total_delivered(), b.flows[0].total_delivered());
    }

    #[test]
    fn bdp_buffer_and_builders_lower_exactly() {
        let cfg = compile_src(
            r#"
scenario "builders" {
  link { rate 24mbps buffer bdp 1 40ms ecn 15000B }
  duration 1s
  sample-every 5ms
  flow f0 {
    cca vivace rtt 40ms
    loss 0.02 seed 7
    transport datagram
    start 250ms
    mss 1200
  }
}
"#,
        );
        let want = LinkConfig::bdp_buffer(Rate::from_mbps(24.0), Dur::from_millis(40), 1.0);
        assert_eq!(cfg.link.buffer_bytes, want.buffer_bytes);
        assert_eq!(cfg.link.ecn_threshold, Some(15000));
        assert_eq!(cfg.sample_every, Dur::from_millis(5));
        let f = &cfg.flows[0];
        assert_eq!(f.loss_rate, 0.02);
        assert_eq!(f.loss_seed, 7);
        assert_eq!(f.start, Time::from_millis(250));
        assert_eq!(f.mss, 1200);
        assert!(matches!(f.transport, netsim::Transport::Datagram));
    }

    #[test]
    fn audit_jitter_bound_lowers_to_the_flow_config() {
        let cfg = compile_src(
            r#"
scenario "seeded-violation" {
  link { rate 12mbps buffer ample }
  duration 1s
  flow f0 { cca const-cwnd rtt 40ms jitter 20ms seed 5 audit-jitter-bound 1ms }
}
"#,
        );
        assert_eq!(cfg.flows[0].audit_jitter_bound, Some(Dur::from_millis(1)));
    }

    #[test]
    fn workload_block_lowers_to_a_netsim_workload() {
        let cfg = compile_src(
            r#"
scenario "population" {
  link { rate 48mbps buffer ample }
  duration 4s
  workload {
    flows 16
    arrivals poisson 50ms seed 9
    sizes pareto 12000B 1.3 300000B seed 5
    cca reno
    rtt 20ms
    jitter 2ms seed 3
    start 100ms
    mss 1200
  }
}
"#,
        );
        assert!(cfg.flows.is_empty());
        let w = cfg.workload.as_ref().expect("workload lowered");
        assert_eq!(w.count, 16);
        assert_eq!(w.arrivals, ArrivalProcess::Poisson { mean: Dur::from_millis(50), seed: 9 });
        assert_eq!(
            w.sizes,
            SizeDist::Pareto { min_bytes: 12_000, alpha: 1.3, cap_bytes: 300_000, seed: 5 }
        );
        assert_eq!(w.start, Time::from_millis(100));
        assert_eq!(w.mss, 1200);
        assert_eq!(w.jitter, Some((Dur::from_millis(2), 3)));
        assert_eq!(w.loss, None);
        // And the whole thing runs audited: flows spawn, deliver, retire.
        let r = Network::new(compile_src(
            r#"
scenario "population" {
  link { rate 48mbps buffer ample }
  duration 4s
  workload {
    flows 16
    arrivals poisson 50ms seed 9
    sizes pareto 12000B 1.3 300000B seed 5
    cca reno
    rtt 20ms
    jitter 2ms seed 3
    start 100ms
    mss 1200
  }
}
"#,
        ).with_audit(true))
        .run();
        assert_eq!(r.flows.len(), 16);
        assert!(r.fcts().len() >= 12, "most flows should complete: {}", r.fcts().len());
    }

    #[test]
    fn every_registry_cca_compiles_and_runs() {
        for &id in crate::ast::ALL_CCAS {
            let cfg = compile_src(&format!(
                "scenario \"all-ccas\" {{ link {{ rate 8mbps buffer ample }} duration 400ms flow f0 {{ cca {} rtt 20ms }} }}",
                id.slug()
            ));
            let r = Network::new(cfg.with_audit(true)).run();
            assert!(r.flows[0].sent_bytes > 0, "{} sent nothing", id.slug());
        }
    }
}

//! The scenario AST: what a `.scn` file denotes.
//!
//! Every node derives `PartialEq`, and the pretty-printer
//! ([`crate::printer`]) emits a canonical form whose re-parse is
//! structurally identical — the round-trip property the test suite pins.
//! To make that identity exact the AST stores *source-level* quantities:
//! durations as integer nanoseconds ([`Dur`]), rates as `f64` Mbit/s
//! (Rust's `f64` Display is shortest-round-trip, so `print ∘ parse` loses
//! nothing), seeds as plain integers.

use simcore::units::Dur;

/// A complete scenario: one bottleneck link shared by one or more flows.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (labels findings, golden digests, sweep rows).
    pub name: String,
    /// The shared bottleneck.
    pub link: Link,
    /// Simulated run length.
    pub duration: Dur,
    /// Optional series-decimation override (`sample-every`).
    pub sample_every: Option<Dur>,
    /// The competing flows, in declaration order.
    pub flows: Vec<Flow>,
    /// Optional dynamic workload: a population of finite flows arriving
    /// mid-run. A scenario may be workload-only (zero `flow` blocks).
    pub workload: Option<WorkloadSpec>,
}

/// Bottleneck link description.
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// Drain rate in Mbit/s.
    pub rate_mbps: f64,
    /// Tail-drop buffer sizing.
    pub buffer: Buffer,
    /// ECN marking threshold in bytes of backlog (`None` = disabled).
    pub ecn_bytes: Option<u64>,
}

/// Buffer sizing policies, mirroring `netsim::LinkConfig`'s constructors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Buffer {
    /// `LinkConfig::ample_buffer`: never overflows for delay-bounding CCAs.
    Ample,
    /// An explicit byte count.
    Bytes(u64),
    /// `n` bandwidth-delay products at the given RTT.
    Bdp {
        /// Number of BDPs.
        n: f64,
        /// RTT the BDP is computed against.
        rtt: Dur,
    },
}

/// One flow: a CCA on a path with optional impairments.
#[derive(Clone, Debug, PartialEq)]
pub struct Flow {
    /// Flow id (unique within the scenario; `f0`, `f1`, …).
    pub id: String,
    /// Which congestion-control algorithm drives the sender.
    pub cca: CcaId,
    /// Propagation RTT `Rm` of this flow's path.
    pub rtt: Dur,
    /// Optional i.i.d. uniform random jitter element.
    pub jitter: Option<JitterSpec>,
    /// Optional Bernoulli loss element.
    pub loss: Option<LossSpec>,
    /// UDP-like datagram transport (default: TCP-like reliable).
    pub datagram: bool,
    /// Delayed start offset from t = 0.
    pub start: Option<Dur>,
    /// Packet-size override (default 1500).
    pub mss: Option<u64>,
    /// Audited jitter-bound override — the fault-injection hook
    /// (`SimConfig::with_audit_jitter_bound`). Declaring a bound below the
    /// jitter element's real one seeds an invariant violation; the fuzzer
    /// oracle tests use this, generation never emits it.
    pub audit_jitter_bound: Option<Dur>,
}

/// A `workload { ... }` block: `count` finite flows arrive mid-run from a
/// deterministic arrival process, each transferring a drawn size through a
/// clone of one template CCA/path. Source-level mirror of
/// `netsim::Workload`; jitter/loss seeds are per-flow decorrelated at
/// runtime, so the block stores only the base seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Number of flows the schedule spawns (`flows N`).
    pub count: u64,
    /// Arrival spacing.
    pub arrivals: ArrivalSpec,
    /// Flow-size distribution.
    pub sizes: SizeSpec,
    /// Template CCA driving every spawned flow.
    pub cca: CcaId,
    /// Propagation RTT of every spawned flow's path.
    pub rtt: Dur,
    /// Optional per-flow random jitter (base seed, decorrelated per flow).
    pub jitter: Option<JitterSpec>,
    /// Optional Bernoulli loss (base seed, decorrelated per flow).
    pub loss: Option<LossSpec>,
    /// Delay of the first arrival from t = 0.
    pub start: Option<Dur>,
    /// Packet-size override (default 1500).
    pub mss: Option<u64>,
}

/// How workload arrivals are spaced (source-level `netsim::ArrivalProcess`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalSpec {
    /// `arrivals every <dur>` — one arrival per fixed interval.
    Every(Dur),
    /// `arrivals poisson <dur> seed <int>` — exponential inter-arrivals
    /// with the given mean, from a seeded stream.
    Poisson {
        /// Mean inter-arrival time.
        mean: Dur,
        /// Seed of the arrival stream.
        seed: u64,
    },
}

/// How workload flow sizes are drawn (source-level `netsim::SizeDist`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeSpec {
    /// `sizes fixed <bytes>` — every flow transfers exactly this much.
    Fixed(u64),
    /// `sizes pareto <min> <alpha> <cap> seed <int>` — bounded Pareto,
    /// the heavy-tailed mice-and-elephants mix.
    Pareto {
        /// Minimum flow size in bytes.
        min: u64,
        /// Tail index α.
        alpha: f64,
        /// Upper truncation in bytes.
        cap: u64,
        /// Seed of the size stream.
        seed: u64,
    },
}

/// Random-jitter element: uniform delay in `[0, max]` from a seeded stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JitterSpec {
    /// Upper bound `D`.
    pub max: Dur,
    /// Seed of the jitter stream.
    pub seed: u64,
}

/// Bernoulli loss element on the data path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossSpec {
    /// Loss probability.
    pub rate: f64,
    /// Seed of the loss process.
    pub seed: u64,
}

/// The CCA registry: every algorithm the `cca` crate implements, by the
/// slug the DSL (and the repo's labels) use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CcaId {
    /// TCP NewReno.
    Reno,
    /// TCP Cubic.
    Cubic,
    /// TCP Vegas.
    Vegas,
    /// FAST TCP.
    Fast,
    /// LEDBAT.
    Ledbat,
    /// Copa.
    Copa,
    /// BBR v1.
    Bbr,
    /// Verus.
    Verus,
    /// PCC Vivace.
    Vivace,
    /// PCC Allegro.
    Allegro,
    /// AIMD-on-delay (§6.2).
    DelayAimd,
    /// Algorithm 1 (§6.3).
    JitterAware,
    /// Constant-cwnd "silly CCA" (§4.2).
    ConstCwnd,
}

/// Every CCA, in registry order (the order fuzz coverage enumerates pairs).
pub const ALL_CCAS: &[CcaId] = &[
    CcaId::Reno,
    CcaId::Cubic,
    CcaId::Vegas,
    CcaId::Fast,
    CcaId::Ledbat,
    CcaId::Copa,
    CcaId::Bbr,
    CcaId::Verus,
    CcaId::Vivace,
    CcaId::Allegro,
    CcaId::DelayAimd,
    CcaId::JitterAware,
    CcaId::ConstCwnd,
];

impl CcaId {
    /// The DSL name of this CCA.
    pub fn slug(self) -> &'static str {
        match self {
            CcaId::Reno => "reno",
            CcaId::Cubic => "cubic",
            CcaId::Vegas => "vegas",
            CcaId::Fast => "fast",
            CcaId::Ledbat => "ledbat",
            CcaId::Copa => "copa",
            CcaId::Bbr => "bbr",
            CcaId::Verus => "verus",
            CcaId::Vivace => "vivace",
            CcaId::Allegro => "allegro",
            CcaId::DelayAimd => "delay-aimd",
            CcaId::JitterAware => "jitter-aware",
            CcaId::ConstCwnd => "const-cwnd",
        }
    }

    /// Resolve a DSL name. `None` for unknown slugs.
    pub fn from_slug(s: &str) -> Option<CcaId> {
        ALL_CCAS.iter().copied().find(|c| c.slug() == s)
    }

    /// Heuristic bound on the CCA's steady-state delay oscillation δ,
    /// used only to bias fuzz mutation toward the paper's `D ≈ 2·δ_max`
    /// starvation boundary. Not a measured quantity — a rough prior:
    /// delay-convergent CCAs sit low, buffer-filling ones high.
    pub fn delta_hint(self) -> Dur {
        let ms = match self {
            CcaId::Vegas | CcaId::Fast => 3,
            CcaId::Ledbat | CcaId::Copa => 5,
            CcaId::Bbr | CcaId::Vivace | CcaId::JitterAware | CcaId::DelayAimd => 10,
            CcaId::Verus | CcaId::Allegro => 15,
            CcaId::Reno | CcaId::Cubic => 20,
            CcaId::ConstCwnd => 1,
        };
        Dur::from_millis(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip_through_the_registry() {
        for &c in ALL_CCAS {
            assert_eq!(CcaId::from_slug(c.slug()), Some(c));
        }
        assert_eq!(CcaId::from_slug("renno"), None);
    }

    #[test]
    fn registry_has_no_duplicate_slugs() {
        let mut slugs: Vec<&str> = ALL_CCAS.iter().map(|c| c.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), ALL_CCAS.len());
    }
}

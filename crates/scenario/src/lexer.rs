//! Lexer for the `.scn` scenario language.
//!
//! Built from scratch in the style of `simlint`'s lexer: no external
//! dependencies, a flat token stream with line/column positions. The
//! vocabulary is deliberately tiny —
//!
//! * identifiers/keywords: `[A-Za-z_][A-Za-z0-9_-]*` (hyphens allowed so
//!   CCA slugs like `delay-aimd` and fields like `audit-jitter-bound` are
//!   single tokens);
//! * numbers: `[0-9]+(.[0-9]+)?` followed by an optional alphabetic unit
//!   suffix that stays part of the token text (`40ms`, `24mbps`, `0.02`,
//!   `120000B`) — the parser interprets the suffix, so a wrong unit is a
//!   parse diagnostic with a position, not a lex error;
//! * strings: double-quoted, no escapes (scenario names);
//! * punctuation: `{` and `}`;
//! * comments: `#` to end of line, skipped.

use std::fmt;

/// Token kinds. Numbers keep their unit suffix in [`Token::text`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (may contain `-` after the first character).
    Ident,
    /// Number with optional unit suffix, e.g. `40ms`, `0.02`, `120000B`.
    Number,
    /// Double-quoted string (text excludes the quotes).
    Str,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text (without quotes for strings).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A parse (or lex) failure with a stable message and source position.
///
/// Rendered as `line:col: message`; the negative-parse suite pins these
/// messages, so wording changes are contract changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable description of the failure.
    pub msg: String,
}

impl ParseError {
    /// Build an error at a position.
    pub fn new(line: u32, col: u32, msg: impl Into<String>) -> ParseError {
        ParseError { line, col, msg: msg.into() }
    }

    /// Build an error at a token's position.
    pub fn at(tok: &Token, msg: impl Into<String>) -> ParseError {
        ParseError::new(tok.line, tok.col, msg)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Tokenize `src`. The returned stream always ends with an [`TokKind::Eof`]
/// token carrying the position just past the input.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        let mut bump = |chars: &mut std::iter::Peekable<std::str::Chars>| {
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        };
        if c == '\n' || c == ' ' || c == '\t' || c == '\r' {
            bump(&mut chars);
        } else if c == '#' {
            while let Some(&c) = chars.peek() {
                if c == '\n' {
                    break;
                }
                bump(&mut chars);
            }
        } else if c == '{' {
            bump(&mut chars);
            out.push(Token { kind: TokKind::LBrace, text: "{".into(), line: tline, col: tcol });
        } else if c == '}' {
            bump(&mut chars);
            out.push(Token { kind: TokKind::RBrace, text: "}".into(), line: tline, col: tcol });
        } else if c == '"' {
            bump(&mut chars);
            let mut text = String::new();
            loop {
                match chars.peek() {
                    Some('"') => {
                        bump(&mut chars);
                        break;
                    }
                    Some('\n') | None => {
                        return Err(ParseError::new(tline, tcol, "unterminated string"));
                    }
                    Some(&c) => {
                        text.push(c);
                        bump(&mut chars);
                    }
                }
            }
            out.push(Token { kind: TokKind::Str, text, line: tline, col: tcol });
        } else if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() || c == '.' {
                    text.push(c);
                    bump(&mut chars);
                } else {
                    break;
                }
            }
            // The unit suffix travels with the number token.
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphabetic() {
                    text.push(c);
                    bump(&mut chars);
                } else {
                    break;
                }
            }
            out.push(Token { kind: TokKind::Number, text, line: tline, col: tcol });
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut text = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    text.push(c);
                    bump(&mut chars);
                } else {
                    break;
                }
            }
            out.push(Token { kind: TokKind::Ident, text, line: tline, col: tcol });
        } else {
            return Err(ParseError::new(tline, tcol, format!("unexpected character `{c}`")));
        }
    }
    out.push(Token { kind: TokKind::Eof, text: String::new(), line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).expect("lexes").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_basic_vocabulary() {
        let toks = lex("scenario \"x\" { rate 24mbps }").expect("lexes");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["scenario", "x", "{", "rate", "24mbps", "}", ""]);
        assert_eq!(toks[4].kind, TokKind::Number);
        assert_eq!(toks[1].kind, TokKind::Str);
    }

    #[test]
    fn hyphenated_idents_are_single_tokens() {
        let toks = lex("audit-jitter-bound delay-aimd").expect("lexes");
        assert_eq!(toks[0].text, "audit-jitter-bound");
        assert_eq!(toks[1].text, "delay-aimd");
    }

    #[test]
    fn numbers_keep_unit_suffixes_and_decimals() {
        let toks = lex("0.02 40ms 120000B 5s").expect("lexes");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["0.02", "40ms", "120000B", "5s", ""]);
        assert!(toks[..4].iter().all(|t| t.kind == TokKind::Number));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        assert_eq!(
            kinds("# header\nflow f0 { # trailing\n}\n"),
            [TokKind::Ident, TokKind::Ident, TokKind::LBrace, TokKind::RBrace, TokKind::Eof]
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = lex("a\n  bb cc").expect("lexes");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 6));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = lex("scenario \"oops").expect_err("must fail");
        assert_eq!((err.line, err.col), (1, 10));
        assert!(err.msg.contains("unterminated"), "{err}");
    }

    #[test]
    fn stray_character_is_an_error() {
        let err = lex("flow $x").expect_err("must fail");
        assert_eq!((err.line, err.col), (1, 6));
        assert!(err.msg.contains("unexpected character"), "{err}");
    }
}

//! Recursive-descent parser for the `.scn` scenario language.
//!
//! Grammar (whitespace-insensitive; `#` comments; see DESIGN.md §10):
//!
//! ```text
//! scenario     ::= "scenario" STRING "{" item* "}"
//! item         ::= link | "duration" dur | "sample-every" dur | flow | workload
//! link         ::= "link" "{" ("rate" rate | "buffer" buffer | "ecn" bytes)* "}"
//! buffer       ::= "ample" | bytes | "bdp" number dur
//! flow         ::= "flow" IDENT "{" field* "}"
//! field        ::= "cca" IDENT | "rtt" dur
//!                | "jitter" dur "seed" int | "loss" number "seed" int
//!                | "transport" ("reliable" | "datagram")
//!                | "start" dur | "mss" int | "audit-jitter-bound" dur
//! workload     ::= "workload" "{" wfield* "}"
//! wfield       ::= "flows" int | "arrivals" arrivals | "sizes" sizes
//!                | "cca" IDENT | "rtt" dur
//!                | "jitter" dur "seed" int | "loss" number "seed" int
//!                | "start" dur | "mss" int
//! arrivals     ::= "every" dur | "poisson" dur "seed" int
//! sizes        ::= "fixed" bytes | "pareto" bytes number bytes "seed" int
//! dur          ::= NUMBER with unit s | ms | us | ns
//! rate         ::= NUMBER with unit gbps | mbps | kbps
//! bytes        ::= NUMBER with unit B
//! ```
//!
//! Required: one `link` block (with `rate` and `buffer`), a `duration`,
//! and at least one flow — a `flow` block or a `workload` block (flows
//! need `cca` and `rtt`; a workload needs `flows`, `arrivals`, `sizes`,
//! `cca` and `rtt`). Everything else is optional. Errors are fail-fast
//! and carry a 1-based line/column plus a *stable* message — the
//! negative-parse suite pins the exact wording.

use crate::ast::{
    ArrivalSpec, Buffer, CcaId, Flow, JitterSpec, Link, LossSpec, Scenario, SizeSpec, WorkloadSpec,
    ALL_CCAS,
};
use crate::lexer::{lex, ParseError, TokKind, Token};
use simcore::units::Dur;

/// Parse one `.scn` source into a [`Scenario`].
pub fn parse(src: &str) -> Result<Scenario, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let scenario = p.scenario()?;
    let t = p.peek().clone();
    if t.kind != TokKind::Eof {
        return Err(ParseError::at(&t, format!("expected end of input, got `{}`", t.text)));
    }
    Ok(scenario)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect_kind(&mut self, kind: TokKind, what: &str) -> Result<Token, ParseError> {
        let t = self.advance();
        if t.kind != kind {
            return Err(ParseError::at(&t, format!("expected {what}, got `{}`", display(&t))));
        }
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Token, ParseError> {
        let t = self.advance();
        if t.kind != TokKind::Ident || t.text != kw {
            return Err(ParseError::at(&t, format!("expected `{kw}`, got `{}`", display(&t))));
        }
        Ok(t)
    }

    fn scenario(&mut self) -> Result<Scenario, ParseError> {
        let kw = self.expect_keyword("scenario")?;
        let name = self.expect_kind(TokKind::Str, "a scenario name string")?;
        self.expect_kind(TokKind::LBrace, "`{`")?;

        let mut link: Option<Link> = None;
        let mut duration: Option<Dur> = None;
        let mut sample_every: Option<Dur> = None;
        let mut flows: Vec<Flow> = Vec::new();
        let mut flow_pos: Vec<(String, u32, u32)> = Vec::new();
        let mut workload: Option<WorkloadSpec> = None;

        loop {
            let t = self.advance();
            match t.kind {
                TokKind::RBrace => break,
                TokKind::Ident => match t.text.as_str() {
                    "link" => {
                        if link.is_some() {
                            return Err(ParseError::at(&t, "duplicate `link` block"));
                        }
                        link = Some(self.link_block()?);
                    }
                    "duration" => {
                        if duration.is_some() {
                            return Err(ParseError::at(&t, "duplicate field `duration` in scenario block"));
                        }
                        duration = Some(self.positive_dur("duration")?);
                    }
                    "sample-every" => {
                        if sample_every.is_some() {
                            return Err(ParseError::at(
                                &t,
                                "duplicate field `sample-every` in scenario block",
                            ));
                        }
                        sample_every = Some(self.positive_dur("sample-every")?);
                    }
                    "flow" => {
                        let (flow, id_tok) = self.flow_block()?;
                        if let Some((_, l, c)) =
                            flow_pos.iter().find(|(id, _, _)| *id == flow.id)
                        {
                            return Err(ParseError::at(
                                &id_tok,
                                format!("duplicate flow id `{}` (first declared at {l}:{c})", flow.id),
                            ));
                        }
                        flow_pos.push((flow.id.clone(), id_tok.line, id_tok.col));
                        flows.push(flow);
                    }
                    "workload" => {
                        if workload.is_some() {
                            return Err(ParseError::at(&t, "duplicate `workload` block"));
                        }
                        workload = Some(self.workload_block()?);
                    }
                    other => {
                        return Err(ParseError::at(
                            &t,
                            format!(
                                "unknown item `{other}` in scenario block (expected: link, duration, sample-every, flow, workload)"
                            ),
                        ));
                    }
                },
                _ => {
                    return Err(ParseError::at(
                        &t,
                        format!("expected a scenario item or `}}`, got `{}`", display(&t)),
                    ));
                }
            }
        }

        let Some(link) = link else {
            return Err(ParseError::at(&kw, "scenario is missing a `link` block"));
        };
        let Some(duration) = duration else {
            return Err(ParseError::at(&kw, "scenario is missing required field `duration`"));
        };
        if flows.is_empty() && workload.is_none() {
            return Err(ParseError::at(
                &kw,
                "scenario has no flows (at least one `flow` or `workload` block is required)",
            ));
        }
        Ok(Scenario { name: name.text, link, duration, sample_every, flows, workload })
    }

    fn link_block(&mut self) -> Result<Link, ParseError> {
        let open = self.expect_kind(TokKind::LBrace, "`{`")?;
        let mut rate: Option<f64> = None;
        let mut buffer: Option<Buffer> = None;
        let mut ecn: Option<u64> = None;
        loop {
            let t = self.advance();
            match t.kind {
                TokKind::RBrace => break,
                TokKind::Ident => match t.text.as_str() {
                    "rate" => {
                        if rate.is_some() {
                            return Err(ParseError::at(&t, "duplicate field `rate` in link block"));
                        }
                        let tok = self.expect_kind(TokKind::Number, "a rate")?;
                        let mbps = parse_rate(&tok)?;
                        if mbps <= 0.0 {
                            return Err(ParseError::at(&tok, "link rate must be positive"));
                        }
                        rate = Some(mbps);
                    }
                    "buffer" => {
                        if buffer.is_some() {
                            return Err(ParseError::at(&t, "duplicate field `buffer` in link block"));
                        }
                        buffer = Some(self.buffer_spec()?);
                    }
                    "ecn" => {
                        if ecn.is_some() {
                            return Err(ParseError::at(&t, "duplicate field `ecn` in link block"));
                        }
                        let tok = self.expect_kind(TokKind::Number, "a byte count")?;
                        ecn = Some(parse_bytes(&tok)?);
                    }
                    other => {
                        return Err(ParseError::at(
                            &t,
                            format!("unknown field `{other}` in link block (expected: rate, buffer, ecn)"),
                        ));
                    }
                },
                _ => {
                    return Err(ParseError::at(
                        &t,
                        format!("expected a link field or `}}`, got `{}`", display(&t)),
                    ));
                }
            }
        }
        let Some(rate_mbps) = rate else {
            return Err(ParseError::at(&open, "link is missing required field `rate`"));
        };
        let Some(buffer) = buffer else {
            return Err(ParseError::at(&open, "link is missing required field `buffer`"));
        };
        Ok(Link { rate_mbps, buffer, ecn_bytes: ecn })
    }

    fn buffer_spec(&mut self) -> Result<Buffer, ParseError> {
        let t = self.advance();
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "ample") => Ok(Buffer::Ample),
            (TokKind::Ident, "bdp") => {
                let n_tok = self.expect_kind(TokKind::Number, "a BDP multiple")?;
                let n = parse_bare_f64(&n_tok)?;
                if n <= 0.0 {
                    return Err(ParseError::at(&n_tok, "BDP multiple must be positive"));
                }
                let rtt = self.positive_dur("bdp")?;
                Ok(Buffer::Bdp { n, rtt })
            }
            (TokKind::Number, _) => Ok(Buffer::Bytes(parse_bytes(&t)?)),
            _ => Err(ParseError::at(
                &t,
                format!(
                    "expected a buffer spec: `ample`, a byte count like `120000B`, or `bdp <n> <rtt>`; got `{}`",
                    display(&t)
                ),
            )),
        }
    }

    fn flow_block(&mut self) -> Result<(Flow, Token), ParseError> {
        let id_tok = self.expect_kind(TokKind::Ident, "a flow id")?;
        self.expect_kind(TokKind::LBrace, "`{`")?;
        let mut cca: Option<CcaId> = None;
        let mut rtt: Option<Dur> = None;
        let mut jitter: Option<JitterSpec> = None;
        let mut loss: Option<LossSpec> = None;
        let mut datagram = false;
        let mut transport_seen = false;
        let mut start: Option<Dur> = None;
        let mut mss: Option<u64> = None;
        let mut audit_jitter_bound: Option<Dur> = None;
        let id = id_tok.text.clone();

        loop {
            let t = self.advance();
            match t.kind {
                TokKind::RBrace => break,
                TokKind::Ident => {
                    let dup = |field: &str| {
                        ParseError::at(&t, format!("duplicate field `{field}` in flow `{id}`"))
                    };
                    match t.text.as_str() {
                        "cca" => {
                            if cca.is_some() {
                                return Err(dup("cca"));
                            }
                            cca = Some(self.cca_name()?);
                        }
                        "rtt" => {
                            if rtt.is_some() {
                                return Err(dup("rtt"));
                            }
                            rtt = Some(self.positive_dur("rtt")?);
                        }
                        "jitter" => {
                            if jitter.is_some() {
                                return Err(dup("jitter"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a duration")?;
                            let max = parse_dur(&tok)?;
                            self.expect_keyword("seed")?;
                            let seed_tok = self.expect_kind(TokKind::Number, "a seed")?;
                            jitter = Some(JitterSpec { max, seed: parse_bare_int(&seed_tok)? });
                        }
                        "loss" => {
                            if loss.is_some() {
                                return Err(dup("loss"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a loss probability")?;
                            let rate = parse_bare_f64(&tok)?;
                            if !(0.0..=1.0).contains(&rate) {
                                return Err(ParseError::at(
                                    &tok,
                                    format!("loss probability must be in [0, 1], got `{}`", tok.text),
                                ));
                            }
                            self.expect_keyword("seed")?;
                            let seed_tok = self.expect_kind(TokKind::Number, "a seed")?;
                            loss = Some(LossSpec { rate, seed: parse_bare_int(&seed_tok)? });
                        }
                        "transport" => {
                            if transport_seen {
                                return Err(dup("transport"));
                            }
                            transport_seen = true;
                            let tok = self.expect_kind(TokKind::Ident, "a transport")?;
                            datagram = match tok.text.as_str() {
                                "datagram" => true,
                                "reliable" => false,
                                other => {
                                    return Err(ParseError::at(
                                        &tok,
                                        format!("unknown transport `{other}` (expected: reliable, datagram)"),
                                    ));
                                }
                            };
                        }
                        "start" => {
                            if start.is_some() {
                                return Err(dup("start"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a duration")?;
                            start = Some(parse_dur(&tok)?);
                        }
                        "mss" => {
                            if mss.is_some() {
                                return Err(dup("mss"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a packet size")?;
                            let v = parse_bare_int(&tok)?;
                            if v == 0 {
                                return Err(ParseError::at(&tok, "mss must be positive"));
                            }
                            mss = Some(v);
                        }
                        "audit-jitter-bound" => {
                            if audit_jitter_bound.is_some() {
                                return Err(dup("audit-jitter-bound"));
                            }
                            audit_jitter_bound = Some(self.positive_dur("audit-jitter-bound")?);
                        }
                        other => {
                            return Err(ParseError::at(
                                &t,
                                format!(
                                    "unknown field `{other}` in flow block (expected: cca, rtt, jitter, loss, transport, start, mss, audit-jitter-bound)"
                                ),
                            ));
                        }
                    }
                }
                _ => {
                    return Err(ParseError::at(
                        &t,
                        format!("expected a flow field or `}}`, got `{}`", display(&t)),
                    ));
                }
            }
        }

        let Some(cca) = cca else {
            return Err(ParseError::at(&id_tok, format!("flow `{id}` is missing required field `cca`")));
        };
        let Some(rtt) = rtt else {
            return Err(ParseError::at(&id_tok, format!("flow `{id}` is missing required field `rtt`")));
        };
        Ok((
            Flow { id, cca, rtt, jitter, loss, datagram, start, mss, audit_jitter_bound },
            id_tok,
        ))
    }

    fn workload_block(&mut self) -> Result<WorkloadSpec, ParseError> {
        let open = self.expect_kind(TokKind::LBrace, "`{`")?;
        let mut count: Option<u64> = None;
        let mut arrivals: Option<ArrivalSpec> = None;
        let mut sizes: Option<SizeSpec> = None;
        let mut cca: Option<CcaId> = None;
        let mut rtt: Option<Dur> = None;
        let mut jitter: Option<JitterSpec> = None;
        let mut loss: Option<LossSpec> = None;
        let mut start: Option<Dur> = None;
        let mut mss: Option<u64> = None;

        loop {
            let t = self.advance();
            match t.kind {
                TokKind::RBrace => break,
                TokKind::Ident => {
                    let dup = |field: &str| {
                        ParseError::at(&t, format!("duplicate field `{field}` in workload block"))
                    };
                    match t.text.as_str() {
                        "flows" => {
                            if count.is_some() {
                                return Err(dup("flows"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a flow count")?;
                            let n = parse_bare_int(&tok)?;
                            if n == 0 {
                                return Err(ParseError::at(&tok, "workload flow count must be positive"));
                            }
                            count = Some(n);
                        }
                        "arrivals" => {
                            if arrivals.is_some() {
                                return Err(dup("arrivals"));
                            }
                            arrivals = Some(self.arrival_spec()?);
                        }
                        "sizes" => {
                            if sizes.is_some() {
                                return Err(dup("sizes"));
                            }
                            sizes = Some(self.size_spec()?);
                        }
                        "cca" => {
                            if cca.is_some() {
                                return Err(dup("cca"));
                            }
                            cca = Some(self.cca_name()?);
                        }
                        "rtt" => {
                            if rtt.is_some() {
                                return Err(dup("rtt"));
                            }
                            rtt = Some(self.positive_dur("rtt")?);
                        }
                        "jitter" => {
                            if jitter.is_some() {
                                return Err(dup("jitter"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a duration")?;
                            let max = parse_dur(&tok)?;
                            self.expect_keyword("seed")?;
                            let seed_tok = self.expect_kind(TokKind::Number, "a seed")?;
                            jitter = Some(JitterSpec { max, seed: parse_bare_int(&seed_tok)? });
                        }
                        "loss" => {
                            if loss.is_some() {
                                return Err(dup("loss"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a loss probability")?;
                            let rate = parse_bare_f64(&tok)?;
                            if !(0.0..=1.0).contains(&rate) {
                                return Err(ParseError::at(
                                    &tok,
                                    format!("loss probability must be in [0, 1], got `{}`", tok.text),
                                ));
                            }
                            self.expect_keyword("seed")?;
                            let seed_tok = self.expect_kind(TokKind::Number, "a seed")?;
                            loss = Some(LossSpec { rate, seed: parse_bare_int(&seed_tok)? });
                        }
                        "start" => {
                            if start.is_some() {
                                return Err(dup("start"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a duration")?;
                            start = Some(parse_dur(&tok)?);
                        }
                        "mss" => {
                            if mss.is_some() {
                                return Err(dup("mss"));
                            }
                            let tok = self.expect_kind(TokKind::Number, "a packet size")?;
                            let v = parse_bare_int(&tok)?;
                            if v == 0 {
                                return Err(ParseError::at(&tok, "mss must be positive"));
                            }
                            mss = Some(v);
                        }
                        other => {
                            return Err(ParseError::at(
                                &t,
                                format!(
                                    "unknown field `{other}` in workload block (expected: flows, arrivals, sizes, cca, rtt, jitter, loss, start, mss)"
                                ),
                            ));
                        }
                    }
                }
                _ => {
                    return Err(ParseError::at(
                        &t,
                        format!("expected a workload field or `}}`, got `{}`", display(&t)),
                    ));
                }
            }
        }

        let Some(count) = count else {
            return Err(ParseError::at(&open, "workload is missing required field `flows`"));
        };
        let Some(arrivals) = arrivals else {
            return Err(ParseError::at(&open, "workload is missing required field `arrivals`"));
        };
        let Some(sizes) = sizes else {
            return Err(ParseError::at(&open, "workload is missing required field `sizes`"));
        };
        let Some(cca) = cca else {
            return Err(ParseError::at(&open, "workload is missing required field `cca`"));
        };
        let Some(rtt) = rtt else {
            return Err(ParseError::at(&open, "workload is missing required field `rtt`"));
        };
        Ok(WorkloadSpec { count, arrivals, sizes, cca, rtt, jitter, loss, start, mss })
    }

    /// `every <dur>` or `poisson <dur> seed <int>`.
    fn arrival_spec(&mut self) -> Result<ArrivalSpec, ParseError> {
        let t = self.advance();
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "every") => Ok(ArrivalSpec::Every(self.positive_dur("arrivals every")?)),
            (TokKind::Ident, "poisson") => {
                let mean = self.positive_dur("arrivals poisson mean")?;
                self.expect_keyword("seed")?;
                let seed_tok = self.expect_kind(TokKind::Number, "a seed")?;
                Ok(ArrivalSpec::Poisson { mean, seed: parse_bare_int(&seed_tok)? })
            }
            _ => Err(ParseError::at(
                &t,
                format!(
                    "expected an arrival process: `every <dur>` or `poisson <mean> seed <n>`; got `{}`",
                    display(&t)
                ),
            )),
        }
    }

    /// `fixed <bytes>` or `pareto <min> <alpha> <cap> seed <int>`.
    fn size_spec(&mut self) -> Result<SizeSpec, ParseError> {
        let t = self.advance();
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "fixed") => {
                let tok = self.expect_kind(TokKind::Number, "a byte count")?;
                let bytes = parse_bytes(&tok)?;
                if bytes == 0 {
                    return Err(ParseError::at(&tok, "flow size must be positive"));
                }
                Ok(SizeSpec::Fixed(bytes))
            }
            (TokKind::Ident, "pareto") => {
                let min_tok = self.expect_kind(TokKind::Number, "a byte count")?;
                let min = parse_bytes(&min_tok)?;
                if min == 0 {
                    return Err(ParseError::at(&min_tok, "pareto minimum size must be positive"));
                }
                let alpha_tok = self.expect_kind(TokKind::Number, "a tail index")?;
                let alpha = parse_bare_f64(&alpha_tok)?;
                if alpha <= 0.0 {
                    return Err(ParseError::at(&alpha_tok, "pareto tail index must be positive"));
                }
                let cap_tok = self.expect_kind(TokKind::Number, "a byte count")?;
                let cap = parse_bytes(&cap_tok)?;
                if cap < min {
                    return Err(ParseError::at(&cap_tok, "pareto cap must be at least the minimum size"));
                }
                self.expect_keyword("seed")?;
                let seed_tok = self.expect_kind(TokKind::Number, "a seed")?;
                Ok(SizeSpec::Pareto { min, alpha, cap, seed: parse_bare_int(&seed_tok)? })
            }
            _ => Err(ParseError::at(
                &t,
                format!(
                    "expected a size distribution: `fixed <bytes>` or `pareto <min> <alpha> <cap> seed <n>`; got `{}`",
                    display(&t)
                ),
            )),
        }
    }

    /// A CCA name from the registry.
    fn cca_name(&mut self) -> Result<CcaId, ParseError> {
        let tok = self.expect_kind(TokKind::Ident, "a CCA name")?;
        let Some(c) = CcaId::from_slug(&tok.text) else {
            let known: Vec<&str> = ALL_CCAS.iter().map(|c| c.slug()).collect();
            return Err(ParseError::at(
                &tok,
                format!("unknown CCA `{}` (expected one of: {})", tok.text, known.join(", ")),
            ));
        };
        Ok(c)
    }

    /// A duration value that must be strictly positive (`what` names the
    /// field in the diagnostic).
    fn positive_dur(&mut self, what: &str) -> Result<Dur, ParseError> {
        let tok = self.expect_kind(TokKind::Number, "a duration")?;
        let d = parse_dur(&tok)?;
        if d == Dur::ZERO {
            return Err(ParseError::at(&tok, format!("{what} must be positive")));
        }
        Ok(d)
    }
}

/// How a token reads in a diagnostic (`<eof>` for end of input).
fn display(t: &Token) -> String {
    if t.kind == TokKind::Eof {
        "<eof>".to_string()
    } else {
        t.text.clone()
    }
}

/// Split a number token into its numeric text and unit suffix.
fn split_number(text: &str) -> (&str, &str) {
    let cut = text.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(text.len());
    text.split_at(cut)
}

fn numeric_value(tok: &Token, digits: &str) -> Result<f64, ParseError> {
    digits
        .parse::<f64>()
        .map_err(|_| ParseError::at(tok, format!("malformed number `{}`", tok.text)))
}

/// Parse a duration: a number with unit `s`, `ms`, `us` or `ns`.
fn parse_dur(tok: &Token) -> Result<Dur, ParseError> {
    let (digits, unit) = split_number(&tok.text);
    let scale = match unit {
        "ns" => 1.0,
        "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        "" => {
            return Err(ParseError::at(
                tok,
                format!("missing unit: expected a duration (s/ms/us/ns), got bare `{}`", tok.text),
            ));
        }
        _ => {
            return Err(ParseError::at(
                tok,
                format!("unit mismatch: expected a duration (s/ms/us/ns), got `{}`", tok.text),
            ));
        }
    };
    Ok(Dur((numeric_value(tok, digits)? * scale).round() as u64))
}

/// Parse a rate into Mbit/s: a number with unit `gbps`, `mbps` or `kbps`.
fn parse_rate(tok: &Token) -> Result<f64, ParseError> {
    let (digits, unit) = split_number(&tok.text);
    let scale = match unit {
        "gbps" => 1000.0,
        "mbps" => 1.0,
        "kbps" => 0.001,
        "" => {
            return Err(ParseError::at(
                tok,
                format!("missing unit: expected a rate (gbps/mbps/kbps), got bare `{}`", tok.text),
            ));
        }
        _ => {
            return Err(ParseError::at(
                tok,
                format!("unit mismatch: expected a rate (gbps/mbps/kbps), got `{}`", tok.text),
            ));
        }
    };
    Ok(numeric_value(tok, digits)? * scale)
}

/// Parse a byte count: an integer with unit `B`.
fn parse_bytes(tok: &Token) -> Result<u64, ParseError> {
    let (digits, unit) = split_number(&tok.text);
    if unit != "B" {
        return Err(ParseError::at(
            tok,
            format!("unit mismatch: expected a byte count like `120000B`, got `{}`", tok.text),
        ));
    }
    digits
        .parse::<u64>()
        .map_err(|_| ParseError::at(tok, format!("expected an integer byte count, got `{}`", tok.text)))
}

/// Parse a unitless integer (seeds, packet sizes).
fn parse_bare_int(tok: &Token) -> Result<u64, ParseError> {
    let (digits, unit) = split_number(&tok.text);
    if !unit.is_empty() {
        return Err(ParseError::at(
            tok,
            format!("unit mismatch: expected a bare number, got `{}`", tok.text),
        ));
    }
    digits
        .parse::<u64>()
        .map_err(|_| ParseError::at(tok, format!("expected an integer, got `{}`", tok.text)))
}

/// Parse a unitless float (loss probabilities, BDP multiples).
fn parse_bare_f64(tok: &Token) -> Result<f64, ParseError> {
    let (digits, unit) = split_number(&tok.text);
    if !unit.is_empty() {
        return Err(ParseError::at(
            tok,
            format!("unit mismatch: expected a bare number, got `{}`", tok.text),
        ));
    }
    numeric_value(tok, digits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::Dur;

    const COPA_JITTER: &str = r#"
scenario "copa-jitter" {
  link { rate 24mbps buffer ample }
  duration 5s
  flow f0 {
    cca copa
    rtt 40ms
    jitter 10ms seed 42
  }
}
"#;

    #[test]
    fn parses_a_canonical_scenario() {
        let s = parse(COPA_JITTER).expect("parses");
        assert_eq!(s.name, "copa-jitter");
        assert_eq!(s.link.rate_mbps, 24.0);
        assert_eq!(s.link.buffer, Buffer::Ample);
        assert_eq!(s.duration, Dur::from_secs(5));
        assert_eq!(s.sample_every, None);
        assert_eq!(s.flows.len(), 1);
        let f = &s.flows[0];
        assert_eq!(f.id, "f0");
        assert_eq!(f.cca, CcaId::Copa);
        assert_eq!(f.rtt, Dur::from_millis(40));
        assert_eq!(f.jitter, Some(JitterSpec { max: Dur::from_millis(10), seed: 42 }));
        assert!(!f.datagram);
    }

    #[test]
    fn parses_every_field() {
        let src = r#"
scenario "kitchen-sink" {
  link { rate 48mbps buffer bdp 1.5 40ms ecn 30000B }
  duration 2s
  sample-every 5ms
  flow a { cca bbr rtt 40ms }
  flow b {
    cca vivace
    rtt 20ms
    jitter 8ms seed 3
    loss 0.02 seed 7
    transport datagram
    start 500ms
    mss 1200
    audit-jitter-bound 1ms
  }
}
"#;
        let s = parse(src).expect("parses");
        assert_eq!(s.link.buffer, Buffer::Bdp { n: 1.5, rtt: Dur::from_millis(40) });
        assert_eq!(s.link.ecn_bytes, Some(30000));
        assert_eq!(s.sample_every, Some(Dur::from_millis(5)));
        let b = &s.flows[1];
        assert_eq!(b.loss, Some(LossSpec { rate: 0.02, seed: 7 }));
        assert!(b.datagram);
        assert_eq!(b.start, Some(Dur::from_millis(500)));
        assert_eq!(b.mss, Some(1200));
        assert_eq!(b.audit_jitter_bound, Some(Dur::from_millis(1)));
    }

    #[test]
    fn field_order_is_free() {
        let src = r#"
scenario "reordered" {
  flow f0 { rtt 40ms cca reno }
  duration 1s
  link { buffer 60000B rate 8mbps }
}
"#;
        let s = parse(src).expect("parses");
        assert_eq!(s.link.buffer, Buffer::Bytes(60000));
        assert_eq!(s.flows[0].cca, CcaId::Reno);
    }

    #[test]
    fn rate_units_normalize_to_mbps() {
        let mk = |rate: &str| {
            parse(&format!(
                "scenario \"r\" {{ link {{ rate {rate} buffer ample }} duration 1s flow f {{ cca reno rtt 40ms }} }}"
            ))
            .expect("parses")
            .link
            .rate_mbps
        };
        assert_eq!(mk("500kbps"), 0.5);
        assert_eq!(mk("2gbps"), 2000.0);
        assert_eq!(mk("24mbps"), 24.0);
    }

    #[test]
    fn parses_a_workload_block() {
        let src = r#"
scenario "population" {
  link { rate 48mbps buffer ample }
  duration 12s
  workload {
    flows 1000
    arrivals poisson 8ms seed 9
    sizes pareto 12000B 1.3 300000B seed 5
    cca reno
    rtt 20ms
    jitter 2ms seed 3
    loss 0.001 seed 4
    start 100ms
    mss 1200
  }
}
"#;
        let s = parse(src).expect("parses");
        assert!(s.flows.is_empty(), "workload-only scenario needs no static flows");
        let w = s.workload.expect("workload present");
        assert_eq!(w.count, 1000);
        assert_eq!(
            w.arrivals,
            crate::ast::ArrivalSpec::Poisson { mean: Dur::from_millis(8), seed: 9 }
        );
        assert_eq!(
            w.sizes,
            crate::ast::SizeSpec::Pareto { min: 12_000, alpha: 1.3, cap: 300_000, seed: 5 }
        );
        assert_eq!(w.cca, CcaId::Reno);
        assert_eq!(w.rtt, Dur::from_millis(20));
        assert_eq!(w.jitter, Some(JitterSpec { max: Dur::from_millis(2), seed: 3 }));
        assert_eq!(w.loss, Some(LossSpec { rate: 0.001, seed: 4 }));
        assert_eq!(w.start, Some(Dur::from_millis(100)));
        assert_eq!(w.mss, Some(1200));
    }

    #[test]
    fn workload_fixed_arrivals_and_sizes_parse() {
        let src = r#"
scenario "steady" {
  link { rate 8mbps buffer ample }
  duration 2s
  flow f0 { cca reno rtt 20ms }
  workload { flows 8 arrivals every 100ms sizes fixed 30000B cca cubic rtt 40ms }
}
"#;
        let s = parse(src).expect("parses");
        assert_eq!(s.flows.len(), 1);
        let w = s.workload.expect("workload present");
        assert_eq!(w.arrivals, crate::ast::ArrivalSpec::Every(Dur::from_millis(100)));
        assert_eq!(w.sizes, crate::ast::SizeSpec::Fixed(30_000));
        assert_eq!(w.jitter, None);
    }

    #[test]
    fn workload_requires_its_core_fields() {
        let err = parse(
            "scenario \"w\" { link { rate 8mbps buffer ample } duration 1s workload { flows 4 arrivals every 10ms sizes fixed 1000B cca reno } }",
        )
        .expect_err("missing rtt");
        assert_eq!(err.msg, "workload is missing required field `rtt`");
        let err = parse(
            "scenario \"w\" { link { rate 8mbps buffer ample } duration 1s workload { arrivals every 10ms sizes fixed 1000B cca reno rtt 20ms } }",
        )
        .expect_err("missing flows");
        assert_eq!(err.msg, "workload is missing required field `flows`");
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("scenario \"x\" {\n  link { rate 24mbps buffer ample }\n  duration 0s\n  flow f { cca reno rtt 40ms }\n}")
            .expect_err("zero duration");
        assert_eq!((err.line, err.col), (3, 12));
        assert_eq!(err.msg, "duration must be positive");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let src = format!("{COPA_JITTER} extra");
        let err = parse(&src).expect_err("trailing tokens");
        assert!(err.msg.contains("expected end of input"), "{err}");
    }
}

//! Random scenario generation and shrinking: a `testkit::prop::Strategy`
//! over [`Scenario`] ASTs.
//!
//! One strategy serves two consumers:
//!
//! * the parser round-trip property (`parse ∘ print` is identity), which
//!   wants broad structural coverage of the AST;
//! * the fuzzer, which draws fresh scenarios from [`Strategy::generate`],
//!   mutates corpus entries with [`mutate`], and minimizes findings
//!   through [`Strategy::shrink`] via `testkit::prop::minimize`.
//!
//! Values are drawn from small curated sets (rates, RTTs, jitter bounds)
//! rather than raw ranges: every draw is a config the simulator runs in
//! tens of milliseconds, and set membership keeps printed scenarios tidy.
//! Generation never emits `audit-jitter-bound` — that field exists to
//! *seed* violations from corpus files; mutation and shrinking preserve
//! it so a seeded failure stays a failure while it minimizes.

use crate::ast::{
    ArrivalSpec, Buffer, CcaId, Flow, JitterSpec, Link, LossSpec, Scenario, SizeSpec, WorkloadSpec,
    ALL_CCAS,
};
use simcore::rng::Xoshiro256;
use simcore::units::Dur;
use testkit::prop::Strategy;

/// Link rates the generator draws from, in Mbit/s. Capped so the slowest
/// draw (max rate × max duration) still simulates in well under a second.
const RATES_MBPS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 48.0, 96.0];

/// Propagation RTTs, in milliseconds — down to 2 ms so extreme rate/RTT
/// ratios (96 Mbit/s over 2 ms vs 1 Mbit/s over 160 ms) are reachable.
const RTTS_MS: &[u64] = &[2, 5, 10, 20, 40, 80, 160];

/// Jitter bounds, in milliseconds.
const JITTERS_MS: &[u64] = &[1, 2, 5, 8, 10, 12, 15, 20, 25, 40];

/// Loss probabilities.
const LOSSES: &[f64] = &[0.005, 0.01, 0.02, 0.05, 0.1];

/// Run lengths, in milliseconds.
const DURATIONS_MS: &[u64] = &[400, 700, 1000, 1500, 2000];

/// Start offsets for non-first flows, in milliseconds.
const STARTS_MS: &[u64] = &[100, 250, 500];

/// Explicit buffer sizes, in bytes.
const BUFFER_BYTES: &[u64] = &[30_000, 60_000, 120_000];

/// Packet-size overrides.
const MSS: &[u64] = &[600, 1200];

/// Workload population sizes the generator draws — deliberately small so
/// every fuzz execution stays cheap. Corpus entries may carry
/// population-scale counts; [`mutate`] clamps those back down.
const WORKLOAD_COUNTS: &[u64] = &[4, 8, 16, 32];

/// Mean inter-arrival gaps (fixed or Poisson), in milliseconds.
const ARRIVAL_MS: &[u64] = &[10, 25, 50, 100];

/// Fixed workload flow sizes, in bytes.
const WORKLOAD_SIZES: &[u64] = &[15_000, 30_000, 60_000];

/// Pareto tail indices for heavy-tailed size mixes.
const PARETO_ALPHAS: &[f64] = &[1.1, 1.3, 1.7];

/// The largest workload count a fuzz mutant may carry.
const MAX_FUZZ_WORKLOAD: u64 = 40;

/// The shortest duration shrinking may reach.
const MIN_DURATION: Dur = Dur(200_000_000); // 200 ms

fn pick<T: Copy>(rng: &mut Xoshiro256, set: &[T]) -> T {
    set[rng.range_u64(set.len() as u64) as usize]
}

fn pick_cca(rng: &mut Xoshiro256) -> CcaId {
    pick(rng, ALL_CCAS)
}

/// Generates (and shrinks) whole scenarios. [`ScenarioStrategy::default`]
/// is what both the round-trip test and the fuzzer use.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioStrategy {
    /// Maximum number of flows per scenario.
    pub max_flows: usize,
}

impl Default for ScenarioStrategy {
    fn default() -> Self {
        ScenarioStrategy { max_flows: 3 }
    }
}

impl ScenarioStrategy {
    fn gen_flow(&self, rng: &mut Xoshiro256, index: usize) -> Flow {
        let cca = pick_cca(rng);
        let jitter = if rng.bernoulli(0.6) {
            Some(JitterSpec { max: Dur::from_millis(pick(rng, JITTERS_MS)), seed: rng.range_u64(1000) })
        } else {
            None
        };
        let loss = if rng.bernoulli(0.3) {
            Some(LossSpec { rate: pick(rng, LOSSES), seed: rng.range_u64(1000) })
        } else {
            None
        };
        Flow {
            id: format!("f{index}"),
            cca,
            rtt: Dur::from_millis(pick(rng, RTTS_MS)),
            jitter,
            loss,
            datagram: rng.bernoulli(0.25),
            start: if index > 0 && rng.bernoulli(0.3) {
                Some(Dur::from_millis(pick(rng, STARTS_MS)))
            } else {
                None
            },
            mss: if rng.bernoulli(0.15) { Some(pick(rng, MSS)) } else { None },
            audit_jitter_bound: None,
        }
    }

    fn gen_workload(&self, rng: &mut Xoshiro256) -> WorkloadSpec {
        let arrivals = if rng.bernoulli(0.5) {
            ArrivalSpec::Every(Dur::from_millis(pick(rng, ARRIVAL_MS)))
        } else {
            ArrivalSpec::Poisson {
                mean: Dur::from_millis(pick(rng, ARRIVAL_MS)),
                seed: rng.range_u64(1000),
            }
        };
        let sizes = if rng.bernoulli(0.5) {
            SizeSpec::Fixed(pick(rng, WORKLOAD_SIZES))
        } else {
            SizeSpec::Pareto {
                min: 12_000,
                alpha: pick(rng, PARETO_ALPHAS),
                cap: 120_000,
                seed: rng.range_u64(1000),
            }
        };
        WorkloadSpec {
            count: pick(rng, WORKLOAD_COUNTS),
            arrivals,
            sizes,
            cca: pick_cca(rng),
            rtt: Dur::from_millis(pick(rng, RTTS_MS)),
            jitter: if rng.bernoulli(0.4) {
                Some(JitterSpec {
                    max: Dur::from_millis(pick(rng, JITTERS_MS)),
                    seed: rng.range_u64(1000),
                })
            } else {
                None
            },
            loss: if rng.bernoulli(0.2) {
                Some(LossSpec { rate: pick(rng, LOSSES), seed: rng.range_u64(1000) })
            } else {
                None
            },
            start: if rng.bernoulli(0.3) {
                Some(Dur::from_millis(pick(rng, STARTS_MS)))
            } else {
                None
            },
            mss: if rng.bernoulli(0.1) { Some(pick(rng, MSS)) } else { None },
        }
    }

    fn gen_link(&self, rng: &mut Xoshiro256, rtt: Dur) -> Link {
        let buffer = match rng.range_u64(10) {
            0..=4 => Buffer::Ample,
            5..=8 => Buffer::Bdp { n: pick(rng, &[0.5, 1.0, 2.0]), rtt },
            _ => Buffer::Bytes(pick(rng, BUFFER_BYTES)),
        };
        Link {
            rate_mbps: pick(rng, RATES_MBPS),
            buffer,
            ecn_bytes: if rng.bernoulli(0.1) { Some(pick(rng, &[15_000u64, 30_000])) } else { None },
        }
    }
}

impl Strategy for ScenarioStrategy {
    type Value = Scenario;

    fn generate(&self, rng: &mut Xoshiro256) -> Scenario {
        let n_flows = 1 + rng.range_u64(self.max_flows as u64) as usize;
        let flows: Vec<Flow> = (0..n_flows).map(|i| self.gen_flow(rng, i)).collect();
        let link = self.gen_link(rng, flows[0].rtt);
        Scenario {
            name: "gen".to_string(),
            link,
            duration: Dur::from_millis(pick(rng, DURATIONS_MS)),
            sample_every: if rng.bernoulli(0.2) { Some(Dur::from_millis(20)) } else { None },
            flows,
            workload: if rng.bernoulli(0.25) { Some(self.gen_workload(rng)) } else { None },
        }
    }

    /// Strictly-simpler candidates, most aggressive first: fewer flows,
    /// shorter runs, then impairments and overrides stripped one by one,
    /// then scalars moved toward their tamest values.
    fn shrink(&self, s: &Scenario) -> Vec<Scenario> {
        let mut out = Vec::new();
        if s.flows.len() > 1 {
            for i in 0..s.flows.len() {
                let mut t = s.clone();
                t.flows.remove(i);
                out.push(t);
            }
        }
        if let Some(w) = &s.workload {
            // Dropping the workload entirely is only valid while a static
            // flow keeps the scenario non-empty.
            if !s.flows.is_empty() {
                let mut t = s.clone();
                t.workload = None;
                out.push(t);
            }
            let with = |edit: &dyn Fn(&mut WorkloadSpec)| {
                let mut t = s.clone();
                if let Some(w) = &mut t.workload {
                    edit(w);
                }
                t
            };
            if w.count > 2 {
                out.push(with(&|w| w.count = (w.count / 2).max(2)));
            }
            if w.jitter.is_some() {
                out.push(with(&|w| w.jitter = None));
            }
            if w.loss.is_some() {
                out.push(with(&|w| w.loss = None));
            }
            if w.start.is_some() {
                out.push(with(&|w| w.start = None));
            }
            if w.mss.is_some() {
                out.push(with(&|w| w.mss = None));
            }
            if w.cca != CcaId::ConstCwnd {
                out.push(with(&|w| w.cca = CcaId::ConstCwnd));
            }
        }
        if s.duration > MIN_DURATION {
            let mut t = s.clone();
            t.duration = Dur((s.duration.as_nanos() / 2).max(MIN_DURATION.as_nanos()));
            out.push(t);
        }
        for i in 0..s.flows.len() {
            let f = &s.flows[i];
            let with = |edit: &dyn Fn(&mut Flow)| {
                let mut t = s.clone();
                edit(&mut t.flows[i]);
                t
            };
            if f.loss.is_some() {
                out.push(with(&|f| f.loss = None));
            }
            if let Some(j) = f.jitter {
                if j.max > Dur::from_millis(1) {
                    out.push(with(&|f| {
                        if let Some(j) = &mut f.jitter {
                            j.max = Dur((j.max.as_nanos() / 2).max(1_000_000));
                        }
                    }));
                }
                out.push(with(&|f| f.jitter = None));
            }
            if f.datagram {
                out.push(with(&|f| f.datagram = false));
            }
            if f.start.is_some() {
                out.push(with(&|f| f.start = None));
            }
            if f.mss.is_some() {
                out.push(with(&|f| f.mss = None));
            }
            if f.audit_jitter_bound.is_some() {
                out.push(with(&|f| f.audit_jitter_bound = None));
            }
            if f.cca != CcaId::ConstCwnd {
                out.push(with(&|f| f.cca = CcaId::ConstCwnd));
            }
        }
        if s.sample_every.is_some() {
            let mut t = s.clone();
            t.sample_every = None;
            out.push(t);
        }
        if s.link.ecn_bytes.is_some() {
            let mut t = s.clone();
            t.link.ecn_bytes = None;
            out.push(t);
        }
        if s.link.buffer != Buffer::Ample {
            let mut t = s.clone();
            t.link.buffer = Buffer::Ample;
            out.push(t);
        }
        // simlint: allow(float-eq): rates come from a discrete pick-list; this tests "already at the shrink target", not numeric closeness
        if s.link.rate_mbps != 8.0 {
            let mut t = s.clone();
            t.link.rate_mbps = 8.0;
            out.push(t);
        }
        out
    }
}

/// Mutate a corpus scenario: apply one to three random edits. Preserves
/// `audit-jitter-bound` fields (shrinking, not mutation, removes those).
/// `boundary_jitter` draws a jitter bound near the paper's `2·δ_max`
/// starvation boundary for the flow's CCA.
pub fn mutate(rng: &mut Xoshiro256, strategy: &ScenarioStrategy, mut s: Scenario) -> Scenario {
    let edits = 1 + rng.range_u64(3);
    for _ in 0..edits {
        let arm = rng.range_u64(11);
        // Flow-targeted arms need a flow to target; a workload-only
        // scenario redirects them at the workload instead.
        if s.flows.is_empty() && matches!(arm, 0 | 1 | 2 | 4 | 5 | 7) {
            mutate_workload(rng, strategy, &mut s);
            continue;
        }
        let i = if s.flows.is_empty() { 0 } else { rng.range_u64(s.flows.len() as u64) as usize };
        match arm {
            0 => s.flows[i].cca = pick_cca(rng),
            1 => {
                let max = boundary_jitter(rng, s.flows[i].cca);
                s.flows[i].jitter = Some(JitterSpec { max, seed: rng.range_u64(1000) });
            }
            2 => {
                s.flows[i].jitter = if rng.bernoulli(0.5) {
                    Some(JitterSpec {
                        max: Dur::from_millis(pick(rng, JITTERS_MS)),
                        seed: rng.range_u64(1000),
                    })
                } else {
                    None
                };
            }
            3 => s.link.rate_mbps = pick(rng, RATES_MBPS),
            4 => {
                let rtt = Dur::from_millis(pick(rng, RTTS_MS));
                s.flows[i].rtt = rtt;
            }
            5 => {
                s.flows[i].loss = if rng.bernoulli(0.5) {
                    Some(LossSpec { rate: pick(rng, LOSSES), seed: rng.range_u64(1000) })
                } else {
                    None
                };
            }
            6 => {
                if s.flows.len() < strategy.max_flows {
                    s.flows.push(strategy.gen_flow(rng, s.flows.len()));
                } else if s.flows.len() > 1 {
                    let i = rng.range_u64(s.flows.len() as u64) as usize;
                    s.flows.remove(i);
                }
                // Renumber so ids stay unique whatever the corpus called
                // its flows (reparse of the printed form requires it).
                for (k, f) in s.flows.iter_mut().enumerate() {
                    f.id = format!("f{k}");
                }
            }
            7 => s.flows[i].datagram = !s.flows[i].datagram,
            8 => s.duration = Dur::from_millis(pick(rng, DURATIONS_MS)),
            9 => {
                let rtt = s
                    .flows
                    .first()
                    .map(|f| f.rtt)
                    .or_else(|| s.workload.as_ref().map(|w| w.rtt))
                    .unwrap_or(Dur::from_millis(20));
                s.link.buffer = match rng.range_u64(3) {
                    0 => Buffer::Ample,
                    1 => Buffer::Bdp { n: pick(rng, &[0.5, 1.0, 2.0]), rtt },
                    _ => Buffer::Bytes(pick(rng, BUFFER_BYTES)),
                };
            }
            _ => mutate_workload(rng, strategy, &mut s),
        }
    }
    // Corpus scenarios may carry population-scale counts (the 1000-flow
    // canonical workload); mutants clamp back to fuzzer scale so every
    // execution stays cheap.
    if let Some(w) = &mut s.workload {
        w.count = w.count.min(MAX_FUZZ_WORKLOAD);
    }
    s
}

/// One workload edit: add a workload when absent; otherwise remove it
/// (when static flows remain), re-draw it, or tweak count/CCA/arrivals.
fn mutate_workload(rng: &mut Xoshiro256, strategy: &ScenarioStrategy, s: &mut Scenario) {
    let Some(w) = &mut s.workload else {
        s.workload = Some(strategy.gen_workload(rng));
        return;
    };
    match rng.range_u64(5) {
        0 if !s.flows.is_empty() => s.workload = None,
        1 => s.workload = Some(strategy.gen_workload(rng)),
        2 => w.count = pick(rng, WORKLOAD_COUNTS),
        3 => w.cca = pick_cca(rng),
        _ => {
            w.arrivals = if rng.bernoulli(0.5) {
                ArrivalSpec::Every(Dur::from_millis(pick(rng, ARRIVAL_MS)))
            } else {
                ArrivalSpec::Poisson {
                    mean: Dur::from_millis(pick(rng, ARRIVAL_MS)),
                    seed: rng.range_u64(1000),
                }
            };
        }
    }
}

/// A jitter bound within ±20% of `2·δ_max` for the CCA — the region where
/// the paper's Theorem 2 says non-starvation runs out of room.
pub fn boundary_jitter(rng: &mut Xoshiro256, cca: CcaId) -> Dur {
    let target = 2.0 * cca.delta_hint().as_millis_f64();
    let ms = (target * rng.range_f64(0.8, 1.2)).round().max(1.0);
    Dur::from_millis(ms as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    #[test]
    fn generated_scenarios_print_parse_and_compile() {
        let s = ScenarioStrategy::default();
        let mut rng = Xoshiro256::new(11);
        for _ in 0..50 {
            let scn = s.generate(&mut rng);
            let printed = scn.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("generated scenario must parse: {e}\n{printed}"));
            assert_eq!(reparsed, scn);
            let cfg = compile(&scn);
            assert_eq!(cfg.flows.len(), scn.flows.len());
        }
    }

    #[test]
    fn shrink_candidates_are_valid_and_strictly_simpler() {
        let strat = ScenarioStrategy::default();
        let mut rng = Xoshiro256::new(12);
        for _ in 0..20 {
            let scn = strat.generate(&mut rng);
            for cand in strat.shrink(&scn) {
                assert_ne!(cand, scn, "shrink must propose a different value");
                let printed = cand.to_string();
                assert_eq!(parse(&printed).expect("candidate parses"), cand);
                assert!(cand.duration >= MIN_DURATION);
                assert!(!cand.flows.is_empty());
            }
        }
    }

    #[test]
    fn mutation_keeps_scenarios_well_formed() {
        let strat = ScenarioStrategy::default();
        let mut rng = Xoshiro256::new(13);
        let mut scn = strat.generate(&mut rng);
        for _ in 0..100 {
            scn = mutate(&mut rng, &strat, scn);
            let printed = scn.to_string();
            assert_eq!(parse(&printed).expect("mutant parses"), scn, "{printed}");
            assert!(!scn.flows.is_empty());
            assert!(scn.flows.len() <= strat.max_flows);
            // Flow ids must stay unique for the printed form to reparse.
            let mut ids: Vec<&str> = scn.flows.iter().map(|f| f.id.as_str()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), scn.flows.len());
        }
    }

    #[test]
    fn boundary_jitter_brackets_twice_the_delta_hint() {
        let mut rng = Xoshiro256::new(14);
        for _ in 0..200 {
            let d = boundary_jitter(&mut rng, CcaId::Copa);
            let ms = d.as_millis_f64();
            assert!((8.0..=12.0).contains(&ms), "{ms} outside ±20% of 10 ms");
        }
    }
}

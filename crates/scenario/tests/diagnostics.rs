//! Negative-parse suite: one committed fixture per diagnostic, asserting
//! the *exact* rendered error — position and wording. These messages are
//! a stable interface (scripts and editors match on them); changing one
//! is an API change and must update the fixture table here deliberately.

use scenario::parse;

/// (fixture name, source, expected `line:col: message`).
const FIXTURES: &[(&str, &str, &str)] = &[
    (
        "unknown-cca",
        include_str!("bad/unknown-cca.scn"),
        "7:9: unknown CCA `renno` (expected one of: reno, cubic, vegas, fast, ledbat, copa, bbr, verus, vivace, allegro, delay-aimd, jitter-aware, const-cwnd)",
    ),
    (
        "missing-field",
        include_str!("bad/missing-field.scn"),
        "6:8: flow `f0` is missing required field `rtt`",
    ),
    (
        "unit-mismatch",
        include_str!("bad/unit-mismatch.scn"),
        "8:9: unit mismatch: expected a duration (s/ms/us/ns), got `40mbps`",
    ),
    (
        "duplicate-flow",
        include_str!("bad/duplicate-flow.scn"),
        "10:8: duplicate flow id `f0` (first declared at 6:8)",
    ),
    (
        "missing-unit",
        include_str!("bad/missing-unit.scn"),
        "4:12: missing unit: expected a duration (s/ms/us/ns), got bare `5`",
    ),
    (
        "bad-loss",
        include_str!("bad/bad-loss.scn"),
        "8:10: loss probability must be in [0, 1], got `1.5`",
    ),
    (
        "no-flows",
        include_str!("bad/no-flows.scn"),
        "3:1: scenario has no flows (at least one `flow` or `workload` block is required)",
    ),
];

#[test]
fn every_fixture_renders_its_pinned_diagnostic() {
    let mut mismatches = Vec::new();
    for (name, src, want) in FIXTURES {
        match parse(src) {
            Ok(_) => mismatches.push(format!("{name}: expected a parse error, but it parsed")),
            Err(e) => {
                let got = e.to_string();
                if got != *want {
                    mismatches.push(format!("{name}:\n  want: {want}\n  got:  {got}"));
                }
            }
        }
    }
    assert!(mismatches.is_empty(), "diagnostic drift:\n{}", mismatches.join("\n"));
}

#[test]
fn diagnostics_carry_real_positions() {
    // Every pinned diagnostic points into its source: the line exists and
    // the column is within that line (1-based, so a `line:col` from an
    // error message can be pasted into an editor).
    for (name, src, _) in FIXTURES {
        let e = parse(src).expect_err(name);
        let (line, col) = (e.line as usize, e.col as usize);
        let lines: Vec<&str> = src.lines().collect();
        assert!(line >= 1 && line <= lines.len(), "{name}: line {line} out of range");
        let width = lines[line - 1].chars().count();
        assert!(col >= 1 && col <= width + 1, "{name}: col {col} out of range");
    }
}

#[test]
fn fixtures_on_disk_match_the_embedded_copies() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/bad");
    for (name, src, _) in FIXTURES {
        let on_disk = std::fs::read_to_string(dir.join(format!("{name}.scn")))
            .unwrap_or_else(|e| panic!("{name}.scn: {e}"));
        assert_eq!(&on_disk, src, "{name}.scn drifted from the embedded copy");
    }
}

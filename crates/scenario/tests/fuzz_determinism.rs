//! Fuzzer determinism and oracle tests.
//!
//! * Same `--seed` + corpus ⇒ byte-identical `coverage.txt` and
//!   `findings.jsonl`, across repeat runs and across worker counts
//!   (`--jobs 4` vs serial): planning is serial from one seeded stream
//!   and execution preserves job order.
//! * A seeded invariant violation in the corpus (a flow whose declared
//!   audit jitter bound sits far below its real jitter) is found, shrunk
//!   to a *minimal* scenario, and written as a replayable reproducer.

use scenario::{parse, FuzzOptions, Scenario, ScenarioStrategy};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use testkit::prop::Strategy;

/// A scratch output directory, cleaned before use so stale coverage from
/// an earlier test run cannot leak into this one (coverage persistence is
/// exactly the point of the file).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scenario-fuzz-test-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn committed_corpus() -> Vec<Scenario> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/scenarios");
    let corpus = scenario::load_dir(&dir).expect("corpus parses");
    assert_eq!(corpus.len(), 5, "expected the five canonical scenarios in {}", dir.display());
    corpus
}

/// Run the fuzzer into a fresh scratch dir; return the bytes of
/// (coverage.txt, findings.jsonl).
fn run_once(name: &str, seed: u64, count: usize, jobs: usize, corpus: Vec<Scenario>) -> (String, String) {
    let out = scratch_dir(name);
    let mut opts = FuzzOptions::new(seed, out.clone());
    opts.count = count;
    opts.jobs = jobs;
    opts.corpus = corpus;
    scenario::fuzz(&opts).expect("fuzz run completes");
    let coverage = std::fs::read_to_string(out.join("coverage.txt")).expect("coverage.txt");
    let findings = std::fs::read_to_string(out.join("findings.jsonl")).expect("findings.jsonl");
    (coverage, findings)
}

#[test]
fn same_seed_is_byte_identical_across_runs_and_job_counts() {
    let corpus = committed_corpus();
    let a = run_once("det-a", 7, 48, 1, corpus.clone());
    let b = run_once("det-b", 7, 48, 1, corpus.clone());
    assert_eq!(a, b, "two serial runs with the same seed diverged");
    let c = run_once("det-c", 7, 48, 4, corpus.clone());
    assert_eq!(a, c, "--jobs 4 diverged from the serial run");
    let d = run_once("det-d", 8, 48, 1, corpus);
    assert_ne!(a.0, d.0, "a different seed must explore differently");
}

#[test]
fn coverage_accumulates_across_resumed_runs() {
    let out = scratch_dir("resume");
    let corpus = committed_corpus();
    let mut opts = FuzzOptions::new(7, out.clone());
    opts.count = 24;
    opts.jobs = 1;
    opts.corpus = corpus;
    let first = scenario::fuzz(&opts).expect("first run");
    assert_eq!(first.features, first.new_features, "fresh dir starts from zero");
    opts.seed = 8;
    let second = scenario::fuzz(&opts).expect("resumed run");
    assert!(
        second.features >= first.features,
        "resumed run lost coverage: {} -> {}",
        first.features,
        second.features
    );
    let text = std::fs::read_to_string(out.join("coverage.txt")).expect("coverage.txt");
    let total: u64 = scenario::fuzz::parse_coverage(&text).values().sum();
    assert_eq!(total, 48, "every executed scenario lands in exactly one coverage bucket");
}

/// The seeded violation: 20 ms of real jitter against a declared 1 ms
/// audit bound. The auditor must flag the jitter-hold that exceeds the
/// declared bound (same fault the trace metamorphic suite injects).
const SEEDED_VIOLATION: &str = r#"
scenario "seeded-violation" {
  link { rate 12mbps buffer ample }
  duration 1s
  flow f0 {
    cca const-cwnd
    rtt 40ms
    jitter 20ms seed 5
    audit-jitter-bound 1ms
  }
}
"#;

fn fails_under_audit(s: &Scenario) -> bool {
    let cfg = scenario::compile(s).with_audit(true);
    catch_unwind(AssertUnwindSafe(|| {
        netsim::Network::new(cfg).run();
    }))
    .is_err()
}

#[test]
fn seeded_violation_is_found_shrunk_and_replayable() {
    let out = scratch_dir("oracle");
    let mut opts = FuzzOptions::new(7, out.clone());
    opts.count = 40;
    opts.jobs = 2;
    // Corpus = the clean canonical scenarios plus the seeded fault;
    // mutation preserves the audit bound, so mutants of the faulty entry
    // keep violating unless the mutation removes the jitter itself.
    let mut corpus = committed_corpus();
    corpus.push(parse(SEEDED_VIOLATION).expect("seeded violation parses"));
    opts.corpus = corpus;
    let report = scenario::fuzz(&opts).expect("fuzz run completes");
    assert!(report.violations > 0, "the seeded violation was never hit in {} runs", report.executed);
    assert!(!report.findings.is_empty(), "violations must produce shrunk findings");

    // The reproducer replays the failure from its file alone.
    let path = out.join("finding-000.scn");
    let min = scenario::load_file(&path).expect("reproducer parses");
    assert!(fails_under_audit(&min), "shrunk reproducer no longer fails");

    // And it is *minimal*: no single shrink step still fails.
    let strategy = ScenarioStrategy::default();
    for candidate in strategy.shrink(&min) {
        assert!(
            !fails_under_audit(&candidate),
            "not a local minimum; a simpler scenario still fails:\n{candidate}"
        );
    }

    // The finding's message is the auditor's verdict, and the log + the
    // coverage map both record the violation.
    assert!(
        report.findings[0].message.contains("jitter-bound"),
        "unexpected failure message: {}",
        report.findings[0].message
    );
    let log = std::fs::read_to_string(out.join("findings.jsonl")).expect("findings.jsonl");
    assert!(log.contains("\"repro\":\"finding-000.scn\""), "log missing reproducer: {log}");
    let coverage = std::fs::read_to_string(out.join("coverage.txt")).expect("coverage.txt");
    assert!(coverage.lines().any(|l| l.contains("|violation ")), "coverage missing violation bucket");
}

//! Parser ⇄ printer round-trip property: for every AST the generator can
//! produce, `parse(print(s)) == s` and printing is idempotent. Runs under
//! the testkit property harness, so failures shrink to a minimal scenario
//! and replay with `TESTKIT_SEED`/`TESTKIT_CASE_SEED`.

use scenario::{parse, ScenarioStrategy};
use testkit::prop::{check_with, Config};

/// ASTs are cheap to generate and compare, so run a wider net than the
/// harness default (environment variables still override the seed).
fn ast_config() -> Config {
    if std::env::var_os("TESTKIT_CASES").is_some() {
        Config::from_env()
    } else {
        Config::with_cases(256)
    }
}

#[test]
fn print_then_parse_is_identity() {
    check_with(ast_config(), "print_then_parse_is_identity", ScenarioStrategy::default(), |s| {
        let printed = s.to_string();
        let reparsed = parse(&printed)
            .map_err(|e| format!("canonical form failed to reparse: {e}\n---\n{printed}"))?;
        if reparsed != *s {
            return Err(format!(
                "print → parse is not identity\n--- printed\n{printed}\n--- reparsed AST\n{reparsed:?}"
            ));
        }
        let reprinted = reparsed.to_string();
        if reprinted != printed {
            return Err(format!(
                "printing is not idempotent\n--- first\n{printed}\n--- second\n{reprinted}"
            ));
        }
        Ok(())
    });
}

#[test]
fn every_generated_scenario_compiles() {
    // Compilation is documented as infallible on parser output; the
    // generator must not be able to produce an AST that panics the
    // compiler (the fuzzer relies on this).
    check_with(ast_config(), "every_generated_scenario_compiles", ScenarioStrategy::default(), |s| {
        let sim = scenario::compile(s);
        if sim.flows.len() != s.flows.len() {
            return Err(format!(
                "compile dropped flows: {} declared, {} lowered",
                s.flows.len(),
                sim.flows.len()
            ));
        }
        Ok(())
    });
}

//! Deliberate SL004 violations: raw unit casts.
fn casts(bytes: u64, pkts: usize, secs: f64) -> (f64, u64, u64) {
    let a = bytes as f64;
    let b = pkts as u64;
    let c = (secs * 1e9).round() as u64;
    (a, b, c)
}

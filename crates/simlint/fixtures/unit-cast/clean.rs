//! The named converters (and non-unit casts) pass.
fn casts(bytes: u64, pkts: usize, secs: f64) -> (f64, u64, Dur) {
    let a = bytes_as_f64(bytes);
    let b = count_as_u64(pkts);
    let c = Dur::from_secs_f64(secs);
    let _idx = b as usize;
    (a, b, c)
}

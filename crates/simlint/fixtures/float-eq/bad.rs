//! Deliberate SL003 violations: exact equality on float expressions.
fn checks(x: f64, r: Rate, d: Dur) -> bool {
    let a = x == 0.0;
    let b = r.mbps() != 12.0;
    let c = d.as_secs_f64() == 1.0;
    a && b && c
}

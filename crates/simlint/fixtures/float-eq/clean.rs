//! Tolerance comparison and integer-domain comparison both pass.
fn checks(x: f64, r: Rate, d: Dur) -> bool {
    let a = (x - 0.0).abs() < 1e-9;
    let b = (r.mbps() - 12.0).abs() < 1e-9;
    let c = d.as_nanos() == 1_000_000_000;
    a && b && c
}

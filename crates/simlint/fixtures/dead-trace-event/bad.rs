//! SL009 fixture: a trace::Event variant never constructed anywhere is
//! dead instrumentation — matched below, emitted nowhere.

pub enum Event {
    Send { seq: u64 },
    Probe,
}

pub fn emit(seq: u64) -> Event {
    Event::Send { seq }
}

pub fn classify(ev: &Event) -> u32 {
    match ev {
        Event::Send { .. } => 1,
        Event::Probe => 2,
    }
}

//! SL009 fixture: every variant is constructed somewhere in scope.

pub enum Event {
    Send { seq: u64 },
    Probe,
}

pub fn emit(seq: u64) -> Event {
    Event::Send { seq }
}

pub fn probe() -> Event {
    Event::Probe
}

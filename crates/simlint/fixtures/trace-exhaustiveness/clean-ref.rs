//! SL005 fixture: reference matches that list every variant without a
//! catch-all stay clean.

fn kind_of(ev: &trace::Event) -> u32 {
    match *ev {
        Event::Send { .. } => 1,
        Event::Probe => 2,
    }
}

//! Deliberate SL005 violation: a sink that silently drops unknown events.
fn classify(ev: &Event) -> u32 {
    match ev {
        Event::Send { .. } => 1,
        Event::Drop { .. } => 2,
        _ => 0,
    }
}

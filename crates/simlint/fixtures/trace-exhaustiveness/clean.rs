//! Every variant listed: adding an Event variant breaks the build here.
fn classify(ev: &Event) -> u32 {
    match ev {
        Event::Send { .. } => 1,
        Event::Drop { .. } => 2,
        Event::RunEnd { .. } => 3,
    }
}

fn unrelated(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => 0,
    }
}

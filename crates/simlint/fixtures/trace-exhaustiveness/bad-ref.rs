//! SL005 fixture: a match over a `&&Event` scrutinee whose arms are all
//! catch-alls — no `Event::` pattern reveals the event match, so the
//! param-type scrutinee check must catch it.

fn kind_of(ev: &&Event) -> u32 {
    match **ev {
        _ => 0,
    }
}

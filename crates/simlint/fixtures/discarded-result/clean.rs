//! SL010 fixture: Results are propagated, handled, or explicitly bound.

fn persist(row: u64) -> Result<(), String> {
    if row == 0 {
        return Err("empty row".to_string());
    }
    Ok(())
}

pub fn flush(row: u64) -> Result<(), String> {
    persist(row)?;
    persist(row + 1)
}

pub fn flush_best_effort(row: u64) {
    let _ = persist(row);
    if persist(row).is_err() {
        // best-effort fixture path: the error is deliberately ignored
    }
}

//! SL010 fixture: an expression statement dropping a workspace Result.

fn persist(row: u64) -> Result<(), String> {
    if row == 0 {
        return Err("empty row".to_string());
    }
    Ok(())
}

pub fn flush(row: u64) {
    persist(row);
}

//! Documented expects pass; test code may unwrap freely.
fn head(q: &[u32]) -> u32 {
    *q.first().expect("caller guarantees a non-empty queue")
}

fn fallbacks(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let q = vec![1u32];
        assert_eq!(*q.first().unwrap(), 1);
    }
}

//! Deliberate SL002 violations: a bare unwrap and an empty expect.
fn head(q: &[u32]) -> u32 {
    let first = q.first().unwrap();
    let last = q.last().expect("");
    first + last
}

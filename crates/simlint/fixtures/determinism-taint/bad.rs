//! SL008 fixture: a leaf allow(determinism) no longer blesses callers —
//! the taint propagates and every call edge toward it is flagged.

fn wall_now() -> u64 {
    let t0 = Instant::now(); // simlint: allow(determinism): timing sink only
    t0.elapsed().as_nanos()
}

pub fn stamp_row() -> u64 {
    wall_now()
}

pub fn summarize() -> u64 {
    stamp_row()
}

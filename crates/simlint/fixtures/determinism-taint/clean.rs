//! SL008 fixture: the deterministic counterpart — the clock comes out of
//! one timing-only probe whose call edge is a declared boundary.

fn wall_now() -> u64 {
    let t0 = Instant::now(); // simlint: allow(determinism): bench timing sink
    t0.elapsed().as_nanos()
}

pub fn bench_probe() -> u64 {
    wall_now() // simlint: allow(determinism-taint): timing-only probe, not sim state
}

pub fn report() -> u64 {
    bench_probe()
}

//! SL007 fixture: event-handling code that stays allocation-free, plus
//! the two sanctioned escapes — allocation in a non-event fn, and a
//! justified `allow` on a genuinely once-per-run site.

pub fn build_state(n: usize) -> Vec<u64> {
    let mut v = Vec::new(); // constructors may allocate: not an event fn
    v.reserve(n);
    v
}

pub fn on_data(buf: &mut Vec<u64>, seq: u64) -> usize {
    buf.push(seq); // reuses the caller-owned buffer: nothing per event
    buf.len()
}

pub fn on_flush(buf: &mut Vec<u64>) -> Vec<u64> {
    // simlint: allow(hot-path-alloc): runs once at end of run, not per event
    let out: Vec<u64> = buf.iter().copied().collect();
    buf.clear();
    out
}

//! SL007 v2 fixture: a hot loop that reuses caller buffers stays clean,
//! and a `cold` marker prunes the once-per-run refill subtree.

// simlint: hot-root
pub fn pump(buf: &mut Vec<u64>, n: u64) {
    step(buf, n);
}

fn step(buf: &mut Vec<u64>, n: u64) {
    buf.push(n);
    if buf.is_empty() {
        refill();
    }
}

// simlint: cold: refill runs once per capture, not per event
fn refill() -> Vec<u64> {
    vec![0; 4]
}

//! SL007 v2 fixture: the hot set is the closure of `hot-root`; an
//! allocation two calls deep is caught with the chain in the message.

// simlint: hot-root
pub fn pump(n: u64) {
    process_ack(n);
}

fn process_ack(n: u64) {
    make_sack(n);
}

fn make_sack(n: u64) -> Vec<u64> {
    let mut v = Vec::new();
    for i in 0..n {
        v.push(i);
    }
    v
}

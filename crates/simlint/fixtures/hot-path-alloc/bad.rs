//! SL007 fixture: per-event heap allocation inside event-handling fns.
//! Every allocation here runs once per simulated packet or ACK.

pub fn on_data(seq: u64) -> Vec<u64> {
    let mut acks = Vec::new(); // line 5: fresh Vec per packet
    acks.push(seq);
    let dup = acks.to_vec(); // line 7: clone per packet
    let boxed = Box::new(seq); // line 8: box per packet
    let all: Vec<u64> = dup.iter().map(|s| s + *boxed).collect(); // line 9
    all
}

pub fn depart(n: usize) -> Vec<u8> {
    vec![0; n] // line 14: macro allocation per departure
}

pub fn enqueue(n: usize) -> Vec<u8> {
    Vec::with_capacity(n) // line 18: sized, but still per enqueue
}

//! A suppression with nothing to suppress is itself an SL000 error.
// simlint: allow(determinism): stale justification
fn nothing_nondeterministic_here() -> u32 {
    42
}

//! A justified, *used* suppression is clean: directive plus violation.
fn timing() -> Duration {
    let t0 = Instant::now(); // simlint: allow(determinism): measures the lint pass itself
    t0.elapsed()
}

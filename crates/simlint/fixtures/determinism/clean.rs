//! The deterministic counterparts: simulated clock, seeded PRNG, ordered
//! maps, plus a justified suppression on a real timing site.
use std::collections::BTreeMap;

fn sim_clock(now: Time) -> u64 {
    now.as_nanos()
}

fn seeded() -> u64 {
    let mut rng = Xoshiro256::new(42);
    rng.next_u64()
}

fn ordered(m: &BTreeMap<u32, u32>) -> u32 {
    m.values().sum()
}

fn bench_timing() -> Duration {
    let t0 = Instant::now(); // simlint: allow(determinism): wall-clock is the measurement here
    t0.elapsed()
}

//! Deliberate SL001 violations: every class of nondeterminism the rule
//! catches. Line numbers are asserted by the fixture tests.
use std::collections::HashMap;
use std::time::Instant;

fn wall_clock() -> Duration {
    let t0 = Instant::now();
    t0.elapsed()
}

fn unseeded() -> u64 {
    let mut rng = thread_rng();
    rng.next()
}

fn hash_order(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum()
}

//! Workspace-level integration: the real repository must lint clean, the
//! `hot-root` annotations must attach to fns that actually exist (the v1
//! `HOT_FNS` name list rotted silently; marker attachment is now checked
//! every run), and a warm cache run must reproduce the cold run byte for
//! byte.

use std::path::PathBuf;

use simlint::{lint_workspace, Config};

fn workspace_root() -> PathBuf {
    // crates/simlint → crates → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("simlint sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn the_workspace_lints_clean_with_hot_roots_attached() {
    let report = lint_workspace(&Config::for_workspace(workspace_root()));
    // Clean means: no findings at all — in particular no SL000 from a
    // marker or allow that attaches to nothing (the rot class), and no
    // SL007 "no hot-root annotations" guard (roots exist and resolve).
    let rendered: Vec<String> = report.diags.iter().map(|d| d.render_human()).collect();
    assert!(rendered.is_empty(), "workspace not clean:\n{}", rendered.join("\n"));
    assert!(report.files_checked > 20, "suspiciously few files: {}", report.files_checked);
}

#[test]
fn warm_cache_run_is_byte_identical_to_cold() {
    let cache = std::env::temp_dir().join(format!("simlint-ws-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let mut cfg = Config::for_workspace(workspace_root());
    cfg.cache_path = Some(cache.clone());

    let cold = lint_workspace(&cfg);
    assert_eq!(cold.files_reused, 0, "first run must start from an empty cache");
    let warm = lint_workspace(&cfg);
    let _ = std::fs::remove_file(&cache);

    assert_eq!(
        warm.files_reused, warm.files_checked,
        "warm run re-analyzed {} file(s)",
        warm.files_checked - warm.files_reused
    );
    let render = |r: &simlint::LintReport| {
        r.diags.iter().map(|d| d.render_json()).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(render(&cold), render(&warm));
}

//! Fixture-based rule suite: every rule has a `bad` fixture that must
//! trigger it (with the right rule ID, file, and line, in both human and
//! JSON renderings) and a `clean` fixture that must stay silent under
//! *all* rules.

use simlint::{lint_fixture, Diagnostic, RuleId, FIXTURES};

fn diags_for(path_suffix: &str) -> Vec<Diagnostic> {
    let (_, path, src, _) = FIXTURES
        .iter()
        .find(|(_, p, _, _)| p.ends_with(path_suffix))
        .unwrap_or_else(|| panic!("no fixture named {path_suffix}"));
    lint_fixture(path, src)
}

/// Assert one diagnostic of `rule` exists at `line`, and that both
/// renderings carry the rule ID, file, and line.
fn assert_finding(diags: &[Diagnostic], rule: RuleId, file_suffix: &str, line: u32) {
    let d = diags
        .iter()
        .find(|d| d.rule == rule && d.line == line)
        .unwrap_or_else(|| panic!("no {} finding at line {line} in {diags:#?}", rule.slug()));
    assert!(d.file.ends_with(file_suffix), "{}", d.file);
    let human = d.render_human();
    assert!(human.contains(rule.id()), "{human}");
    assert!(human.contains(&format!("{}:{}:", d.file, line)), "{human}");
    let json = d.render_json();
    assert!(json.contains(&format!("\"rule\":\"{}\"", rule.id())), "{json}");
    assert!(json.contains(&format!("\"file\":\"{}\"", d.file)), "{json}");
    assert!(json.contains(&format!("\"line\":{line}")), "{json}");
}

#[test]
fn determinism_bad_fixture_lines() {
    let diags = diags_for("determinism/bad.rs");
    assert_finding(&diags, RuleId::Determinism, "determinism/bad.rs", 3); // HashMap import
    assert_finding(&diags, RuleId::Determinism, "determinism/bad.rs", 7); // Instant::now()
    assert_finding(&diags, RuleId::Determinism, "determinism/bad.rs", 12); // thread_rng()
    assert_finding(&diags, RuleId::Determinism, "determinism/bad.rs", 16); // HashMap::new()
    assert!(diags.iter().all(|d| d.rule == RuleId::Determinism), "{diags:#?}");
}

#[test]
fn panic_policy_bad_fixture_lines() {
    let diags = diags_for("panic-policy/bad.rs");
    assert_finding(&diags, RuleId::PanicPolicy, "panic-policy/bad.rs", 3); // .unwrap()
    assert_finding(&diags, RuleId::PanicPolicy, "panic-policy/bad.rs", 4); // .expect("")
    assert_eq!(diags.len(), 2, "{diags:#?}");
}

#[test]
fn float_eq_bad_fixture_lines() {
    let diags = diags_for("float-eq/bad.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::FloatEq), "{diags:#?}");
    assert_eq!(diags.len(), 3, "{diags:#?}");
}

#[test]
fn unit_cast_bad_fixture_lines() {
    let diags = diags_for("unit-cast/bad.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::UnitCast), "{diags:#?}");
    assert_eq!(diags.len(), 3, "{diags:#?}");
}

#[test]
fn trace_exhaustiveness_bad_fixture() {
    let diags = diags_for("trace-exhaustiveness/bad.rs");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, RuleId::TraceExhaustiveness);
    assert!(diags[0].message.contains("wildcard"), "{}", diags[0].message);
}

#[test]
fn dep_hygiene_bad_fixture() {
    let diags = diags_for("dep-hygiene/bad.toml");
    assert!(diags.iter().all(|d| d.rule == RuleId::DepHygiene), "{diags:#?}");
    assert!(diags.len() >= 3, "{diags:#?}");
}

#[test]
fn hot_path_alloc_bad_fixture_reports_the_call_chain() {
    let diags = diags_for("hot-path-alloc/bad.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::HotPathAlloc), "{diags:#?}");
    assert_finding(&diags, RuleId::HotPathAlloc, "hot-path-alloc/bad.rs", 14); // Vec::new, 2 calls deep
    assert_eq!(diags.len(), 1, "{diags:#?}");
    // The diagnostic names the allocating fn and the root-to-fn chain.
    let msg = &diags[0].message;
    assert!(msg.contains("make_sack"), "{msg}");
    assert!(msg.contains("pump"), "{msg}");
    assert!(msg.contains("process_ack"), "{msg}");
}

#[test]
fn determinism_taint_bad_fixture_flags_direct_and_transitive_edges() {
    let diags = diags_for("determinism-taint/bad.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::DeterminismTaint), "{diags:#?}");
    assert_finding(&diags, RuleId::DeterminismTaint, "determinism-taint/bad.rs", 10);
    assert_finding(&diags, RuleId::DeterminismTaint, "determinism-taint/bad.rs", 14);
    assert_eq!(diags.len(), 2, "{diags:#?}");
    let transitive = diags.iter().find(|d| d.line == 14).unwrap();
    assert!(transitive.message.contains("wall_now"), "{}", transitive.message);
}

#[test]
fn dead_trace_event_bad_fixture_reports_the_variant_definition() {
    let diags = diags_for("dead-trace-event/bad.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::DeadTraceEvent), "{diags:#?}");
    assert_finding(&diags, RuleId::DeadTraceEvent, "dead-trace-event/bad.rs", 6); // Probe
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert!(diags[0].message.contains("Probe"), "{}", diags[0].message);
}

#[test]
fn discarded_result_bad_fixture_line() {
    let diags = diags_for("discarded-result/bad.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::DiscardedResult), "{diags:#?}");
    assert_finding(&diags, RuleId::DiscardedResult, "discarded-result/bad.rs", 11); // persist(row);
    assert_eq!(diags.len(), 1, "{diags:#?}");
}

#[test]
fn trace_exhaustiveness_reference_scrutinee_fixture() {
    let diags = diags_for("trace-exhaustiveness/bad-ref.rs");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, RuleId::TraceExhaustiveness);
    assert_eq!(diags[0].line, 7, "{diags:#?}"); // the `_ => 0` arm
}

#[test]
fn unused_allow_is_itself_an_error() {
    let diags = diags_for("allow/unused.rs");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, RuleId::UnusedAllow);
    assert!(diags[0].message.contains("unused suppression"), "{}", diags[0].message);
}

#[test]
fn used_allow_suppresses_and_stays_silent() {
    let diags = diags_for("allow/used.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn clean_fixtures_are_clean_under_all_rules() {
    for &(_, path, src, dirty) in FIXTURES {
        if !dirty {
            let diags = lint_fixture(path, src);
            assert!(diags.is_empty(), "{path}: {diags:#?}");
        }
    }
}

#[test]
fn warning_rules_only_fail_under_deny_warnings() {
    use simlint::Severity;
    let float = diags_for("float-eq/bad.rs");
    let cast = diags_for("unit-cast/bad.rs");
    for d in float.iter().chain(&cast) {
        assert_eq!(d.severity, Severity::Warning, "{d:#?}");
    }
}

//! `simlint` CLI.
//!
//! Exit codes: 0 = clean, 1 = findings (errors, or warnings under
//! `--deny-warnings`), 2 = usage / I-O error.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{engine, self_check, Config, ALL_RULES};

const USAGE: &str = "\
simlint — hermetic repo-invariant linter

USAGE:
  simlint --workspace [--json] [--deny-warnings] [--root DIR]
  simlint [--json] [--deny-warnings] [--root DIR] FILE...
  simlint --self-check
  simlint --rules

OPTIONS:
  --workspace       lint every .rs and Cargo.toml under the workspace root
  --json            emit diagnostics as JSON lines instead of human text
  --deny-warnings   treat warnings as failures (CI mode)
  --root DIR        workspace root (default: walk up from cwd to [workspace])
  --cache PATH      incremental cache file (default: ROOT/target/simlint.cache)
  --no-cache        re-analyze every file; neither read nor write the cache
  --self-check      lint the embedded fixtures and verify expected outcomes
  --rules           list registered rules and exit";

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut workspace = false;
    let mut do_self_check = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut no_cache = false;
    let mut cache: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--workspace" => workspace = true,
            "--self-check" => do_self_check = true,
            "--rules" => list_rules = true,
            "--root" => match argv.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage_error("--root requires a directory"),
            },
            "--no-cache" => no_cache = true,
            "--cache" => match argv.next() {
                Some(p) => cache = Some(PathBuf::from(p)),
                None => return usage_error("--cache requires a file path"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option: {other}"));
            }
            path => files.push(PathBuf::from(path)),
        }
    }

    if list_rules {
        for r in ALL_RULES {
            println!("{} {:<22} {:<8} {}", r.id(), r.slug(), r.severity().to_string(), r.describe());
        }
        return ExitCode::SUCCESS;
    }

    if do_self_check {
        let failures = self_check();
        if failures.is_empty() {
            println!(
                "simlint self-check: {} fixtures + {} scope checks ok",
                simlint::FIXTURES.len(),
                simlint::SCOPE_FIXTURES.len()
            );
            return ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("simlint self-check FAILED: {f}");
        }
        return ExitCode::FAILURE;
    }

    if workspace != files.is_empty() {
        // Neither or both: exactly one input mode must be selected.
        return usage_error("pass --workspace or one or more files");
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match engine::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage_error("no [workspace] manifest found above cwd; pass --root"),
            }
        }
    };

    let mut cfg = Config::for_workspace(&root);
    if workspace && !no_cache {
        cfg.cache_path = Some(cache.unwrap_or_else(|| root.join("target/simlint.cache")));
    }
    let report = if workspace {
        engine::lint_workspace(&cfg)
    } else {
        engine::lint_paths(&cfg, &files)
    };

    for d in &report.diags {
        if json {
            println!("{}", d.render_json());
        } else {
            println!("{}", d.render_human());
        }
    }
    if !json {
        eprintln!(
            "simlint: {} file(s) checked ({} from cache, {} analyzed), {} error(s), {} warning(s)",
            report.files_checked,
            report.files_reused,
            report.files_checked - report.files_reused,
            report.errors(),
            report.warnings()
        );
    }
    if report.failed(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

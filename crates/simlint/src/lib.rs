//! `simlint` — a hermetic static-analysis pass for this workspace's own
//! invariants.
//!
//! The paper's reproductions rest on bit-exact deterministic emulation:
//! the determinism suite proves `jobs=4 ≡ jobs=1`, the golden-trace suite
//! pins packet-level timelines, and the runtime auditor checks invariants
//! *while a simulation runs*. None of that stops a future change from
//! statically reintroducing nondeterminism (a wall clock, an unseeded RNG,
//! hash-order iteration) or from silently dropping a new `trace::Event`
//! variant behind a `_ =>` arm. Clippy can't encode repo-specific rules
//! and the workspace is deliberately dependency-free, so the checker is
//! built in-repo: a minimal Rust [`lexer`], a rule registry ([`diag`]),
//! the [`rules`] themselves, and an [`engine`] that walks the workspace,
//! applies per-line `// simlint: allow(<rule>)` suppressions, and emits
//! human or JSON-lines diagnostics.
//!
//! Run it as `repro lint`, as the `simlint` binary
//! (`cargo run -p simlint -- --workspace --deny-warnings`), or call
//! [`engine::lint_workspace`] directly. The rules:
//!
//! | ID | slug | severity | checks |
//! |----|------|----------|--------|
//! | SL000 | unused-allow | error | suppressions that suppress nothing |
//! | SL001 | determinism | error | wall clocks, unseeded RNG, hash-order iteration |
//! | SL002 | panic-policy | error | bare `.unwrap()` / empty `.expect("")` in library crates |
//! | SL003 | float-eq | warning | `==`/`!=` on float expressions in sim/CCA code |
//! | SL004 | unit-cast | warning | raw `as f64`/`as u64` unit casts in `netsim` |
//! | SL005 | trace-exhaustiveness | error | wildcard arms in `match` over `trace::Event` |
//! | SL006 | dep-hygiene | error | registry/git dependencies in any manifest |
//! | SL007 | hot-path-alloc | warning | heap allocation reachable from a `// simlint: hot-root` fn |
//! | SL008 | determinism-taint | error | calls that transitively reach a wall clock / unseeded RNG |
//! | SL009 | dead-trace-event | warning | `trace::Event` variants never constructed in `netsim` |
//! | SL010 | discarded-result | warning | expression statements dropping a workspace `Result` |
//!
//! SL001–SL006 are single-file rules; SL007–SL010 run on a conservative
//! workspace call graph built by [`parse`] and [`graph`] (v2). Per-file
//! analysis is cached content-addressed ([`cache`]) so warm runs re-lex
//! nothing; the graph pass is always recomputed from the cached facts.

pub mod cache;
pub mod diag;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use diag::{Diagnostic, RuleId, Severity, ALL_RULES};
pub use engine::{find_workspace_root, lint_workspace, Config, LintReport};

/// The shipped fixtures, embedded so the self-check works from any cwd:
/// (rule, fixture path, source, expected-dirty).
pub const FIXTURES: &[(RuleId, &str, &str, bool)] = &[
    (
        RuleId::Determinism,
        "fixtures/determinism/bad.rs",
        include_str!("../fixtures/determinism/bad.rs"),
        true,
    ),
    (
        RuleId::Determinism,
        "fixtures/determinism/clean.rs",
        include_str!("../fixtures/determinism/clean.rs"),
        false,
    ),
    (
        RuleId::PanicPolicy,
        "fixtures/panic-policy/bad.rs",
        include_str!("../fixtures/panic-policy/bad.rs"),
        true,
    ),
    (
        RuleId::PanicPolicy,
        "fixtures/panic-policy/clean.rs",
        include_str!("../fixtures/panic-policy/clean.rs"),
        false,
    ),
    (
        RuleId::FloatEq,
        "fixtures/float-eq/bad.rs",
        include_str!("../fixtures/float-eq/bad.rs"),
        true,
    ),
    (
        RuleId::FloatEq,
        "fixtures/float-eq/clean.rs",
        include_str!("../fixtures/float-eq/clean.rs"),
        false,
    ),
    (
        RuleId::UnitCast,
        "fixtures/unit-cast/bad.rs",
        include_str!("../fixtures/unit-cast/bad.rs"),
        true,
    ),
    (
        RuleId::UnitCast,
        "fixtures/unit-cast/clean.rs",
        include_str!("../fixtures/unit-cast/clean.rs"),
        false,
    ),
    (
        RuleId::TraceExhaustiveness,
        "fixtures/trace-exhaustiveness/bad.rs",
        include_str!("../fixtures/trace-exhaustiveness/bad.rs"),
        true,
    ),
    (
        RuleId::TraceExhaustiveness,
        "fixtures/trace-exhaustiveness/clean.rs",
        include_str!("../fixtures/trace-exhaustiveness/clean.rs"),
        false,
    ),
    (
        RuleId::TraceExhaustiveness,
        "fixtures/trace-exhaustiveness/bad-ref.rs",
        include_str!("../fixtures/trace-exhaustiveness/bad-ref.rs"),
        true,
    ),
    (
        RuleId::TraceExhaustiveness,
        "fixtures/trace-exhaustiveness/clean-ref.rs",
        include_str!("../fixtures/trace-exhaustiveness/clean-ref.rs"),
        false,
    ),
    (
        RuleId::DepHygiene,
        "fixtures/dep-hygiene/bad.toml",
        include_str!("../fixtures/dep-hygiene/bad.toml"),
        true,
    ),
    (
        RuleId::DepHygiene,
        "fixtures/dep-hygiene/clean.toml",
        include_str!("../fixtures/dep-hygiene/clean.toml"),
        false,
    ),
    (
        RuleId::HotPathAlloc,
        "fixtures/hot-path-alloc/bad.rs",
        include_str!("../fixtures/hot-path-alloc/bad.rs"),
        true,
    ),
    (
        RuleId::HotPathAlloc,
        "fixtures/hot-path-alloc/clean.rs",
        include_str!("../fixtures/hot-path-alloc/clean.rs"),
        false,
    ),
    (
        RuleId::DeterminismTaint,
        "fixtures/determinism-taint/bad.rs",
        include_str!("../fixtures/determinism-taint/bad.rs"),
        true,
    ),
    (
        RuleId::DeterminismTaint,
        "fixtures/determinism-taint/clean.rs",
        include_str!("../fixtures/determinism-taint/clean.rs"),
        false,
    ),
    (
        RuleId::DeadTraceEvent,
        "fixtures/dead-trace-event/bad.rs",
        include_str!("../fixtures/dead-trace-event/bad.rs"),
        true,
    ),
    (
        RuleId::DeadTraceEvent,
        "fixtures/dead-trace-event/clean.rs",
        include_str!("../fixtures/dead-trace-event/clean.rs"),
        false,
    ),
    (
        RuleId::DiscardedResult,
        "fixtures/discarded-result/bad.rs",
        include_str!("../fixtures/discarded-result/bad.rs"),
        true,
    ),
    (
        RuleId::DiscardedResult,
        "fixtures/discarded-result/clean.rs",
        include_str!("../fixtures/discarded-result/clean.rs"),
        false,
    ),
    (
        RuleId::UnusedAllow,
        "fixtures/allow/unused.rs",
        include_str!("../fixtures/allow/unused.rs"),
        true,
    ),
    (
        RuleId::UnusedAllow,
        "fixtures/allow/used.rs",
        include_str!("../fixtures/allow/used.rs"),
        false,
    ),
];

/// Scope self-check fixtures: each scoped rule's `bad` source linted under
/// the *workspace* config at two virtual paths — one inside the rule's
/// scope, one outside it. The in-scope lint must fire, the out-of-scope
/// one must not: this pins `Config::for_workspace`'s scope lists (e.g.
/// that `crates/scenario` is held to the panic and discarded-result
/// policies) the same way [`FIXTURES`] pins the rules themselves.
/// Layout: (rule, in-scope path, out-of-scope path, source).
pub const SCOPE_FIXTURES: &[(RuleId, &str, &str, &str)] = &[
    (
        RuleId::PanicPolicy,
        "crates/scenario/src/parser.rs",
        "crates/bench/src/main.rs",
        include_str!("../fixtures/panic-policy/bad.rs"),
    ),
    // The fuzzer is library code other tools embed: dropped `Result`s
    // there would silently skip scenario coverage.
    (
        RuleId::DiscardedResult,
        "crates/scenario/src/fuzz.rs",
        "crates/bench/src/main.rs",
        include_str!("../fixtures/discarded-result/bad.rs"),
    ),
    (
        RuleId::UnitCast,
        "crates/netsim/src/link.rs",
        "crates/scenario/src/compile.rs",
        include_str!("../fixtures/unit-cast/bad.rs"),
    ),
    // The content-addressed store carries library panic policy, and as
    // deterministic-replay infrastructure it must not reach a wall clock.
    (
        RuleId::PanicPolicy,
        "crates/simcore/src/store.rs",
        "crates/bench/src/report.rs",
        include_str!("../fixtures/panic-policy/bad.rs"),
    ),
    (
        RuleId::DeterminismTaint,
        "crates/simcore/src/store.rs",
        "crates/bench/src/report.rs",
        include_str!("../fixtures/determinism-taint/bad.rs"),
    ),
];

/// Lint one embedded fixture with scoped rules opened up to every path.
pub fn lint_fixture(path: &str, src: &str) -> Vec<Diagnostic> {
    let cfg = Config::everything("/");
    if path.ends_with(".toml") {
        engine::lint_manifest(&cfg, path, src)
    } else {
        engine::lint_rust(&cfg, path, src)
    }
}

/// Self-check over the embedded fixtures: every `bad` variant must report
/// at least one finding, all of its own rule; every `clean` variant must
/// report none. Returns human-readable failure lines (empty = pass).
pub fn self_check() -> Vec<String> {
    let mut failures = Vec::new();
    for &(rule, path, src, dirty) in FIXTURES {
        let diags = lint_fixture(path, src);
        if dirty {
            if diags.is_empty() {
                failures.push(format!("{path}: expected {} findings, got none", rule.slug()));
            }
            for d in &diags {
                if d.rule != rule {
                    failures.push(format!(
                        "{path}: expected only {} findings, got {}",
                        rule.slug(),
                        d.render_human()
                    ));
                }
            }
        } else if !diags.is_empty() {
            failures.push(format!(
                "{path}: clean variant reported {} finding(s), first: {}",
                diags.len(),
                diags[0].render_human()
            ));
        }
    }
    // Scope checks run under the workspace config, not `everything`: the
    // same bad source must trip its rule at the in-scope path and stay
    // silent (for that rule) at the out-of-scope one. Other rules may
    // still fire — only the scoped rule's findings are judged.
    let workspace = Config::for_workspace("/");
    for &(rule, inside, outside, src) in SCOPE_FIXTURES {
        let hits = |path: &str| {
            engine::lint_rust(&workspace, path, src)
                .into_iter()
                .filter(|d| d.rule == rule)
                .count()
        };
        if hits(inside) == 0 {
            failures.push(format!(
                "{inside}: {} must apply inside its workspace scope, found nothing",
                rule.slug()
            ));
        }
        if hits(outside) != 0 {
            failures.push(format!(
                "{outside}: {} fired outside its workspace scope",
                rule.slug()
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_passes() {
        let failures = self_check();
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn scope_fixtures_cover_the_scenario_crate() {
        // The scenario crate is library code: it must be held to the
        // panic, taint, and discarded-result policies; the scope
        // self-check above proves the behaviour, this pins the intent.
        let cfg = Config::for_workspace("/");
        assert!(cfg.panic_scope.iter().any(|p| p == "crates/scenario/src"));
        assert!(cfg.taint_scope.iter().any(|p| p == "crates/scenario/src"));
        assert!(cfg.result_scope.iter().any(|p| p == "crates/scenario/src"));
        assert!(SCOPE_FIXTURES
            .iter()
            .any(|&(_, inside, _, _)| inside.starts_with("crates/scenario/src")));
    }

    #[test]
    fn scope_fixtures_cover_the_store_module() {
        // simcore::store is deterministic-replay infrastructure: it must
        // carry panic policy and the determinism-taint policy (a store
        // helper reaching a wall clock would poison every replay), with
        // fixtures proving both rules actually fire there.
        let cfg = Config::for_workspace("/");
        let store = "crates/simcore/src/store.rs";
        assert!(cfg.panic_scope.iter().any(|p| store.starts_with(p.as_str())));
        assert!(cfg.taint_scope.iter().any(|p| store.starts_with(p.as_str())));
        for rule in [RuleId::PanicPolicy, RuleId::DeterminismTaint] {
            assert!(
                SCOPE_FIXTURES
                    .iter()
                    .any(|&(r, inside, _, _)| r == rule && inside == store),
                "{} lacks a store.rs scope fixture",
                rule.slug()
            );
        }
    }

    #[test]
    fn every_rule_has_bad_and_clean_fixtures() {
        for &rule in ALL_RULES {
            let dirty = FIXTURES.iter().any(|&(r, _, _, d)| r == rule && d);
            let clean = FIXTURES.iter().any(|&(r, _, _, d)| r == rule && !d);
            assert!(dirty && clean, "rule {} missing fixtures", rule.slug());
        }
    }
}

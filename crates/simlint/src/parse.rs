//! Item-level parser over the [`lexer`](crate::lexer) token stream.
//!
//! simlint v1 rules pattern-matched raw token windows, which works for
//! local properties (`.unwrap()`, `as f64`) but cannot answer "what does
//! this function call?". This module recovers just enough structure for
//! the call-graph rules in [`graph`](crate::graph): every `fn` item with
//! its name, impl/trait owner, in-file module path, signature and body
//! token ranges; and every `enum` item with its variants. It is *not* a
//! Rust parser — expressions stay flat token runs — and it is
//! deliberately conservative: unknown constructs are skipped, never
//! guessed at.
//!
//! Token indices in the output refer to the *same* token slice handed to
//! [`parse`], comments included, so callers can correlate items with
//! directive comments and re-scan bodies for calls.

use crate::lexer::{Token, TokenKind};

/// One `fn` item (free fn, method, trait method, or nested fn).
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` type name (last path segment), if the fn
    /// is a method. Nested fns inside a method body get `None` — they are
    /// not callable through the owner.
    pub owner: Option<String>,
    /// In-file module path (`"a::b"` for `mod a { mod b { … } }`, empty at
    /// the top level).
    pub module: String,
    /// Position of the fn *name* token — where diagnostics point.
    pub line: u32,
    pub col: u32,
    /// First line of the declaration, including qualifiers (`pub(crate)
    /// const unsafe …`) and attributes. Together with
    /// [`header_end_line`](Self::header_end_line) this bounds the region a
    /// `// simlint: hot-root` marker may attach to.
    pub decl_line: u32,
    /// Line of the body-opening `{` (or the `;` of a bodyless decl).
    pub header_end_line: u32,
    /// Token range `[fn_kw, body_open)` — the signature, generics, params
    /// and return type.
    pub sig: (usize, usize),
    /// Token indices of the body's `{` and matching `}` (inclusive), or
    /// `None` for bodyless trait/extern declarations.
    pub body: Option<(usize, usize)>,
    /// Whether `Result` appears in the return-type region. Conservative:
    /// a `Result` in a trailing `where` clause also counts.
    pub returns_result: bool,
}

impl FnItem {
    /// `true` when `line` falls inside the decl-to-body-open region, where
    /// a trailing or standalone simlint marker attaches to this fn.
    pub fn decl_region_contains(&self, line: u32) -> bool {
        self.decl_line <= line && line <= self.header_end_line
    }
}

/// One variant of a parsed `enum`.
#[derive(Clone, Debug)]
pub struct EnumVariant {
    pub name: String,
    pub line: u32,
    pub col: u32,
}

/// One `enum` item.
#[derive(Clone, Debug)]
pub struct EnumItem {
    pub name: String,
    pub module: String,
    pub line: u32,
    pub variants: Vec<EnumVariant>,
}

/// Everything [`parse`] recovers from one file's token stream.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub enums: Vec<EnumItem>,
}

#[derive(Debug)]
enum ScopeKind {
    Mod(String),
    /// `impl` or `trait` body: fns declared directly inside are methods of
    /// this type name.
    Owner(String),
    /// A fn body: fns nested here are plain local items, not methods.
    FnBody,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth *after* the scope's `{` was consumed; the scope is
    /// popped when depth drops below this.
    depth: usize,
}

fn is_comment(t: &Token) -> bool {
    matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
}

/// Next non-comment token index at or after `i`.
fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !is_comment(&toks[i]) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Previous non-comment token index strictly before `i`.
fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !is_comment(&toks[j]) {
            return Some(j);
        }
    }
    None
}

/// Index just past a `#[…]` / `#![…]` attribute starting at the `#` at
/// `i`; `i + 1` if it isn't one.
fn skip_attr_at(toks: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if let Some(k) = next_code(toks, j) {
        if toks[k].is_punct("!") {
            j = k + 1;
        }
    }
    let Some(open) = next_code(toks, j) else { return i + 1 };
    if !toks[open].is_punct("[") {
        return i + 1;
    }
    let mut depth = 0usize;
    for (off, t) in toks[open..].iter().enumerate() {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return open + off + 1;
            }
        }
    }
    toks.len()
}

/// Matching `}` for the `{` at `open` (same-token fallback at EOF).
fn matching_close(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (off, t) in toks[open..].iter().enumerate() {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return open + off;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Skip a generic parameter list whose `<` is at `i`; returns the index
/// just past the closing `>`. Handles `>>` closing two levels at once
/// (the lexer munches it as a single token).
fn skip_generics(toks: &[Token], i: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct(">>") {
            depth -= 2;
        }
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// First line of the declaration owning the `fn` keyword at `fn_idx`:
/// walks back over visibility/qualifier tokens (`pub(crate)`, `const`,
/// `async`, `unsafe`, `extern "C"`, …) and any stacked attributes.
fn decl_start_line(toks: &[Token], fn_idx: usize) -> u32 {
    let mut line = toks[fn_idx].line;
    let mut j = fn_idx;
    loop {
        let Some(p) = prev_code(toks, j) else { break };
        let t = &toks[p];
        let qualifier = t.is_ident("pub")
            || t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
            || t.is_ident("default")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("self")
            || t.is_ident("in")
            || t.is_punct("(")
            || t.is_punct(")")
            || t.is_punct("::")
            || t.kind == TokenKind::Str;
        if qualifier {
            line = t.line;
            j = p;
            continue;
        }
        if t.is_punct("]") {
            // Walk back over a `#[…]` attribute to its `#`.
            let mut depth = 0usize;
            let mut k = p;
            let mut open = None;
            loop {
                let tk = &toks[k];
                if tk.is_punct("]") {
                    depth += 1;
                } else if tk.is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(k);
                        break;
                    }
                }
                let Some(pk) = prev_code(toks, k) else { break };
                k = pk;
            }
            if let Some(open) = open {
                if let Some(h) = prev_code(toks, open) {
                    if toks[h].is_punct("#") {
                        line = toks[h].line;
                        j = h;
                        continue;
                    }
                }
            }
        }
        break;
    }
    line
}

/// Last path-segment identifier in `toks[lo..hi]` *outside* any generic
/// brackets — `foo::bar::Baz<T>` → `Baz`. Used for impl owner extraction.
fn last_path_segment(toks: &[Token], lo: usize, hi: usize) -> Option<String> {
    let mut depth = 0isize;
    let mut seg = None;
    for t in &toks[lo..hi.min(toks.len())] {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct(">>") {
            depth -= 2;
        } else if depth == 0 && t.kind == TokenKind::Ident && !t.is_ident("dyn") {
            seg = Some(t.text.clone());
        }
    }
    seg
}

/// Parse one file's token stream into its items.
pub fn parse(toks: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<ScopeKind> = None;
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if is_comment(t) {
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            depth += 1;
            if let Some(kind) = pending.take() {
                scopes.push(Scope { kind, depth });
            }
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            while scopes.last().is_some_and(|s| s.depth > depth) {
                scopes.pop();
            }
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            // An item header that never reached a `{` (e.g. `type F =
            // fn(u32);` after a misfired `impl` pend) resolves here.
            pending = None;
            i += 1;
            continue;
        }
        if t.is_punct("#") {
            i = skip_attr_at(toks, i);
            continue;
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "mod" => {
                    if let Some(j) = next_code(toks, i + 1) {
                        if toks[j].kind == TokenKind::Ident {
                            pending = Some(ScopeKind::Mod(toks[j].text.clone()));
                            i = j + 1;
                            continue;
                        }
                    }
                    i += 1;
                }
                "impl" | "trait" => {
                    if let Some((kind, resume)) = parse_owner_header(toks, i) {
                        pending = Some(kind);
                        i = resume;
                    } else {
                        i += 1;
                    }
                }
                "fn" => {
                    if let Some((item, resume)) = parse_fn(toks, i, &scopes) {
                        // The body `{` is processed by the main loop next
                        // iteration; mark it as a fn-body scope so nested
                        // fns don't inherit the impl owner.
                        if item.body.is_some() {
                            pending = Some(ScopeKind::FnBody);
                        }
                        out.fns.push(item);
                        i = resume;
                    } else {
                        i += 1;
                    }
                }
                "enum" => {
                    if let Some((item, resume)) = parse_enum(toks, i, &scopes) {
                        out.enums.push(item);
                        i = resume;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
            continue;
        }
        i += 1;
    }
    out
}

fn module_path(scopes: &[Scope]) -> String {
    let mut parts = Vec::new();
    for s in scopes {
        if let ScopeKind::Mod(m) = &s.kind {
            parts.push(m.as_str());
        }
    }
    parts.join("::")
}

fn owner_of(scopes: &[Scope]) -> Option<String> {
    // Innermost wins; a fn body between the fn and an impl breaks the
    // method association.
    for s in scopes.iter().rev() {
        match &s.kind {
            ScopeKind::FnBody => return None,
            ScopeKind::Owner(o) => return Some(o.clone()),
            ScopeKind::Mod(_) => {}
        }
    }
    None
}

/// Parse an `impl`/`trait` header starting at its keyword; returns the
/// scope to attach at the body `{` plus the index of that `{`.
fn parse_owner_header(toks: &[Token], kw: usize) -> Option<(ScopeKind, usize)> {
    if toks[kw].is_ident("trait") {
        let j = next_code(toks, kw + 1)?;
        if toks[j].kind != TokenKind::Ident {
            return None;
        }
        return Some((ScopeKind::Owner(toks[j].text.clone()), j + 1));
    }
    // impl: `impl<G> Type {`, `impl<G> Trait for Type where … {`, or a
    // non-block use (`-> impl Trait`, `type T = impl …;`) — the latter
    // never reaches a `{` before `;`/`)` and is rejected.
    let mut j = next_code(toks, kw + 1)?;
    if toks[j].is_punct("<") {
        j = skip_generics(toks, j);
    }
    let type_start = j;
    let mut for_at = None;
    let mut body_open = None;
    let mut k = j;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("{") {
            body_open = Some(k);
            break;
        }
        if t.is_punct(";") || t.is_punct(")") || t.is_punct(",") {
            return None;
        }
        if t.is_ident("for") {
            for_at = Some(k);
        }
        if t.is_ident("where") {
            // The owner type ends here; keep scanning for the `{`.
            let seg_end = k;
            let open = find_brace(toks, k)?;
            let lo = for_at.map_or(type_start, |f| f + 1);
            let owner = last_path_segment(toks, lo, seg_end)?;
            return Some((ScopeKind::Owner(owner), open));
        }
        k += 1;
    }
    let open = body_open?;
    let lo = for_at.map_or(type_start, |f| f + 1);
    let owner = last_path_segment(toks, lo, open)?;
    Some((ScopeKind::Owner(owner), open))
}

fn find_brace(toks: &[Token], from: usize) -> Option<usize> {
    toks[from..]
        .iter()
        .position(|t| t.is_punct("{"))
        .map(|off| from + off)
}

/// Parse a `fn` item whose keyword is at `kw`. Returns the item and the
/// resume index (the body `{` itself, so the main loop tracks its depth,
/// or just past the `;` of a bodyless decl). `None` for fn-pointer types
/// (`fn(` with no name).
fn parse_fn(toks: &[Token], kw: usize, scopes: &[Scope]) -> Option<(FnItem, usize)> {
    let name_at = next_code(toks, kw + 1)?;
    if toks[name_at].kind != TokenKind::Ident {
        return None;
    }
    let name = toks[name_at].text.clone();
    let mut j = next_code(toks, name_at + 1)?;
    if toks[j].is_punct("<") {
        j = skip_generics(toks, j);
        j = next_code(toks, j)?;
    }
    if !toks[j].is_punct("(") {
        return None;
    }
    // Balanced parameter list.
    let mut pdepth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct("(") {
            pdepth += 1;
        } else if toks[j].is_punct(")") {
            pdepth -= 1;
            if pdepth == 0 {
                break;
            }
        }
        j += 1;
    }
    // Return type / where clause, up to the body `{` or a `;`.
    let mut returns_result = false;
    let mut end = None;
    let mut k = j + 1;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("{") || t.is_punct(";") {
            end = Some(k);
            break;
        }
        if t.is_ident("Result") {
            returns_result = true;
        }
        k += 1;
    }
    let end = end?;
    let (body, resume) = if toks[end].is_punct("{") {
        (Some((end, matching_close(toks, end))), end)
    } else {
        (None, end + 1)
    };
    let item = FnItem {
        name,
        owner: owner_of(scopes),
        module: module_path(scopes),
        line: toks[name_at].line,
        col: toks[name_at].col,
        decl_line: decl_start_line(toks, kw),
        header_end_line: toks[end].line,
        sig: (kw, end),
        body,
        returns_result,
    };
    Some((item, resume))
}

/// Parse an `enum` item whose keyword is at `kw`; resumes past the
/// closing `}` (the whole body is consumed here so payload types like
/// `fn(u32)` never reach the item scanner).
fn parse_enum(toks: &[Token], kw: usize, scopes: &[Scope]) -> Option<(EnumItem, usize)> {
    let name_at = next_code(toks, kw + 1)?;
    if toks[name_at].kind != TokenKind::Ident {
        return None;
    }
    let open = find_brace(toks, name_at + 1)?;
    // Guard against `enum` inside an expression context reaching an
    // unrelated brace: a `;` before the `{` means no body.
    if toks[name_at + 1..open].iter().any(|t| t.is_punct(";")) {
        return None;
    }
    let close = matching_close(toks, open);
    let mut variants = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Variant-level position: skip attributes, then the first ident
        // is the variant name; skip its payload/discriminant to the
        // variant-separating comma.
        let Some(k) = next_code(toks, j) else { break };
        if k >= close {
            break;
        }
        if toks[k].is_punct("#") {
            j = skip_attr_at(toks, k);
            continue;
        }
        if toks[k].kind == TokenKind::Ident {
            variants.push(EnumVariant {
                name: toks[k].text.clone(),
                line: toks[k].line,
                col: toks[k].col,
            });
        }
        // Advance to just past the next top-level comma.
        let mut d = 0usize;
        let mut m = k;
        while m < close {
            let t = &toks[m];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                d += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                d = d.saturating_sub(1);
            } else if t.is_punct(",") && d == 0 {
                break;
            }
            m += 1;
        }
        j = m + 1;
    }
    let item = EnumItem {
        name: toks[name_at].text.clone(),
        module: module_path(scopes),
        line: toks[name_at].line,
        variants,
    };
    Some((item, close + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn free_fn_basics() {
        let p = parse_src("fn alpha(x: u32) -> u64 { x as u64 }\nfn beta() {}\n");
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        assert_eq!(a.name, "alpha");
        assert_eq!(a.owner, None);
        assert_eq!(a.module, "");
        assert_eq!((a.line, a.col), (1, 4));
        assert!(!a.returns_result);
        assert!(a.body.is_some());
        assert_eq!(p.fns[1].name, "beta");
        assert_eq!(p.fns[1].line, 2);
    }

    #[test]
    fn nested_generics_and_result_return() {
        // `>>` closes two generic levels in both the generics list and the
        // return type; `Result` in the return region is detected.
        let p = parse_src(
            "fn f<T: Into<Vec<u8>>>(v: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, String> { todo() }",
        );
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "f");
        assert!(f.returns_result);
        let (open, close) = f.body.unwrap();
        assert!(open < close);
    }

    #[test]
    fn qualified_fn_headers() {
        let src = "\
pub(crate) const fn a() -> u32 { 1 }
pub async fn b() {}
pub(in crate::x) unsafe fn c() {}
extern \"C\" fn d() {}
";
        let p = parse_src(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
        for f in &p.fns {
            // Qualifiers are on the same line, so decl_line == fn line.
            assert_eq!(f.decl_line, f.line, "{}", f.name);
        }
    }

    #[test]
    fn decl_line_walks_back_over_attributes_and_qualifiers() {
        let src = "\
#[inline]
#[must_use]
pub(crate)
fn hot() -> u32 {
    7
}
";
        let p = parse_src(src);
        let f = &p.fns[0];
        assert_eq!(f.line, 4);
        assert_eq!(f.decl_line, 1);
        assert_eq!(f.header_end_line, 4);
        assert!(f.decl_region_contains(2));
        assert!(!f.decl_region_contains(5));
    }

    #[test]
    fn impl_owner_and_trait_impl_owner() {
        let src = "\
struct Sender;
impl Sender {
    pub fn push(&mut self) {}
}
impl Iterator for Sender {
    type Item = u32;
    fn next(&mut self) -> Option<u32> { None }
}
impl<T: Clone> From<T> for Sender {
    fn from(_: T) -> Self { Sender }
}
";
        let p = parse_src(src);
        let got: Vec<(String, Option<String>)> =
            p.fns.iter().map(|f| (f.name.clone(), f.owner.clone())).collect();
        assert_eq!(
            got,
            vec![
                ("push".into(), Some("Sender".into())),
                ("next".into(), Some("Sender".into())),
                ("from".into(), Some("Sender".into())),
            ]
        );
    }

    #[test]
    fn trait_decls_and_bodyless_methods() {
        let src = "\
trait Cca {
    fn on_ack(&mut self, rtt: u64);
    fn cwnd(&self) -> f64 { 1.0 }
}
";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Cca"));
        assert!(p.fns[0].body.is_none());
        assert_eq!(p.fns[1].owner.as_deref(), Some("Cca"));
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn module_paths_nest() {
        let src = "\
mod outer {
    fn top() {}
    mod inner {
        fn deep() {}
    }
    fn late() {}
}
fn root() {}
";
        let p = parse_src(src);
        let got: Vec<(String, String)> =
            p.fns.iter().map(|f| (f.name.clone(), f.module.clone())).collect();
        assert_eq!(
            got,
            vec![
                ("top".into(), "outer".into()),
                ("deep".into(), "outer::inner".into()),
                ("late".into(), "outer".into()),
                ("root".into(), String::new()),
            ]
        );
    }

    #[test]
    fn nested_fn_in_method_body_is_not_a_method() {
        let src = "\
struct S;
impl S {
    fn outer(&self) {
        fn helper() {}
        helper();
    }
    fn after(&self) {}
}
";
        let p = parse_src(src);
        let got: Vec<(String, Option<String>)> =
            p.fns.iter().map(|f| (f.name.clone(), f.owner.clone())).collect();
        assert_eq!(
            got,
            vec![
                ("outer".into(), Some("S".into())),
                ("helper".into(), None),
                ("after".into(), Some("S".into())),
            ]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "\
type Hook = fn(u32) -> u32;
fn real(h: fn(u32) -> u32, g: Box<dyn Fn(u32) -> u32>) {}
";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn return_position_impl_trait_is_not_an_impl_block() {
        let src = "\
fn gen() -> impl Iterator<Item = u32> {
    (0..3).into_iter()
}
fn next_one() {}
";
        let p = parse_src(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["gen", "next_one"]);
        assert!(p.fns.iter().all(|f| f.owner.is_none()));
    }

    #[test]
    fn enum_variants_with_payloads_and_discriminants() {
        let src = "\
pub enum Event {
    Send { flow: u32, seq: u64 },
    Drop(u32, Box<[u8]>),
    #[doc = \"tagged\"]
    Rto,
    Code = 4,
}
enum Empty {}
";
        let p = parse_src(src);
        assert_eq!(p.enums.len(), 2);
        let e = &p.enums[0];
        assert_eq!(e.name, "Event");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Send", "Drop", "Rto", "Code"]);
        assert_eq!(e.variants[0].line, 2);
        assert!(p.enums[1].variants.is_empty());
    }

    #[test]
    fn enum_payload_fn_pointer_does_not_create_an_item() {
        let p = parse_src("enum E { Cb(fn(u32) -> u32) }\nfn real() {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn impl_where_clause_keeps_the_owner() {
        let src = "\
struct W<T>(T);
impl<T> W<T> where T: Clone {
    fn get(&self) -> T { self.0.clone() }
}
";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].owner.as_deref(), Some("W"));
    }

    #[test]
    fn where_clause_result_bound_counts_as_result_return() {
        // Conservative by design: `Result` anywhere between params and
        // body counts, even in a where clause.
        let p = parse_src("fn f<F>(f: F) where F: Fn() -> Result<u32, ()> {}");
        assert!(p.fns[0].returns_result);
    }

    #[test]
    fn shebang_file_still_parses() {
        let p = parse_src("#!/usr/bin/env run\nfn main() {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "main");
        assert_eq!(p.fns[0].line, 2);
    }
}

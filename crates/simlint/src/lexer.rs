//! A minimal Rust lexer — just enough syntax to lint reliably.
//!
//! The rules in this crate match on *token* sequences, never on raw text,
//! so a `.unwrap()` inside a string literal or a `match` inside a comment
//! can't produce a false positive. That requires getting the genuinely
//! tricky parts of Rust's lexical grammar right:
//!
//! * raw strings `r"…"` / `r#"…"#` (any number of hashes), byte strings
//!   `b"…"`, `br#"…"#`, and raw identifiers `r#match`;
//! * nested block comments `/* /* */ */`;
//! * `'a` the lifetime vs `'a'` the char literal (including escaped chars
//!   like `'\''` and `'\u{1F600}'`);
//! * float literals vs field access (`1.5` is a float, `1.max(2)` is an
//!   integer then a method call, `0..10` is an integer then a range).
//!
//! Everything else (idents, numbers, punctuation) is deliberately simple.
//! The lexer never fails: unterminated literals run to end of file and
//! unknown bytes become one-character punctuation tokens.

/// What kind of token a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`match`, `as`, `unwrap`, …). Raw identifiers
    /// (`r#match`) lex as `Ident` with the `r#` stripped.
    Ident,
    /// A lifetime such as `'a` or `'static` (leading `'` included in text).
    Lifetime,
    /// A char or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A float literal (`1.5`, `1e9`, `2f64`).
    Float,
    /// Punctuation, possibly multi-character (`::`, `=>`, `==`, `!=`, `..`).
    Punct,
    /// A `// …` comment (doc comments included), text up to the newline.
    LineComment,
    /// A `/* … */` comment (nesting handled), full text.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for comment tokens (which code-pattern rules skip).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }

    /// For a [`TokenKind::Str`] token: true when the literal is empty
    /// (`""`, `r""`, `r#""#`, `b""` …).
    pub fn str_is_empty(&self) -> bool {
        debug_assert_eq!(self.kind, TokenKind::Str);
        let t = self.text.trim_start_matches(['b', 'r']);
        let t = t.trim_matches('#');
        t == "\"\""
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count characters, not bytes: UTF-8 continuation bytes don't
            // advance the column.
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Multi-character punctuation, longest first so maximal munch wins
/// (`..=` before `..` before `.`; `=>` and `==` before `=`).
const PUNCTS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "::", "=>", "==", "!=", "<=", ">=", "->", "..", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `src` into tokens (comments included). Never fails.
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();

    // A leading shebang (`#!/usr/bin/env …`) is legal at the very start of
    // a Rust source file and is lexically a comment. It must not collide
    // with `#![…]` inner attributes, which also start with `#!`.
    if c.starts_with("#!") && c.peek(2) != Some(b'[') {
        while let Some(b) = c.peek(0) {
            if b == b'\n' {
                break;
            }
            c.bump();
        }
        out.push(Token { kind: TokenKind::LineComment, text: src[..c.pos].to_string(), line: 1, col: 1 });
    }

    while let Some(b) = c.peek(0) {
        let (line, col, start) = (c.line, c.col, c.pos);
        let text = |c: &Cursor, start: usize| src[start..c.pos].to_string();

        // Whitespace.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        // Comments.
        if c.starts_with("//") {
            while let Some(b) = c.peek(0) {
                if b == b'\n' {
                    break;
                }
                c.bump();
            }
            out.push(Token { kind: TokenKind::LineComment, text: text(&c, start), line, col });
            continue;
        }
        if c.starts_with("/*") {
            c.bump();
            c.bump();
            let mut depth = 1usize;
            while depth > 0 && c.peek(0).is_some() {
                if c.starts_with("/*") {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.starts_with("*/") {
                    depth -= 1;
                    c.bump();
                    c.bump();
                } else {
                    c.bump();
                }
            }
            out.push(Token { kind: TokenKind::BlockComment, text: text(&c, start), line, col });
            continue;
        }

        // String-literal prefixes and raw identifiers. These must come
        // before the generic identifier path: `r"`, `r#"`, `b"`, `br#"` are
        // strings, `b'` is a byte char, `r#foo` is a raw identifier.
        if b == b'r' || b == b'b' {
            let mut k = 1; // bytes of prefix consumed so far ("r" or "b")
            if b == b'b' && c.peek(1) == Some(b'r') {
                k = 2; // "br"
            }
            let mut hashes = 0usize;
            while c.peek(k + hashes) == Some(b'#') {
                hashes += 1;
            }
            let raw = k == 2 || b == b'r';
            if raw && c.peek(k + hashes) == Some(b'"') {
                // Raw (byte) string: consume prefix, hashes, opening quote.
                for _ in 0..k + hashes + 1 {
                    c.bump();
                }
                let closer: String =
                    std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
                while c.peek(0).is_some() && !c.starts_with(&closer) {
                    c.bump();
                }
                for _ in 0..closer.len() {
                    c.bump();
                }
                out.push(Token { kind: TokenKind::Str, text: text(&c, start), line, col });
                continue;
            }
            if b == b'b' && hashes == 0 && c.peek(1) == Some(b'"') {
                // b"…": lex as a cooked string below after consuming `b`.
                c.bump();
                lex_cooked_string(&mut c);
                out.push(Token { kind: TokenKind::Str, text: text(&c, start), line, col });
                continue;
            }
            if b == b'b' && c.peek(1) == Some(b'\'') {
                // b'…' byte literal.
                c.bump();
                c.bump();
                lex_char_body(&mut c);
                out.push(Token { kind: TokenKind::Char, text: text(&c, start), line, col });
                continue;
            }
            if b == b'r' && hashes == 1 && c.peek(2).is_some_and(is_ident_start) {
                // Raw identifier r#foo: skip the r# and fall through to the
                // ident body so `r#match` compares equal to `match`-free
                // idents by its real name.
                c.bump();
                c.bump();
                let istart = c.pos;
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: src[istart..c.pos].to_string(),
                    line,
                    col,
                });
                continue;
            }
        }

        // Identifiers and keywords.
        if is_ident_start(b) {
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            out.push(Token { kind: TokenKind::Ident, text: text(&c, start), line, col });
            continue;
        }

        // Numbers.
        if b.is_ascii_digit() {
            let mut float = false;
            if c.starts_with("0x") || c.starts_with("0X") || c.starts_with("0o") || c.starts_with("0b") {
                c.bump();
                c.bump();
                while c.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
                    c.bump();
                }
            } else {
                while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    c.bump();
                }
                // A dot makes a float only when followed by a digit (or by
                // nothing identifier-like: `1.` is a float, `1.max` is not,
                // `0..10` is not).
                if c.peek(0) == Some(b'.')
                    && c.peek(1) != Some(b'.')
                    && !c.peek(1).is_some_and(is_ident_start)
                {
                    float = true;
                    c.bump();
                    while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                        c.bump();
                    }
                }
                // Exponent.
                if c.peek(0).is_some_and(|b| b == b'e' || b == b'E') {
                    let sign = usize::from(matches!(c.peek(1), Some(b'+') | Some(b'-')));
                    if c.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                        float = true;
                        c.bump(); // e
                        for _ in 0..sign {
                            c.bump();
                        }
                        while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                            c.bump();
                        }
                    }
                }
                // Type suffix (u64, f64, usize, …).
                let sstart = c.pos;
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                if src[sstart..c.pos].starts_with('f') {
                    float = true;
                }
            }
            let kind = if float { TokenKind::Float } else { TokenKind::Int };
            out.push(Token { kind, text: text(&c, start), line, col });
            continue;
        }

        // Lifetimes vs char literals.
        if b == b'\'' {
            let next = c.peek(1);
            let after = c.peek(2);
            if next == Some(b'\\') {
                // Escaped char literal.
                c.bump();
                c.bump();
                lex_char_body_after_escape(&mut c);
                out.push(Token { kind: TokenKind::Char, text: text(&c, start), line, col });
            } else if next.is_some_and(is_ident_start) && after != Some(b'\'') {
                // Lifetime: 'a, 'static, '_ followed by a non-quote.
                c.bump();
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.push(Token { kind: TokenKind::Lifetime, text: text(&c, start), line, col });
            } else {
                // Char literal: 'x' (including 'a' where the closing quote
                // disambiguates from a lifetime).
                c.bump();
                lex_char_body(&mut c);
                out.push(Token { kind: TokenKind::Char, text: text(&c, start), line, col });
            }
            continue;
        }

        // Cooked strings.
        if b == b'"' {
            lex_cooked_string(&mut c);
            out.push(Token { kind: TokenKind::Str, text: text(&c, start), line, col });
            continue;
        }

        // Punctuation (multi-char first).
        let mut matched = false;
        for p in PUNCTS {
            if c.starts_with(p) {
                for _ in 0..p.len() {
                    c.bump();
                }
                out.push(Token { kind: TokenKind::Punct, text: (*p).to_string(), line, col });
                matched = true;
                break;
            }
        }
        if !matched {
            c.bump();
            out.push(Token { kind: TokenKind::Punct, text: text(&c, start), line, col });
        }
    }

    out
}

/// Consume a cooked string body starting at the opening `"`.
fn lex_cooked_string(c: &mut Cursor) {
    c.bump(); // opening quote
    while let Some(b) = c.peek(0) {
        c.bump();
        if b == b'\\' {
            c.bump(); // whatever is escaped, including `\"` and `\\`
        } else if b == b'"' {
            break;
        }
    }
}

/// Consume a char-literal body after the opening `'` (unescaped form).
fn lex_char_body(c: &mut Cursor) {
    if c.peek(0) == Some(b'\\') {
        c.bump();
        lex_char_body_after_escape(c);
        return;
    }
    c.bump(); // the char itself (multi-byte chars: bump to char boundary)
    while c.peek(0).is_some_and(|b| b & 0xc0 == 0x80) {
        c.bump();
    }
    if c.peek(0) == Some(b'\'') {
        c.bump();
    }
}

/// Consume the rest of an escaped char literal, cursor just past the `\`.
fn lex_char_body_after_escape(c: &mut Cursor) {
    c.bump(); // the escaped character ('n', '\'', 'u', 'x', …)
    // `\u{…}` and `\x..` bodies, then the closing quote.
    while let Some(b) = c.peek(0) {
        if b == b'\'' {
            c.bump();
            break;
        }
        if b == b'\n' {
            break; // unterminated; don't eat the rest of the file
        }
        c.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("foo.unwrap()");
        assert_eq!(
            t,
            vec![
                (TokenKind::Ident, "foo".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn multichar_puncts_munch_maximally() {
        let t = kinds("a::b => c == d != e ..= f");
        let puncts: Vec<String> = t
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(puncts, vec!["::", "=>", "==", "!=", "..="]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r####"let s = r#"quote " inside"#;"####);
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Str && s.contains("quote")));
        // Nothing inside the raw string became a token.
        assert!(!t.iter().any(|(_, s)| s == "inside"));
    }

    #[test]
    fn raw_string_contains_fake_code() {
        // A `.unwrap()` inside a raw string must stay inside the literal.
        let t = kinds(r#"let s = r"x.unwrap()"; y"#);
        let idents: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "y"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let t = kinds(r##"b"bytes" br#"raw bytes"# b'x'"##);
        assert_eq!(t[0].0, TokenKind::Str);
        assert_eq!(t[1].0, TokenKind::Str);
        assert_eq!(t[2].0, TokenKind::Char);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("a /* outer /* inner */ still comment */ b");
        let idents: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
        assert!(t.iter().any(|(k, _)| *k == TokenKind::BlockComment));
    }

    #[test]
    fn lifetime_vs_char() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let q = '\\''; }");
        let lifetimes: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = t.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let t = kinds("&'static str; &'_ u8");
        let lifetimes: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'_"]);
    }

    #[test]
    fn unicode_char_literal() {
        let t = kinds("let c = '\u{1F600}'; x");
        assert!(t.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "x"));
    }

    #[test]
    fn escaped_unicode_char_literal() {
        let t = kinds(r"let c = '\u{1F600}'; x");
        assert!(t.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "x"));
    }

    #[test]
    fn float_vs_method_call_vs_range() {
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e9")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.5e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.max(2)")[0].0, TokenKind::Int);
        let range = kinds("0..10");
        assert_eq!(range[0].0, TokenKind::Int);
        assert_eq!(range[1], (TokenKind::Punct, "..".into()));
        assert_eq!(range[2].0, TokenKind::Int);
        assert_eq!(kinds("0xff_u64")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000u64")[0].0, TokenKind::Int);
    }

    #[test]
    fn raw_identifier() {
        let t = kinds("r#match + other");
        assert_eq!(t[0], (TokenKind::Ident, "match".into()));
        assert_eq!(t[2], (TokenKind::Ident, "other".into()));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let t = kinds(r#"let s = "escaped \" quote"; z"#);
        let idents: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "z"]);
    }

    #[test]
    fn empty_string_detection() {
        let toks = lex(r####"let a = ""; let b = "x"; let c = r#""#;"####);
        let strs: Vec<bool> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.str_is_empty())
            .collect();
        assert_eq!(strs, vec![true, false, true]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn doc_comments_are_line_comments() {
        let toks = lex("/// docs\n//! inner\ncode");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert!(toks[2].is_ident("code"));
    }

    #[test]
    fn shebang_line_is_a_comment() {
        let toks = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].text, "#!/usr/bin/env run-cargo-script");
        assert!(toks[1].is_ident("fn"), "{:?}", toks[1]);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        // `#![cfg(test)]` starts with `#!` but is an attribute, not a shebang.
        let toks = lex("#![allow(dead_code)]\nfn f() {}\n");
        assert!(toks[0].is_punct("#"), "{:?}", toks[0]);
        assert!(toks[1].is_punct("!"), "{:?}", toks[1]);
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn shebang_mid_file_is_not_special() {
        // `#!` anywhere but offset 0 lexes as two punctuation tokens.
        let toks = lex("fn f() {}\n#!/not/a/shebang\n");
        let after: Vec<&str> = toks.iter().skip(6).map(|t| t.text.as_str()).collect();
        assert_eq!(&after[..2], &["#", "!"], "{after:?}");
    }

    #[test]
    fn shift_right_is_one_token_closing_nested_generics() {
        // The parser splits `>>` when it closes two generic levels; the
        // lexer must deliver it as a single maximal-munch token.
        let t = kinds("Vec<Vec<u8>> x >> y");
        assert_eq!(
            t,
            vec![
                (TokenKind::Ident, "Vec".into()),
                (TokenKind::Punct, "<".into()),
                (TokenKind::Ident, "Vec".into()),
                (TokenKind::Punct, "<".into()),
                (TokenKind::Ident, "u8".into()),
                (TokenKind::Punct, ">>".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, ">>".into()),
                (TokenKind::Ident, "y".into()),
            ]
        );
    }

    #[test]
    fn raw_strings_known_answer_multiple_hashes() {
        // Two- and three-hash raw strings, including an embedded `"#` that
        // must not terminate the two-hash literal early.
        let src = "r##\"one \"# inside\"## r###\"two \"## inside\"### tail";
        let t = kinds(src);
        assert_eq!(
            t,
            vec![
                (TokenKind::Str, "r##\"one \"# inside\"##".into()),
                (TokenKind::Str, "r###\"two \"## inside\"###".into()),
                (TokenKind::Ident, "tail".into()),
            ]
        );
    }

    #[test]
    fn fn_header_qualifiers_lex_as_plain_idents() {
        // `const fn` / `async fn` / `pub(crate) fn`: the parser leans on
        // these arriving as ident/punct sequences, nothing fused.
        let t = kinds("pub(crate) const fn a() {} pub async unsafe fn b() {}");
        let texts: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            &texts[..7],
            &["pub", "(", "crate", ")", "const", "fn", "a"]
        );
        let b_at = texts.iter().position(|s| *s == "b").expect("fn b lexed");
        assert_eq!(&texts[b_at - 3..b_at], &["async", "unsafe", "fn"]);
    }

    #[test]
    fn unterminated_literals_reach_eof_without_panic() {
        lex("let s = \"unterminated");
        lex("let s = r#\"unterminated");
        lex("/* unterminated");
        lex("let c = 'x");
    }
}

//! Workspace call graph and the transitive rules built on it.
//!
//! Phase 1 ([`extract`]) reduces one file's token stream + parse tree to
//! [`FileFacts`]: per-fn call sites, allocation sites, wall-clock/RNG
//! reads, discarded-`Result` statements, `trace::Event` definitions and
//! constructions, and the `// simlint: hot-root` / `// simlint: cold`
//! markers. Facts are cheap, position-stable, and cacheable per file.
//!
//! Phase 2 ([`run`]) joins all facts into a conservative workspace call
//! graph — direct calls by name, method calls by name, `Type::fn` calls
//! by owner — and evaluates the graph rules:
//!
//! * **SL007 v2 (hot-path-alloc)** — reachability closure from the
//!   `hot-root` annotated event-dispatch fns; any allocation in the
//!   closure is flagged with its call chain. `// simlint: cold` on a fn
//!   prunes its subtree (a once-per-run boundary).
//! * **SL008 (determinism-taint)** — fns that *directly* read a wall
//!   clock or unseeded RNG taint every caller transitively; each call
//!   edge into a tainted fn is a finding, so a leaf `allow(determinism)`
//!   no longer blesses the callers. `allow(determinism-taint)` on a call
//!   line contains the taint at that edge.
//! * **SL009 (dead-trace-event)** — `trace::Event` variants never
//!   constructed in the simulator scope.
//! * **SL010 (discarded-result)** — expression statements that drop the
//!   `Result` of a workspace fn in a library crate.
//!
//! The graph is *conservative by name*: a method call `x.fold(…)`
//! resolves to every workspace method named `fold`. That over-links, but
//! the rules are designed so over-linking only widens coverage (more
//! reachability, more taint) and precision comes from the annotations.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{Token, TokenKind};
use crate::parse::ParsedFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The rules evaluated here rather than per-file. Directives naming them
/// are judged used/unused only after this pass runs.
pub const GRAPH_RULES: &[RuleId] = &[
    RuleId::HotPathAlloc,
    RuleId::DeterminismTaint,
    RuleId::DeadTraceEvent,
    RuleId::DiscardedResult,
];

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` — resolves to free fns named `foo`.
    Free,
    /// `x.foo(…)` — resolves to any impl/trait method named `foo`.
    Method,
    /// `Type::foo(…)` / `module::foo(…)` — resolves to methods of the
    /// qualifier, falling back to free fns when the qualifier looks like
    /// a module path segment (lowercase).
    Qualified(String),
}

impl CallKind {
    /// One-character cache tag.
    pub fn tag(&self) -> char {
        match self {
            CallKind::Free => 'F',
            CallKind::Method => 'M',
            CallKind::Qualified(_) => 'Q',
        }
    }
}

/// One call site inside a fn body.
#[derive(Clone, Debug)]
pub struct CallFact {
    pub kind: CallKind,
    pub callee: String,
    pub line: u32,
    pub col: u32,
}

/// One allocation site inside a fn body.
#[derive(Clone, Debug)]
pub struct AllocFact {
    pub line: u32,
    pub col: u32,
    /// Human form of the allocating construct (`` `Vec::new` ``, …).
    pub what: String,
}

/// One expression statement discarding a call's return value.
#[derive(Clone, Debug)]
pub struct DiscardFact {
    pub kind: CallKind,
    pub callee: String,
    pub line: u32,
    pub col: u32,
}

/// Everything the graph pass needs to know about one fn.
#[derive(Clone, Debug)]
pub struct FnFact {
    pub name: String,
    pub owner: Option<String>,
    pub line: u32,
    pub col: u32,
    pub is_test: bool,
    pub returns_result: bool,
    /// Carries a `// simlint: hot-root` marker.
    pub hot_root: bool,
    /// Carries a `// simlint: cold` marker (closure boundary).
    pub cold: bool,
    /// The wall-clock/RNG construct this fn's body reads directly
    /// (`Instant::now`, `SystemTime`, `thread_rng`), if any.
    pub taint: Option<String>,
    pub calls: Vec<CallFact>,
    pub allocs: Vec<AllocFact>,
    pub discards: Vec<DiscardFact>,
}

/// One `trace::Event` variant definition site.
#[derive(Clone, Debug)]
pub struct EventDef {
    pub name: String,
    pub line: u32,
    pub col: u32,
}

/// The cacheable per-file summary the graph pass consumes.
#[derive(Clone, Debug, Default)]
pub struct FileFacts {
    pub fns: Vec<FnFact>,
    /// Variants of enums named `Event` defined in this file.
    pub events: Vec<EventDef>,
    /// `Event::X` construction sites (non-pattern, non-test) in this file.
    pub event_uses: Vec<String>,
}

const ALLOC_HINT: &str =
    "reuse a buffer across events or hoist the allocation out of the closure";

/// Idents that look like calls (`ident(`) but never name a workspace fn.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "else"
            | "in"
            | "as"
            | "move"
            | "let"
            | "unsafe"
            | "ref"
            | "mut"
            | "box"
            | "await"
            | "dyn"
            | "impl"
            | "fn"
            | "use"
            | "pub"
            | "where"
            | "break"
            | "continue"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "mod"
            | "static"
            | "const"
            | "true"
            | "false"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
    )
}

fn next_code(toks: &[Token], i: usize, hi: usize) -> Option<usize> {
    let mut j = i + 1;
    while j < hi {
        if !toks[j].is_comment() {
            return Some(j);
        }
        j += 1;
    }
    None
}

fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !toks[j].is_comment() {
            return Some(j);
        }
    }
    None
}

fn in_line_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// A simlint marker comment (`hot-root` / `cold`), if this comment is one.
fn parse_marker(comment: &str) -> Option<&'static str> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_end_matches('/')
        .trim_end_matches('*')
        .trim();
    let rest = body.strip_prefix("simlint:")?.trim_start();
    for kind in ["hot-root", "cold"] {
        if let Some(after) = rest.strip_prefix(kind) {
            let after = after.trim_start();
            if after.is_empty() || after.starts_with(':') {
                return Some(kind);
            }
        }
    }
    None
}

/// Phase 1: reduce one file to its graph facts. `test_lines` are the line
/// spans of `#[cfg(test)]` items; fns and event constructions there are
/// excluded from the graph. Unattached `hot-root`/`cold` markers are
/// SL000 errors pushed to `diags`.
pub fn extract(
    rel: &str,
    toks: &[Token],
    parsed: &ParsedFile,
    test_lines: &[(u32, u32)],
    diags: &mut Vec<Diagnostic>,
) -> FileFacts {
    let all_test = rel.starts_with("tests/") || rel.contains("/tests/");
    let mut facts = FileFacts::default();

    // --- markers -------------------------------------------------------
    let code_lines: BTreeSet<u32> =
        toks.iter().filter(|t| !t.is_comment()).map(|t| t.line).collect();
    let mut roots: BTreeSet<usize> = BTreeSet::new();
    let mut colds: BTreeSet<usize> = BTreeSet::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let Some(kind) = parse_marker(&t.text) else { continue };
        // Trailing a code line, the marker targets that line; alone on
        // its line, it targets the next code line (like allow directives).
        let target = if code_lines.contains(&t.line) {
            Some(t.line)
        } else {
            code_lines.range(t.line..).next().copied()
        };
        // Innermost fn whose decl region covers the target line.
        let hit = target.and_then(|line| {
            parsed
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.decl_region_contains(line))
                .max_by_key(|(_, f)| f.decl_line)
                .map(|(i, _)| i)
        });
        match hit {
            Some(i) => {
                if kind == "hot-root" {
                    roots.insert(i);
                } else {
                    colds.insert(i);
                }
            }
            None => diags.push(Diagnostic::new(
                RuleId::UnusedAllow,
                rel,
                t.line,
                t.col,
                format!(
                    "`simlint: {kind}` marker attaches to no fn declaration; the annotated \
                     fn was removed or renamed — move or delete the marker"
                ),
            )),
        }
    }

    // --- per-fn facts --------------------------------------------------
    for (idx, item) in parsed.fns.iter().enumerate() {
        let owner = item.owner.clone();
        let mut fact = FnFact {
            name: item.name.clone(),
            owner: owner.clone(),
            line: item.line,
            col: item.col,
            is_test: all_test || in_line_spans(test_lines, item.line),
            returns_result: item.returns_result,
            hot_root: roots.contains(&idx),
            cold: colds.contains(&idx),
            taint: None,
            calls: Vec::new(),
            allocs: Vec::new(),
            discards: Vec::new(),
        };
        if let Some((open, close)) = item.body {
            scan_body(toks, open, close, owner.as_deref(), &mut fact);
        }
        facts.fns.push(fact);
    }

    // --- trace::Event definitions and constructions --------------------
    for e in parsed.enums.iter().filter(|e| e.name == "Event") {
        for v in &e.variants {
            facts.events.push(EventDef { name: v.name.clone(), line: v.line, col: v.col });
        }
    }
    facts.event_uses = event_constructions(toks, test_lines, all_test);

    facts
}

/// Scan one fn body's token range for calls, allocations, taint sources,
/// and discarded-Result statements.
fn scan_body(toks: &[Token], open: usize, close: usize, owner: Option<&str>, fact: &mut FnFact) {
    let hi = (close + 1).min(toks.len());
    let mut j = open;
    while j < hi {
        let t = &toks[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        // Taint sources — the same constructs SL001 flags, minus
        // hash-order iteration (HashMap perturbs output, not time).
        if fact.taint.is_none() && t.kind == TokenKind::Ident {
            if t.is_ident("Instant")
                && next_code(toks, j, hi).is_some_and(|k| toks[k].is_punct("::"))
                && next_code(toks, j, hi)
                    .and_then(|k| next_code(toks, k, hi))
                    .is_some_and(|k| toks[k].is_ident("now"))
            {
                fact.taint = Some("Instant::now".to_string());
            } else if t.is_ident("SystemTime") {
                fact.taint = Some("SystemTime".to_string());
            } else if t.is_ident("thread_rng") || t.is_ident("ThreadRng") {
                fact.taint = Some("thread_rng".to_string());
            }
        }
        // Allocation sites — predicate-compatible with SL007 v1.
        if let Some((at, what)) = alloc_at(toks, j, hi) {
            fact.allocs.push(AllocFact { line: toks[at].line, col: toks[at].col, what });
        }
        // Call sites: `name(`, `x.name(`, `Type::name(`, `name::<T>(`.
        if t.kind == TokenKind::Ident && !is_call_keyword(&t.text) {
            if let Some(call) = call_at(toks, j, hi, owner) {
                // `fn name(` is a declaration, not a call.
                let is_decl = prev_code(toks, j).is_some_and(|p| toks[p].is_ident("fn"));
                if !is_decl {
                    fact.calls.push(call);
                }
            }
        }
        // Discarded results: `…)` directly followed by `;`.
        if t.is_punct(")") && next_code(toks, j, hi).is_some_and(|k| toks[k].is_punct(";")) {
            if let Some(d) = discard_at(toks, open, j) {
                fact.discards.push(d);
            }
        }
        j += 1;
    }
}

/// The allocation construct at token `j`, if any: (reporting token, what).
fn alloc_at(toks: &[Token], j: usize, hi: usize) -> Option<(usize, String)> {
    let t = &toks[j];
    let at = |k: usize| next_code(toks, k, hi);
    if t.is_ident("Vec")
        && at(j).is_some_and(|k| toks[k].is_punct("::"))
        && at(j)
            .and_then(at)
            .is_some_and(|k| toks[k].is_ident("new") || toks[k].is_ident("with_capacity"))
    {
        let m = at(j).and_then(at).expect("checked above");
        return Some((j, format!("`Vec::{}`", toks[m].text)));
    }
    if t.is_ident("Box")
        && at(j).is_some_and(|k| toks[k].is_punct("::"))
        && at(j).and_then(at).is_some_and(|k| toks[k].is_ident("new"))
    {
        return Some((j, "`Box::new`".to_string()));
    }
    if t.is_ident("vec") && at(j).is_some_and(|k| toks[k].is_punct("!")) {
        return Some((j, "`vec![…]`".to_string()));
    }
    if t.is_punct(".") {
        if let Some(k) = at(j) {
            if toks[k].is_ident("collect") || toks[k].is_ident("to_vec") {
                return Some((k, format!("`.{}()`", toks[k].text)));
            }
        }
    }
    None
}

/// The call whose callee ident is at `j`, if `j` begins one.
fn call_at(toks: &[Token], j: usize, hi: usize, owner: Option<&str>) -> Option<CallFact> {
    let name = &toks[j];
    // After the ident: `(`, or a `::<turbofish>` then `(`.
    let mut k = next_code(toks, j, hi)?;
    if toks[k].is_punct("::") {
        let g = next_code(toks, k, hi)?;
        if !toks[g].is_punct("<") {
            return None; // path continues (`a::b::c`) — the last segment will match
        }
        k = skip_generic_run(toks, g, hi)?;
    }
    if !toks[k].is_punct("(") {
        return None;
    }
    // Before the ident: `.` → method, `qual::` → qualified, else free.
    let kind = match prev_code(toks, j) {
        Some(p) if toks[p].is_punct(".") => CallKind::Method,
        Some(p) if toks[p].is_punct("::") => {
            let q = prev_code(toks, p)?;
            if toks[q].kind != TokenKind::Ident {
                return None; // `<T as Trait>::f(…)` — too exotic to resolve
            }
            match toks[q].text.as_str() {
                "self" | "crate" | "super" => CallKind::Free,
                "Self" => CallKind::Qualified(owner?.to_string()),
                q => CallKind::Qualified(q.to_string()),
            }
        }
        _ => CallKind::Free,
    };
    Some(CallFact { kind, callee: name.text.clone(), line: name.line, col: name.col })
}

/// Index of the first code token past a `<…>` run starting at `lo` (`<`).
fn skip_generic_run(toks: &[Token], lo: usize, hi: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut j = lo;
    while j < hi {
        let t = &toks[j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct(">>") {
            depth -= 2;
        }
        if depth <= 0 {
            return next_code(toks, j, hi);
        }
        j += 1;
    }
    None
}

/// Classify the statement ending in the `)` at `close_paren` as a
/// discarded call, if it is one: the statement must be a bare call chain
/// (no `let`, no assignment, no `return`/`break`/`continue`, no `?`).
fn discard_at(toks: &[Token], body_open: usize, close_paren: usize) -> Option<DiscardFact> {
    // Matching `(` for the final `)`.
    let mut depth = 0usize;
    let mut open = None;
    let mut j = close_paren + 1;
    while j > body_open {
        j -= 1;
        let t = &toks[j];
        if t.is_comment() {
            continue;
        }
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            depth -= 1;
            if depth == 0 {
                open = Some(j);
                break;
            }
        }
    }
    let open = open?;
    let name_at = prev_code(toks, open)?;
    if toks[name_at].kind != TokenKind::Ident || is_call_keyword(&toks[name_at].text) {
        return None; // `(tuple);`, closures, keywords…
    }
    // Macros: `mac!(…)` puts `!` before the `(`; name_at would be `!`'s
    // ident only if the prev token is `!` — check directly.
    if prev_code(toks, open).is_some_and(|p| toks[p].is_punct("!")) {
        return None;
    }
    // Walk back to the statement start; any binding/assignment/flow
    // construct at nesting level 0 means the value is consumed.
    let (mut p, mut br, mut bc) = (0usize, 0usize, 0usize);
    let mut j = name_at;
    while j > body_open {
        let Some(prev) = prev_code(toks, j) else { break };
        if prev < body_open {
            break;
        }
        j = prev;
        let t = &toks[j];
        if t.is_punct(")") {
            p += 1;
            continue;
        }
        if t.is_punct("]") {
            br += 1;
            continue;
        }
        if t.is_punct("}") {
            bc += 1;
            continue;
        }
        if t.is_punct("(") {
            if p == 0 {
                break; // enclosing call/group — value is consumed
            }
            p -= 1;
            continue;
        }
        if t.is_punct("[") {
            if br == 0 {
                break;
            }
            br -= 1;
            continue;
        }
        if t.is_punct("{") {
            if bc == 0 {
                break; // enclosing block start
            }
            bc -= 1;
            continue;
        }
        if p > 0 || br > 0 || bc > 0 {
            continue;
        }
        if t.is_punct(";") {
            break; // previous statement's end
        }
        if t.is_ident("let")
            || t.is_ident("return")
            || t.is_ident("break")
            || t.is_ident("continue")
        {
            return None;
        }
        if t.kind == TokenKind::Punct && (t.text.contains('=') || t.text == "?") {
            return None; // assignment / comparison / `?` chain
        }
    }
    // Classify the final call like `call_at` does.
    let kind = match prev_code(toks, name_at) {
        Some(p2) if p2 >= body_open && toks[p2].is_punct(".") => CallKind::Method,
        Some(p2) if p2 >= body_open && toks[p2].is_punct("::") => {
            let q = prev_code(toks, p2)?;
            if toks[q].kind != TokenKind::Ident {
                return None;
            }
            match toks[q].text.as_str() {
                "self" | "crate" | "super" | "Self" => CallKind::Free,
                q => CallKind::Qualified(q.to_string()),
            }
        }
        _ => CallKind::Free,
    };
    Some(DiscardFact {
        kind,
        callee: toks[name_at].text.clone(),
        line: toks[name_at].line,
        col: toks[name_at].col,
    })
}

/// `Event::Variant` tokens in construction (non-pattern) position.
fn event_constructions(toks: &[Token], test_lines: &[(u32, u32)], all_test: bool) -> Vec<String> {
    if all_test {
        return Vec::new();
    }
    let mut out = BTreeSet::new();
    let hi = toks.len();
    for j in 0..hi {
        if !toks[j].is_ident("Event") || in_line_spans(test_lines, toks[j].line) {
            continue;
        }
        let Some(c) = next_code(toks, j, hi) else { continue };
        if !toks[c].is_punct("::") {
            continue;
        }
        let Some(v) = next_code(toks, c, hi) else { continue };
        if toks[v].kind != TokenKind::Ident {
            continue;
        }
        // Pattern positions: `let Event::…`, `| Event::…`, or the variant
        // (after its balanced payload) followed by `=>` or `|`.
        if prev_code(toks, j).is_some_and(|p| toks[p].is_ident("let") || toks[p].is_punct("|")) {
            continue;
        }
        let mut k = next_code(toks, v, hi);
        if let Some(kk) = k {
            if toks[kk].is_punct("{") || toks[kk].is_punct("(") {
                let (ot, ct) = if toks[kk].is_punct("{") { ("{", "}") } else { ("(", ")") };
                let mut depth = 0usize;
                let mut m = kk;
                while m < hi {
                    if toks[m].is_punct(ot) {
                        depth += 1;
                    } else if toks[m].is_punct(ct) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                k = next_code(toks, m, hi);
            }
        }
        if k.is_some_and(|kk| toks[kk].is_punct("=>") || toks[kk].is_punct("|")) {
            continue;
        }
        out.insert(toks[v].text.clone());
    }
    out.into_iter().collect()
}

// ---------------------------------------------------------------------
// Phase 2: the graph pass.
// ---------------------------------------------------------------------

/// Scope configuration for the graph rules (engine `Config` projection).
pub struct GraphConfig<'a> {
    /// The file set covers the whole compilation target — absence of a
    /// construction/definition is meaningful. False for ad-hoc file
    /// lists, where SL009/SL010 and unused-cold checks are skipped.
    pub complete: bool,
    /// Error when no `hot-root` marker exists anywhere (workspace runs).
    pub require_roots: bool,
    /// Path prefixes where SL008 call-edge findings are reported.
    pub taint_scope: &'a [String],
    /// Path prefixes where SL010 findings are reported.
    pub result_scope: &'a [String],
    /// Path prefixes whose `Event::…` constructions count as live (SL009).
    pub event_scope: &'a [String],
    /// The file defining `trace::Event` (empty = any file with an
    /// `enum Event`, used by fixtures).
    pub trace_def: &'a str,
}

/// The graph pass result: diagnostics plus the `(file index, line)`
/// positions of `allow(determinism-taint)` directives that actually
/// contained a taint edge (the engine marks those used).
pub struct GraphOutput {
    pub diags: Vec<Diagnostic>,
    pub used_taint_allows: BTreeSet<(usize, u32)>,
}

fn in_scope(scope: &[String], rel: &str) -> bool {
    scope.iter().any(|p| rel.starts_with(p.as_str()))
}

struct Node<'a> {
    file: usize,
    fact: &'a FnFact,
}

/// Phase 2 over all files' facts. `files` must be sorted by path (the
/// engine sorts); `taint_allows` holds the `(file index, target line)` of
/// every `allow(determinism-taint)` directive.
pub fn run(
    files: &[(String, FileFacts)],
    cfg: &GraphConfig<'_>,
    taint_allows: &BTreeSet<(usize, u32)>,
) -> GraphOutput {
    let mut diags = Vec::new();
    let mut used_taint_allows = BTreeSet::new();

    // Flatten fns into nodes; files are sorted and fns are in source
    // order, so node indices are deterministic.
    let mut nodes: Vec<Node<'_>> = Vec::new();
    for (fi, (_, facts)) in files.iter().enumerate() {
        for fact in &facts.fns {
            nodes.push(Node { file: fi, fact });
        }
    }

    // Name indexes over non-test fns.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut method_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_owner_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.fact.is_test {
            continue;
        }
        match n.fact.owner.as_deref() {
            None => free_by_name.entry(&n.fact.name).or_default().push(i),
            Some(o) => {
                method_by_name.entry(&n.fact.name).or_default().push(i);
                by_owner_name.entry((o, &n.fact.name)).or_default().push(i);
            }
        }
    }
    let resolve = |kind: &CallKind, callee: &str| -> Vec<usize> {
        match kind {
            CallKind::Free => free_by_name.get(callee).cloned().unwrap_or_default(),
            CallKind::Method => method_by_name.get(callee).cloned().unwrap_or_default(),
            CallKind::Qualified(q) => {
                if let Some(v) = by_owner_name.get(&(q.as_str(), callee)) {
                    return v.clone();
                }
                // Lowercase qualifier = module path (`par::map`); an
                // unresolved Type qualifier is a std/external type.
                if q.chars().next().is_some_and(|c| c.is_lowercase()) {
                    free_by_name.get(callee).cloned().unwrap_or_default()
                } else {
                    Vec::new()
                }
            }
        }
    };

    // All resolved call edges, resolved once: forward and reverse.
    let mut fwd: Vec<Vec<(usize, u32, u32)>> = vec![Vec::new(); nodes.len()];
    let mut rev: Vec<Vec<(usize, u32, u32)>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for c in &n.fact.calls {
            for t in resolve(&c.kind, &c.callee) {
                if t == i {
                    continue; // self-recursion adds nothing to closure or taint
                }
                fwd[i].push((t, c.line, c.col));
                rev[t].push((i, c.line, c.col));
            }
        }
    }

    // --- SL007 v2: allocation closure from hot roots -------------------
    let roots: Vec<usize> = (0..nodes.len())
        .filter(|&i| nodes[i].fact.hot_root && !nodes[i].fact.is_test)
        .collect();
    if roots.is_empty() && cfg.require_roots {
        diags.push(Diagnostic::new(
            RuleId::HotPathAlloc,
            "Cargo.toml",
            1,
            1,
            "no `// simlint: hot-root` annotations found anywhere in the workspace; SL007 \
             has no hot set to check — annotate the event-dispatch roots"
                .to_string(),
        ));
    }
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut reached: Vec<bool> = vec![false; nodes.len()];
    let mut cold_pruned: Vec<bool> = vec![false; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in &roots {
        if !reached[r] {
            reached[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &(t, _, _) in &fwd[i] {
            if nodes[t].fact.cold {
                cold_pruned[t] = true;
                continue;
            }
            if !reached[t] && !nodes[t].fact.is_test {
                reached[t] = true;
                parent[t] = Some(i);
                queue.push_back(t);
            }
        }
    }
    let chain_to = |i: usize| -> String {
        let mut names = vec![nodes[i].fact.name.clone()];
        let mut j = i;
        while let Some(p) = parent[j] {
            names.push(nodes[p].fact.name.clone());
            j = p;
        }
        names.reverse();
        names.join(" → ")
    };
    for i in 0..nodes.len() {
        if !reached[i] {
            continue;
        }
        let n = &nodes[i];
        for a in &n.fact.allocs {
            let via = if parent[i].is_none() {
                format!("in hot-root `{}`", n.fact.name)
            } else {
                format!("in `{}`, reachable via {}", n.fact.name, chain_to(i))
            };
            diags.push(Diagnostic::new(
                RuleId::HotPathAlloc,
                &files[n.file].0,
                a.line,
                a.col,
                format!("{} allocates {via}; {ALLOC_HINT}", a.what),
            ));
        }
    }
    // A cold marker must prune something; one on a fn the closure never
    // reaches is stale documentation (complete runs only — a partial
    // file set can't see all the roots).
    if cfg.complete {
        for (i, n) in nodes.iter().enumerate() {
            if n.fact.cold && !cold_pruned[i] && !n.fact.is_test {
                diags.push(Diagnostic::new(
                    RuleId::UnusedAllow,
                    &files[n.file].0,
                    n.fact.line,
                    n.fact.col,
                    format!(
                        "`simlint: cold` marker on `{}` prunes nothing: the fn is not \
                         called from any hot root's closure; remove the marker",
                        n.fact.name
                    ),
                ));
            }
        }
    }

    // --- SL008: determinism taint, propagated caller-ward --------------
    let mut tainted: Vec<bool> = vec![false; nodes.len()];
    let mut taint_via: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.fact.taint.is_some() {
            tainted[i] = true;
            queue.push_back(i);
        }
    }
    let mut taint_findings: BTreeSet<(usize, u32, u32, usize)> = BTreeSet::new();
    while let Some(t) = queue.pop_front() {
        for &(caller, line, col) in &rev[t] {
            if taint_allows.contains(&(nodes[caller].file, line)) {
                // The edge is explicitly contained: no finding, and the
                // taint does not propagate through it.
                used_taint_allows.insert((nodes[caller].file, line));
                continue;
            }
            taint_findings.insert((caller, line, col, t));
            if !tainted[caller] {
                tainted[caller] = true;
                taint_via[caller] = Some(t);
                queue.push_back(caller);
            }
        }
    }
    for (caller, line, col, t) in taint_findings {
        let cn = &nodes[caller];
        if cn.fact.is_test || !in_scope(cfg.taint_scope, &files[cn.file].0) {
            continue;
        }
        // Chain from the callee down to the original source.
        let mut names = Vec::new();
        let mut j = t;
        loop {
            names.push(nodes[j].fact.name.clone());
            match taint_via[j] {
                Some(next) if names.len() < 16 => j = next,
                _ => break,
            }
        }
        let src = &nodes[j];
        let source =
            src.fact.taint.clone().unwrap_or_else(|| "a nondeterministic source".to_string());
        let msg = if names.len() == 1 {
            format!(
                "call to `{}` reads `{source}` directly; deterministic code must use the \
                 event-queue clock / seeded RNG, or contain a timing-only edge with \
                 allow(determinism-taint)",
                names[0]
            )
        } else {
            format!(
                "call to `{}` transitively reaches `{source}` (via {}); deterministic code \
                 must use the event-queue clock / seeded RNG, or contain a timing-only edge \
                 with allow(determinism-taint)",
                names[0],
                names.join(" → ")
            )
        };
        diags.push(Diagnostic::new(RuleId::DeterminismTaint, &files[cn.file].0, line, col, msg));
    }

    // --- SL009: dead trace events --------------------------------------
    if cfg.complete {
        let mut live: BTreeSet<&str> = BTreeSet::new();
        for (rel, facts) in files {
            if in_scope(cfg.event_scope, rel) {
                live.extend(facts.event_uses.iter().map(String::as_str));
            }
        }
        let scope_desc = if cfg.event_scope.iter().any(String::is_empty) {
            "this file set".to_string()
        } else {
            cfg.event_scope.join(", ")
        };
        for (rel, facts) in files {
            if !(cfg.trace_def.is_empty() || rel == cfg.trace_def) {
                continue;
            }
            for ev in &facts.events {
                if !live.contains(ev.name.as_str()) {
                    diags.push(Diagnostic::new(
                        RuleId::DeadTraceEvent,
                        rel,
                        ev.line,
                        ev.col,
                        format!(
                            "trace::Event::{} is never constructed in {scope_desc}; dead \
                             instrumentation — emit it from the simulator or remove the variant",
                            ev.name
                        ),
                    ));
                }
            }
        }
    }

    // --- SL010: discarded Results --------------------------------------
    if cfg.complete {
        for n in &nodes {
            if n.fact.is_test || !in_scope(cfg.result_scope, &files[n.file].0) {
                continue;
            }
            for d in &n.fact.discards {
                let cands = resolve(&d.kind, &d.callee);
                if cands.is_empty() || !cands.iter().all(|&c| nodes[c].fact.returns_result) {
                    continue;
                }
                diags.push(Diagnostic::new(
                    RuleId::DiscardedResult,
                    &files[n.file].0,
                    d.line,
                    d.col,
                    format!(
                        "statement discards the `Result` returned by `{}`; propagate with \
                         `?`, handle the error, or bind `let _ =` to discard deliberately",
                        d.callee
                    ),
                ));
            }
        }
    }

    GraphOutput { diags, used_taint_allows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;
    use crate::rules;

    fn facts_of(rel: &str, src: &str) -> (FileFacts, Vec<Diagnostic>) {
        let toks = lex(src);
        let parsed = parse(&toks);
        let code: Vec<Token> = toks.iter().filter(|t| !t.is_comment()).cloned().collect();
        let spans = rules::test_spans(&code);
        let lines: Vec<(u32, u32)> =
            spans.iter().map(|&(a, b)| (code[a].line, code[b].line)).collect();
        let mut diags = Vec::new();
        let f = extract(rel, &toks, &parsed, &lines, &mut diags);
        (f, diags)
    }

    fn everything<'a>() -> GraphConfig<'a> {
        const ALL: &[String] = &[String::new()];
        GraphConfig {
            complete: true,
            require_roots: false,
            taint_scope: ALL,
            result_scope: ALL,
            event_scope: ALL,
            trace_def: "",
        }
    }

    fn run_single(src: &str) -> Vec<Diagnostic> {
        let (f, mut diags) = facts_of("f.rs", src);
        let files = vec![("f.rs".to_string(), f)];
        let out = run(&files, &everything(), &BTreeSet::new());
        diags.extend(out.diags);
        diags
    }

    #[test]
    fn closure_flags_alloc_two_calls_deep_with_chain() {
        let src = "\
// simlint: hot-root
fn pump() { process_ack(1); }
fn process_ack(x: u32) { make_sack(x); }
fn make_sack(x: u32) -> Vec<u32> { (0..x).collect() }
fn off_path() -> Vec<u32> { Vec::new() }
";
        let out = run_single(src);
        assert_eq!(out.len(), 1, "{out:#?}");
        let d = &out[0];
        assert_eq!(d.rule, RuleId::HotPathAlloc);
        assert_eq!(d.line, 4);
        assert!(d.message.contains("pump → process_ack → make_sack"), "{}", d.message);
        // `off_path` is unreachable from the root: not flagged.
    }

    #[test]
    fn alloc_in_the_root_itself_is_flagged() {
        let src = "\
fn pump() -> Vec<u8> { // simlint: hot-root
    vec![0]
}
";
        let out = run_single(src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("in hot-root `pump`"), "{}", out[0].message);
    }

    #[test]
    fn cold_marker_prunes_subtree() {
        let src = "\
// simlint: hot-root
fn pump() { spawn_workload(); }
// simlint: cold
fn spawn_workload() { build_table(); }
fn build_table() -> Vec<u8> { Vec::new() }
";
        let out = run_single(src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn unpruning_cold_marker_is_an_error() {
        let src = "\
// simlint: cold
fn nobody_calls_me() {}
";
        let out = run_single(src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::UnusedAllow);
        assert!(out[0].message.contains("prunes nothing"), "{}", out[0].message);
    }

    #[test]
    fn unattached_marker_is_an_error() {
        let src = "\
// simlint: hot-root
const X: u32 = 1;
fn fine() {}
";
        let out = run_single(src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::UnusedAllow);
        assert!(out[0].message.contains("attaches to no fn"), "{}", out[0].message);
    }

    #[test]
    fn method_and_qualified_calls_resolve() {
        let src = "\
struct Rx;
impl Rx {
    fn on_data(&mut self) { self.flush(); }
    fn flush(&mut self) -> Vec<u8> { Vec::new() }
}
// simlint: hot-root
fn pump(rx: &mut Rx) { rx.on_data(); helper::tick(); }
mod helper { pub fn tick() -> Vec<u8> { vec![1] } }
";
        let out = run_single(src);
        assert_eq!(out.len(), 2, "{out:#?}");
        assert!(out.iter().any(|d| d.message.contains("pump → on_data → flush")), "{out:#?}");
        assert!(out.iter().any(|d| d.message.contains("pump → tick")), "{out:#?}");
    }

    #[test]
    fn taint_propagates_past_leaf_allow() {
        let src = "\
fn wall_now() -> u64 {
    Instant::now()
}
fn caller() { wall_now(); }
fn grand() { caller(); }
";
        let out = run_single(src);
        let taints: Vec<&Diagnostic> =
            out.iter().filter(|d| d.rule == RuleId::DeterminismTaint).collect();
        assert_eq!(taints.len(), 2, "{out:#?}");
        let direct = taints.iter().find(|d| d.line == 4).expect("direct edge");
        assert!(direct.message.contains("reads `Instant::now` directly"), "{}", direct.message);
        let transitive = taints.iter().find(|d| d.line == 5).expect("transitive edge");
        assert!(transitive.message.contains("via caller → wall_now"), "{}", transitive.message);
    }

    #[test]
    fn taint_allow_contains_the_edge_and_is_marked_used() {
        let src = "\
fn wall_now() -> u64 {
    Instant::now()
}
fn caller() {
    wall_now(); // contained below via the allows set
}
fn grand() { caller(); }
";
        let (f, diags) = facts_of("f.rs", src);
        assert!(diags.is_empty(), "{diags:#?}");
        let files = vec![("f.rs".to_string(), f)];
        let allows: BTreeSet<(usize, u32)> = [(0usize, 5u32)].into_iter().collect();
        let out = run(&files, &everything(), &allows);
        assert!(
            out.diags.iter().all(|d| d.rule != RuleId::DeterminismTaint),
            "{:#?}",
            out.diags
        );
        assert!(out.used_taint_allows.contains(&(0, 5)));
    }

    #[test]
    fn dead_event_variant_reported_at_definition() {
        let src = "\
pub enum Event {
    Send { n: u32 },
    Probe,
}
fn emit() -> Event { Event::Send { n: 1 } }
";
        let out = run_single(src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::DeadTraceEvent);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("Event::Probe"), "{}", out[0].message);
    }

    #[test]
    fn match_patterns_do_not_count_as_constructions() {
        let src = "\
pub enum Event { Send, Probe }
fn sink(ev: &Event) -> u32 {
    match ev { Event::Send => 1, Event::Probe => 2 }
}
fn emit() -> Event { Event::Send }
";
        let out = run_single(src);
        // Probe is matched but never built.
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("Event::Probe"), "{}", out[0].message);
    }

    #[test]
    fn discarded_result_flagged_only_when_all_candidates_return_result() {
        let src = "\
fn save(x: u32) -> Result<(), String> { Err(format!(\"{x}\")) }
fn notify(x: u32) -> u32 { x }
fn driver() {
    save(1);
    notify(2);
    let _ = save(3);
    save(4).expect(\"fixture: infallible\");
}
";
        let out = run_single(src);
        let discards: Vec<&Diagnostic> =
            out.iter().filter(|d| d.rule == RuleId::DiscardedResult).collect();
        assert_eq!(discards.len(), 1, "{out:#?}");
        assert_eq!(discards[0].line, 4);
        assert!(discards[0].message.contains("`save`"), "{}", discards[0].message);
    }

    #[test]
    fn test_code_stays_out_of_the_graph() {
        let src = "\
// simlint: hot-root
fn pump() { step(); }
fn step() {}
#[cfg(test)]
mod tests {
    fn step() -> Vec<u8> { Vec::new() }
    fn t() { super::pump(); }
}
";
        let out = run_single(src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn zero_roots_guard_fires_only_when_required() {
        let (f, _) = facts_of("f.rs", "fn a() {}\n");
        let files = vec![("f.rs".to_string(), f)];
        let mut cfg = everything();
        assert!(run(&files, &cfg, &BTreeSet::new()).diags.is_empty());
        cfg.require_roots = true;
        let out = run(&files, &cfg, &BTreeSet::new());
        assert_eq!(out.diags.len(), 1, "{:#?}", out.diags);
        assert!(out.diags[0].message.contains("no `// simlint: hot-root`"));
    }

    #[test]
    fn cross_file_closure_and_scopes() {
        let (fa, _) = facts_of(
            "crates/netsim/src/sim.rs",
            "// simlint: hot-root\nfn pump() { fold_row(); }\n",
        );
        let (fb, _) = facts_of(
            "crates/simcore/src/stats.rs",
            "pub fn fold_row() -> Vec<u8> { Vec::new() }\n",
        );
        let files = vec![
            ("crates/netsim/src/sim.rs".to_string(), fa),
            ("crates/simcore/src/stats.rs".to_string(), fb),
        ];
        let out = run(&files, &everything(), &BTreeSet::new());
        assert_eq!(out.diags.len(), 1, "{:#?}", out.diags);
        assert_eq!(out.diags[0].file, "crates/simcore/src/stats.rs");
        assert!(out.diags[0].message.contains("pump → fold_row"));
    }
}
